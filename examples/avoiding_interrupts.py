#!/usr/bin/env python
"""The paper's future-work directions, measured: interrupts vs polling
vs NI-offloaded protocol processing vs multiple NIs.

The SC'97 discussion section proposes three escape routes from the
interrupt bottleneck; all are implemented in this library.  This example
prints the head-to-head at realistic and pessimistic interrupt costs.

Usage::

    python examples/avoiding_interrupts.py [app] [scale]
"""

import sys

from repro.apps import get_app
from repro.core import ClusterConfig, run_simulation
from repro.core.reporting import format_table


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "barnes-rebuild"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4
    app = get_app(app_name, scale=scale)

    configs = [
        ("interrupts (fast OS)", dict(protocol_processing="interrupt", interrupt_cost=500)),
        ("interrupts (commercial OS)", dict(protocol_processing="interrupt", interrupt_cost=10000)),
        ("polling, dedicated CPU", dict(protocol_processing="polling-dedicated", interrupt_cost=10000)),
        ("NI-offloaded handlers", dict(protocol_processing="ni-offload", interrupt_cost=10000)),
        ("2 NIs/node (interrupts, fast OS)", dict(interrupt_cost=500, nis_per_node=2)),
    ]
    rows = []
    for label, comm_kw in configs:
        r = run_simulation(app, ClusterConfig().with_comm(**comm_kw))
        bd = r.breakdown_fractions()
        rows.append(
            [
                label,
                round(r.speedup, 2),
                f"{bd['data_wait']:.0%}",
                f"{bd['lock_wait']:.0%}",
                f"{bd['handler']:.0%}",
            ]
        )
    print(
        format_table(
            ["configuration", "speedup", "data wait", "lock wait", "handler"],
            rows,
            title=f"{app_name}: escaping the interrupt bottleneck",
        )
    )
    print(
        "\nPaper Section 10: 'protocol modifications (non-interrupting remote\n"
        "fetch operations) or implementation optimizations (polling instead\n"
        "of interrupts) can improve system performance and lead to more\n"
        "predictable and portable performance.'"
    )


if __name__ == "__main__":
    main()
