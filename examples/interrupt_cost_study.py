#!/usr/bin/env python
"""The paper's headline experiment: how interrupt cost dominates SVM
performance.

Sweeps interrupt cost from free to 10,000 cycles per side for a handful
of applications and prints the speedup curves plus the knee analysis —
costs up to a few hundred cycles per side barely matter, beyond that
performance falls off sharply.

Usage::

    python examples/interrupt_cost_study.py [scale]
"""

import sys

from repro.arch import INTERRUPT_COST_SWEEP
from repro.core import ClusterConfig
from repro.core.reporting import format_table
from repro.core.sweeps import sweep_comm_param

APPS = ("fft", "lu", "water-nsq", "raytrace", "barnes-rebuild")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    rows = []
    for name in APPS:
        results = sweep_comm_param(
            name, "interrupt_cost", INTERRUPT_COST_SWEEP, scale=scale
        )
        speedups = [r.speedup for r in results]
        knee = (speedups[0] - speedups[2]) / speedups[0]
        full = (speedups[0] - speedups[-1]) / speedups[0]
        rows.append(
            [name]
            + [round(s, 2) for s in speedups]
            + [f"{knee:+.0%}", f"{full:+.0%}"]
        )
    headers = (
        ["application"]
        + [f"{c}/side" for c in INTERRUPT_COST_SWEEP]
        + ["to 500/side", "full range"]
    )
    print(
        format_table(
            headers, rows, title="Speedup vs interrupt cost (all else achievable)"
        )
    )
    print()
    print(
        "The paper's conclusion: system designers should focus on reducing\n"
        "interrupt costs to support SVM well, and protocols should avoid\n"
        "interrupts where possible (polling, or protocol processing on the\n"
        "programmable network interface)."
    )


if __name__ == "__main__":
    main()
