#!/usr/bin/env python
"""Degree-of-clustering study (paper Section 8, Figure 13).

Keeps the total processor count at 16 and varies the SMP node size from
uniprocessor nodes to 8-way nodes, showing how hardware sharing within a
node converts remote protocol events into local ones — and how Ocean's
bus-hungry sweeps stop scaling once the node's memory bus saturates.

Usage::

    python examples/clustering_study.py [scale]
"""

import sys

from repro.arch import PROCS_PER_NODE_SWEEP
from repro.core import ClusterConfig
from repro.core.reporting import format_table
from repro.core.sweeps import cached_run

APPS = ("ocean", "water-nsq", "raytrace", "volrend", "barnes-rebuild")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    rows = []
    lock_rows = []
    for name in APPS:
        speedups = []
        for ppn in PROCS_PER_NODE_SWEEP:
            cfg = ClusterConfig().with_comm(procs_per_node=ppn)
            r = cached_run(name, scale, cfg)
            speedups.append(r.speedup)
            if ppn in (1, 8):
                lock_rows.append(
                    [
                        name,
                        ppn,
                        round(r.per_proc_per_mcycle("remote_lock_acquires"), 2),
                        round(r.per_proc_per_mcycle("page_fetches"), 2),
                    ]
                )
        rows.append([name] + [round(s, 2) for s in speedups])

    headers = ["application"] + [f"{p}/node" for p in PROCS_PER_NODE_SWEEP]
    print(format_table(headers, rows, title="Speedup vs processors per node"))
    print()
    print(
        format_table(
            ["application", "procs/node", "remote locks /Mcyc", "fetches /Mcyc"],
            lock_rows,
            title="Clustering converts remote protocol events into local ones",
        )
    )


if __name__ == "__main__":
    main()
