#!/usr/bin/env python
"""Build a custom workload against the public trace API.

Constructs a producer/consumer pipeline from raw trace events — without
any of the bundled SPLASH-2-like generators — and studies how its
performance responds to page size and interrupt cost.  This is the
template for studying your own application's SVM behaviour.

Usage::

    python examples/custom_app.py
"""

from repro.apps import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    READ,
    RELEASE,
    TOUCH,
    WRITE,
    AddressSpace,
    AppTrace,
)
from repro.core import ClusterConfig, run_simulation
from repro.core.reporting import format_table

N_PROCS = 16
STAGES = 8  # pipeline stages (pairs of processors hand data downstream)
ITEM_BYTES = 32 * 1024  # data handed between stages per iteration
ITERATIONS = 12
WORK_CYCLES = 400_000  # per stage per iteration


def build_pipeline(page_size: int) -> AppTrace:
    """Each processor produces a buffer its successor consumes, guarded
    by a lock per buffer, with a barrier per iteration."""
    space = AddressSpace(page_size)
    buffers = [space.alloc(ITEM_BYTES, f"buf{p}") for p in range(N_PROCS)]
    words_per_page = page_size // 4
    events = [[] for _ in range(N_PROCS)]

    for p in range(N_PROCS):
        events[p].extend(
            (TOUCH, page) for page in space.pages_of(buffers[p], ITEM_BYTES)
        )
        events[p].append((BARRIER, 0))

    for it in range(ITERATIONS):
        for p in range(N_PROCS):
            evs = events[p]
            upstream = buffers[(p - 1) % N_PROCS]
            # consume the upstream buffer
            evs.append((ACQUIRE, (p - 1) % N_PROCS))
            for page in space.pages_of(upstream, ITEM_BYTES):
                evs.append((READ, int(page)))
            evs.append((RELEASE, (p - 1) % N_PROCS))
            # compute this stage
            evs.append((COMPUTE, WORK_CYCLES, WORK_CYCLES // 10, 2_000))
            # publish into the own buffer
            evs.append((ACQUIRE, p))
            for page in space.pages_of(buffers[p], ITEM_BYTES):
                evs.append((WRITE, int(page), words_per_page, 1))
            evs.append((RELEASE, p))
            evs.append((BARRIER, 1 + it))

    serial = N_PROCS * ITERATIONS * int(WORK_CYCLES * 1.1)
    trace = AppTrace(
        name="pipeline",
        n_procs=N_PROCS,
        events=events,
        serial_cycles=serial,
        shared_bytes=space.used_bytes,
        problem=f"{STAGES}-stage pipeline, {ITEM_BYTES >> 10} KB items",
    )
    trace.validate()
    return trace


def main() -> None:
    rows = []
    for page_size in (1024, 4096, 16384):
        app = build_pipeline(page_size)
        for interrupt_cost in (500, 5000):
            cfg = ClusterConfig().with_comm(
                page_size=page_size, interrupt_cost=interrupt_cost
            )
            r = run_simulation(app, cfg)
            rows.append(
                [
                    f"{page_size // 1024}KB",
                    interrupt_cost,
                    round(r.speedup, 2),
                    round(r.breakdown_fractions()["data_wait"], 2),
                    round(r.breakdown_fractions()["lock_wait"], 2),
                ]
            )
    print(
        format_table(
            ["page size", "intr cost/side", "speedup", "data-wait frac", "lock-wait frac"],
            rows,
            title="Custom producer/consumer pipeline on the SVM cluster",
        )
    )


if __name__ == "__main__":
    main()
