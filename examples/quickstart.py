#!/usr/bin/env python
"""Quickstart: simulate one SPLASH-2-like application on an SVM cluster.

Builds the default machine (16 processors, 4-way SMP nodes, Myrinet-like
interconnect, HLRC protocol, achievable communication parameters) and
runs the FFT kernel, printing the speedup and where the time went.

Usage::

    python examples/quickstart.py [app-name] [scale]
"""

import sys

from repro.apps import app_names, get_app
from repro.core import ClusterConfig, run_simulation


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "fft"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    if app_name not in app_names():
        raise SystemExit(f"unknown app {app_name!r}; pick one of {app_names()}")

    print(f"Generating {app_name} (scale={scale}) ...")
    app = get_app(app_name, scale=scale)
    print(f"  problem: {app.problem}")
    print(f"  trace events: {app.event_count():,}")

    config = ClusterConfig()
    print(f"Simulating on: {config.label()}")
    result = run_simulation(app, config)

    print()
    print(result.summary())
    print()
    print("Time breakdown (aggregate across processors):")
    for category, fraction in sorted(
        result.breakdown_fractions().items(), key=lambda kv: -kv[1]
    ):
        if fraction >= 0.005:
            print(f"  {category:<12} {fraction:6.1%}")
    print()
    print("Protocol events per processor per 1M compute cycles:")
    for counter in ("page_faults", "page_fetches", "remote_lock_acquires", "barriers"):
        print(f"  {counter:<22} {result.per_proc_per_mcycle(counter):8.1f}")
    print()
    print(
        f"Traffic: {result.messages_per_proc_per_mcycle:.1f} messages and "
        f"{result.mbytes_per_proc_per_mcycle:.3f} MB per processor per Mcycle"
    )


if __name__ == "__main__":
    main()
