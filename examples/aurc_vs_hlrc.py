#!/usr/bin/env python
"""HLRC vs AURC: software diffs against hardware automatic update.

Runs each application under both protocol variants at the achievable
parameters and contrasts their traffic patterns — AURC trades diff
computation for a stream of fine-grained update packets, which makes it
sensitive to NI occupancy (the paper's Figure 11).

Usage::

    python examples/aurc_vs_hlrc.py [scale]
"""

import sys

from repro.core import ClusterConfig
from repro.core.reporting import format_table
from repro.core.sweeps import cached_run

APPS = ("lu", "ocean", "water-nsq", "water-sp", "barnes-rebuild")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    rows = []
    for name in APPS:
        h = cached_run(name, scale, ClusterConfig(protocol="hlrc"))
        a = cached_run(name, scale, ClusterConfig(protocol="aurc"))
        rows.append(
            [
                name,
                round(h.speedup, 2),
                round(a.speedup, 2),
                h.counters.diffs_created,
                a.counters.updates_sent,
                round(a.mbytes_per_proc_per_mcycle / max(1e-9, h.mbytes_per_proc_per_mcycle), 2),
            ]
        )
    print(
        format_table(
            [
                "application",
                "HLRC speedup",
                "AURC speedup",
                "HLRC diffs",
                "AURC updates",
                "AURC/HLRC bytes",
            ],
            rows,
            title="Protocol variants at the achievable parameters",
        )
    )
    print()
    print(
        "AURC sends no diffs but may push many fine-grained update packets\n"
        "through the NI; single-writer applications with home-local writes\n"
        "(LU, Ocean) generate few updates and behave identically."
    )


if __name__ == "__main__":
    main()
