"""Test-session hygiene for the persistent run cache.

The disk cache deliberately survives across invocations — exactly what a
test run must NOT rely on (a stale record written by an older working
tree would mask a cost-model change).  Point the whole session at a
throwaway directory instead; tests that need to inspect cache behaviour
override ``REPRO_CACHE_DIR`` themselves.
"""

import pytest

from repro.core import runcache, store
from repro.core.sweeps import clear_caches


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_cache(tmp_path_factory):
    root = tmp_path_factory.mktemp("runcache")
    checkpoints = tmp_path_factory.mktemp("checkpoints")
    store_dir = tmp_path_factory.mktemp("store")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_CACHE_DIR", str(root))
    mp.setenv("REPRO_CHECKPOINT_DIR", str(checkpoints))
    mp.setenv("REPRO_STORE_PATH", str(store_dir / "store.sqlite"))
    mp.delenv("REPRO_JOBS", raising=False)
    runcache.reset_disk_cache()
    store.reset_result_store()
    yield
    mp.undo()
    runcache.reset_disk_cache()
    store.reset_result_store()
    clear_caches()
