"""Unit tests for the analytic cache and write-buffer models."""

import pytest

from repro.arch import ArchParams, BlockAccessProfile, CacheModel, WriteBufferModel, WriteBurst


@pytest.fixture
def model():
    return CacheModel(ArchParams())


def test_all_hits_cost_nothing(model):
    profile = BlockAccessProfile(reads=1000, writes=0, l1_miss_rate=0.0, l2_miss_rate=0.0)
    costs = model.block_costs(profile)
    assert costs.stall_cycles == 0
    assert costs.bus_bytes == 0
    assert costs.bus_transactions == 0


def test_l2_hits_charge_l2_latency_only(model):
    arch = ArchParams()
    profile = BlockAccessProfile(reads=100, writes=0, l1_miss_rate=1.0, l2_miss_rate=0.0)
    costs = model.block_costs(profile)
    assert costs.stall_cycles == 100 * (arch.l2_hit_cycles - arch.l1_hit_cycles)
    assert costs.bus_bytes == 0


def test_l2_misses_generate_bus_traffic(model):
    profile = BlockAccessProfile(reads=100, writes=0, l1_miss_rate=1.0, l2_miss_rate=1.0)
    costs = model.block_costs(profile)
    arch = ArchParams()
    assert costs.stall_cycles >= 100 * arch.mem_latency_cycles
    # fills + 25% writebacks, one line each
    assert costs.bus_transactions == 125
    assert costs.bus_bytes == 125 * arch.line_bytes


def test_stall_monotone_in_miss_rates(model):
    base = BlockAccessProfile(reads=1000, writes=200, l1_miss_rate=0.05, l2_miss_rate=0.2)
    worse_l1 = BlockAccessProfile(reads=1000, writes=200, l1_miss_rate=0.10, l2_miss_rate=0.2)
    worse_l2 = BlockAccessProfile(reads=1000, writes=200, l1_miss_rate=0.05, l2_miss_rate=0.4)
    c0 = model.block_costs(base).stall_cycles
    assert model.block_costs(worse_l1).stall_cycles > c0
    assert model.block_costs(worse_l2).stall_cycles > c0


def test_writes_add_write_buffer_pressure(model):
    no_writes = BlockAccessProfile(reads=100, writes=0, l1_miss_rate=0.0, l2_miss_rate=0.0)
    writes = BlockAccessProfile(reads=100, writes=1000, l1_miss_rate=0.0, l2_miss_rate=0.0)
    assert model.block_costs(writes).stall_cycles > model.block_costs(no_writes).stall_cycles


def test_line_fill_cycles_is_positive_and_sane(model):
    arch = ArchParams()
    fill = model.line_fill_cycles()
    assert fill > arch.mem_latency_cycles
    assert fill < 10 * arch.mem_latency_cycles


def test_profile_validation():
    with pytest.raises(ValueError):
        BlockAccessProfile(reads=-1, writes=0, l1_miss_rate=0.0, l2_miss_rate=0.0)
    with pytest.raises(ValueError):
        BlockAccessProfile(reads=0, writes=0, l1_miss_rate=1.5, l2_miss_rate=0.0)


def test_model_parameter_validation():
    with pytest.raises(ValueError):
        CacheModel(ArchParams(), writeback_fraction=2.0)
    with pytest.raises(ValueError):
        CacheModel(ArchParams(), wb_stall_fraction=-0.1)


def test_working_set_heuristic_monotone(model):
    arch = ArchParams()
    small = model.miss_rates_for_working_set(arch.l1_bytes // 2)
    medium = model.miss_rates_for_working_set(arch.l2_bytes // 2)
    large = model.miss_rates_for_working_set(4 * arch.l2_bytes)
    assert small[0] <= medium[0] <= large[0]
    assert small[1] <= medium[1] <= large[1]
    # the serial-Ocean effect: a working set beyond L2 misses hard
    assert large[1] > 0.5


# --------------------------------------------------------------------- #
# write buffer
# --------------------------------------------------------------------- #
def test_write_buffer_no_stall_when_drain_keeps_up():
    wb = WriteBufferModel(ArchParams())
    # one write per 20 cycles drains easily at one per 10
    burst = WriteBurst(writes=50, duration=1000)
    assert wb.stall_cycles(burst) == 0


def test_write_buffer_stalls_when_saturated():
    wb = WriteBufferModel(ArchParams())
    # one write per cycle cannot drain at one per 10 cycles
    burst = WriteBurst(writes=1000, duration=1000)
    assert wb.stall_cycles(burst) > 0
    assert 0 < wb.stall_fraction(burst) <= 1.0


def test_write_buffer_headroom_absorbs_small_bursts():
    wb = WriteBufferModel(ArchParams())
    headroom = wb.headroom()
    assert headroom == ArchParams().wb_entries - ArchParams().wb_retire_at
    # a burst whose backlog stays within headroom does not stall
    burst = WriteBurst(writes=headroom, duration=1)
    assert wb.stall_cycles(burst) == 0


def test_write_burst_validation():
    with pytest.raises(ValueError):
        WriteBurst(writes=-1, duration=10)
    with pytest.raises(ValueError):
        WriteBurst(writes=1, duration=0)
