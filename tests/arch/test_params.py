"""Unit tests for architecture/communication parameter handling."""

import dataclasses

import pytest

from repro.arch import (
    ACHIEVABLE,
    BEST,
    HOST_OVERHEAD_SWEEP,
    INTERRUPT_COST_SWEEP,
    IO_BANDWIDTH_SWEEP,
    NI_OCCUPANCY_SWEEP,
    PAGE_SIZE_SWEEP,
    PARAMETER_RANGES,
    PROCS_PER_NODE_SWEEP,
    TOTAL_PROCESSORS,
    ArchParams,
    CommParams,
    CommRegime,
)


def test_achievable_defaults_match_table1():
    assert ACHIEVABLE.host_overhead == 500
    assert ACHIEVABLE.io_bus_mb_per_mhz == 0.5
    assert ACHIEVABLE.ni_occupancy == 500
    assert ACHIEVABLE.interrupt_cost == 500
    assert ACHIEVABLE.page_size == 4096
    assert ACHIEVABLE.procs_per_node == 4


def test_best_values_are_extremes_of_ranges():
    assert BEST.host_overhead == 0
    assert BEST.ni_occupancy == 0
    assert BEST.interrupt_cost == 0
    # best I/O bandwidth equals the memory bus bandwidth
    assert BEST.io_bus_mb_per_mhz == pytest.approx(ArchParams().membus_bytes_per_cycle)


def test_io_bytes_per_cycle_equals_mb_per_mhz():
    cp = CommParams(io_bus_mb_per_mhz=0.5)
    assert cp.io_bytes_per_cycle == 0.5
    cp = CommParams(io_bus_mb_per_mhz=2.0)
    assert cp.io_bytes_per_cycle == 2.0


def test_null_interrupt_is_twice_per_side_cost():
    assert CommParams(interrupt_cost=500).null_interrupt_cycles == 1000
    assert CommParams(interrupt_cost=0).null_interrupt_cycles == 0


def test_sweep_points_lie_within_ranges():
    lo, hi = PARAMETER_RANGES["host_overhead"]
    assert all(lo <= v <= hi for v in HOST_OVERHEAD_SWEEP)
    lo, hi = PARAMETER_RANGES["ni_occupancy"]
    assert all(lo <= v <= hi for v in NI_OCCUPANCY_SWEEP)
    lo, hi = PARAMETER_RANGES["io_bus_mb_per_mhz"]
    assert all(lo <= v <= hi for v in IO_BANDWIDTH_SWEEP)
    lo, hi = PARAMETER_RANGES["interrupt_cost"]
    assert all(lo <= v <= hi for v in INTERRUPT_COST_SWEEP)
    lo, hi = PARAMETER_RANGES["page_size"]
    assert all(lo <= v <= hi for v in PAGE_SIZE_SWEEP)


def test_sweep_counts_match_figure_captions():
    assert len(HOST_OVERHEAD_SWEEP) == 5  # Figure 5: five points
    assert len(NI_OCCUPANCY_SWEEP) == 6  # Figure 6: six points
    assert len(IO_BANDWIDTH_SWEEP) == 4  # Figure 7: four points
    assert len(INTERRUPT_COST_SWEEP) == 7  # Figure 9: seven bars
    assert len(PAGE_SIZE_SWEEP) == 5  # Figure 12: five points
    assert len(PROCS_PER_NODE_SWEEP) == 4  # Figure 13: four clusterings


def test_clusterings_divide_total_processors():
    assert all(TOTAL_PROCESSORS % c == 0 for c in PROCS_PER_NODE_SWEEP)


def test_comm_params_validation():
    with pytest.raises(ValueError):
        CommParams(host_overhead=-1)
    with pytest.raises(ValueError):
        CommParams(io_bus_mb_per_mhz=0)
    with pytest.raises(ValueError):
        CommParams(page_size=3000)  # not a power of two
    with pytest.raises(ValueError):
        CommParams(procs_per_node=0)
    with pytest.raises(ValueError):
        CommParams(interrupt_scheme="bogus")


def test_comm_regime_validation_names_field_and_choices():
    with pytest.raises(ValueError, match=r"unknown comm_regime 'verbs'.*baseline.*rdma"):
        CommParams(comm_regime="verbs")
    with pytest.raises(ValueError):
        CommParams(rdma_post_cycles=-1)


def test_comm_regime_enum_normalizes_to_string():
    cp = CommParams(comm_regime=CommRegime.RDMA)
    assert cp.comm_regime == "rdma"
    assert cp.is_rdma


def test_rdma_regime_collapses_host_terms():
    base = CommParams(host_overhead=500, interrupt_cost=500)
    assert not base.is_rdma
    assert base.send_post_cycles == 500
    assert base.effective_interrupt_cost == 500
    rdma = base.replace(comm_regime="rdma", rdma_post_cycles=50)
    assert rdma.is_rdma
    assert rdma.send_post_cycles == 50
    assert rdma.effective_interrupt_cost == 0


def test_replace_returns_new_frozen_instance():
    cp = ACHIEVABLE.replace(interrupt_cost=2000)
    assert cp.interrupt_cost == 2000
    assert ACHIEVABLE.interrupt_cost == 500
    with pytest.raises(dataclasses.FrozenInstanceError):
        cp.interrupt_cost = 1  # type: ignore[misc]


def test_arch_params_cycles_per_us():
    assert ArchParams().cycles_per_us() == 200
