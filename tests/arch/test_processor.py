"""Unit tests for the processor model and interrupt stealing."""

import pytest

from repro.arch import ArchParams, MemoryBus, Processor
from repro.sim import Simulator


def make_cpu(sim, with_bus=True):
    bus = MemoryBus(sim, ArchParams()) if with_bus else None
    return Processor(sim, global_id=0, cpu_index=0, bus=bus)


def test_busy_advances_time_and_charges_category():
    sim = Simulator()
    cpu = make_cpu(sim)
    done = []

    def app():
        yield from cpu.busy(100, "compute")
        done.append(sim.now)

    sim.spawn(app())
    sim.run()
    assert done == [100]
    assert cpu.stats.time["compute"] == 100


def test_run_block_accounts_work_and_stall():
    sim = Simulator()
    cpu = make_cpu(sim)

    def app():
        yield from cpu.run_block(work_cycles=80, stall_cycles=20)

    sim.spawn(app())
    sim.run()
    assert cpu.stats.time["compute"] == 80
    assert cpu.stats.time["local_stall"] == 20
    assert sim.now == 100


def test_run_block_zero_length_is_noop():
    sim = Simulator()
    cpu = make_cpu(sim)

    def app():
        yield from cpu.run_block(0, 0)
        yield sim.timeout(1)

    sim.spawn(app())
    sim.run()
    assert cpu.stats.time["compute"] == 0


def test_handler_steals_time_from_app():
    sim = Simulator()
    cpu = make_cpu(sim)
    finish = []

    def app():
        yield from cpu.busy(1000, "compute")
        finish.append(sim.now)

    def handler_body():
        yield sim.timeout(300)

    def irq():
        yield sim.timeout(100)
        yield from cpu.run_handler(handler_body())

    sim.spawn(app())
    sim.spawn(irq())
    sim.run()
    # app needs 1000 CPU cycles; 300 were stolen at t=100
    assert finish == [1300]
    assert cpu.stats.time["handler"] == 300
    assert cpu.stats.time["compute"] == 1000


def test_back_to_back_handlers_serialize_and_both_steal():
    sim = Simulator()
    cpu = make_cpu(sim)
    finish = []
    handler_times = []

    def app():
        yield from cpu.busy(1000, "compute")
        finish.append(sim.now)

    def handler_body(dur):
        yield sim.timeout(dur)
        handler_times.append(sim.now)

    def irq(start, dur):
        yield sim.timeout(start)
        yield from cpu.run_handler(handler_body(dur))

    sim.spawn(app())
    sim.spawn(irq(100, 200))
    sim.spawn(irq(150, 100))  # arrives while first handler runs
    sim.run()
    # handlers run 100-300 and 300-400; app loses 300 cycles
    assert handler_times == [300, 400]
    assert finish == [1300]
    assert cpu.stats.time["handler"] == 300


def test_handler_during_idle_does_not_delay_later_compute_extra():
    sim = Simulator()
    cpu = make_cpu(sim)
    finish = []

    def app():
        yield sim.timeout(500)  # idle (e.g. blocked on remote data)
        yield from cpu.busy(100, "compute")
        finish.append(sim.now)

    def irq():
        yield from cpu.run_handler(iter([]))  # zero-length body

    def irq2():
        yield sim.timeout(100)
        yield from cpu.run_handler(_delay(sim, 50))

    sim.spawn(app())
    sim.spawn(irq())
    sim.spawn(irq2())
    sim.run()
    # handler at t=100..150 overlapped the app's idle wait, not its compute
    assert finish == [600]


def _delay(sim, cycles):
    yield sim.timeout(cycles)


def test_compute_waits_if_handler_active_at_start():
    sim = Simulator()
    cpu = make_cpu(sim)
    finish = []

    def irq():
        yield from cpu.run_handler(_delay(sim, 200))

    def app():
        yield sim.timeout(50)  # handler started at 0, still active
        yield from cpu.busy(100, "compute")
        finish.append(sim.now)

    sim.spawn(irq())
    sim.spawn(app())
    sim.run()
    # app cannot start until t=200, finishes at 300
    assert finish == [300]


def test_handler_return_value():
    sim = Simulator()
    cpu = make_cpu(sim)
    results = []

    def body():
        yield sim.timeout(10)
        return "page-data"

    def irq():
        result = yield from cpu.run_handler(body())
        results.append(result)

    sim.spawn(irq())
    sim.run()
    assert results == ["page-data"]


def test_run_block_with_bus_contention_inflates_stall():
    sim = Simulator()
    arch = ArchParams()
    bus = MemoryBus(sim, arch)
    cpu_a = Processor(sim, 0, 0, bus=bus)
    cpu_b = Processor(sim, 1, 1, bus=bus)
    finish = {}

    def app(cpu, tag):
        # heavy bus demand from both processors simultaneously
        yield from cpu.run_block(work_cycles=1000, stall_cycles=1000, bus_bytes=1800)
        finish[tag] = sim.now

    sim.spawn(app(cpu_a, "a"))
    sim.spawn(app(cpu_b, "b"))
    sim.run()
    solo_sim = Simulator()
    solo_bus = MemoryBus(solo_sim, arch)
    solo_cpu = Processor(solo_sim, 0, 0, bus=solo_bus)
    solo_done = []

    def solo_app():
        yield from solo_cpu.run_block(1000, 1000, 1800)
        solo_done.append(solo_sim.now)

    solo_sim.spawn(solo_app())
    solo_sim.run()
    # The multiplier is sampled at block start, so the first block to start
    # ("a") may see an empty bus; the later one must observe contention.
    assert finish["b"] > solo_done[0]
    assert max(finish.values()) > solo_done[0]


def test_wait_for_charges_category():
    sim = Simulator()
    cpu = make_cpu(sim)
    ev = sim.event()
    got = []

    def app():
        value = yield from cpu.wait_for(ev, "data_wait")
        got.append(value)

    sim.spawn(app())
    sim.schedule(250, ev.succeed, "page")
    sim.run()
    assert got == ["page"]
    assert cpu.stats.time["data_wait"] == 250


def test_stats_counters_and_merge():
    from repro.arch import ProcessorStats

    a = ProcessorStats()
    b = ProcessorStats()
    a.add("compute", 10)
    a.count("page_fetches", 2)
    b.add("compute", 5)
    b.add("handler", 7)
    b.count("page_fetches", 1)
    b.count("messages", 4)
    m = a.merged_with(b)
    assert m.time["compute"] == 15
    assert m.time["handler"] == 7
    assert m.get_count("page_fetches") == 3
    assert m.get_count("messages") == 4
    assert m.busy_cycles == 22


def test_stats_validation():
    from repro.arch import ProcessorStats

    s = ProcessorStats()
    with pytest.raises(KeyError):
        s.add("bogus", 1)
    with pytest.raises(ValueError):
        s.add("compute", -1)
