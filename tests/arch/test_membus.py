"""Unit tests for the memory-bus contention model."""

import pytest

from repro.arch import ArchParams, MemoryBus
from repro.sim import Simulator


@pytest.fixture
def bus():
    return MemoryBus(Simulator(), ArchParams())


def test_uncontended_transfer_latency(bus):
    arch = ArchParams()
    lat = bus.transfer_latency(4096, kind="l2")
    expected = arch.membus_arb_cycles + 4096 / arch.membus_bytes_per_cycle
    assert lat == pytest.approx(expected, abs=2)


def test_transfers_queue_fcfs(bus):
    lat1 = bus.transfer_latency(4096, kind="l2")
    lat2 = bus.transfer_latency(4096, kind="l2")
    assert lat2 > lat1  # second waits behind the first


def test_unknown_bus_class_rejected(bus):
    with pytest.raises(ValueError):
        bus.transfer_latency(64, kind="dma")


def test_negative_size_rejected(bus):
    with pytest.raises(ValueError):
        bus.transfer_latency(-1)


def test_priority_class_cost_asymmetry(bus):
    """NI-in (lowest priority) pays more arbitration than NI-out."""
    b1 = MemoryBus(Simulator(), ArchParams())
    b2 = MemoryBus(Simulator(), ArchParams())
    assert b2.transfer_latency(64, kind="ni_in") > b1.transfer_latency(64, kind="ni_out")


def test_background_load_slows_transfers():
    arch = ArchParams()
    quiet = MemoryBus(Simulator(), arch)
    loaded = MemoryBus(Simulator(), arch)
    loaded.register_background(arch.membus_bytes_per_cycle * 0.8)
    assert loaded.transfer_latency(4096) > quiet.transfer_latency(4096)


def test_stall_multiplier_grows_with_background():
    arch = ArchParams()
    bus = MemoryBus(Simulator(), arch)
    assert bus.stall_multiplier(own_rate=0.0, block_cycles=1000) == pytest.approx(1.0)
    bus.register_background(arch.membus_bytes_per_cycle * 0.5)
    m_half = bus.stall_multiplier(own_rate=0.0, block_cycles=1000)
    assert m_half == pytest.approx(2.0)
    bus.register_background(arch.membus_bytes_per_cycle * 0.4)
    m_ninety = bus.stall_multiplier(own_rate=0.0, block_cycles=1000)
    assert m_ninety > m_half


def test_own_rate_excluded_from_multiplier():
    arch = ArchParams()
    bus = MemoryBus(Simulator(), arch)
    rate = arch.membus_bytes_per_cycle * 0.5
    bus.register_background(rate)
    # A block that itself registered all the load sees no contention.
    assert bus.stall_multiplier(own_rate=rate, block_cycles=1000) == pytest.approx(1.0)


def test_multiplier_capped():
    arch = ArchParams()
    bus = MemoryBus(Simulator(), arch)
    bus.register_background(arch.membus_bytes_per_cycle * 50)
    m = bus.stall_multiplier(own_rate=0.0, block_cycles=1000)
    assert m == pytest.approx(1.0 / (1.0 - 0.95))


def test_unregister_restores_quiet_bus():
    arch = ArchParams()
    bus = MemoryBus(Simulator(), arch)
    bus.register_background(1.0)
    bus.unregister_background(1.0)
    assert bus.background_rate == 0.0
    assert bus.stall_multiplier(0.0, 1000) == pytest.approx(1.0)


def test_unregister_underflow_raises():
    bus = MemoryBus(Simulator(), ArchParams())
    with pytest.raises(RuntimeError):
        bus.unregister_background(1.0)


def test_queue_backlog_contributes_to_block_utilization():
    arch = ArchParams()
    bus = MemoryBus(Simulator(), arch)
    bus.transfer_latency(64 * 1024)  # large pending DMA burst
    rho = bus.utilization_for_block(own_rate=0.0, block_cycles=1000)
    assert rho > 0.5


def test_transfer_statistics(bus):
    bus.transfer_latency(100)
    bus.transfer_latency(200)
    assert bus.transfer_count == 2
    assert bus.transfer_bytes == 300
