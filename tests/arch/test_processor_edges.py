"""Edge-case tests for processor time accounting."""

import pytest

from repro.arch import ArchParams, MemoryBus, Processor
from repro.sim import Simulator


def test_zero_cycle_busy_is_instant():
    sim = Simulator()
    cpu = Processor(sim, 0)
    done = []

    def app():
        yield from cpu.busy(0, "compute")
        done.append(sim.now)

    sim.spawn(app())
    sim.run()
    assert done == [0]


def test_run_block_without_bus():
    sim = Simulator()
    cpu = Processor(sim, 0, bus=None)

    def app():
        yield from cpu.run_block(100, 50, bus_bytes=1000)

    sim.spawn(app())
    sim.run()
    assert sim.now == 150
    assert cpu.stats.time["local_stall"] == 50


def test_wait_cycles_charges_but_does_not_occupy():
    """wait_cycles models blocked (not CPU-busy) time: a concurrent
    handler does not extend it."""
    sim = Simulator()
    cpu = Processor(sim, 0)
    done = []

    def app():
        yield from cpu.wait_cycles(1000, "barrier_wait")
        done.append(sim.now)

    def irq():
        yield from cpu.run_handler(_delay(sim, 400))

    sim.spawn(app())
    sim.spawn(irq())
    sim.run()
    assert done == [1000]
    assert cpu.stats.time["barrier_wait"] == 1000
    assert cpu.stats.time["handler"] == 400


def _delay(sim, cycles):
    yield sim.timeout(cycles)


def test_nested_handler_time_not_double_counted():
    """Two sequential handlers: handler time equals the sum of their
    durations, not more."""
    sim = Simulator()
    cpu = Processor(sim, 0)

    def irq(dur):
        yield from cpu.run_handler(_delay(sim, dur))

    sim.spawn(irq(300))
    sim.spawn(irq(200))
    sim.run()
    assert cpu.stats.time["handler"] == 500


def test_many_interleaved_handlers_exact_steal():
    sim = Simulator()
    cpu = Processor(sim, 0)
    finish = []

    def app():
        yield from cpu.busy(10_000, "compute")
        finish.append(sim.now)

    def irq(start, dur):
        yield sim.timeout(start)
        yield from cpu.run_handler(_delay(sim, dur))

    sim.spawn(app())
    total = 0
    for start, dur in ((100, 50), (500, 300), (501, 40), (9000, 1000)):
        sim.spawn(irq(start, dur))
        total += dur
    sim.run()
    assert finish == [10_000 + total]


def test_background_registration_balanced_after_block():
    sim = Simulator()
    bus = MemoryBus(sim, ArchParams())
    cpu = Processor(sim, 0, bus=bus)

    def app():
        yield from cpu.run_block(1000, 200, bus_bytes=800)

    sim.spawn(app())
    sim.run()
    assert bus.background_rate == pytest.approx(0.0)


def test_finish_time_initially_none():
    sim = Simulator()
    cpu = Processor(sim, 0)
    assert cpu.finish_time is None
