"""Fault × protocol oracle grid: reliable delivery must mask wire faults
from the consistency level, so the oracle stays silent under drops,
duplicates and delay spikes (and their combination)."""

import pytest

from repro.net.faults import FaultParams
from tests.verify.workloads import (
    assert_oracle_clean,
    base_config,
    lock_mix,
    migratory,
    producer_consumer,
    run_verified,
)

FAULT_POINTS = {
    "clean": FaultParams(),
    "drop": FaultParams(drop_prob=0.05, retry_timeout=20_000),
    "dup": FaultParams(dup_prob=0.1),
    "delay-spike": FaultParams(delay_spike_prob=0.2, delay_spike_cycles=5_000),
    "drop+dup": FaultParams(drop_prob=0.03, dup_prob=0.03, retry_timeout=20_000),
}


def _mixed_trace():
    """Locks, barriers and page sharing in one workload."""
    a = migratory(2, 3, 16, 500)
    b = producer_consumer(2, 3, 16, 500)
    c = lock_mix(4, 4, 8, 500)
    events = [
        list(a.events[p]) + list(b.events[p]) + list(c.events[p])
        for p in range(a.n_procs)
    ]
    # distinct barrier id spaces per segment are unnecessary: the
    # BarrierManager keys episodes by per-proc visit counts
    from tests.verify.workloads import make_trace

    return make_trace(events, "mixed")


@pytest.mark.parametrize("protocol", ["hlrc", "aurc"])
@pytest.mark.parametrize("fault_name", sorted(FAULT_POINTS))
def test_oracle_clean_under_faults(protocol, fault_name):
    faults = FAULT_POINTS[fault_name]
    config = base_config(protocol, ppn=2, faults=faults)
    result, vlog = run_verified(_mixed_trace(), config)
    assert_oracle_clean(result, f"{protocol}/{fault_name}")
    assert len(vlog.records) > 0
    if faults.enabled and faults.drop_prob:
        # the grid actually exercised the recovery path
        assert result.meta.get("messages_lost", 0) + result.meta.get(
            "faults_dropped", 0
        ) >= 0


@pytest.mark.parametrize("protocol", ["hlrc", "aurc"])
def test_dropped_messages_actually_occurred(protocol):
    """Guard against a vacuously-clean grid: drops must really happen."""
    config = base_config(protocol, ppn=2, faults=FAULT_POINTS["drop"])
    result, _ = run_verified(_mixed_trace(), config)
    assert_oracle_clean(result)
    lost = result.meta.get("messages_lost", 0.0)
    assert lost > 0, "drop grid produced zero dropped messages"
