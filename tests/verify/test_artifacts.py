"""Failure artifacts: dump on violation, config round-trip, CLI replay."""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.protocol.base import NodeMemoryState
from repro.verify.artifacts import (
    config_from_dict,
    dump_violation_artifact,
    load_artifact,
    replay_command,
    trace_from_artifact,
    violations_dir,
)
from tests.verify.workloads import base_config, migratory, run_verified


def _broken_run(monkeypatch, protocol="hlrc"):
    """A run guaranteed to violate: invalidations silently skipped."""
    monkeypatch.setattr(NodeMemoryState, "invalidate", lambda self, pages: 0)
    trace = migratory(2, 3, 16, 500)
    return run_verified(trace, base_config(protocol, ppn=1)), trace


def test_violation_dumps_replayable_artifact(monkeypatch, tmp_path):
    out = tmp_path / "violations"
    monkeypatch.setenv("REPRO_VIOLATION_DIR", str(out))
    (result, _vlog), _trace = _broken_run(monkeypatch)
    assert result.violations
    artifacts = list(out.glob("*.json"))
    assert len(artifacts) == 1
    payload = load_artifact(artifacts[0])
    assert payload["schema"] == 1
    assert payload["app"]["name"] == "migratory"
    assert payload["violations"], "artifact lost the violations"
    assert payload["verify_event_tail"], "artifact lost the event context"
    assert payload["replay"] == replay_command(artifacts[0])
    assert "--replay" in payload["replay"]


def test_artifact_replay_detects_and_clears(monkeypatch, tmp_path):
    out = tmp_path / "violations"
    monkeypatch.setenv("REPRO_VIOLATION_DIR", str(out))
    _ = _broken_run(monkeypatch)
    path = str(next(out.glob("*.json")))
    # mutant still active -> replay re-detects the violation
    assert main(["verify", "--replay", path]) == 1
    # mutant removed -> the same artifact replays clean
    monkeypatch.undo()
    monkeypatch.setenv("REPRO_VIOLATION_DIR", str(out))
    assert main(["verify", "--replay", path]) == 0


def test_config_round_trips_through_artifact_dict(monkeypatch, tmp_path):
    from repro.net.faults import FaultParams

    config = base_config(
        "aurc",
        ppn=2,
        host_overhead=500,
        faults=FaultParams(drop_prob=0.05, retry_timeout=20_000),
    ).replace(verify=True)
    assert config_from_dict(dataclasses.asdict(config)) == config
    # and through actual JSON (tuples become lists on the way)
    round_tripped = config_from_dict(
        json.loads(json.dumps(dataclasses.asdict(config)))
    )
    assert round_tripped == config


def test_violation_dir_env_disables_dumping(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_VIOLATION_DIR", "0")
    assert violations_dir() is None
    (result, vlog), trace = _broken_run(monkeypatch)
    assert result.violations
    assert (
        dump_violation_artifact(trace, base_config("hlrc"), result.violations, vlog)
        is None
    )


def test_trace_from_artifact_requires_inline_events(tmp_path):
    with pytest.raises(ValueError, match="no inline trace"):
        trace_from_artifact({"app": {"name": "x"}, "events_omitted": 10**6})


def test_load_artifact_rejects_non_artifacts(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("[1, 2, 3]")
    with pytest.raises(ValueError, match="not a violation artifact"):
        load_artifact(bogus)
    with pytest.raises(ValueError, match="cannot read"):
        load_artifact(tmp_path / "missing.json")
