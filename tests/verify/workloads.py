"""Synthetic sharing-pattern workloads + Hypothesis strategies.

Small, structurally diverse traces that exercise the protocol state
machines in the ways the paper's applications do: migratory data under a
lock, producer/consumer across barriers, false sharing (many writers to
the same pages), and mixed lock/barrier critical sections.  All builders
are deterministic functions of their arguments — Hypothesis supplies the
arguments, so shrinking works on sizes/rounds rather than raw event
lists.

Every trace ends with a barrier so both protocols flush all dirt before
the run ends (matching the real applications).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from hypothesis import strategies as st

from repro.apps.base import AppTrace
from repro.arch.params import CommParams
from repro.core import ClusterConfig, run_simulation
from repro.net.faults import FaultParams
from repro.verify import VerifyLog

N_PROCS = 4


def make_trace(events: List[List[Tuple]], name: str = "synthetic") -> AppTrace:
    trace = AppTrace(
        name=name,
        n_procs=len(events),
        events=[list(evs) for evs in events],
        serial_cycles=100_000,
        shared_bytes=len(events) * 4096,
    )
    trace.validate()
    return trace


def _compute(proc: int, cycles: int) -> Tuple:
    # Stagger per-proc compute so processors hit synchronization at
    # different times (more interesting interleavings than lockstep).
    work = cycles * (1 + proc % 3)
    return ("c", work, work // 10, 64)


def _bar(events: List[List[Tuple]], barrier_id: int) -> None:
    for evs in events:
        evs.append(("b", barrier_id))


def migratory(rounds: int, n_pages: int, words: int, compute: int,
              n_procs: int = N_PROCS) -> AppTrace:
    """A data structure migrates proc-to-proc under one lock."""
    events: List[List[Tuple]] = [[] for _ in range(n_procs)]
    bar = 0
    for _ in range(rounds):
        for p in range(n_procs):
            evs = events[p]
            if compute:
                evs.append(_compute(p, compute))
            evs.append(("a", 0))
            for page in range(n_pages):
                evs.append(("r", page))
                evs.append(("w", page, words, 1))
            evs.append(("l", 0))
        _bar(events, bar)
        bar += 1
    _bar(events, bar)
    return make_trace(events, "migratory")


def producer_consumer(rounds: int, n_pages: int, words: int, compute: int,
                      n_procs: int = N_PROCS) -> AppTrace:
    """A rotating producer writes; everyone else reads after a barrier."""
    events: List[List[Tuple]] = [[] for _ in range(n_procs)]
    bar = 0
    for r in range(rounds):
        producer = r % n_procs
        for p in range(n_procs):
            evs = events[p]
            if compute:
                evs.append(_compute(p, compute))
            if p == producer:
                for page in range(n_pages):
                    evs.append(("w", page, words, 1))
        _bar(events, bar)
        bar += 1
        for p in range(n_procs):
            if p != producer:
                for page in range(n_pages):
                    events[p].append(("r", page))
        _bar(events, bar)
        bar += 1
    return make_trace(events, "producer_consumer")


def false_sharing(rounds: int, n_pages: int, words: int, compute: int,
                  n_procs: int = N_PROCS) -> AppTrace:
    """Every proc writes (notionally disjoint words of) the same pages."""
    events: List[List[Tuple]] = [[] for _ in range(n_procs)]
    bar = 0
    for _ in range(rounds):
        for p in range(n_procs):
            evs = events[p]
            if compute:
                evs.append(_compute(p, compute))
            for page in range(n_pages):
                evs.append(("w", page, words, 1 + p % 2))
        _bar(events, bar)
        bar += 1
        for p in range(n_procs):
            for page in range(n_pages):
                events[p].append(("r", page))
        _bar(events, bar)
        bar += 1
    return make_trace(events, "false_sharing")


def lock_mix(rounds: int, n_pages: int, words: int, compute: int,
             n_procs: int = N_PROCS) -> AppTrace:
    """Critical sections over several locks, barrier every other round."""
    n_locks = max(1, n_pages // 2)
    events: List[List[Tuple]] = [[] for _ in range(n_procs)]
    bar = 0
    for r in range(rounds):
        for p in range(n_procs):
            evs = events[p]
            if compute:
                evs.append(_compute(p, compute))
            page = (r * 7 + p * 3) % n_pages
            lock = page % n_locks
            evs.append(("a", lock))
            evs.append(("r", page))
            evs.append(("w", page, words, 1))
            evs.append(("l", lock))
        if r % 2 == 1:
            _bar(events, bar)
            bar += 1
    _bar(events, bar)
    return make_trace(events, "lock_mix")


PATTERNS = {
    "migratory": migratory,
    "producer_consumer": producer_consumer,
    "false_sharing": false_sharing,
    "lock_mix": lock_mix,
}
#: patterns whose synchronization is barriers only — deterministic event
#: structure under any timing (no lock-arbitration order dependence),
#: which metamorphic monotonicity tests require
BARRIER_ONLY_PATTERNS = ("producer_consumer", "false_sharing")


@st.composite
def trace_strategy(draw, patterns: Tuple[str, ...] = tuple(PATTERNS)) -> AppTrace:
    pattern = draw(st.sampled_from(sorted(patterns)))
    rounds = draw(st.integers(min_value=1, max_value=3))
    n_pages = draw(st.integers(min_value=1, max_value=6))
    words = draw(st.integers(min_value=1, max_value=64))
    compute = draw(st.sampled_from([0, 500, 5000]))
    return PATTERNS[pattern](rounds, n_pages, words, compute)


#: a handful of comm-parameter corners from the paper's sweep axes
comm_point_strategy = st.fixed_dictionaries(
    {
        "host_overhead": st.sampled_from([0, 500, 3000]),
        "ni_occupancy": st.sampled_from([100, 1000]),
        "interrupt_cost": st.sampled_from([100, 2000]),
        "io_bus_mb_per_mhz": st.sampled_from([0.125, 0.5, 2.0]),
    }
)

fault_point_strategy = st.sampled_from(
    [
        FaultParams(),
        FaultParams(drop_prob=0.05, retry_timeout=20_000),
        FaultParams(dup_prob=0.1),
        FaultParams(delay_spike_prob=0.2, delay_spike_cycles=5_000),
        FaultParams(drop_prob=0.03, dup_prob=0.03, retry_timeout=20_000),
    ]
)


def base_config(
    protocol: str,
    ppn: int = 2,
    faults: Optional[FaultParams] = None,
    **comm_kw,
) -> ClusterConfig:
    return ClusterConfig(
        comm=CommParams(procs_per_node=ppn, **comm_kw),
        total_procs=N_PROCS,
        protocol=protocol,
        home_policy="round_robin",
        faults=faults if faults is not None else FaultParams(),
    )


def run_verified(trace: AppTrace, config: ClusterConfig):
    """Run with an explicit VerifyLog; returns (result, log)."""
    vlog = VerifyLog()
    result = run_simulation(trace, config, verify_log=vlog)
    return result, vlog


def assert_oracle_clean(result, context: str = "") -> None:
    if result.violations:
        lines = [f"oracle violations ({context}):"]
        lines += [f"  {v}" for v in result.violations[:10]]
        raise AssertionError("\n".join(lines))
