"""Differential + metamorphic tests for the RDMA communication regime.

The regime changes *how* a page travels (NI-served remote read, cheap
descriptor post, no interrupts) but must never change *what* the memory
ends up holding.  Three independent checks pin that:

* on the real fft/radix traces, the per-page version history under
  ``comm_regime="rdma"`` is identical to the baseline regime and to the
  zero-cost ideal model, for both protocols, with the happens-before
  oracle riding along;
* the same holds under seeded fault injection — a lost or duplicated
  READ/REPLY must be absorbed by the reliable-delivery layer without
  perturbing ordering;
* metamorphically, on timing-deterministic barrier-only workloads the
  end-to-end time is monotone non-increasing as the host terms the RDMA
  regime eliminates are dialed down by hand — (6000, 2000) → (500, 500)
  → (0, 0) host-overhead/interrupt cycles — and a zero-post RDMA run
  beats even the zero-cost baseline, because remote reads also skip the
  home-side handler occupancy no CommParams knob can remove.
"""

from hypothesis import given, settings

from repro.apps import get_app
from repro.core import ClusterConfig
from repro.protocol.collectives import COLLECTIVES
from repro.verify.ideal import ideal_interval_sets, interval_sets_from_log
from tests.verify.workloads import (
    BARRIER_ONLY_PATTERNS,
    assert_oracle_clean,
    base_config,
    fault_point_strategy,
    run_verified,
    trace_strategy,
)

REGIMES = ("baseline", "rdma")


def test_real_apps_identical_versions_across_regimes():
    for app_name in ("fft", "radix"):
        cfg = ClusterConfig()
        trace = get_app(
            app_name, page_size=cfg.comm.page_size, scale=0.05, seed=cfg.seed
        )
        ideal = ideal_interval_sets(trace)
        for protocol in ("hlrc", "aurc"):
            for regime in REGIMES:
                point = cfg.replace(protocol=protocol).with_comm(
                    comm_regime=regime
                )
                context = f"{app_name}/{protocol}/{regime}"
                result, vlog = run_verified(trace, point)
                assert_oracle_clean(result, context)
                assert interval_sets_from_log(vlog.records) == ideal, context


def test_full_scenario_matrix_oracle_clean():
    """The acceptance matrix: {hlrc, aurc} x {baseline, rdma} x
    {flat, tree, dissemination} on the pinned fft point — zero oracle
    violations and the ideal version history everywhere."""
    cfg = ClusterConfig()
    trace = get_app("fft", page_size=cfg.comm.page_size, scale=0.05, seed=cfg.seed)
    ideal = ideal_interval_sets(trace)
    for protocol in ("hlrc", "aurc"):
        for regime in REGIMES:
            for collective in COLLECTIVES:
                point = cfg.replace(
                    protocol=protocol, collective=collective
                ).with_comm(comm_regime=regime)
                context = f"fft/{protocol}/{regime}/{collective}"
                result, vlog = run_verified(trace, point)
                assert_oracle_clean(result, context)
                assert interval_sets_from_log(vlog.records) == ideal, context


@given(trace=trace_strategy(), faults=fault_point_strategy)
@settings(max_examples=20, deadline=None)
def test_rdma_version_history_survives_faults(trace, faults):
    """Dropped/duplicated READ and REPLY messages must be retransmitted
    or deduplicated without changing the version history."""
    ideal = ideal_interval_sets(trace)
    for protocol in ("hlrc", "aurc"):
        context = f"{trace.name}/{protocol}/rdma/faulty"
        result, vlog = run_verified(
            trace,
            base_config(protocol, faults=faults, comm_regime="rdma"),
        )
        assert_oracle_clean(result, context)
        assert interval_sets_from_log(vlog.records) == ideal, context


#: host-cost ladder, worst to best; the RDMA regime structurally removes
#: both axes, so hand-dialing them down must never slow a run
LADDER = (
    {"host_overhead": 6000, "interrupt_cost": 2000},
    {"host_overhead": 500, "interrupt_cost": 500},
    {"host_overhead": 0, "interrupt_cost": 0},
)


@given(trace=trace_strategy(patterns=BARRIER_ONLY_PATTERNS))
@settings(max_examples=15, deadline=None)
def test_total_time_monotone_as_host_costs_vanish(trace):
    """Metamorphic: on barrier-only (timing-deterministic) workloads,
    cheaper host terms never cost cycles, and zero-post RDMA is at least
    as fast as the best comm point the baseline regime can express."""
    cycles = []
    for comm_kw in LADDER:
        result, _ = run_verified(trace, base_config("hlrc", **comm_kw))
        assert_oracle_clean(result, f"{trace.name}/ladder/{comm_kw}")
        cycles.append(result.total_cycles)
    rdma_result, _ = run_verified(
        trace,
        base_config(
            "hlrc",
            host_overhead=0,
            interrupt_cost=0,
            comm_regime="rdma",
            rdma_post_cycles=0,
        ),
    )
    assert_oracle_clean(rdma_result, f"{trace.name}/ladder/rdma")
    cycles.append(rdma_result.total_cycles)
    for worse, better in zip(cycles, cycles[1:]):
        assert better <= worse, (trace.name, cycles)
