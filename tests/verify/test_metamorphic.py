"""Metamorphic properties from the paper's sensitivity sweeps.

Restricted to barrier-only sharing patterns on one proc per node: without
lock arbitration (whose grant *order* may legitimately change with
timing) and without SMP fetch coalescing (whose fault accounting depends
on arrival timing), the epoch structure is deterministic, so:

* execution time is non-decreasing in host overhead and interrupt cost,
* execution time is non-increasing in I/O-bus bandwidth,
* page-fault and page-fetch counts are invariant under pure cost/latency
  changes (overhead, interrupt cost, wire latency).
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_app
from repro.core import ClusterConfig, run_simulation
from tests.verify.workloads import (
    BARRIER_ONLY_PATTERNS,
    assert_oracle_clean,
    base_config,
    run_verified,
    trace_strategy,
)

_protocols = st.sampled_from(["hlrc", "aurc"])


def _cycles(trace, protocol, **comm_kw) -> int:
    result, _ = run_verified(trace, base_config(protocol, ppn=1, **comm_kw))
    assert_oracle_clean(result, f"{trace.name}/{protocol}/{comm_kw}")
    return result.total_cycles


@given(trace=trace_strategy(patterns=BARRIER_ONLY_PATTERNS), protocol=_protocols)
@settings(max_examples=8)
def test_time_monotone_in_host_overhead(trace, protocol):
    cycles = [
        _cycles(trace, protocol, host_overhead=v) for v in (0, 500, 2500)
    ]
    assert cycles == sorted(cycles), f"host_overhead ladder not monotone: {cycles}"


@given(trace=trace_strategy(patterns=BARRIER_ONLY_PATTERNS))
@settings(max_examples=8)
def test_time_monotone_in_interrupt_cost(trace):
    # HLRC only: all of its communication is interrupt-driven RPC, so the
    # ladder is strictly monotone.  AURC's asynchronous update traffic
    # interacts with fetch-interrupt timing through bus contention, which
    # can legitimately shift cycles a fraction of a percent either way.
    cycles = [
        _cycles(trace, "hlrc", interrupt_cost=v) for v in (100, 500, 2500)
    ]
    assert cycles == sorted(cycles), f"interrupt_cost ladder not monotone: {cycles}"


@given(trace=trace_strategy(patterns=BARRIER_ONLY_PATTERNS), protocol=_protocols)
@settings(max_examples=8)
def test_time_antimonotone_in_io_bus_bandwidth(trace, protocol):
    cycles = [
        _cycles(trace, protocol, io_bus_mb_per_mhz=v) for v in (0.125, 0.5, 2.0)
    ]
    assert cycles == sorted(cycles, reverse=True), (
        f"io-bus bandwidth ladder not anti-monotone: {cycles}"
    )


@given(trace=trace_strategy(patterns=BARRIER_ONLY_PATTERNS), protocol=_protocols)
@settings(max_examples=8)
def test_fault_counts_invariant_under_pure_cost_changes(trace, protocol):
    counts = []
    for overhead, intr in ((0, 100), (500, 500), (3000, 2500)):
        result, _ = run_verified(
            trace,
            base_config(protocol, ppn=1, host_overhead=overhead, interrupt_cost=intr),
        )
        assert_oracle_clean(result)
        counts.append((result.counters.page_faults, result.counters.page_fetches))
    assert len(set(counts)) == 1, f"fault counts changed with pure costs: {counts}"


@given(trace=trace_strategy(patterns=BARRIER_ONLY_PATTERNS), protocol=_protocols)
@settings(max_examples=6)
def test_fault_counts_invariant_under_wire_latency(trace, protocol):
    counts = []
    for latency in (50, 200, 2000):
        config = base_config(protocol, ppn=1)
        config = config.replace(
            arch=dataclasses.replace(config.arch, link_latency_cycles=latency)
        )
        result, _ = run_verified(trace, config)
        assert_oracle_clean(result)
        counts.append((result.counters.page_faults, result.counters.page_fetches))
    assert len(set(counts)) == 1, f"fault counts changed with latency: {counts}"


def test_fft_time_monotone_in_host_overhead():
    """Fixed real-app spot check of the paper's central sensitivity axis."""
    cfg = ClusterConfig()
    trace = get_app("fft", page_size=cfg.comm.page_size, scale=0.05, seed=cfg.seed)
    cycles = []
    for overhead in (0, 500, 3000):
        result = run_simulation(
            trace, cfg.with_comm(host_overhead=overhead).replace(verify=True)
        )
        assert_oracle_clean(result, f"fft/o={overhead}")
        cycles.append(result.total_cycles)
    assert cycles == sorted(cycles), cycles
