"""In-suite slice of the golden-grid conformance gate.

The fft points of the pinned golden grid are re-run with the oracle
enabled: zero violations, and total cycles must equal the committed
snapshot exactly (verification is passive).  CI's verify-smoke job runs
the full grid via ``scripts/golden_regression.py --check --verify``;
this keeps a fast slice of the same guarantee inside ``pytest``.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

from repro.apps import get_app
from repro.core import run_simulation

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "golden_regression.py"
SNAPSHOT = REPO_ROOT / "scripts" / "golden_snapshot.json"


@pytest.fixture(scope="module")
def golden():
    spec = importlib.util.spec_from_file_location("golden_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("golden_regression", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def snapshot_points():
    return json.loads(SNAPSHOT.read_text(encoding="utf-8"))["points"]


def _fft_tags(golden):
    return [(tag, app, cfg) for tag, app, cfg in golden.grid_points() if app == "fft"]


def test_oracle_clean_and_passive_on_golden_fft_points(golden, snapshot_points):
    ran = 0
    for tag, app, cfg in _fft_tags(golden):
        cfg = cfg.replace(verify=True)
        trace = get_app(
            app, page_size=cfg.comm.page_size, scale=golden.SCALE, seed=cfg.seed
        )
        result = run_simulation(trace, cfg)
        assert result.violations == [], (tag, [str(v) for v in result.violations])
        assert result.meta["verify.events"] > 0, tag
        obs = golden.observe(result)
        expected = snapshot_points[tag]
        assert obs["total_cycles"] == expected["total_cycles"], tag
        assert golden.digest(obs) == expected["digest"], tag
        ran += 1
    assert ran == 5  # fft x {hlrc, aurc} x {clean, faulty} + flat-collective


def test_run_grid_verify_reports_no_failures_on_fft(golden, monkeypatch):
    # restrict the script's own entry point to the fft rows and make sure
    # its oracle plumbing agrees: no failures, snapshot digests intact
    monkeypatch.setattr(golden, "APPS", ("fft",))
    points, failures = golden.run_grid(verify=True)
    assert failures == []
    blessed = json.loads(SNAPSHOT.read_text(encoding="utf-8"))["points"]
    for tag, point in points.items():
        assert point == blessed[tag], tag
