"""Non-vacuousness proof: deliberately broken protocols must be flagged.

Each test monkeypatches one classic LRC bug into the engine — a dropped
write notice, a double-applied diff, a stale lock timestamp, a skipped
invalidation, a frozen vector clock — runs a small directed workload,
and asserts the oracle reports the matching violation kind.  The same
workload runs clean without the mutation (checked in
``test_baseline_is_clean``), so any flag is the mutant's doing.
"""

import pytest

from repro.protocol.base import NodeMemoryState
from repro.protocol.hlrc import HLRCProtocol
from repro.protocol.locks import LockManager
from repro.protocol.timestamps import IntervalLog, VectorClock
from tests.verify.workloads import base_config, make_trace, run_verified

N = 4


def _sensitivity_trace():
    """4 procs, 1 per node, round-robin homes (page p lives on node p%4).

    Page 0 is cached by P2, then written remotely by P1 (twin + diff +
    write notice), then re-read by P2 after a barrier — exercising fetch,
    diff, notice and invalidation paths.  A lock leg (P1, P2 through
    lock 0 on page 1) exercises the grant-timestamp path.
    """
    evs = [[] for _ in range(N)]
    for p in range(N):
        evs[p].append(("b", 0))
    evs[2].append(("r", 0))
    for p in range(N):
        evs[p].append(("b", 1))
    evs[1].append(("w", 0, 16, 1))
    for p in range(N):
        evs[p].append(("b", 2))
    evs[2].append(("r", 0))
    for p in (1, 2):
        evs[p].extend([("a", 0), ("r", 1), ("w", 1, 8, 1), ("l", 0)])
    for p in range(N):
        evs[p].append(("b", 3))
    return make_trace(evs, "sensitivity")


def _run(protocol="hlrc", tmp_path=None, monkeypatch=None):
    if monkeypatch is not None and tmp_path is not None:
        monkeypatch.setenv("REPRO_VIOLATION_DIR", str(tmp_path / "violations"))
    config = base_config(protocol, ppn=1)
    return run_verified(_sensitivity_trace(), config)


def _kinds(result):
    return {v.kind for v in result.violations}


@pytest.mark.parametrize("protocol", ["hlrc", "aurc"])
def test_baseline_is_clean(protocol):
    result, vlog = _run(protocol)
    assert result.violations == [], [str(v) for v in result.violations]
    assert len(vlog.records) > 0


def test_skipped_write_notice_is_flagged(monkeypatch, tmp_path):
    orig = IntervalLog.append

    def drop_page0_notice(self, proc, pages):
        return orig(self, proc, tuple(p for p in pages if p != 0))

    monkeypatch.setattr(IntervalLog, "append", drop_page0_notice)
    result, _ = _run(monkeypatch=monkeypatch, tmp_path=tmp_path)
    assert _kinds(result) & {"missing-invalidation", "stale-read"}, _kinds(result)


def test_double_applied_diff_is_flagged(monkeypatch, tmp_path):
    orig = HLRCProtocol._h_diff_apply

    def apply_twice(self, cpu, msg):
        if self.ctx.verify is not None:
            self._emit_diff_apply(cpu, msg)  # the double application
        yield from orig(self, cpu, msg)

    monkeypatch.setattr(HLRCProtocol, "_h_diff_apply", apply_twice)
    result, _ = _run(monkeypatch=monkeypatch, tmp_path=tmp_path)
    assert "diff-double-apply" in _kinds(result), _kinds(result)


def test_lost_diff_is_flagged(monkeypatch, tmp_path):
    def swallow(self, cpu, msg):
        if False:  # pragma: no cover - generator marker
            yield None
        # ack without ever applying: the diff is lost at the home
        yield from self.ctx.msg.send_reply(cpu, msg, 16)

    monkeypatch.setattr(HLRCProtocol, "_h_diff_apply", swallow)
    result, _ = _run(monkeypatch=monkeypatch, tmp_path=tmp_path)
    assert "diff-lost" in _kinds(result), _kinds(result)


def test_stale_lock_timestamp_is_flagged(monkeypatch, tmp_path):
    orig = LockManager.release

    def zeroed_snapshot(self, cpu, lock_id, vc_snapshot):
        return orig(self, cpu, lock_id, tuple(0 for _ in vc_snapshot))

    monkeypatch.setattr(LockManager, "release", zeroed_snapshot)
    result, _ = _run(monkeypatch=monkeypatch, tmp_path=tmp_path)
    assert "stale-lock-timestamp" in _kinds(result), _kinds(result)


def test_skipped_invalidation_is_flagged(monkeypatch, tmp_path):
    monkeypatch.setattr(NodeMemoryState, "invalidate", lambda self, pages: 0)
    result, _ = _run(monkeypatch=monkeypatch, tmp_path=tmp_path)
    assert _kinds(result) & {"read-invalid", "stale-read"}, _kinds(result)


@pytest.mark.parametrize("protocol", ["hlrc", "aurc"])
def test_frozen_vector_clock_is_flagged(protocol, monkeypatch, tmp_path):
    monkeypatch.setattr(VectorClock, "increment", lambda self, proc: self.v[proc])
    result, _ = _run(protocol, monkeypatch=monkeypatch, tmp_path=tmp_path)
    assert "vc-regression" in _kinds(result), _kinds(result)
