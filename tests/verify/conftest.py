"""Hypothesis profiles for the conformance-oracle suite.

``HYPOTHESIS_PROFILE=ci`` (the verify-smoke CI job) pins derandomized
example generation so CI failures reproduce locally; the default ``dev``
profile keeps random exploration.  Both disable the deadline — a single
example runs a full discrete-event simulation, whose wall-clock time
says nothing about correctness.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
