"""Differential gating of the analytic fast model against the DES.

Two pinned grids — fft over the host-overhead sweep and radix over the
NI-occupancy sweep (the paper's two most cost-sensitive axes for these
applications) — run at ``fidelity="auto"``.  Every fast-model point's
actual error against a full DES run of the same point must sit inside
the error band fitted from the calibration subset (plus a small slack
for future cost-model drift), and the paper-figure trend (speedup falls
as either overhead parameter grows) must survive the mixed DES/analytic
serving.

Also locked down here: the meta contract (``fidelity``/``fidelity.
error_bound``/``fidelity.scale`` per point), the rule that analytic
results never reach the DES disk cache, and the calibration/fit helpers.
"""

import math

import pytest

from repro.arch.params import HOST_OVERHEAD_SWEEP, NI_OCCUPANCY_SWEEP
from repro.core import runcache
from repro.core.config import ClusterConfig
from repro.core.fidelity import calibration_subset, fit_scale
from repro.core.metrics import RunResult
from repro.core.sweeps import cached_run, clear_caches, sweep_comm_param

#: slack on top of the fitted band, absorbing small cost-model drift
#: without letting the gate go soft (bands on the pinned grids are
#: 0.10-0.31; measured interior errors sit 0.03-0.06 below them)
BAND_SLACK = 0.05

GRIDS = [
    ("fft", "host_overhead", HOST_OVERHEAD_SWEEP),
    ("radix", "ni_occupancy", NI_OCCUPANCY_SWEEP),
]


@pytest.fixture(scope="module", params=GRIDS, ids=lambda g: f"{g[0]}-{g[1]}")
def auto_sweep(request):
    """One auto-fidelity sweep per pinned grid, shared by the assertions."""
    app, param, values = request.param
    clear_caches()
    results = sweep_comm_param(app, param, values, scale=0.05, fidelity="auto")
    return app, param, values, results


def test_auto_records_fidelity_meta(auto_sweep):
    app, param, values, results = auto_sweep
    kinds = [r.meta["fidelity"] for r in results]
    # calibration subset = first, middle, last grid point, served from DES
    n = len(values)
    for i, r in enumerate(results):
        assert r.meta["fidelity"] in ("des", "analytic")
        assert r.meta["fidelity.scale"] > 0
        if i in (0, n // 2, n - 1):
            assert r.meta["fidelity"] == "des"
            assert r.meta["fidelity.error_bound"] == 0.0
        else:
            assert r.meta["fidelity"] == "analytic"
            assert r.meta["fidelity.error_bound"] >= 0.0
    assert kinds.count("analytic") == n - 3


def test_analytic_error_inside_fitted_band(auto_sweep):
    app, param, values, results = auto_sweep
    base = ClusterConfig()
    checked = 0
    for v, r in zip(values, results):
        if r.meta["fidelity"] != "analytic":
            continue
        des = cached_run(app, 0.05, base.with_comm(**{param: v}))
        err = abs(des.total_cycles / r.total_cycles - 1.0)
        band = r.meta["fidelity.error_bound"]
        assert err <= band + BAND_SLACK, (
            f"{app}/{param}={v}: analytic error {err:.3f} outside "
            f"fitted band {band:.3f} (+{BAND_SLACK} slack)"
        )
        checked += 1
    assert checked == len(values) - 3


def test_auto_preserves_paper_trend(auto_sweep):
    """Speedup falls as the swept overhead grows (paper Figures 5/6
    shape).  Within one serving family (the DES calibration points, the
    scaled analytic points) the ordering must be clean; across the
    DES/analytic boundary adjacent points may disagree by at most the
    recorded error band — that is exactly the approximation the band
    quantifies."""
    app, param, values, results = auto_sweep
    speedups = [r.speedup for r in results]
    by_kind = {"des": [], "analytic": []}
    for s, r in zip(speedups, results):
        by_kind[r.meta["fidelity"]].append(s)
    for kind, family in by_kind.items():
        for earlier, later in zip(family, family[1:]):
            assert later <= earlier * 1.02, (
                f"{app}/{param} [{kind}]: speedups {family} not monotone"
            )
    # sweep endpoints are both DES-served, so the end-to-end paper trend
    # is exact: more overhead, less speedup
    assert speedups[-1] < speedups[0]
    # cross-family neighbours agree within the recorded band (+ slack)
    for i in range(len(results) - 1):
        a, b = results[i], results[i + 1]
        band = max(
            a.meta["fidelity.error_bound"], b.meta["fidelity.error_bound"]
        )
        assert speedups[i + 1] <= speedups[i] * (1.0 + band + BAND_SLACK)


def test_analytic_results_never_enter_disk_cache():
    clear_caches()
    # values no other test sweeps, so a DES record under the same key
    # cannot legitimately pre-exist in the session's disk cache
    values = (111, 2222, 3333)
    results = sweep_comm_param(
        "fft", "host_overhead", values, scale=0.05, fidelity="analytic"
    )
    assert all(r.meta["fidelity"] == "analytic" for r in results)
    # pure-analytic serving is uncalibrated: no error bound is claimed
    assert all("fidelity.error_bound" not in r.meta for r in results)
    disk = runcache.disk_cache()
    assert disk is not None, "test session must run with the disk cache on"
    base = ClusterConfig()
    for v in values:
        key = runcache.content_key("fft", 0.05, base.with_comm(host_overhead=v))
        assert disk.get(key) is None, (
            f"analytic result for host_overhead={v} leaked into the DES cache"
        )


def test_analytic_is_deterministic_and_cached():
    clear_caches()
    first = sweep_comm_param(
        "fft", "host_overhead", HOST_OVERHEAD_SWEEP, scale=0.05, fidelity="analytic"
    )
    second = sweep_comm_param(
        "fft", "host_overhead", HOST_OVERHEAD_SWEEP, scale=0.05, fidelity="analytic"
    )
    assert [r.total_cycles for r in first] == [r.total_cycles for r in second]
    assert all(isinstance(r, RunResult) for r in first)


def test_calibration_subset_picks_first_middle_last():
    grid = list(range(10))
    assert calibration_subset(grid) == [0, 5, 9]
    assert calibration_subset([1, 2]) == [1, 2]
    assert calibration_subset([7]) == [7]


def test_fit_scale_geometric_mean_and_band():
    scale, band = fit_scale([2.0, 2.0, 2.0])
    assert scale == pytest.approx(2.0)
    assert band == pytest.approx(0.0)
    scale, band = fit_scale([1.0, 4.0])
    assert scale == pytest.approx(2.0)
    assert band == pytest.approx(1.0)  # both ratios are 2x off the fit
    scale, band = fit_scale([])
    assert scale == 1.0 and math.isnan(band)
    # non-finite / non-positive ratios are dropped, not propagated
    scale, band = fit_scale([float("inf"), -1.0, 3.0])
    assert scale == pytest.approx(3.0)
