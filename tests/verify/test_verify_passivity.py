"""Verification must be passive: a verified run is bit-identical in
simulated time, breakdowns and protocol counters to an unverified run
(same pattern as the observability passivity test)."""

import pytest

from repro.apps import get_app
from repro.core import ClusterConfig, run_simulation
from tests.verify.workloads import base_config, lock_mix, migratory

SCALE = 0.05


def _assert_identical(plain, checked):
    assert checked.total_cycles == plain.total_cycles
    assert checked.time_breakdown() == plain.time_breakdown()
    assert checked.counters == plain.counters
    for key, value in plain.meta.items():
        assert checked.meta[key] == value
    assert checked.resource_busy == plain.resource_busy


@pytest.mark.parametrize(
    "app_name,protocol",
    [("fft", "hlrc"), ("fft", "aurc"), ("radix", "hlrc"), ("radix", "aurc")],
)
def test_verify_does_not_perturb_real_apps(app_name, protocol):
    cfg = ClusterConfig(protocol=protocol)
    trace = get_app(app_name, page_size=cfg.comm.page_size, scale=SCALE, seed=cfg.seed)
    plain = run_simulation(trace, cfg)
    checked = run_simulation(trace, cfg.replace(verify=True))
    _assert_identical(plain, checked)
    assert "verify.events" not in plain.meta
    assert checked.meta["verify.events"] > 0
    assert checked.meta["verify.violations"] == 0


@pytest.mark.parametrize("protocol", ["hlrc", "aurc"])
def test_verify_does_not_perturb_synthetic_lock_workloads(protocol):
    trace = lock_mix(4, 4, 8, 500)
    cfg = base_config(protocol, ppn=2)
    plain = run_simulation(trace, cfg)
    checked = run_simulation(trace, cfg.replace(verify=True))
    _assert_identical(plain, checked)


@pytest.mark.parametrize("protocol", ["hlrc", "aurc"])
def test_verify_does_not_perturb_faulty_runs(protocol):
    from repro.net.faults import FaultParams

    trace = migratory(2, 3, 16, 500)
    cfg = base_config(
        protocol, ppn=2, faults=FaultParams(drop_prob=0.05, retry_timeout=20_000)
    )
    plain = run_simulation(trace, cfg)
    checked = run_simulation(trace, cfg.replace(verify=True))
    _assert_identical(plain, checked)


def test_env_var_enables_verification(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY", "1")
    trace = migratory(1, 2, 8, 500)
    cfg = base_config("hlrc", ppn=2)
    assert cfg.verify is False
    result = run_simulation(trace, cfg)
    assert result.meta["verify.events"] > 0
    assert result.violations == []
    monkeypatch.setenv("REPRO_VERIFY", "0")
    result2 = run_simulation(trace, cfg)
    assert "verify.events" not in result2.meta
    assert result2.total_cycles == result.total_cycles
