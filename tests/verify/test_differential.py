"""Differential tests: HLRC vs AURC vs the zero-cost ideal backend.

The per-page version sets {(proc, interval)} are timing- and
protocol-independent under LRC (each proc's flush structure is program
order only), so all three backends must agree exactly — on synthetic
traces and on the real trace generators.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_app
from repro.core import ClusterConfig
from repro.verify.ideal import (
    final_versions,
    ideal_interval_sets,
    interval_sets_from_log,
)
from tests.verify.workloads import (
    assert_oracle_clean,
    base_config,
    run_verified,
    trace_strategy,
)


@given(trace=trace_strategy(), ppn=st.sampled_from([1, 2]))
@settings(max_examples=20)
def test_protocols_and_ideal_agree_on_version_history(trace, ppn):
    observed = {}
    for protocol in ("hlrc", "aurc"):
        result, vlog = run_verified(trace, base_config(protocol, ppn=ppn))
        assert_oracle_clean(result, f"{trace.name}/{protocol}")
        observed[protocol] = interval_sets_from_log(vlog.records)
    ideal = ideal_interval_sets(trace)
    assert observed["hlrc"] == ideal
    assert observed["aurc"] == ideal
    # equal interval sets => equal final memory contents
    assert final_versions(observed["hlrc"]) == final_versions(ideal)


def test_real_apps_match_ideal_versions():
    for app_name in ("fft", "radix"):
        cfg = ClusterConfig()
        trace = get_app(
            app_name, page_size=cfg.comm.page_size, scale=0.05, seed=cfg.seed
        )
        ideal = ideal_interval_sets(trace)
        for protocol in ("hlrc", "aurc"):
            result, vlog = run_verified(trace, cfg.replace(protocol=protocol))
            assert_oracle_clean(result, f"{app_name}/{protocol}")
            assert interval_sets_from_log(vlog.records) == ideal
