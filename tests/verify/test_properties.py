"""Property-based oracle tests: random sharing patterns, both protocols,
random comm-parameter points — the oracle must stay silent on the real
(unmutated) protocol engines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.verify.workloads import (
    assert_oracle_clean,
    base_config,
    comm_point_strategy,
    run_verified,
    trace_strategy,
)


@given(
    trace=trace_strategy(),
    protocol=st.sampled_from(["hlrc", "aurc"]),
    ppn=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=30)
def test_oracle_clean_on_random_sharing_patterns(trace, protocol, ppn):
    config = base_config(protocol, ppn=ppn)
    result, vlog = run_verified(trace, config)
    assert_oracle_clean(result, f"{trace.name}/{protocol}/ppn={ppn}")
    assert result.meta["verify.events"] == len(vlog.records) > 0


@given(
    trace=trace_strategy(),
    protocol=st.sampled_from(["hlrc", "aurc"]),
    point=comm_point_strategy,
)
@settings(max_examples=20)
def test_oracle_clean_across_comm_parameter_points(trace, protocol, point):
    config = base_config(protocol, ppn=2, **point)
    result, _ = run_verified(trace, config)
    assert_oracle_clean(result, f"{trace.name}/{protocol}/{point}")


@given(trace=trace_strategy(), ppn=st.sampled_from([2, 4]))
@settings(max_examples=10)
def test_oracle_clean_with_first_touch_homes(trace, ppn):
    config = base_config("hlrc", ppn=ppn).replace(home_policy="first_touch")
    result, _ = run_verified(trace, config)
    assert_oracle_clean(result, f"{trace.name}/first_touch/ppn={ppn}")
