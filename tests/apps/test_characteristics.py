"""Behavioural tests: the generated workloads reproduce the paper's
application characterization (Section 4, Figures 3-4 groupings)."""

import pytest

from repro.apps import get_app
from repro.core import ClusterConfig, geometric_mean, run_simulation

SCALE = 0.4


@pytest.fixture(scope="module")
def results():
    out = {}
    cfg = ClusterConfig()
    for name in (
        "fft",
        "lu",
        "ocean",
        "water-nsq",
        "water-sp",
        "radix",
        "raytrace",
        "volrend",
        "barnes-rebuild",
        "barnes-space",
    ):
        out[name] = run_simulation(get_app(name, scale=SCALE), cfg)
    return out


def test_all_apps_complete_and_speed_up(results):
    for name, r in results.items():
        assert r.total_cycles > 0, name
        assert r.speedup > 0.3, name  # even Radix achieves something


def test_heavy_vs_light_communication_groups(results):
    """Paper: Barnes-rebuild and Radix (and FFT) communicate heavily;
    LU, Ocean, Water-spatial and Barnes-space communicate very little.
    Compare via the geometric mean of messages and bytes (the paper's
    combined metric)."""

    def comm_metric(r):
        return geometric_mean(
            [
                max(1e-6, r.messages_per_proc_per_mcycle),
                max(1e-6, r.mbytes_per_proc_per_mcycle * 1000),
            ]
        )

    heavy = min(comm_metric(results[n]) for n in ("radix", "barnes-rebuild"))
    light = max(
        comm_metric(results[n]) for n in ("lu", "water-sp", "barnes-space")
    )
    assert heavy > 3 * light


def test_radix_highest_byte_volume(results):
    radix_bytes = results["radix"].mbytes_per_proc_per_mcycle
    for name in ("lu", "ocean", "water-sp", "volrend", "barnes-space"):
        assert radix_bytes > results[name].mbytes_per_proc_per_mcycle, name


def test_barnes_rebuild_most_remote_lock_acquires(results):
    rebuild = results["barnes-rebuild"].counters.remote_lock_acquires
    for name, r in results.items():
        if name != "barnes-rebuild":
            assert rebuild >= r.counters.remote_lock_acquires, name


def test_lock_apps_have_lock_traffic(results):
    for name in ("raytrace", "volrend", "barnes-rebuild", "water-nsq"):
        c = results[name].counters
        assert c.local_lock_acquires + c.remote_lock_acquires > 0, name


def test_pure_barrier_apps_have_no_locks(results):
    for name in ("fft", "lu", "ocean"):
        c = results[name].counters
        assert c.remote_lock_acquires == 0, name


def test_single_writer_apps_produce_no_diffs(results):
    """FFT/LU/Ocean are single-writer with local allocation: HLRC needs
    (almost) no diffs for them (paper Section 4.1)."""
    for name in ("fft", "lu"):
        assert results[name].counters.diffs_created == 0, name


def test_barnes_space_beats_barnes_rebuild(results):
    assert (
        results["barnes-space"].speedup > 1.5 * results["barnes-rebuild"].speedup
    )


def test_water_spatial_beats_water_nsquared(results):
    assert results["water-sp"].speedup > results["water-nsq"].speedup


def test_ocean_speedup_artificially_high(results):
    """The paper's caveat: Ocean's serial run misses hard in cache, so
    its speedups (and ideal) look inflated."""
    r = results["ocean"]
    assert r.ideal_speedup > r.config.total_procs


def test_radix_worst_speedup(results):
    worst = min(results.values(), key=lambda r: r.speedup)
    assert worst.app_name == "radix"


def test_every_app_below_ideal(results):
    for name, r in results.items():
        assert r.speedup <= r.ideal_speedup + 0.3, name
