"""Unit tests for the workload generators (structure and invariants)."""

import pytest

from repro.apps import (
    ACQUIRE,
    APP_ORDER,
    BARRIER,
    COMPUTE,
    READ,
    RELEASE,
    TOUCH,
    WRITE,
    AddressSpace,
    GenParams,
    app_names,
    get_app,
    make_generator,
)


@pytest.fixture(scope="module", params=APP_ORDER)
def trace(request):
    return get_app(request.param, n_procs=8, scale=0.2, seed=7)


def test_registry_covers_ten_apps():
    assert len(app_names()) == 10
    assert set(app_names()) == set(APP_ORDER)


def test_unknown_app_rejected():
    with pytest.raises(ValueError, match="unknown application"):
        make_generator("fourier")


def test_trace_structure_valid(trace):
    trace.validate()
    assert trace.n_procs == 8
    assert len(trace.events) == 8
    assert trace.event_count() > 0


def test_trace_has_compute_and_barriers(trace):
    kinds = {ev[0] for evs in trace.events for ev in evs}
    assert COMPUTE in kinds
    assert BARRIER in kinds
    assert TOUCH in kinds


def test_all_procs_hit_same_barriers(trace):
    """Every processor passes the same multiset of barriers (else the
    simulation deadlocks)."""
    per_proc = [
        [ev[1] for ev in evs if ev[0] == BARRIER] for evs in trace.events
    ]
    for other in per_proc[1:]:
        assert other == per_proc[0]


def test_serial_time_positive_and_dominates_busy(trace):
    assert trace.serial_cycles > 0
    for p in range(trace.n_procs):
        assert trace.busy_cycles(p) <= trace.serial_cycles


def test_ideal_speedup_bounded(trace):
    # at most n_procs x serial-stall inflation; never absurd
    assert 1.0 <= trace.ideal_speedup <= 4 * trace.n_procs


def test_generation_is_deterministic(trace):
    again = get_app(trace.name, n_procs=8, scale=0.2, seed=7)
    assert again.events == trace.events
    assert again.serial_cycles == trace.serial_cycles


def test_seed_changes_random_apps():
    a = get_app("raytrace", n_procs=8, scale=0.2, seed=1)
    b = get_app("raytrace", n_procs=8, scale=0.2, seed=2)
    assert a.events != b.events


def test_scale_shrinks_work():
    small = get_app("fft", n_procs=8, scale=0.2)
    large = get_app("fft", n_procs=8, scale=1.0)
    assert small.serial_cycles < large.serial_cycles


def test_locks_balanced_in_lock_apps():
    for name in ("water-nsq", "raytrace", "volrend", "barnes-rebuild", "radix"):
        trace = get_app(name, n_procs=8, scale=0.2)
        for evs in trace.events:
            outstanding = {}
            for ev in evs:
                if ev[0] == ACQUIRE:
                    outstanding[ev[1]] = outstanding.get(ev[1], 0) + 1
                elif ev[0] == RELEASE:
                    outstanding[ev[1]] -= 1
                    assert outstanding[ev[1]] >= 0
            assert all(v == 0 for v in outstanding.values()), name


def test_page_size_changes_page_numbers():
    small_pages = get_app("fft", n_procs=8, page_size=1024, scale=0.2)
    big_pages = get_app("fft", n_procs=8, page_size=16384, scale=0.2)

    def max_page(trace):
        return max(
            ev[1]
            for evs in trace.events
            for ev in evs
            if ev[0] in (READ, WRITE, TOUCH)
        )

    assert max_page(small_pages) > max_page(big_pages)


def test_barnes_variants_differ_in_locking():
    rebuild = get_app("barnes-rebuild", n_procs=8, scale=0.3)
    space = get_app("barnes-space", n_procs=8, scale=0.3)

    def lock_ops(trace):
        return sum(1 for evs in trace.events for ev in evs if ev[0] == ACQUIRE)

    assert lock_ops(rebuild) > 10 * max(1, lock_ops(space))


def test_radix_writes_remote_partitions():
    trace = get_app("radix", n_procs=8, scale=0.2)
    writes = sum(1 for evs in trace.events for ev in evs if ev[0] == WRITE)
    assert writes > 8  # scattered permutation writes exist


def test_address_space_alloc_page_aligned():
    space = AddressSpace(4096)
    a = space.alloc(100)
    b = space.alloc(5000)
    c = space.alloc(1)
    assert a == 0
    assert b == 4096
    assert c == 4096 + 8192
    with pytest.raises(ValueError):
        space.alloc(0)


def test_gen_params_rng_deterministic():
    p = GenParams(seed=5)
    assert p.rng(1).integers(0, 1000) == p.rng(1).integers(0, 1000)
    assert p.rng(1).integers(0, 1000) != p.rng(2).integers(0, 1000) or True
