"""Per-application structural tests: the layout and sharing math each
generator encodes (partitioning, page arithmetic, phase structure)."""

import pytest

from repro.apps import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    READ,
    TOUCH,
    WRITE,
    GenParams,
    get_app,
    make_generator,
)

P = 8
PARAMS = dict(n_procs=P, scale=0.25, seed=11)


def events_of(trace, proc, kind):
    return [ev for ev in trace.events[proc] if ev[0] == kind]


def pages_touched(trace, proc):
    return {ev[1] for ev in trace.events[proc] if ev[0] == TOUCH}


# --------------------------------------------------------------------- #
# FFT
# --------------------------------------------------------------------- #
def test_fft_touch_partitions_disjoint():
    trace = get_app("fft", **PARAMS)
    sets = [pages_touched(trace, p) for p in range(P)]
    for i in range(P):
        for j in range(i + 1, P):
            assert not (sets[i] & sets[j]), (i, j)


def test_fft_reads_only_remote_partitions():
    """A processor's transpose reads never touch its own first-touched
    pages (it reads the other processors' sub-blocks)."""
    trace = get_app("fft", **PARAMS)
    for p in range(P):
        own = pages_touched(trace, p)
        reads = {ev[1] for ev in events_of(trace, p, READ)}
        assert not (reads & own), p


def test_fft_has_five_phases_of_barriers():
    trace = get_app("fft", **PARAMS)
    bars = [ev[1] for ev in trace.events[0] if ev[0] == BARRIER]
    # init barrier + 3 transposes + 2 FFT phases
    assert bars == [0, 1, 2, 3, 4, 5]


# --------------------------------------------------------------------- #
# LU
# --------------------------------------------------------------------- #
def test_lu_barrier_count_matches_steps():
    trace = get_app("lu", **PARAMS)
    bars = [ev for ev in trace.events[0] if ev[0] == BARRIER]
    # init barrier + 2 per factorization step
    assert (len(bars) - 1) % 2 == 0
    assert len(bars) > 5


def test_lu_work_shrinks_over_steps():
    """Later factorization steps carry less compute (the imbalance that
    caps LU's ideal speedup)."""
    trace = get_app("lu", n_procs=P, scale=0.5, seed=11)
    compute_per_phase = []
    current = 0
    for ev in trace.events[0]:
        if ev[0] == COMPUTE:
            current += ev[1]
        elif ev[0] == BARRIER and ev[1] >= 1 and ev[1] % 2 == 0:
            compute_per_phase.append(current)
            current = 0
    assert compute_per_phase[0] > compute_per_phase[-1]


def test_lu_writes_stay_in_own_partition():
    trace = get_app("lu", **PARAMS)
    for p in range(P):
        own = pages_touched(trace, p)
        writes = {ev[1] for ev in events_of(trace, p, WRITE)}
        assert writes <= own, p


# --------------------------------------------------------------------- #
# Ocean
# --------------------------------------------------------------------- #
def test_ocean_reads_only_neighbour_boundaries():
    trace = get_app("ocean", **PARAMS)
    own = [pages_touched(trace, p) for p in range(P)]
    for p in range(P):
        reads = {ev[1] for ev in events_of(trace, p, READ)}
        neighbour_pages = set()
        if p > 0:
            neighbour_pages |= own[p - 1]
        if p < P - 1:
            neighbour_pages |= own[p + 1]
        assert reads <= neighbour_pages, p


def test_ocean_edge_processors_read_less():
    trace = get_app("ocean", **PARAMS)
    inner_reads = len(events_of(trace, P // 2, READ))
    edge_reads = len(events_of(trace, 0, READ))
    assert edge_reads < inner_reads


# --------------------------------------------------------------------- #
# Water
# --------------------------------------------------------------------- #
def test_water_nsq_reads_half_the_molecules():
    trace = get_app("water-nsq", n_procs=P, scale=1.0, seed=11)
    total_pages = len(set().union(*(pages_touched(trace, p) for p in range(P))))
    reads = {ev[1] for ev in events_of(trace, 0, READ)}
    assert total_pages * 0.3 < len(reads) < total_pages * 0.7


def test_water_sp_reads_much_less_than_nsq():
    nsq = get_app("water-nsq", n_procs=P, scale=1.0, seed=11)
    sp = get_app("water-sp", n_procs=P, scale=1.0, seed=11)
    nsq_reads = len(events_of(nsq, 0, READ))
    sp_reads = len(events_of(sp, 0, READ))
    assert sp_reads < nsq_reads / 3


# --------------------------------------------------------------------- #
# Radix
# --------------------------------------------------------------------- #
def test_radix_writes_cover_remote_partitions():
    trace = get_app("radix", **PARAMS)
    own = pages_touched(trace, 0)
    writes = {ev[1] for ev in events_of(trace, 0, WRITE)}
    assert writes - own, "radix must write remotely allocated data"


def test_radix_page_size_does_not_change_write_bytes_much():
    """Dense scatter: the written word volume is page-size independent;
    only the fault count changes."""

    def write_words(page_size):
        trace = get_app("radix", n_procs=P, page_size=page_size, scale=0.25, seed=11)
        return sum(ev[2] for ev in trace.events[0] if ev[0] == WRITE)

    small, big = write_words(1024), write_words(16384)
    assert small == pytest.approx(big, rel=0.35)


# --------------------------------------------------------------------- #
# Raytrace / Volrend
# --------------------------------------------------------------------- #
def test_raytrace_steals_lock_other_queues():
    trace = get_app("raytrace", **PARAMS)
    own_lock = 100 + 3
    locks = {ev[1] for ev in events_of(trace, 3, ACQUIRE)}
    assert own_lock in locks
    assert len(locks) > 1  # stealing touches other queues


def test_volrend_fewer_steals_than_raytrace():
    ray = get_app("raytrace", **PARAMS)
    vol = get_app("volrend", **PARAMS)

    def foreign_lock_ops(trace, base):
        return sum(
            1
            for p in range(P)
            for ev in trace.events[p]
            if ev[0] == ACQUIRE and ev[1] != base + p
        )

    ray_tasks = sum(1 for ev in ray.events[0] if ev[0] == ACQUIRE)
    vol_tasks = sum(1 for ev in vol.events[0] if ev[0] == ACQUIRE)
    ray_steal_rate = foreign_lock_ops(ray, 100) / max(1, ray_tasks * P)
    vol_steal_rate = foreign_lock_ops(vol, 300) / max(1, vol_tasks * P)
    assert vol_steal_rate < ray_steal_rate


# --------------------------------------------------------------------- #
# Barnes
# --------------------------------------------------------------------- #
def test_barnes_rebuild_locks_inside_critical_sections_touch_tree():
    trace = get_app("barnes-rebuild", **PARAMS)
    evs = trace.events[0]
    for i, ev in enumerate(evs):
        if ev[0] == ACQUIRE and ev[1] >= 1000:
            # the next two events are the in-CS read and write
            assert evs[i + 1][0] == READ
            assert evs[i + 2][0] == WRITE
            assert evs[i + 3][0] == "l"
            break
    else:
        pytest.fail("no cell-lock critical section found")


def test_barnes_space_merge_writes_own_subtree():
    trace = get_app("barnes-space", **PARAMS)
    for p in range(P):
        own = pages_touched(trace, p)
        writes = {ev[1] for ev in events_of(trace, p, WRITE)}
        assert writes <= own, p


def test_generator_instances_accept_custom_sizes():
    gen = make_generator("fft", n_points=1 << 14)
    trace = gen.generate(GenParams(n_procs=P, scale=1.0, seed=1))
    assert "16384" in trace.problem
