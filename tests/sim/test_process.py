"""Unit tests for generator-coroutine processes."""

import pytest

from repro.sim import Event, Process, ProcessCrash, Simulator


def test_simple_timeout_sequence():
    sim = Simulator()
    log = []

    def worker():
        log.append(("start", sim.now))
        yield sim.timeout(10)
        log.append(("mid", sim.now))
        yield sim.timeout(5)
        log.append(("end", sim.now))

    sim.spawn(worker())
    sim.run()
    assert log == [("start", 0), ("mid", 10), ("end", 15)]


def test_process_return_value_via_done_event():
    sim = Simulator()

    def worker():
        yield sim.timeout(1)
        return 42

    proc = sim.spawn(worker())
    sim.run()
    assert proc.finished
    assert proc.done.value == 42


def test_join_another_process():
    sim = Simulator()
    results = []

    def child():
        yield sim.timeout(30)
        return "payload"

    def parent():
        c = sim.spawn(child())
        got = yield c
        results.append((sim.now, got))

    sim.spawn(parent())
    sim.run()
    assert results == [(30, "payload")]


def test_join_already_finished_process():
    sim = Simulator()
    results = []

    def child():
        yield sim.timeout(1)
        return "early"

    def parent(c):
        yield sim.timeout(50)
        got = yield c
        results.append((sim.now, got))

    c = sim.spawn(child())
    sim.spawn(parent(c))
    sim.run()
    assert results == [(50, "early")]


def test_wait_on_event_value():
    sim = Simulator()
    ev = Event(sim)
    seen = []

    def waiter():
        value = yield ev
        seen.append((sim.now, value))

    def trigger():
        yield sim.timeout(25)
        ev.succeed("hello")

    sim.spawn(waiter())
    sim.spawn(trigger())
    sim.run()
    assert seen == [(25, "hello")]


def test_multiple_waiters_all_woken():
    sim = Simulator()
    ev = Event(sim)
    seen = []

    def waiter(tag):
        value = yield ev
        seen.append((tag, value))

    for tag in range(4):
        sim.spawn(waiter(tag))
    sim.schedule(10, ev.succeed, 99)
    sim.run()
    assert sorted(seen) == [(0, 99), (1, 99), (2, 99), (3, 99)]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = Event(sim)
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    sim.schedule(5, ev.fail, ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_exception_becomes_process_crash():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("oops")

    sim.spawn(bad(), name="bad")
    with pytest.raises(ProcessCrash, match="bad"):
        sim.run()


def test_yield_non_waitable_crashes():
    sim = Simulator()

    def bad():
        yield "not a waitable"

    sim.spawn(bad())
    with pytest.raises(ProcessCrash):
        sim.run()


def test_yield_int_is_timeout_shorthand():
    # a bare non-negative int yield suspends for that many cycles,
    # exactly like yielding sim.timeout(n)
    sim = Simulator()
    log = []

    def proc():
        yield 7
        log.append(sim.now)
        yield 0
        log.append(sim.now)
        yield sim.timeout(3)
        log.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert log == [7, 7, 10]


def test_interrupt_with_throws_into_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1000)
        except KeyboardInterrupt:
            log.append(("interrupted", sim.now))

    proc = sim.spawn(sleeper())
    sim.schedule(7, proc.interrupt_with, KeyboardInterrupt())
    sim.run(until=100)
    assert log == [("interrupted", 7)]


def test_spawn_inside_process():
    sim = Simulator()
    log = []

    def inner():
        yield sim.timeout(3)
        log.append("inner")

    def outer():
        yield sim.timeout(1)
        sim.spawn(inner())
        log.append("outer")
        yield sim.timeout(10)

    sim.spawn(outer())
    sim.run()
    assert log == ["outer", "inner"]


def test_zero_delay_yield_keeps_time():
    sim = Simulator()
    times = []

    def worker():
        for _ in range(5):
            times.append(sim.now)
            yield sim.timeout(0)

    sim.spawn(worker())
    sim.run()
    assert times == [0, 0, 0, 0, 0]


def test_many_processes_deterministic_interleave():
    def run_once():
        sim = Simulator()
        log = []

        def worker(tag, period):
            for _ in range(10):
                yield sim.timeout(period)
                log.append((sim.now, tag))

        for tag, period in enumerate([3, 5, 7, 11]):
            sim.spawn(worker(tag, period))
        sim.run()
        return log

    assert run_once() == run_once()
