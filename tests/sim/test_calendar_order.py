"""Property test: the bucketed calendar queue dispatches in exactly the
order a single ``(when, seq)`` binary heap would.

The reference below *is* the seed engine's queue — every event an
individual heap entry, ``seq`` breaking same-cycle ties in schedule
order.  Random programs mix same-cycle ties (many events at one
timestamp, zero-delay reschedules into the cycle being drained),
cancellations (the flag-closure idiom the protocol code uses — the
engine has no cancel API, a cancelled event dispatches as a no-op), and
far-future events (delays far beyond the short-period mix, exercising
the calendar's heap-degradation path).
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


class HeapReference:
    """The seed engine's (when, seq) heap queue, minus everything else."""

    def __init__(self):
        self.now = 0
        self._heap = []
        self._seq = 0

    def schedule(self, delay, fn, *args):
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args))
        self._seq += 1

    def run(self):
        while self._heap:
            when, _, fn, args = heapq.heappop(self._heap)
            self.now = when
            fn(*args)


# Delay mix: mostly short repeated delays (the SVM event mix the calendar
# is built for), some zero (same-cycle), a few far-future.
delays = st.one_of(
    st.integers(0, 6),
    st.sampled_from([0, 1, 1, 2, 7, 7]),
    st.integers(10_000, 10**9),
)

programs = st.lists(
    st.tuples(
        st.integers(0, 20),                      # initial schedule time
        st.lists(delays, max_size=3),            # reschedule delays on dispatch
        st.booleans(),                           # cancelled (no-op) event?
    ),
    min_size=1,
    max_size=30,
)


def _drive(sim, program):
    """Run ``program`` on ``sim``; returns the (now, event_id) dispatch log."""
    log = []
    cancelled = set(i for i, (_, _, c) in enumerate(program) if c)
    counter = [len(program)]  # fresh ids for rescheduled events

    def fire(event_id, reschedules):
        log.append((sim.now, event_id))
        if event_id in cancelled:
            return  # flag-closure cancellation: dispatched, does nothing
        for d in reschedules:
            child = counter[0]
            counter[0] += 1
            # children inherit a shortened reschedule list so programs
            # terminate; the child id keeps logs comparable across engines
            sim.schedule(d, fire, child, reschedules[1:])

    for event_id, (when, reschedules, _) in enumerate(program):
        sim.schedule(when, fire, event_id, reschedules)
    sim.run()
    return log


@given(programs)
@settings(max_examples=120, deadline=None)
def test_calendar_pop_order_equals_heap_order(program):
    calendar = Simulator()
    reference = HeapReference()
    cal_log = _drive(calendar, program)
    ref_log = _drive(reference, program)
    assert cal_log == ref_log
    assert calendar.now == reference.now


@given(programs)
@settings(max_examples=60, deadline=None)
def test_step_drain_matches_run(program):
    """Single-stepping the calendar yields the same dispatch sequence."""
    run_sim = Simulator()
    run_log = _drive(run_sim, program)

    step_sim = Simulator()
    step_log = []
    cancelled = set(i for i, (_, _, c) in enumerate(program) if c)
    counter = [len(program)]

    def fire(event_id, reschedules):
        step_log.append((step_sim.now, event_id))
        if event_id in cancelled:
            return
        for d in reschedules:
            child = counter[0]
            counter[0] += 1
            step_sim.schedule(d, fire, child, reschedules[1:])

    for event_id, (when, reschedules, _) in enumerate(program):
        step_sim.schedule(when, fire, event_id, reschedules)
    while step_sim.step():
        pass
    assert step_log == run_log


def test_far_future_tie_with_short_period_storm():
    """A deterministic worst case: two far-future events tied on one
    cycle must dispatch in schedule order after the short-period storm,
    and a zero-delay reschedule into the draining cycle runs after the
    rest of that cycle's batch (higher seq on the heap)."""
    order = []
    sim = Simulator()
    sim.schedule(10**9, order.append, "far-a")
    sim.schedule(10**9, order.append, "far-b")

    def burst(tag):
        order.append(tag)
        if tag == "burst-0":
            sim.schedule(0, order.append, "burst-late")

    for i in range(4):
        sim.schedule(5, burst, f"burst-{i}")
    sim.run()
    assert order == [
        "burst-0", "burst-1", "burst-2", "burst-3", "burst-late",
        "far-a", "far-b",
    ]
