"""Watchdog: deadlock and livelock detection in the engine."""

import pytest

from repro.sim.engine import (
    SimulationStuckError,
    Simulator,
    Watchdog,
)
from repro.sim.primitives import Event


def _waiter(ev):
    yield ev


def test_deadlock_circular_wait_names_blocked_processes():
    sim = Simulator(watchdog=Watchdog(deadlock=True))
    ev_a = Event(sim, name="a.done")
    ev_b = Event(sim, name="b.done")

    def proc_a():
        yield ev_b  # waits on b, which waits on a: circular
        ev_a.succeed()

    def proc_b():
        yield ev_a
        ev_b.succeed()

    sim.spawn(proc_a(), name="proc_a")
    sim.spawn(proc_b(), name="proc_b")
    with pytest.raises(SimulationStuckError) as exc:
        sim.run()
    assert exc.value.blocked == ("proc_a", "proc_b")
    assert "proc_a" in str(exc.value) and "proc_b" in str(exc.value)
    assert "deadlock" in str(exc.value)


def test_deadlock_detected_on_general_loop_too():
    # livelock_events forces the non-hot dispatch loop; the post-drain
    # deadlock scan must fire there as well.
    sim = Simulator(watchdog=Watchdog(deadlock=True, livelock_events=1000))
    sim.spawn(_waiter(Event(sim, name="never")), name="stuck")
    with pytest.raises(SimulationStuckError) as exc:
        sim.run()
    assert exc.value.blocked == ("stuck",)


def test_no_watchdog_keeps_permissive_drain():
    sim = Simulator()  # bare simulator: tests/fixtures rely on this
    sim.spawn(_waiter(Event(sim)), name="stuck")
    sim.run()  # no exception; heap drained, process simply left blocked
    assert sim.pending == 0


def test_daemon_processes_excluded_from_deadlock():
    sim = Simulator(watchdog=Watchdog(deadlock=True))
    sim.spawn(_waiter(Event(sim, name="service")), name="poller", daemon=True)

    def worker():
        yield sim.timeout(10)

    sim.spawn(worker(), name="worker")
    sim.run()  # only the daemon is left blocked: not a deadlock
    assert sim.now == 10


def test_livelock_zero_delay_self_reschedule():
    sim = Simulator(watchdog=Watchdog(livelock_events=500))

    def spinner():
        while True:
            yield sim.timeout(0)

    sim.spawn(spinner(), name="spinner")
    with pytest.raises(SimulationStuckError) as exc:
        sim.run()
    assert "livelock" in str(exc.value)
    assert "spinner" in str(exc.value)
    assert exc.value.blocked == ("spinner",)
    assert sim.now == 0  # time never advanced


def test_livelock_not_triggered_by_legitimate_bursts():
    # Many same-timestamp events below the limit, then progress.
    sim = Simulator(watchdog=Watchdog(livelock_events=100))
    hits = []
    for _ in range(90):
        sim.schedule(5, hits.append, 1)
    for _ in range(90):
        sim.schedule(9, hits.append, 2)
    sim.run()
    assert len(hits) == 180
    assert sim.now == 9


def test_watchdog_off_matches_fastpath_dispatch_counts():
    def build(watchdog):
        sim = Simulator(watchdog=watchdog)

        def worker():
            for _ in range(20):
                yield sim.timeout(3)

        sim.spawn(worker(), name="w")
        return sim.run(), sim.now

    assert build(None) == build(Watchdog(deadlock=True, livelock_events=10**6))
