"""Unit tests for the event-heap scheduler."""

import pytest

from repro.sim import SimulationError, Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.now == 0
    assert sim.pending == 0
    assert sim.dispatched == 0
    assert sim.peek() is None


def test_schedule_and_run_ordering():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    n = sim.run()
    assert order == ["a", "b", "c"]
    assert n == 3
    assert sim.now == 30


def test_fifo_tie_break_at_same_time():
    sim = Simulator()
    order = []
    for tag in range(10):
        sim.schedule(5, order.append, tag)
    sim.run()
    assert order == list(range(10))


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(100, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [100]


def test_schedule_now_runs_after_pending_same_time_events():
    sim = Simulator()
    order = []
    sim.schedule(0, order.append, "first")
    sim.schedule_now(order.append, "second")
    sim.run()
    assert order == ["first", "second"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(50, lambda: sim.schedule_at(10, lambda: None))
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, 1)
    sim.schedule(100, fired.append, 2)
    sim.run(until=50)
    assert fired == [1]
    assert sim.now == 50
    assert sim.pending == 1
    sim.run()
    assert fired == [1, 2]


def test_run_until_advances_clock_when_heap_drains_early():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run(until=1000)
    assert sim.now == 1000


def test_max_events_guard():
    sim = Simulator()

    def rearm():
        sim.schedule(1, rearm)

    sim.schedule(1, rearm)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_fractional_delay_rounds_up():
    sim = Simulator()
    seen = []
    sim.schedule(0.25, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1]


def test_step_single_event():
    sim = Simulator()
    seen = []
    sim.schedule(3, seen.append, "x")
    assert sim.step() is True
    assert seen == ["x"]
    assert sim.step() is False


def test_events_scheduled_during_dispatch_run():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(5, order.append, "inner")

    sim.schedule(1, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 6


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1, nested)
    sim.run()
    assert len(errors) == 1


def test_peek_returns_next_event_time():
    sim = Simulator()
    sim.schedule(42, lambda: None)
    sim.schedule(7, lambda: None)
    assert sim.peek() == 7


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        log = []
        for i in range(50):
            sim.schedule((i * 37) % 11, log.append, i)
        sim.run()
        return log

    assert build() == build()
