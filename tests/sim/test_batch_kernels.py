"""The vectorized fluid-kernel batch entry points must be cycle-exact
equivalents of N sequential scalar calls made at the same timestamp —
same sojourns, same backlog evolution, same occupancy counters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import ArchParams
from repro.arch.membus import MemoryBus
from repro.sim import FluidQueue, Simulator


def make_queue(**kw):
    return FluidQueue(Simulator(), "q", **kw)


services = st.lists(
    st.one_of(
        st.integers(0, 500),
        st.floats(0.0, 500.0, allow_nan=False, allow_infinity=False),
    ),
    min_size=0,
    max_size=25,
)


@given(services, st.integers(0, 300))
@settings(max_examples=80, deadline=None)
def test_latency_batch_equals_sequential(svc, backlog):
    seq = make_queue()
    bat = make_queue()
    if backlog:
        assert seq.latency(backlog) == bat.latency(backlog)

    expected = [seq.latency(s) for s in svc]
    got = bat.latency_batch(svc)
    assert got.tolist() == expected
    assert got.dtype == np.int64
    assert seq._free_at == bat._free_at
    assert seq.busy_cycles == bat.busy_cycles
    assert seq.requests == bat.requests


def test_latency_batch_integer_dtype_skips_ceil():
    # integer services take the scalar int fast path (no float ceil);
    # the batch kernel must match for an int64 input array
    seq = make_queue()
    bat = make_queue()
    svc = np.array([3, 0, 17, 1], dtype=np.int64)
    expected = [seq.latency(int(s)) for s in svc]
    assert bat.latency_batch(svc).tolist() == expected


def test_latency_batch_rejects_negative():
    with pytest.raises(ValueError):
        make_queue().latency_batch([1.0, -0.5])


def test_latency_batch_empty():
    q = make_queue()
    out = q.latency_batch([])
    assert out.shape == (0,) and q.requests == 0 and q._free_at == 0


@given(st.lists(st.integers(0, 8192), min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_transfer_batch_equals_sequential(sizes):
    seq = make_queue(bytes_per_cycle=2.5)
    bat = make_queue(bytes_per_cycle=2.5)
    expected = [seq.transfer(n) for n in sizes]
    assert bat.transfer_batch(sizes).tolist() == expected
    assert seq._free_at == bat._free_at


@given(
    st.lists(st.integers(0, 8192), min_size=1, max_size=20),
    st.sampled_from(["mem", "ni_out", "ni_in", "l2", "wb"]),
)
@settings(max_examples=60, deadline=None)
def test_membus_batch_equals_sequential(sizes, kind):
    arch = ArchParams()
    seq_bus = MemoryBus(Simulator(), arch)
    bat_bus = MemoryBus(Simulator(), arch)
    expected = [seq_bus.transfer_latency(n, kind) for n in sizes]
    got = bat_bus.transfer_latency_batch(sizes, kind)
    assert got.tolist() == expected
    assert seq_bus.transfer_count == bat_bus.transfer_count
    assert seq_bus.transfer_bytes == bat_bus.transfer_bytes
    assert seq_bus.queue._free_at == bat_bus.queue._free_at
    assert seq_bus.queue.busy_cycles == bat_bus.queue.busy_cycles


def test_membus_batch_after_scalar_backlog():
    # a batch issued while the bus is still draining earlier transfers
    # must see the same residual backlog the scalar path would
    arch = ArchParams()
    seq_bus = MemoryBus(Simulator(), arch)
    bat_bus = MemoryBus(Simulator(), arch)
    for bus in (seq_bus, bat_bus):
        bus.transfer_latency(4096, "mem")
    sizes = [64, 4096, 128]
    expected = [seq_bus.transfer_latency(n, "ni_out") for n in sizes]
    assert bat_bus.transfer_latency_batch(sizes, "ni_out").tolist() == expected
