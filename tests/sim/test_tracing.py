"""Tracer semantics: limits, disable, kinds filter, NullTracer singleton."""

from repro.sim import NULL_TRACER, NullTracer, Simulator, Tracer


def test_tracer_records_until_limit_then_disables():
    tracer = Tracer(limit=2)
    tracer.record(1, "a", None)
    tracer.record(2, "b", None)
    assert len(tracer.records) == 2
    tracer.record(3, "c", None)  # limit trips -> disable()
    assert len(tracer.records) == 2
    assert tracer.enabled is False
    # a cached-reference caller now falls out on the enabled check alone
    tracer.record(4, "d", None)
    assert len(tracer.records) == 2


def test_tracer_disable_drops_kinds_filter():
    tracer = Tracer(kinds={"dispatch"})
    tracer.record(1, "dispatch", "x")
    tracer.record(1, "other", "y")  # filtered
    assert len(tracer.records) == 1
    tracer.disable()
    assert tracer.enabled is False
    assert tracer.kinds is None


def test_tracer_clear_reenables():
    tracer = Tracer(limit=1)
    tracer.record(1, "a", None)
    tracer.record(2, "b", None)
    assert not tracer.enabled
    tracer.clear()
    assert tracer.enabled
    tracer.record(3, "c", None)
    assert [r.kind for r in tracer.records] == ["c"]


def test_null_tracer_is_a_singleton():
    assert NullTracer() is NullTracer()
    assert NullTracer() is NULL_TRACER


def test_null_tracer_never_records_or_reenables():
    nt = NullTracer()
    nt.record(1, "a", None)
    assert nt.records == []
    nt.clear()  # must NOT re-enable: the instance is shared process-wide
    assert nt.enabled is False
    nt.record(2, "b", None)
    assert nt.records == []


def test_bare_simulators_share_the_null_tracer():
    a, b = Simulator(), Simulator()
    assert a.tracer is b.tracer is NULL_TRACER


def test_simulator_with_real_tracer_still_records():
    tracer = Tracer()
    sim = Simulator(tracer=tracer)
    sim.schedule(5, lambda: None)
    sim.run()
    assert any(r.kind == "dispatch" for r in tracer.records)
