"""The optimized dispatch fast path must be observationally identical to
the general loop (same order, same clock, same counts, same rounding)."""

import math

from repro.sim import Simulator
from repro.sim.tracing import Tracer


def _storm(sim, log):
    """A mix of int and float delays, with re-scheduling callbacks."""

    def tick(tag, rounds):
        log.append((sim.now, tag))
        if rounds:
            sim.schedule(3, tick, tag, rounds - 1)
            sim.schedule(2.5, tick, f"{tag}+f", 0)

    for i in range(5):
        sim.schedule(i, tick, i, 3)
    sim.schedule(1.2, tick, "float", 2)


def test_fast_path_matches_general_loop():
    # fast path: no tracer, no until/max_events
    fast_log = []
    fast = Simulator()
    _storm(fast, fast_log)
    n_fast = fast.run()

    # general path: an enabled tracer forces the per-event-branch loop
    slow_log = []
    slow = Simulator(tracer=Tracer())
    _storm(slow, slow_log)
    n_slow = slow.run()

    assert fast_log == slow_log
    assert n_fast == n_slow
    assert fast.now == slow.now
    assert fast.dispatched == slow.dispatched
    assert len(slow.tracer.records) == n_slow


def test_float_delays_still_round_up():
    sim = Simulator()
    seen = []
    sim.schedule(1.0001, lambda: seen.append(sim.now))
    sim.schedule(7.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [math.ceil(1.0001), math.ceil(7.5)] == [2, 8]


def test_int_delay_fast_path_has_no_float_roundtrip():
    sim = Simulator()
    big = 1 << 62  # above float precision: ceil(float(big)) would drift
    seen = []
    sim.schedule(big, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [big]


def test_dispatched_counter_flushed_on_callback_error():
    sim = Simulator()
    sim.schedule(1, lambda: None)

    def boom():
        raise RuntimeError("boom")

    sim.schedule(2, boom)
    try:
        sim.run()
    except RuntimeError:
        pass
    assert sim.dispatched == 2
    assert sim.now == 2
