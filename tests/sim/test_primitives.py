"""Unit tests for Event combinators and tracing."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Simulator, Tracer


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = Event(sim)
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_event_ok_flag():
    sim = Simulator()
    good = Event(sim).succeed(1)
    bad = Event(sim).fail(ValueError("x"))
    assert good.ok
    assert not bad.ok
    assert bad.triggered


def test_allof_waits_for_every_event():
    sim = Simulator()
    evs = [Event(sim) for _ in range(3)]
    seen = []

    def waiter():
        values = yield AllOf(sim, evs)
        seen.append((sim.now, values))

    sim.spawn(waiter())
    sim.schedule(10, evs[2].succeed, "c")
    sim.schedule(20, evs[0].succeed, "a")
    sim.schedule(30, evs[1].succeed, "b")
    sim.run()
    assert seen == [(30, ["a", "b", "c"])]


def test_allof_with_already_triggered_events():
    sim = Simulator()
    evs = [Event(sim).succeed(i) for i in range(3)]
    seen = []

    def waiter():
        values = yield AllOf(sim, evs)
        seen.append(values)

    sim.spawn(waiter())
    sim.run()
    assert seen == [[0, 1, 2]]


def test_allof_empty_list_resumes_immediately():
    sim = Simulator()
    seen = []

    def waiter():
        values = yield AllOf(sim, [])
        seen.append((sim.now, values))

    sim.spawn(waiter())
    sim.run()
    assert seen == [(0, [])]


def test_allof_propagates_failure():
    sim = Simulator()
    evs = [Event(sim), Event(sim)]
    caught = []

    def waiter():
        try:
            yield AllOf(sim, evs)
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    sim.schedule(5, evs[0].fail, ValueError("dead"))
    sim.run()
    assert caught == ["dead"]


def test_anyof_first_wins():
    sim = Simulator()
    evs = [Event(sim) for _ in range(3)]
    seen = []

    def waiter():
        idx, value = yield AnyOf(sim, evs)
        seen.append((sim.now, idx, value))

    sim.spawn(waiter())
    sim.schedule(15, evs[1].succeed, "winner")
    sim.schedule(20, evs[0].succeed, "loser")
    sim.run()
    assert seen == [(15, 1, "winner")]


def test_anyof_pre_triggered():
    sim = Simulator()
    evs = [Event(sim), Event(sim).succeed("ready")]
    seen = []

    def waiter():
        idx, value = yield AnyOf(sim, evs)
        seen.append((idx, value))

    sim.spawn(waiter())
    sim.run()
    assert seen == [(1, "ready")]


def test_tracer_collects_and_limits():
    tracer = Tracer(limit=2)
    tracer.record(1, "a", "x")
    tracer.record(2, "b", "y")
    tracer.record(3, "c", "z")  # beyond limit: dropped, tracer disabled
    assert len(tracer.records) == 2
    assert not tracer.enabled
    assert "a" in tracer.dump()
    tracer.clear()
    assert tracer.enabled
    assert tracer.records == []


def test_tracer_kind_filter():
    tracer = Tracer(kinds={"keep"})
    tracer.record(1, "keep", "x")
    tracer.record(1, "drop", "y")
    assert [r.kind for r in tracer.records] == ["keep"]


def test_simulator_with_tracer_records_dispatches():
    tracer = Tracer()
    sim = Simulator(tracer=tracer)
    sim.schedule(5, lambda: None)
    sim.run()
    assert any(r.kind == "dispatch" for r in tracer.records)
