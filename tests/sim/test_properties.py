"""Property-based tests (hypothesis) for the DES kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FluidQueue, Resource, Simulator


@given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 200)), max_size=40))
@settings(max_examples=60)
def test_dispatch_times_monotone(jobs):
    """The simulator clock never runs backwards."""
    sim = Simulator()
    times = []
    for when, _ in jobs:
        sim.schedule_at(when, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)


@given(st.lists(st.tuples(st.integers(0, 500), st.integers(1, 100)), min_size=1, max_size=30))
@settings(max_examples=60)
def test_fluid_queue_work_conservation(arrivals):
    """Total busy time equals total service; departures are ordered and
    never earlier than arrival + service."""
    arrivals = sorted(arrivals)
    sim = Simulator()
    q = FluidQueue(sim, "q")
    departures = []

    def issue(service):
        departures.append((sim.now, service, sim.now + q.latency(service)))

    for t, s in arrivals:
        sim.schedule_at(t, issue, s)
    sim.run()

    assert q.busy_cycles == sum(s for _, s in arrivals)
    last_dep = 0
    for arr, service, dep in departures:
        assert dep >= arr + service
        assert dep >= last_dep  # FCFS: departures in arrival order
        last_dep = dep


@given(
    st.lists(st.tuples(st.integers(0, 300), st.integers(1, 50)), min_size=1, max_size=25),
    st.integers(1, 4),
)
@settings(max_examples=40, deadline=None)
def test_resource_never_exceeds_capacity(jobs, capacity):
    """At no point do more than `capacity` holders overlap."""
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    active = {"n": 0, "max": 0}

    def worker(start, hold):
        yield sim.timeout(start)
        yield res.acquire()
        active["n"] += 1
        active["max"] = max(active["max"], active["n"])
        assert active["n"] <= capacity
        yield sim.timeout(hold)
        active["n"] -= 1
        res.release()

    for start, hold in jobs:
        sim.spawn(worker(start, hold))
    sim.run()
    assert active["n"] == 0
    assert active["max"] <= capacity


@given(st.lists(st.integers(1, 100), min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_fluid_queue_equals_resource_queue(services):
    """Analytic fluid queue departures == event-based FCFS departures
    for simultaneous arrivals."""
    sim = Simulator()
    q = FluidQueue(sim, "q")
    analytic = [q.latency(s) for s in services]

    sim2 = Simulator()
    res = Resource(sim2, capacity=1)
    event_based = []

    def job(service):
        yield res.acquire()
        yield sim2.timeout(service)
        res.release()
        event_based.append(sim2.now)

    for s in services:
        sim2.spawn(job(s))
    sim2.run()
    assert analytic == event_based
