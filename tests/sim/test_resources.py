"""Unit tests for resources, stores, and fluid queues."""

import pytest

from repro.sim import FluidQueue, PriorityResource, Resource, Simulator, Store


# --------------------------------------------------------------------- #
# Resource
# --------------------------------------------------------------------- #
def test_resource_serializes_holders():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def worker(tag, hold):
        yield res.acquire()
        log.append((sim.now, tag, "got"))
        yield sim.timeout(hold)
        res.release()

    sim.spawn(worker("a", 10))
    sim.spawn(worker("b", 10))
    sim.run()
    assert log == [(0, "a", "got"), (10, "b", "got")]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    log = []

    def worker(tag):
        yield res.acquire()
        log.append((sim.now, tag))
        yield sim.timeout(10)
        res.release()

    for tag in "abc":
        sim.spawn(worker(tag))
    sim.run()
    assert log == [(0, "a"), (0, "b"), (10, "c")]


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(tag):
        yield res.acquire()
        order.append(tag)
        yield sim.timeout(1)
        res.release()

    for tag in range(8):
        sim.spawn(worker(tag))
    sim.run()
    assert order == list(range(8))


def test_release_idle_resource_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_counters():
    sim = Simulator()
    res = Resource(sim, capacity=1, name="bus")

    def holder():
        yield res.acquire()
        yield sim.timeout(100)
        res.release()

    def waiter():
        yield sim.timeout(1)
        yield res.acquire()
        res.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run(until=50)
    assert res.in_use == 1
    assert res.queued == 1
    sim.run()
    assert res.in_use == 0
    assert res.queued == 0


# --------------------------------------------------------------------- #
# PriorityResource
# --------------------------------------------------------------------- #
def test_priority_resource_orders_waiters():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        yield res.acquire(priority=0)
        yield sim.timeout(10)
        res.release()

    def waiter(tag, prio, delay):
        yield sim.timeout(delay)
        yield res.acquire(priority=prio)
        order.append(tag)
        yield sim.timeout(1)
        res.release()

    sim.spawn(holder())
    # All three queue while the holder works; low priority value wins.
    sim.spawn(waiter("low-prio-value", 0, 1))
    sim.spawn(waiter("mid", 5, 2))
    sim.spawn(waiter("high-prio-value", 9, 3))
    sim.run()
    assert order == ["low-prio-value", "mid", "high-prio-value"]


def test_priority_resource_fifo_within_priority():
    sim = Simulator()
    res = PriorityResource(sim, capacity=1)
    order = []

    def holder():
        yield res.acquire()
        yield sim.timeout(10)
        res.release()

    def waiter(tag):
        yield sim.timeout(1)
        yield res.acquire(priority=3)
        order.append(tag)
        res.release()

    sim.spawn(holder())
    for tag in range(5):
        sim.spawn(waiter(tag))
    sim.run()
    assert order == list(range(5))


# --------------------------------------------------------------------- #
# Store
# --------------------------------------------------------------------- #
def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    store.put("msg")
    sim.spawn(consumer())
    sim.run()
    assert got == [(0, "msg")]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(40)
        store.put("late")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [(40, "late")]


def test_store_fifo_items_and_consumers():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    for tag in range(3):
        sim.spawn(consumer(tag))
    for item in "xyz":
        sim.schedule(5, store.put, item)
    sim.run()
    assert got == [(0, "x"), (1, "y"), (2, "z")]


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2


# --------------------------------------------------------------------- #
# FluidQueue
# --------------------------------------------------------------------- #
def test_fluid_queue_no_contention_latency_is_service():
    sim = Simulator()
    q = FluidQueue(sim, "bus")
    assert q.latency(100) == 100
    assert q.backlog == 100


def test_fluid_queue_back_to_back_requests_queue_up():
    sim = Simulator()
    q = FluidQueue(sim, "bus")
    assert q.latency(100) == 100
    assert q.latency(50) == 150  # waits behind the first
    assert q.latency(10) == 160


def test_fluid_queue_drains_with_time():
    sim = Simulator()
    q = FluidQueue(sim, "bus")
    q.latency(100)
    sim.schedule(100, lambda: None)
    sim.run()
    assert q.backlog == 0
    assert q.latency(10) == 10


def test_fluid_queue_partial_drain():
    sim = Simulator()
    q = FluidQueue(sim, "bus")
    q.latency(100)
    sim.schedule(60, lambda: None)
    sim.run()
    assert q.backlog == 40
    assert q.latency(10) == 50


def test_fluid_queue_bandwidth_transfer():
    sim = Simulator()
    q = FluidQueue(sim, "iobus", bytes_per_cycle=2.0)
    assert q.transfer(4096) == 2048
    assert q.service_cycles(4096) == 2048
    # service_cycles must not mutate state
    assert q.backlog == 2048


def test_fluid_queue_transfer_without_bandwidth_raises():
    sim = Simulator()
    q = FluidQueue(sim, "plain")
    with pytest.raises(RuntimeError):
        q.transfer(100)


def test_fluid_queue_negative_service_rejected():
    sim = Simulator()
    q = FluidQueue(sim, "bus")
    with pytest.raises(ValueError):
        q.latency(-5)


def test_fluid_queue_utilization_tracking():
    sim = Simulator()
    q = FluidQueue(sim, "bus")
    q.latency(30)
    sim.schedule(100, lambda: None)
    sim.run()
    assert q.requests == 1
    assert q.busy_cycles == 30
    assert q.utilization() == pytest.approx(0.3)
    q.reset_stats()
    assert q.busy_cycles == 0


def test_fluid_queue_matches_event_based_fcfs():
    """The analytic queue must agree with an explicit DES FCFS server."""
    arrivals = [(0, 70), (10, 20), (95, 30), (200, 5), (201, 50)]

    # analytic
    sim = Simulator()
    q = FluidQueue(sim, "bus")
    analytic_departures = []

    def issue(service):
        analytic_departures.append(sim.now + q.latency(service))

    for t, s in arrivals:
        sim.schedule_at(t, issue, s)
    sim.run()

    # event-based reference
    sim2 = Simulator()
    res = Resource(sim2, capacity=1)
    event_departures = []

    def job(service):
        yield res.acquire()
        yield sim2.timeout(service)
        res.release()
        event_departures.append(sim2.now)

    def arrive(service):
        sim2.spawn(job(service))

    for t, s in arrivals:
        sim2.schedule_at(t, arrive, s)
    sim2.run()

    assert analytic_departures == sorted(event_departures)
