"""Fabric TCP transport: broker, remote store, retry/backoff, degradation.

In-process coverage of :mod:`repro.core.fabric_net` — framing, the full
``LeaseStore`` surface over the wire, session-based liveness, the
retry/backoff + circuit-breaker client, broker crash recovery from its
append-only mint journal, and the coordinator's tcp→fs degradation.
Multi-process kill/stop/partition scenarios live in
``test_fabric_net_chaos.py``.
"""

import json
import socket
import threading
import time

import pytest

from repro.core import runcache
from repro.core.config import ClusterConfig
from repro.core.executor import Point
from repro.core.fabric import (
    FabricCoordinator,
    FabricTransportError,
    FabricWorker,
    LeaseStore,
    StaleFencingTokenError,
    sweep_status,
)
from repro.core.fabric_net import (
    ChaosProxy,
    FabricBroker,
    RemoteLeaseStore,
    make_lease_store,
    parse_addr,
    query_broker,
    recv_frame,
    send_frame,
)
from repro.core.sweeps import clear_caches

SCALE = 0.05


@pytest.fixture
def fresh(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "cp"))
    monkeypatch.setenv("REPRO_FABRIC_DIR", str(tmp_path / "fabric"))
    monkeypatch.delenv("REPRO_FABRIC_ADDR", raising=False)
    runcache.reset_disk_cache()
    clear_caches()
    yield tmp_path
    runcache.reset_disk_cache()
    clear_caches()


@pytest.fixture
def broker(fresh):
    b = FabricBroker(port=0).start()
    yield b
    b.stop()


def _client(broker_or_addr, sweep="net/unit", **kw):
    addr = getattr(broker_or_addr, "addr", broker_or_addr)
    kw.setdefault("rpc_timeout_s", 2.0)
    kw.setdefault("retry_budget_s", 2.0)
    kw.setdefault("backoff_base_s", 0.01)
    kw.setdefault("breaker_cooldown_s", 0.2)
    return RemoteLeaseStore(sweep, addr, **kw)


def _points(n=2):
    base = ClusterConfig()
    apps = ["fft", "lu", "radix", "ocean"]
    return [Point(apps[i % len(apps)], SCALE, base) for i in range(n)]


# --------------------------------------------------------------------- #
# framing + addresses
# --------------------------------------------------------------------- #
def test_frame_roundtrip_over_socketpair():
    a, b = socket.socketpair()
    try:
        payload = {"op": "ping", "nested": {"x": [1, 2, 3]}, "s": "é"}
        send_frame(a, payload)
        assert recv_frame(b) == payload
    finally:
        a.close()
        b.close()


def test_oversized_announced_frame_rejected():
    from repro.core.fabric_net import MAX_FRAME_BYTES, ProtocolError, _LEN

    a, b = socket.socketpair()
    try:
        a.sendall(_LEN.pack(MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="oversized"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_parse_addr():
    assert parse_addr("10.0.0.7:7341") == ("10.0.0.7", 7341)
    assert parse_addr(":7341") == ("127.0.0.1", 7341)
    assert parse_addr("7341") == ("127.0.0.1", 7341)
    with pytest.raises(ValueError, match="HOST:PORT"):
        parse_addr("nonsense:port")
    with pytest.raises(ValueError, match="0..65535"):
        parse_addr("host:70000")


# --------------------------------------------------------------------- #
# LeaseStore surface over the wire
# --------------------------------------------------------------------- #
def test_grid_roundtrip_over_tcp(broker):
    store = _client(broker)
    assert not store.exists
    keys = store.init_grid(_points(2))
    assert len(keys) == 2 and store.exists
    assert store.init_grid(_points(2)) == keys  # idempotent re-init
    loaded = store.load_grid()
    assert [k for k, _ in loaded] == keys
    assert loaded[0][1].app == "fft"
    assert loaded[0][1].config == ClusterConfig()
    # a different grid under the same name is refused, over the wire
    with pytest.raises(ValueError, match="different"):
        store.init_grid(_points(3))
    # ...and the broker mirrors the grid to its filesystem store
    assert LeaseStore("net/unit").exists


def test_claim_renew_release_lifecycle_over_tcp(broker):
    store = _client(broker)
    (key,) = store.init_grid(_points(1))
    lease = store.claim(key, "w1", ttl_s=30)
    assert lease is not None and lease.token == 1 and not lease.stolen
    assert lease.session == store.session  # broker-minted session id
    assert lease.pid == 0 and lease.pid_start is None
    assert store.claim(key, "w2", ttl_s=30) is None  # held
    renewed = store.renew(lease)
    assert renewed.expires_unix >= lease.expires_unix
    assert store.release(renewed, "done")
    assert store.read_lease(key).status == "done"
    assert store.current_token(key) == lease.token
    assert [le.key for le in store.leases()] == [key]


def test_stale_renew_raises_over_the_wire(broker):
    store = _client(broker)
    (key,) = store.init_grid(_points(1))
    lease = store.claim(key, "w1", ttl_s=0.01)
    time.sleep(0.05)
    stolen = store.claim(key, "w2", ttl_s=30)
    assert stolen is not None and stolen.stolen
    assert stolen.token > lease.token
    with pytest.raises(StaleFencingTokenError) as exc:
        store.renew(lease)
    assert exc.value.held_token == lease.token
    assert exc.value.current_token == stolen.token
    assert not store.release(lease, "done")  # stale release: no-op


def test_heartbeat_workers_and_rejections_over_tcp(broker):
    store = _client(broker)
    store.init_grid(_points(1))
    store.heartbeat("w1", phase="start")
    (record,) = store.workers()
    assert record["worker"] == "w1"
    assert record["session"] == store.session
    assert record["alive"] is True
    assert record["beat_age_s"] < 5.0
    store.record_rejection("deadbeef", 1, 2, "w1")
    (rej,) = store.rejections()
    assert rej["held_token"] == 1 and rej["current_token"] == 2
    assert len(store.claims()) == 0


def test_hostile_worker_id_rejected(broker):
    store = _client(broker)
    store.init_grid(_points(1))
    with pytest.raises(ValueError, match="worker id"):
        store.heartbeat("../escape", phase="start")


# --------------------------------------------------------------------- #
# session liveness
# --------------------------------------------------------------------- #
def test_quiet_session_lease_is_stolen_before_its_ttl(fresh):
    """A silent session (two missed heartbeats = 2/3 of the lease TTL)
    loses its lease *before* the lease's own TTL runs out."""
    broker = FabricBroker(port=0, session_ttl_s=0.3).start()
    try:
        holder = _client(broker)
        (key,) = holder.init_grid(_points(1))
        lease = holder.claim(key, "w1", ttl_s=1.8)  # session TTL -> 1.2s
        assert lease is not None
        time.sleep(1.4)  # silent past the session TTL, inside the lease TTL
        assert time.time() < lease.expires_unix, "lease must still be live"
        thief = _client(broker)
        # the exported lease already reads as expired for remote scans
        assert thief.read_lease(key).reclaimable()
        stolen = thief.claim(key, "w2", ttl_s=30)
        assert stolen is not None and stolen.stolen
        assert stolen.prev_token == lease.token
        # the old holder's late write is fenced, not accepted
        with pytest.raises(StaleFencingTokenError):
            holder.renew(lease)
    finally:
        broker.stop()


def test_active_session_with_long_ttl_is_not_stolen(fresh):
    """Claims stretch the session TTL to the lease TTL: a long-lease
    holder heartbeating at ttl/3 must never read as session-dead."""
    broker = FabricBroker(port=0, session_ttl_s=0.2).start()
    try:
        holder = _client(broker)
        (key,) = holder.init_grid(_points(1))
        assert holder.claim(key, "w1", ttl_s=30) is not None
        time.sleep(0.4)  # longer than the session TTL, shorter than lease
        thief = _client(broker)
        assert not thief.read_lease(key).reclaimable()
        assert thief.claim(key, "w2", ttl_s=30) is None
    finally:
        broker.stop()


# --------------------------------------------------------------------- #
# retry / backoff / circuit breaker
# --------------------------------------------------------------------- #
def test_rpc_retries_through_transient_connection_drops(broker):
    proxy = ChaosProxy(broker.addr, seed=7).start()
    try:
        store = _client(proxy.addr, retry_budget_s=5.0)
        keys = store.init_grid(_points(1))
        proxy.set_mode("drop")  # refuse every new connection for a while
        store.close()  # force the next RPC to reconnect through the proxy

        def heal():
            time.sleep(0.4)
            proxy.heal()

        healer = threading.Thread(target=heal)
        healer.start()
        lease = store.claim(keys[0], "w1", ttl_s=30)  # survives via retries
        healer.join()
        assert lease is not None
    finally:
        proxy.stop()


def test_blackhole_opens_breaker_then_half_open_probe_recovers(broker):
    proxy = ChaosProxy(broker.addr, seed=7).start()
    try:
        store = _client(
            proxy.addr,
            rpc_timeout_s=0.3,
            retry_budget_s=0.5,
            breaker_cooldown_s=0.2,
        )
        keys = store.init_grid(_points(1))
        proxy.partition()  # blackhole + sever the live connection
        with pytest.raises(FabricTransportError, match="unreachable"):
            store.read_lease(keys[0])
        # breaker open: the next call fails fast, without burning budget
        t0 = time.monotonic()
        with pytest.raises(FabricTransportError, match="circuit open"):
            store.read_lease(keys[0])
        assert time.monotonic() - t0 < 0.1
        # heal; after the cooldown one half-open probe closes the circuit
        proxy.heal()
        time.sleep(0.25)
        assert store.read_lease(keys[0]) is None
    finally:
        proxy.stop()


def test_worker_drains_cleanly_when_broker_vanishes(fresh):
    broker = FabricBroker(port=0).start()
    store = _client(broker, sweep="net/drain")
    store.init_grid(_points(2))
    broker.stop()
    worker = FabricWorker("net/drain", worker_id="w1", ttl_s=5.0, store=store)
    stats = worker.run()  # must return, not hang or raise
    assert stats["broker_lost"] == 1
    assert stats["computed"] == 0


# --------------------------------------------------------------------- #
# broker crash recovery: the mint journal
# --------------------------------------------------------------------- #
def test_broker_restart_never_reissues_a_minted_token(fresh):
    broker = FabricBroker(port=0).start()
    store = _client(broker, sweep="net/mint")
    keys = store.init_grid(_points(2))
    le1 = store.claim(keys[0], "w1", ttl_s=0.01)
    time.sleep(0.05)
    le2 = store.claim(keys[0], "w1", ttl_s=30)  # steal: mints again
    port = broker.port
    broker.stop()

    journal = broker.root / "net/mint" / "broker.jsonl"
    mints = [
        json.loads(line)["token"]
        for line in journal.read_text().splitlines()
        if json.loads(line).get("ev") == "mint"
    ]
    assert mints == [le1.token, le2.token]
    # simulate losing the fence counter in the crash: only the journal
    # remembers what was handed out
    (broker.root / "net/mint" / "fence.json").unlink()

    broker2 = FabricBroker(port=port).start()
    try:
        store2 = _client(broker2, sweep="net/mint")
        le3 = store2.claim(keys[1], "w2", ttl_s=30)
        assert le3.token > max(mints), "a journaled token was reissued"
        # the pre-crash lease state survived (mirrored to the fs store)
        assert store2.read_lease(keys[0]).token == le2.token
    finally:
        broker2.stop()


def test_recover_is_idempotent_when_fence_is_intact(fresh):
    broker = FabricBroker(port=0).start()
    store = _client(broker, sweep="net/recover")
    (key,) = store.init_grid(_points(1))
    lease = store.claim(key, "w1", ttl_s=30)
    port = broker.port
    broker.stop()
    broker2 = FabricBroker(port=port).start()
    try:
        store2 = _client(broker2, sweep="net/recover")
        time.sleep(0.0)
        # the held lease is intact and the next mint continues the count
        assert store2.read_lease(key).token == lease.token
        le2 = store2.claim(key, "w2", ttl_s=30)
        assert le2 is None  # still held: sessions unknown post-restart
    finally:
        broker2.stop()


# --------------------------------------------------------------------- #
# factory, env config, status plumbing
# --------------------------------------------------------------------- #
def test_make_lease_store_selects_transport(fresh, monkeypatch):
    assert make_lease_store("net/fac").transport == "fs"
    assert make_lease_store("net/fac", addr="127.0.0.1:7341").transport == "tcp"
    monkeypatch.setenv("REPRO_FABRIC_ADDR", "127.0.0.1:7341")
    store = make_lease_store("net/fac")
    assert store.transport == "tcp" and store.addr == "127.0.0.1:7341"


def test_client_env_overrides_must_be_numbers(fresh, monkeypatch):
    monkeypatch.setenv("REPRO_FABRIC_RETRY_BUDGET_S", "soon")
    with pytest.raises(ValueError, match="REPRO_FABRIC_RETRY_BUDGET_S"):
        RemoteLeaseStore("net/env", "127.0.0.1:7341")


def test_sweep_status_reports_tcp_transport_and_broker(broker):
    store = _client(broker, sweep="net/status")
    keys = store.init_grid(_points(2))
    store.claim(keys[0], "w1", ttl_s=30)
    store.heartbeat("w1", phase="start")
    st = sweep_status(store)
    assert st["transport"] == "tcp"
    assert st["broker"] == broker.addr
    assert st["leased"] == 1 and st["unclaimed"] == 1
    assert st["workers_alive"] == 1
    assert st["broker_orphaned"] == 0
    status = query_broker(broker.addr)
    assert "net/status" in status["sweeps"]
    assert any(not s["expired"] for s in status["sessions"])


def test_broker_orphans_counted_when_session_dies(fresh):
    broker = FabricBroker(port=0, session_ttl_s=0.2).start()
    try:
        store = _client(broker, sweep="net/orphan")
        keys = store.init_grid(_points(2))
        store.claim(keys[0], "w1", ttl_s=1.8)  # session TTL -> 1.2s
        time.sleep(1.4)  # session silence -> broker-orphaned lease
        observer = _client(broker, sweep="net/orphan")
        st = sweep_status(observer)
        assert st["orphaned"] == 1
        assert st["broker_orphaned"] == 1
    finally:
        broker.stop()


def test_coordinator_degrades_to_fs_when_broker_unreachable(fresh, capsys):
    store = RemoteLeaseStore(
        "net/degrade",
        "127.0.0.1:1",  # nothing listens on port 1
        rpc_timeout_s=0.2,
        retry_budget_s=0.2,
        breaker_cooldown_s=0.2,
    )
    coordinator = FabricCoordinator(
        "net/degrade", _points(1), n_workers=0, ttl_s=30.0, store=store
    )
    summary = coordinator.run()
    out = capsys.readouterr().out
    assert "broker unreachable" in out and "filesystem lease store" in out
    assert summary["degraded"] == "fs"
    assert summary["transport"] == "fs"
    assert not summary["failures"]
    assert coordinator.store.transport == "fs"
