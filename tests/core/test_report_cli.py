"""``repro report``: paper artifacts served from store rows, zero simulation.

The acceptance contract of the columnar store is that a committed paper
figure can be re-rendered *entirely* from ingested rows.  The main test
here poisons every simulation entry point — ``run_simulation``, the
memoizing ``cached_run``, the parallel executor and its per-point
worker — then migrates the committed ``results/`` outputs and asserts
``repro report figure01`` reproduces ``results/figure01.txt``
byte-identically with all of them booby-trapped.
"""

import pathlib

import pytest

from repro import cli
from repro.core.store import reset_result_store

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
RESULTS = REPO / "results"


@pytest.fixture
def isolated_store(tmp_path, monkeypatch):
    """Point the process-wide store at a private temp database."""
    monkeypatch.setenv("REPRO_STORE_PATH", str(tmp_path / "store.sqlite"))
    reset_result_store()
    yield
    reset_result_store()


@pytest.fixture
def poisoned_simulator(monkeypatch):
    """Make every route into the simulator explode on contact."""

    def boom(*a, **kw):
        raise AssertionError("report path must not simulate")

    monkeypatch.setattr("repro.core.run.run_simulation", boom)
    monkeypatch.setattr("repro.core.run_simulation", boom)
    monkeypatch.setattr("repro.core.sweeps.cached_run", boom)
    monkeypatch.setattr("repro.core.executor.run_points", boom)
    monkeypatch.setattr("repro.core.executor._compute_point_guarded", boom)


def _ingest_committed_results(capsys):
    rc = cli.main(["report", "ingest", "--results", str(RESULTS), "--scale", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "artifact figure01" in out
    return out


@pytest.mark.skipif(
    not (RESULTS / "figure01.txt").is_file(),
    reason="committed results/figure01.txt missing",
)
def test_figure01_byte_identical_without_simulation(
    isolated_store, poisoned_simulator, capsys
):
    _ingest_committed_results(capsys)
    rc = cli.main(["report", "figure01", "--scale", "1"])
    captured = capsys.readouterr()
    assert rc == 0
    committed = (RESULTS / "figure01.txt").read_text(encoding="utf-8")
    assert captured.out == committed  # byte-identical, not merely similar


def test_every_committed_table_round_trips(
    isolated_store, poisoned_simulator, capsys
):
    _ingest_committed_results(capsys)
    for txt_path in sorted(RESULTS.glob("*.txt")):
        if txt_path.stem == "ALL":
            continue
        rc = cli.main(["report", txt_path.stem, "--scale", "1"])
        captured = capsys.readouterr()
        assert rc == 0, f"{txt_path.stem} not served from the store"
        assert captured.out == txt_path.read_text(encoding="utf-8"), txt_path.stem


def test_missing_artifact_is_a_clean_error(isolated_store, capsys):
    rc = cli.main(["report", "figure01"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "no stored render" in captured.err
    assert "repro report ingest" in captured.err


def test_report_list_and_stats(isolated_store, capsys):
    rc = cli.main(["report"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "no stored experiment artifacts" in out

    _ingest_committed_results(capsys)
    rc = cli.main(["report", "list"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "figure01" in out

    rc = cli.main(["report", "stats"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "schema_version" in out


def test_report_diff_requires_versions(isolated_store, capsys):
    rc = cli.main(["report", "diff"])
    assert rc == 2
    assert "--model-version" in capsys.readouterr().err


def test_report_diff_from_history(isolated_store, capsys):
    from repro.core.store import result_store

    store = result_store()
    store.append_golden({"fft/hlrc/clean": {"digest": "a", "total_cycles": 1}},
                        model_version=3)
    store.append_golden({"fft/hlrc/clean": {"digest": "b", "total_cycles": 2}},
                        model_version=4)
    rc = cli.main(["report", "diff", "--model-version", "3", "4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "changed" in out
    assert "1 of 1 digest(s) differ" in out


def test_report_export_csv(isolated_store, tmp_path, capsys):
    _ingest_committed_results(capsys)
    out_file = tmp_path / "artifacts.csv"
    rc = cli.main([
        "report", "export", "--table", "artifacts", "--out", str(out_file),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "exported" in out
    assert out_file.read_text().splitlines()[0].startswith("id,experiment_id")


def test_report_disabled_store(isolated_store, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_RESULT_STORE", "0")
    reset_result_store()
    rc = cli.main(["report", "stats"])
    assert rc == 2
    assert "disabled" in capsys.readouterr().err


def test_report_ingest_runcache(isolated_store, tmp_path, monkeypatch, capsys):
    """Existing .runcache records migrate into the runs table."""
    from repro.core import runcache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    runcache.reset_disk_cache()
    try:
        from repro.apps import get_app
        from repro.core import ClusterConfig, run_simulation
        from repro.core.sweeps import cache_store

        cfg = ClusterConfig()
        trace = get_app(
            "fft", page_size=cfg.comm.page_size, scale=0.02, seed=cfg.seed
        )
        cache_store("fft", 0.02, cfg, run_simulation(trace, cfg))

        rc = cli.main(["report", "ingest", "--runcache", "--scale", "0.02"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 new run(s)" in out

        from repro.core.store import result_store

        rows = result_store().speedups(app="fft")
        assert len(rows) == 1
        assert rows[0]["scale"] == 0.02
    finally:
        runcache.reset_disk_cache()
