"""Tests for the interrupt-free protocol-processing modes (extension)."""

import pytest

from repro.apps import get_app
from repro.arch import CommParams
from repro.core import Cluster, ClusterConfig, run_simulation

SCALE = 0.3


def run_mode(app, mode, interrupt_cost=500, **kw):
    cfg = ClusterConfig().with_comm(
        protocol_processing=mode, interrupt_cost=interrupt_cost, **kw
    )
    return run_simulation(app, cfg)


@pytest.fixture(scope="module")
def app():
    return get_app("barnes-rebuild", scale=SCALE)


def test_mode_validation():
    with pytest.raises(ValueError):
        CommParams(protocol_processing="smoke-signals")
    with pytest.raises(ValueError):
        CommParams(poll_latency=-1)


def test_service_cpu_created_only_when_needed():
    assert Cluster(ClusterConfig()).nodes[0].service_cpu is None
    cfg = ClusterConfig().with_comm(protocol_processing="polling-dedicated")
    cluster = Cluster(cfg)
    for node in cluster.nodes:
        assert node.service_cpu is not None
        # the service CPU is not an application processor
        assert node.service_cpu not in cluster.procs


def test_polling_mode_raises_no_interrupts(app):
    r = run_mode(app, "polling-dedicated")
    assert r.meta["interrupts"] == 0
    assert r.speedup > 0


def test_ni_offload_raises_no_interrupts(app):
    r = run_mode(app, "ni-offload")
    assert r.meta["interrupts"] == 0


def test_polling_immune_to_interrupt_cost(app):
    cheap = run_mode(app, "polling-dedicated", interrupt_cost=0)
    dear = run_mode(app, "polling-dedicated", interrupt_cost=10000)
    assert dear.speedup == pytest.approx(cheap.speedup, rel=0.02)


def test_offload_immune_to_interrupt_cost(app):
    cheap = run_mode(app, "ni-offload", interrupt_cost=0)
    dear = run_mode(app, "ni-offload", interrupt_cost=10000)
    assert dear.speedup == pytest.approx(cheap.speedup, rel=0.02)


def test_interrupt_mode_crosses_below_polling(app):
    """With expensive interrupts, both alternatives win; with free
    interrupts, the base system is competitive."""
    intr_dear = run_mode(app, "interrupt", interrupt_cost=10000)
    poll = run_mode(app, "polling-dedicated", interrupt_cost=10000)
    offload = run_mode(app, "ni-offload", interrupt_cost=10000)
    assert poll.speedup > 1.2 * intr_dear.speedup
    assert offload.speedup > 1.2 * intr_dear.speedup

    intr_free = run_mode(app, "interrupt", interrupt_cost=0)
    assert intr_free.speedup > 0.85 * poll.speedup


def test_offload_pays_assist_overhead(app):
    fast_assist = run_mode(app, "ni-offload", assist_overhead=0)
    slow_assist = run_mode(app, "ni-offload", assist_overhead=8000)
    assert fast_assist.speedup > slow_assist.speedup


def test_poll_latency_costs(app):
    quick = run_mode(app, "polling-dedicated", poll_latency=0)
    sluggish = run_mode(app, "polling-dedicated", poll_latency=5000)
    assert quick.speedup > sluggish.speedup


def test_handlers_do_not_steal_app_time_in_polling_mode():
    app = get_app("fft", scale=SCALE)
    r = run_mode(app, "polling-dedicated")
    # all application processors report zero handler (stolen) time
    assert all(s.time["handler"] == 0 for s in r.proc_stats)


def test_equal_budget_polling_runs():
    app12 = get_app("fft", n_procs=12, scale=SCALE)
    cfg = ClusterConfig(total_procs=12).with_comm(
        procs_per_node=3, protocol_processing="polling-dedicated"
    )
    r = run_simulation(app12, cfg)
    assert r.n_procs == 12
    assert r.speedup > 0
