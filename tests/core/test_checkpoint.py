"""Sweep checkpoint journal: append/load, resume bookkeeping, executor wiring."""

import json

import pytest

from repro.core import runcache
from repro.core.checkpoint import (
    SweepCheckpoint,
    list_checkpoints,
    validate_sweep_name,
)
from repro.core.config import ClusterConfig
from repro.core.executor import run_points, set_default_checkpoint
from repro.core.sweeps import clear_caches

SCALE = 0.05


@pytest.fixture
def fresh(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "cp"))
    runcache.reset_disk_cache()
    clear_caches()
    yield tmp_path
    set_default_checkpoint(None)
    runcache.reset_disk_cache()
    clear_caches()


def _grid(n=3):
    base = ClusterConfig()
    return [
        ("lu", SCALE, base.with_comm(interrupt_cost=500 * i)) for i in range(n)
    ]


# --------------------------------------------------------------------- #
# journal mechanics
# --------------------------------------------------------------------- #
def test_record_load_roundtrip(fresh):
    cp = SweepCheckpoint("unit/roundtrip").open()
    cp.record("k1", "done", app="lu", scale=SCALE)
    cp.record("k2", "failed", kind="deadline", error="boom")
    records = cp.load()
    assert [r["key"] for r in records] == ["k1", "k2"]
    assert records[0]["status"] == "done" and records[0]["app"] == "lu"
    assert records[1]["kind"] == "deadline"
    assert cp.completed_keys() == {"k1"}
    assert cp.failed_keys() == {"k2"}


def test_record_is_idempotent_per_key_status(fresh):
    cp = SweepCheckpoint("unit/idem").open()
    cp.record("k", "done")
    cp.record("k", "done")
    assert len(cp.load()) == 1
    # a *status change* does append — last status wins on load
    cp.record("k", "failed")
    fresh_view = SweepCheckpoint("unit/idem")
    assert fresh_view.completed_keys() == set()
    assert fresh_view.failed_keys() == {"k"}


def test_torn_tail_is_skipped_not_fatal(fresh):
    cp = SweepCheckpoint("unit/torn").open()
    cp.record("k1", "done")
    cp.record("k2", "done")
    # simulate a kill mid-append: garbage half-line at the end
    with open(cp.journal_path, "ab") as fh:
        fh.write(b'{"key": "k3", "sta')
    reopened = SweepCheckpoint("unit/torn").open()
    assert reopened.completed_keys() == {"k1", "k2"}
    assert reopened.corrupt_lines == 1


def test_meta_written_once_and_finalized(fresh):
    cp = SweepCheckpoint("unit/meta").open(meta={"resume_cmd": "do it again"})
    assert cp.meta()["status"] == "running"
    assert cp.resume_hint() == "do it again"
    # reopening must not clobber the original meta
    SweepCheckpoint("unit/meta").open(meta={"resume_cmd": "clobbered"})
    assert cp.meta()["resume_cmd"] == "do it again"
    cp.finalize("interrupted")
    assert cp.meta()["status"] == "interrupted"
    assert json.loads(cp.meta_path.read_text())["sweep"] == "unit/meta"


@pytest.mark.parametrize("bad", ["", "../evil", "/abs", "a//b", "a\\b", ".hidden"])
def test_invalid_sweep_names_rejected(bad):
    with pytest.raises(ValueError):
        validate_sweep_name(bad)


def test_valid_sweep_names_pass():
    assert validate_sweep_name("run-all-s1.0/figure01") == "run-all-s1.0/figure01"
    assert validate_sweep_name("sweep-lu-host_overhead-s0.05")


def test_list_checkpoints_finds_nested_sweeps(fresh):
    SweepCheckpoint("solo").open()
    SweepCheckpoint("run-all-s1/figure01").open()
    names = [cp.name for cp in list_checkpoints()]
    assert "solo" in names and "run-all-s1/figure01" in names


# --------------------------------------------------------------------- #
# executor integration
# --------------------------------------------------------------------- #
def test_run_points_journals_every_outcome(fresh):
    grid = _grid()
    run_points(grid, jobs=1, checkpoint="itest/all-done")
    cp = SweepCheckpoint("itest/all-done")
    keys = {runcache.content_key(a, s, c) for a, s, c in grid}
    assert cp.completed_keys() == keys
    assert cp.meta()["model_version"] == runcache.MODEL_VERSION


def test_resume_serves_journaled_points_from_cache(fresh):
    grid = _grid()
    first = run_points(grid, jobs=1, checkpoint="itest/resume")
    clear_caches()  # drop memory layer; disk cache + journal survive
    cp = SweepCheckpoint("itest/resume")
    second = run_points(grid, jobs=1, checkpoint=cp)
    assert cp.resumed_points == len(grid)
    assert cp.recomputed_points == 0
    assert first == second  # bit-identical: same cached records


def test_journal_done_but_cache_missing_recomputes(fresh):
    grid = _grid()
    first = run_points(grid, jobs=1, checkpoint="itest/recompute")
    clear_caches(disk=True)  # the journal now "lies": done but no data
    cp = SweepCheckpoint("itest/recompute")
    second = run_points(grid, jobs=1, checkpoint=cp)
    assert cp.recomputed_points == len(grid)
    assert first == second  # deterministic simulation: same results anyway


def test_failed_points_are_journaled_failed(fresh):
    grid = [("lu", SCALE, ClusterConfig()), ("no-such-app", SCALE, ClusterConfig())]
    run_points(grid, jobs=1, retries=0, strict=False, checkpoint="itest/failures")
    cp = SweepCheckpoint("itest/failures")
    assert len(cp.completed_keys()) == 1
    failed = cp.failed_keys()
    assert failed == {runcache.content_key("no-such-app", SCALE, ClusterConfig())}
    rec = [r for r in cp.load() if r["status"] == "failed"][0]
    assert rec["kind"] == "error" and "unknown application" in rec["error"]


def test_default_checkpoint_wires_unmodified_callers(fresh):
    cp = SweepCheckpoint("itest/default").open()
    set_default_checkpoint(cp)
    try:
        run_points(_grid(2), jobs=1)  # no checkpoint argument at all
    finally:
        set_default_checkpoint(None)
    assert len(cp.completed_keys()) == 2
    note = cp.provenance_note()
    assert "2 point(s) journaled" in note


def test_parallel_run_journals_eagerly_and_completely(fresh):
    grid = _grid(4)
    run_points(grid, jobs=2, checkpoint="itest/parallel")
    cp = SweepCheckpoint("itest/parallel")
    assert cp.completed_keys() == {
        runcache.content_key(a, s, c) for a, s, c in grid
    }
    prog = cp.progress()
    assert prog["done"] == 4 and prog["failed"] == 0
