"""Kill-and-resume chaos tests: the acceptance gate for crash-safe sweeps.

A checkpointed sweep subprocess is killed mid-run (SIGKILL — no cleanup
of any kind), resumed, and its merged results must be *byte-identical*
to an uninterrupted run.  A second case sends SIGTERM and checks the
graceful drain: exit code 130, a one-line resume hint, no traceback.

``REPRO_CHAOS_POINT_DELAY_S`` stretches every computed point so the kill
reliably lands mid-sweep; the delay changes nothing about the results.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: driver executed as the sweep subprocess: runs a 6-point checkpointed
#: grid and writes a canonical JSON serialization of every result field.
CHILD = """
import dataclasses, json, pathlib, sys

from repro.core.config import ClusterConfig
from repro.core.executor import run_points

out_path = pathlib.Path(sys.argv[1])
base = ClusterConfig()
grid = [
    ("lu", 0.05, base.with_comm(interrupt_cost=c))
    for c in (0, 200, 400, 600, 800, 1000)
]
results = run_points(grid, jobs=2, checkpoint="chaos")
canon = json.dumps(
    [
        {
            "app": r.app_name,
            "config": dataclasses.asdict(r.config),
            "total_cycles": r.total_cycles,
            "serial_cycles": r.serial_cycles,
            "proc_stats": [
                {"time": s.time, "counters": sorted(s.counters.items())}
                for s in r.proc_stats
            ],
            "counters": dataclasses.asdict(r.counters),
            "meta": sorted(r.meta.items()),
        }
        for r in results
    ],
    sort_keys=True,
    default=repr,
)
out_path.write_text(canon)
"""

TOTAL_POINTS = 6


def _env(tmp: pathlib.Path, delay: str = "0") -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CACHE_DIR"] = str(tmp / "cache")
    env["REPRO_CHECKPOINT_DIR"] = str(tmp / "cp")
    env["REPRO_CHAOS_POINT_DELAY_S"] = delay
    env.pop("REPRO_JOBS", None)
    return env


def _journal_done(tmp: pathlib.Path, sweep: str = "chaos") -> int:
    path = tmp / "cp" / sweep / "journal.jsonl"
    try:
        raw = path.read_bytes()
    except OSError:
        return 0
    done = 0
    for line in raw.splitlines():
        try:
            rec = json.loads(line)
        except ValueError:
            continue  # torn tail mid-kill: exactly what load() tolerates
        if isinstance(rec, dict) and rec.get("status") == "done":
            done += 1
    return done


def _wait_for_partial_progress(proc, tmp, timeout=120.0):
    """Block until ≥1 point is journaled but the sweep is still incomplete."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            pytest.fail(
                "sweep subprocess finished before the kill landed "
                f"(rc={proc.returncode}); raise REPRO_CHAOS_POINT_DELAY_S"
            )
        done = _journal_done(tmp)
        if 1 <= done < TOTAL_POINTS:
            return done
        time.sleep(0.05)
    pytest.fail("no journal progress within timeout")


def _run_child(script: pathlib.Path, out: pathlib.Path, env: dict) -> None:
    subprocess.run(
        [sys.executable, str(script), str(out)],
        env=env,
        check=True,
        timeout=600,
        cwd=REPO_ROOT,
    )


def test_sigkill_then_resume_is_bit_identical(tmp_path):
    script = tmp_path / "chaos_child.py"
    script.write_text(CHILD)

    # --- reference: one uninterrupted run in its own cache/journal dirs
    ref_dir = tmp_path / "ref"
    ref_out = tmp_path / "ref.json"
    _run_child(script, ref_out, _env(ref_dir))

    # --- chaos: SIGKILL the sweep mid-run, then resume it
    chaos_dir = tmp_path / "chaos"
    chaos_out = tmp_path / "chaos.json"
    proc = subprocess.Popen(
        [sys.executable, str(script), str(chaos_out)],
        env=_env(chaos_dir, delay="1.0"),
        cwd=REPO_ROOT,
    )
    try:
        done_at_kill = _wait_for_partial_progress(proc, chaos_dir)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on test failure
            proc.kill()
    assert proc.returncode == -signal.SIGKILL
    assert not chaos_out.exists(), "killed run must not have produced output"
    # the journal survived the kill with the pre-kill progress intact
    assert _journal_done(chaos_dir) >= done_at_kill

    # --- resume: same command, no chaos delay needed the second time
    _run_child(script, chaos_out, _env(chaos_dir))
    assert _journal_done(chaos_dir) == TOTAL_POINTS
    assert chaos_out.read_bytes() == ref_out.read_bytes()


def test_sigterm_drains_and_prints_resume_hint(tmp_path):
    """Graceful shutdown through the CLI: exit 130 + hint, no traceback."""
    argv = [
        sys.executable,
        "-m",
        "repro",
        "sweep",
        "lu",
        "host_overhead",
        *[str(v) for v in (0, 300, 600, 900, 1200, 1500)],
        "--scale",
        "0.05",
        "--jobs",
        "2",
        "--checkpoint",
        "termsweep",
    ]
    proc = subprocess.Popen(
        argv,
        env=_env(tmp_path, delay="1.0"),
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                pytest.fail(
                    f"sweep finished before SIGTERM landed (rc={proc.returncode})"
                )
            if _journal_done(tmp_path, "termsweep") >= 1:
                break
            time.sleep(0.05)
        else:  # pragma: no cover - timing failure
            pytest.fail("no journal progress within timeout")
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on test failure
            proc.kill()
    assert proc.returncode == 130, f"stdout:\n{stdout}\nstderr:\n{stderr}"
    assert "resume with:" in stderr
    assert "python -m repro resume termsweep" in stderr
    assert "Traceback" not in stderr
    # everything journaled before/during the drain is real progress
    assert 1 <= _journal_done(tmp_path, "termsweep") <= TOTAL_POINTS
