"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_shows_apps_and_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fft" in out
    assert "barnes-rebuild" in out
    assert "figure09" in out
    assert "section10-processing" in out


def test_run_prints_summary_and_breakdown(capsys):
    assert main(["run", "lu", "--scale", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "Time breakdown" in out
    assert "compute" in out


def test_run_unknown_app_fails(capsys):
    assert main(["run", "doom", "--scale", "0.2"]) == 2
    assert "unknown application" in capsys.readouterr().err


def test_run_with_comm_overrides(capsys):
    rc = main(
        [
            "run",
            "water-sp",
            "--scale",
            "0.2",
            "--interrupt-cost",
            "0",
            "--procs-per-node",
            "8",
            "--protocol",
            "aurc",
            "--processing",
            "ni-offload",
        ]
    )
    assert rc == 0
    assert "water-sp" in capsys.readouterr().out


def test_sweep_prints_table(capsys):
    rc = main(
        ["sweep", "lu", "interrupt_cost", "0", "10000", "--scale", "0.2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "interrupt_cost" in out
    assert "speedup" in out


def test_sweep_float_param(capsys):
    rc = main(
        ["sweep", "lu", "io_bus_mb_per_mhz", "0.25", "2.0", "--scale", "0.2"]
    )
    assert rc == 0
    assert "0.25" in capsys.readouterr().out


def test_experiment_driver(capsys):
    rc = main(["experiment", "figure01", "--scale", "0.2", "--apps", "lu"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "figure01" in out
    assert "lu" in out


def test_experiment_unknown_id(capsys):
    assert main(["experiment", "figure99", "--scale", "0.2"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
