"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_shows_apps_and_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fft" in out
    assert "barnes-rebuild" in out
    assert "figure09" in out
    assert "section10-processing" in out


def test_run_prints_summary_and_breakdown(capsys):
    assert main(["run", "lu", "--scale", "0.2"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "Time breakdown" in out
    assert "compute" in out


def test_run_unknown_app_fails(capsys):
    assert main(["run", "doom", "--scale", "0.2"]) == 2
    assert "unknown application" in capsys.readouterr().err


def test_run_with_comm_overrides(capsys):
    rc = main(
        [
            "run",
            "water-sp",
            "--scale",
            "0.2",
            "--interrupt-cost",
            "0",
            "--procs-per-node",
            "8",
            "--protocol",
            "aurc",
            "--processing",
            "ni-offload",
        ]
    )
    assert rc == 0
    assert "water-sp" in capsys.readouterr().out


def test_sweep_prints_table(capsys):
    rc = main(
        ["sweep", "lu", "interrupt_cost", "0", "10000", "--scale", "0.2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "interrupt_cost" in out
    assert "speedup" in out


def test_sweep_float_param(capsys):
    rc = main(
        ["sweep", "lu", "io_bus_mb_per_mhz", "0.25", "2.0", "--scale", "0.2"]
    )
    assert rc == 0
    assert "0.25" in capsys.readouterr().out


def test_experiment_driver(capsys):
    rc = main(["experiment", "figure01", "--scale", "0.2", "--apps", "lu"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "figure01" in out
    assert "lu" in out


def test_experiment_unknown_id(capsys):
    assert main(["experiment", "figure99", "--scale", "0.2"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_unknown_app_lists_valid_choices(capsys):
    assert main(["run", "doom"]) == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1  # one-line error
    assert "valid:" in err and "fft" in err


def test_sweep_unknown_app_fails(capsys):
    assert main(["sweep", "doom", "host_overhead", "0", "500"]) == 2
    err = capsys.readouterr().err
    assert "unknown application" in err and "valid:" in err


def test_sweep_malformed_value_one_line_error(capsys):
    assert main(["sweep", "lu", "host_overhead", "0", "banana"]) == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert "invalid host_overhead value 'banana'" in err
    assert "expected an integer" in err


def test_malformed_jobs_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["sweep", "--jobs", "lots", "lu", "host_overhead", "0"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "invalid --jobs value 'lots'" in err
    assert "0 = all cores" in err


def test_negative_jobs_flag_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["experiment", "figure01", "--jobs", "-2"])
    assert "invalid --jobs value '-2'" in capsys.readouterr().err


def test_invalid_fault_probability_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["run", "lu", "--drop-prob", "1.5"])
    assert "invalid probability '1.5'" in capsys.readouterr().err


def test_invalid_config_value_friendly_error(capsys):
    # passes argparse, rejected by FaultParams validation -> error:, rc 2
    assert main(["run", "lu", "--scale", "0.05", "--retry-timeout", "0"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "retry_timeout" in err


def test_unknown_comm_regime_one_line_error(capsys):
    # no argparse choices=: rejected by CommParams validation -> error:, rc 2
    assert main(["run", "fft", "--scale", "0.05", "--comm-regime", "verbs"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "unknown comm_regime 'verbs'" in err
    assert "baseline" in err and "rdma" in err


def test_unknown_collective_one_line_error(capsys):
    assert main(["run", "fft", "--scale", "0.05", "--collective", "star"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "unknown collective 'star'" in err
    assert "flat" in err and "dissemination" in err


def test_run_with_rdma_regime_and_collective(capsys):
    rc = main(
        [
            "run",
            "fft",
            "--scale",
            "0.05",
            "--comm-regime",
            "rdma",
            "--collective",
            "dissemination",
        ]
    )
    assert rc == 0
    assert "fft" in capsys.readouterr().out


def test_list_includes_new_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "rdma_regime" in out
    assert "collectives" in out


def test_run_with_faults_enabled(capsys):
    rc = main(["run", "fft", "--scale", "0.05", "--drop-prob", "0.02"])
    assert rc == 0
    assert "fft" in capsys.readouterr().out


def test_list_includes_reliability(capsys):
    assert main(["list"]) == 0
    assert "reliability" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# fabric: distributed sweeps
# --------------------------------------------------------------------- #
@pytest.fixture
def fabric_env(tmp_path, monkeypatch):
    from repro.core import runcache
    from repro.core.sweeps import clear_caches

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "cp"))
    monkeypatch.setenv("REPRO_FABRIC_DIR", str(tmp_path / "fabric"))
    runcache.reset_disk_cache()
    clear_caches()
    yield tmp_path
    runcache.reset_disk_cache()
    clear_caches()


def test_fabric_start_degrades_to_serial_with_zero_workers(fabric_env, capsys):
    rc = main(["fabric", "start", "fft", "--scale", "0.05",
               "--workers", "0", "--name", "cli-test"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fabric sweep 'cli-test'" in out
    assert "1/1 done, 0 failed" in out


def test_fabric_status_and_resume_table(fabric_env, capsys):
    assert main(["fabric", "start", "fft", "--scale", "0.05",
                 "--workers", "0", "--name", "cli-test"]) == 0
    capsys.readouterr()
    assert main(["fabric", "status"]) == 0
    out = capsys.readouterr().out
    assert "cli-test" in out and "orphaned" in out
    # detailed view lists per-lease rows
    assert main(["fabric", "status", "cli-test"]) == 0
    out = capsys.readouterr().out
    assert "Leases" in out and "done" in out
    # the resume table shows lease/owner columns for fabric sweeps
    assert main(["resume"]) == 0
    out = capsys.readouterr().out
    assert "leased" in out and "orphaned" in out and "cli-test" in out


def test_fabric_status_empty(fabric_env, capsys):
    assert main(["fabric", "status"]) == 0
    assert "no fabric sweeps" in capsys.readouterr().out


def test_fabric_worker_unknown_sweep(fabric_env, capsys):
    assert main(["fabric", "worker", "nope"]) == 2
    assert "no fabric sweep" in capsys.readouterr().err


def test_fabric_worker_joins_existing_sweep(fabric_env, capsys):
    from repro.core.config import ClusterConfig
    from repro.core.executor import Point
    from repro.core.fabric import LeaseStore

    LeaseStore("cli-join").init_grid([Point("fft", 0.05, ClusterConfig())])
    assert main(["fabric", "worker", "cli-join", "--id", "wx"]) == 0
    out = capsys.readouterr().out
    assert "worker wx: 1 computed" in out
