"""Executor failure handling: per-point capture, retries, strict mode."""

import pytest

from repro.core import runcache
from repro.core.config import ClusterConfig
from repro.core.executor import (
    GridExecutionError,
    Point,
    PointFailure,
    resolve_retries,
    run_points,
)
from repro.core.metrics import RunResult
from repro.core.sweeps import cached_lookup, clear_caches

SCALE = 0.05

#: a point that always fails: get_app raises "unknown application"
POISON = ("no-such-app", SCALE, ClusterConfig())


@pytest.fixture
def fresh(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_POINT_RETRIES", raising=False)
    runcache.reset_disk_cache()
    clear_caches()
    yield
    runcache.reset_disk_cache()
    clear_caches()


def _mixed_grid():
    return [("fft", SCALE, ClusterConfig()), POISON, ("lu", SCALE, ClusterConfig())]


@pytest.mark.parametrize("jobs", [1, 2])
def test_non_strict_returns_partial_results(fresh, jobs):
    results = run_points(_mixed_grid(), jobs=jobs, strict=False)
    assert isinstance(results[0], RunResult) and results[0].app_name == "fft"
    assert isinstance(results[2], RunResult) and results[2].app_name == "lu"
    failure = results[1]
    assert isinstance(failure, PointFailure)
    assert failure.point == Point(*POISON)
    assert "unknown application" in failure.error
    assert "ValueError" in failure.error
    assert "Traceback" in failure.traceback
    assert failure.attempts == 2  # first try + default 1 retry
    assert isinstance(failure.exception, ValueError)


@pytest.mark.parametrize("jobs", [1, 2])
def test_strict_raises_after_completing_in_flight_work(fresh, jobs):
    with pytest.raises(GridExecutionError) as exc:
        run_points(_mixed_grid(), jobs=jobs, strict=True)
    assert len(exc.value.failures) == 1
    assert "no-such-app" in str(exc.value)
    # the healthy points were still computed and cached before the raise
    assert cached_lookup("fft", SCALE, ClusterConfig()) is not None
    assert cached_lookup("lu", SCALE, ClusterConfig()) is not None


def test_retries_zero_single_attempt(fresh):
    results = run_points([POISON], jobs=1, retries=0, strict=False)
    assert results[0].attempts == 1


def test_retries_env_override(fresh, monkeypatch):
    monkeypatch.setenv("REPRO_POINT_RETRIES", "3")
    assert resolve_retries() == 3
    assert resolve_retries(0) == 0  # explicit beats env
    results = run_points([POISON], jobs=1, strict=False)
    assert results[0].attempts == 4


def test_resolve_retries_ignores_garbage_env(monkeypatch):
    monkeypatch.setenv("REPRO_POINT_RETRIES", "many")
    assert resolve_retries() == 1


def test_failures_are_not_cached(fresh):
    run_points([POISON], jobs=2, strict=False, retries=0)
    assert cached_lookup(*POISON) is None


def test_all_points_failing_still_structured(fresh):
    grid = [POISON, ("also-missing", SCALE, ClusterConfig())]
    with pytest.raises(GridExecutionError) as exc:
        run_points(grid, jobs=2, retries=0)
    assert len(exc.value.failures) == 2


def test_grid_error_message_is_bounded(fresh):
    """A 1000-point failed grid must not produce a 1000-line exception."""
    from repro.core.executor import MAX_SUMMARIZED_FAILURES

    n = MAX_SUMMARIZED_FAILURES + 5
    grid = [(f"missing-app-{i}", SCALE, ClusterConfig()) for i in range(n)]
    with pytest.raises(GridExecutionError) as exc:
        run_points(grid, jobs=2, retries=0)
    message = str(exc.value)
    assert len(exc.value.failures) == n  # nothing dropped from the data
    assert message.count("  - missing-app-") == MAX_SUMMARIZED_FAILURES
    assert "... and 5 more failures (all carried in .failures)" in message


def test_small_failed_grid_message_is_complete(fresh):
    grid = [POISON, ("also-missing", SCALE, ClusterConfig())]
    with pytest.raises(GridExecutionError) as exc:
        run_points(grid, jobs=1, retries=0)
    message = str(exc.value)
    assert "no-such-app" in message and "also-missing" in message
    assert "more failure" not in message
