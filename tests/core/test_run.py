"""Integration tests for run_simulation and RunResult."""

import pytest

from repro.apps import get_app
from repro.apps.base import AppTrace
from repro.core import ClusterConfig, RunResult, geometric_mean, run_simulation


@pytest.fixture(scope="module")
def fft_result():
    return run_simulation(get_app("fft", scale=0.25), ClusterConfig())


def test_run_produces_sane_result(fft_result):
    r = fft_result
    assert r.app_name == "fft"
    assert r.total_cycles > 0
    assert 0 < r.speedup < 16
    assert r.speedup < r.ideal_speedup
    assert r.n_procs == 16


def test_time_breakdown_accounts_most_wall_time(fft_result):
    bd = fft_result.time_breakdown()
    assert all(v >= 0 for v in bd.values())
    assert bd["compute"] > 0
    # Aggregate busy+wait time is within [P/2, ~P] x wall time
    total = sum(bd.values())
    assert total <= fft_result.total_cycles * 17
    assert total >= fft_result.total_cycles * 4


def test_breakdown_fractions_sum_to_one(fft_result):
    fr = fft_result.breakdown_fractions()
    assert sum(fr.values()) == pytest.approx(1.0)


def test_rates_positive(fft_result):
    assert fft_result.messages_per_proc_per_mcycle > 0
    assert fft_result.mbytes_per_proc_per_mcycle > 0
    assert fft_result.per_proc_per_mcycle("page_fetches") > 0


def test_meta_collected(fft_result):
    assert fft_result.meta["network_messages"] > 0
    assert fft_result.meta["interrupts"] > 0
    assert fft_result.meta["sim_events"] > 0


def test_summary_renders(fft_result):
    text = fft_result.summary()
    assert "fft" in text
    assert "speedup" in text


def test_mismatched_proc_count_rejected():
    app = get_app("fft", n_procs=8, scale=0.25)
    with pytest.raises(ValueError, match="8 processors"):
        run_simulation(app, ClusterConfig())


def test_unknown_event_kind_rejected():
    app = AppTrace(
        name="bogus", n_procs=16, events=[[("z", 1)]] + [[] for _ in range(15)],
        serial_cycles=100,
        shared_bytes=0,
    )
    with pytest.raises(Exception):
        run_simulation(app, ClusterConfig())


def test_runs_are_deterministic():
    app = get_app("radix", scale=0.2)
    r1 = run_simulation(app, ClusterConfig())
    r2 = run_simulation(app, ClusterConfig())
    assert r1.total_cycles == r2.total_cycles
    assert r1.counters.page_fetches == r2.counters.page_fetches


def test_aurc_and_hlrc_both_run():
    app = get_app("ocean", scale=0.3)
    h = run_simulation(app, ClusterConfig(protocol="hlrc"))
    a = run_simulation(app, ClusterConfig(protocol="aurc"))
    assert h.total_cycles > 0 and a.total_cycles > 0
    assert a.counters.diffs_created == 0


def test_slowdown_vs():
    app = get_app("fft", scale=0.2)
    fast = run_simulation(app, ClusterConfig().with_comm(io_bus_mb_per_mhz=2.0))
    slow = run_simulation(app, ClusterConfig().with_comm(io_bus_mb_per_mhz=0.25))
    assert slow.slowdown_vs(fast) > 0
    assert fast.slowdown_vs(slow) < 0


def test_geometric_mean():
    assert geometric_mean([4.0, 1.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_best_config_beats_achievable():
    from repro.arch import BEST

    app = get_app("water-nsq", scale=0.3)
    achievable = run_simulation(app, ClusterConfig())
    best = run_simulation(app, ClusterConfig(comm=BEST))
    assert best.speedup > achievable.speedup
