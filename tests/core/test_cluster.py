"""Unit tests for cluster assembly."""

from repro.arch import CommParams
from repro.core import Cluster, ClusterConfig
from repro.protocol import AURCProtocol, HLRCProtocol


def test_cluster_builds_nodes_and_procs():
    cluster = Cluster(ClusterConfig())
    assert cluster.n_nodes == 4
    assert cluster.n_procs == 16
    for node in cluster.nodes:
        assert len(node.cpus) == 4
        assert node.nic.node_id == node.node_id
        assert node.cpus[0].node is node


def test_global_ids_sequential_across_nodes():
    cluster = Cluster(ClusterConfig())
    assert [c.global_id for c in cluster.procs] == list(range(16))
    assert cluster.node_of(0).node_id == 0
    assert cluster.node_of(5).node_id == 1
    assert cluster.node_of(15).node_id == 3


def test_protocol_selection():
    assert isinstance(Cluster(ClusterConfig()).protocol, HLRCProtocol)
    assert isinstance(
        Cluster(ClusterConfig(protocol="aurc")).protocol, AURCProtocol
    )


def test_nic_hooks_wired():
    cluster = Cluster(ClusterConfig())
    for node in cluster.nodes:
        assert node.nic.on_request is not None
        assert node.nic.on_queue_overflow is not None


def test_uniprocessor_node_cluster():
    cfg = ClusterConfig(comm=CommParams(procs_per_node=1), total_procs=16)
    cluster = Cluster(cfg)
    assert cluster.n_nodes == 16
    assert all(len(n.cpus) == 1 for n in cluster.nodes)


def test_single_node_smp():
    cfg = ClusterConfig(comm=CommParams(procs_per_node=16), total_procs=16)
    cluster = Cluster(cfg)
    assert cluster.n_nodes == 1


def test_directory_uses_config_page_size():
    cfg = ClusterConfig(comm=CommParams(page_size=8192))
    cluster = Cluster(cfg)
    assert cluster.directory.page_size == 8192
