"""Combinatorial smoke tests: every protocol x processing-mode x NI-count
combination must run to completion with sane output (features compose)."""

import pytest

from repro.apps import get_app
from repro.arch import CommParams
from repro.core import ClusterConfig, run_simulation

SCALE = 0.2


@pytest.fixture(scope="module")
def app():
    return get_app("water-nsq", scale=SCALE)


@pytest.mark.parametrize("protocol", ["hlrc", "aurc"])
@pytest.mark.parametrize(
    "processing", ["interrupt", "polling-dedicated", "ni-offload"]
)
@pytest.mark.parametrize("nis", [1, 2])
def test_feature_combination(app, protocol, processing, nis):
    cfg = ClusterConfig(protocol=protocol).with_comm(
        protocol_processing=processing, nis_per_node=nis
    )
    r = run_simulation(app, cfg)
    assert r.total_cycles > 0
    assert 0 < r.speedup <= r.ideal_speedup + 0.5
    c = r.counters
    assert c.barriers == 16 * app.events[0].count(("b", 1)) or c.barriers > 0
    if protocol == "aurc":
        assert c.diffs_created == 0
    if processing != "interrupt":
        assert r.meta["interrupts"] == 0


@pytest.mark.parametrize("scheme", ["fixed", "round_robin"])
@pytest.mark.parametrize("page_size", [1024, 16384])
def test_scheme_and_page_size_combinations(scheme, page_size):
    app = get_app("raytrace", page_size=page_size, scale=SCALE)
    cfg = ClusterConfig().with_comm(
        interrupt_scheme=scheme, page_size=page_size
    )
    r = run_simulation(app, cfg)
    assert r.total_cycles > 0


def test_uniprocessor_node_with_all_modes():
    app = get_app("lu", scale=SCALE)
    for processing in ("interrupt", "polling-dedicated", "ni-offload"):
        cfg = ClusterConfig(
            comm=CommParams(procs_per_node=1, protocol_processing=processing),
            total_procs=16,
        )
        r = run_simulation(app, cfg)
        assert r.total_cycles > 0
