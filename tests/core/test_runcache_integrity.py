"""Run-cache integrity: checksummed envelopes, quarantine, advisory locking."""

import pickle

import pytest

from repro.core import runcache
from repro.core.config import ClusterConfig
from repro.core.fslock import LockTimeout, file_lock, lock_holder
from repro.core.metrics import RunResult
from repro.core.sweeps import cached_run

SCALE = 0.05


@pytest.fixture
def cache(tmp_path):
    return runcache.DiskCache(tmp_path / "rc")


def _result() -> RunResult:
    # served from the session-level run cache after the first call
    return cached_run("lu", SCALE, ClusterConfig())


def _record(cache: runcache.DiskCache, key: str = "k" * 8) -> str:
    cache.put(key, _result())
    return key


# --------------------------------------------------------------------- #
# quarantine on corruption
# --------------------------------------------------------------------- #
def test_roundtrip_ok(cache):
    key = _record(cache)
    got = cache.get(key)
    assert got is not None and got.app_name == "lu"
    assert cache.hits == 1 and cache.quarantined == 0


def test_garbage_bytes_quarantined_not_crash(cache):
    key = _record(cache)
    path = cache._path(key)
    path.write_bytes(b"not a pickle at all")
    assert cache.get(key) is None  # a miss, never an exception
    assert cache.quarantined == 1
    assert not path.exists()
    assert (cache.quarantine_dir / path.name).exists()


def test_truncated_record_quarantined(cache):
    key = _record(cache)
    path = cache._path(key)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    assert cache.get(key) is None
    assert (cache.quarantine_dir / path.name).exists()


def test_checksum_mismatch_quarantined(cache):
    """A well-formed envelope whose payload no longer matches its sha256 —
    the exact signature of silent bit-rot — must never be handed back."""
    key = _record(cache)
    path = cache._path(key)
    with open(path, "rb") as fh:
        envelope = pickle.load(fh)
    payload = bytearray(envelope["payload"])
    payload[len(payload) // 2] ^= 0xFF  # flip one byte mid-payload
    envelope["payload"] = bytes(payload)
    with open(path, "wb") as fh:
        pickle.dump(envelope, fh)
    assert cache.get(key) is None
    assert cache.quarantined == 1
    assert (cache.quarantine_dir / path.name).exists()


def test_stale_version_is_miss_but_not_quarantined(cache):
    key = _record(cache)
    path = cache._path(key)
    with open(path, "rb") as fh:
        envelope = pickle.load(fh)
    envelope["model_version"] = runcache.MODEL_VERSION - 1
    with open(path, "wb") as fh:
        pickle.dump(envelope, fh)
    assert cache.get(key) is None
    assert cache.quarantined == 0
    assert path.exists()  # valid history stays in place


def test_poisoned_record_recovers_on_rewrite(cache):
    key = _record(cache)
    cache._path(key).write_bytes(b"\x00" * 32)
    assert cache.get(key) is None  # quarantined
    cache.put(key, _result())  # a recompute rewrites the slot
    assert cache.get(key) is not None


# --------------------------------------------------------------------- #
# cache verify (the `repro cache verify` audit)
# --------------------------------------------------------------------- #
def test_verify_counts_every_disposition(cache):
    ok_key = _record(cache, "a" * 8)
    bad_key = _record(cache, "b" * 8)
    stale_key = _record(cache, "c" * 8)
    cache._path(bad_key).write_bytes(b"rot")
    with open(cache._path(stale_key), "rb") as fh:
        envelope = pickle.load(fh)
    envelope["format"] = 1
    with open(cache._path(stale_key), "wb") as fh:
        pickle.dump(envelope, fh)

    report = cache.verify()
    assert report["ok"] == 1 and report["stale"] == 1
    assert report["quarantined"] == 1
    assert report["quarantined_files"] == [cache._path(bad_key).name]
    assert cache.get(ok_key) is not None
    # a second audit is clean: the corrupt record is already moved aside
    assert cache.verify()["quarantined"] == 0


def test_stats_reports_quarantine_depth(cache):
    key = _record(cache)
    cache._path(key).write_bytes(b"rot")
    cache.get(key)
    stats = cache.stats()
    assert stats["session_quarantined"] == 1
    assert stats["in_quarantine"] == 1


def test_clear_empties_quarantine_too(cache):
    key = _record(cache)
    cache._path(key).write_bytes(b"rot")
    cache.get(key)
    cache.clear()
    assert cache.entries() == []
    assert list(cache.quarantine_dir.glob("*.pkl")) == []


# --------------------------------------------------------------------- #
# advisory locking
# --------------------------------------------------------------------- #
def test_file_lock_mutual_exclusion(tmp_path):
    lock = tmp_path / ".lock"
    with file_lock(lock):
        with pytest.raises(LockTimeout):
            with file_lock(lock, timeout=0.2):
                pass  # pragma: no cover - must not be reached


def test_lock_timeout_names_the_holder(tmp_path):
    import os

    lock = tmp_path / ".lock"
    with file_lock(lock):
        assert lock_holder(lock) == os.getpid()
        with pytest.raises(LockTimeout) as exc:
            with file_lock(lock, timeout=0.2):
                pass  # pragma: no cover
        assert str(os.getpid()) in str(exc.value)


def test_stale_lock_file_is_not_a_held_lock(tmp_path):
    """flock dies with its holder: a leftover lock *file* (e.g. after
    SIGKILL) must acquire instantly — no manual cleanup step."""
    lock = tmp_path / ".lock"
    lock.write_text("999999\n")  # plausible-looking dead pid
    with file_lock(lock, timeout=0.5):
        assert lock_holder(lock) != 999999  # rewritten to the live holder


def test_lock_holder_unreadable_is_none(tmp_path):
    assert lock_holder(tmp_path / "missing") is None
    bad = tmp_path / "bad"
    bad.write_text("not-a-pid")
    assert lock_holder(bad) is None
