"""Per-point resource guards: wall-clock deadline and RSS ceiling.

The chaos hooks (``REPRO_CHAOS_POINT_DELAY_S`` / ``REPRO_CHAOS_POINT_ALLOC_MB``)
run *inside* the guarded region, so a breach is provoked deterministically
without depending on how slow or memory-hungry a real simulation is.
"""

import pytest

from repro.core import runcache
from repro.core.config import ClusterConfig
from repro.core.executor import (
    PointFailure,
    resolve_deadline,
    resolve_rss_limit,
    run_points,
)
from repro.core.metrics import RunResult
from repro.core.sweeps import clear_caches

SCALE = 0.05
POINT = ("lu", SCALE, ClusterConfig())


@pytest.fixture
def fresh(tmp_path, monkeypatch):
    """Guards only apply to *computed* points, so force a cache miss."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_POINT_DEADLINE_S", raising=False)
    monkeypatch.delenv("REPRO_POINT_RSS_MB", raising=False)
    runcache.reset_disk_cache()
    clear_caches()
    yield
    runcache.reset_disk_cache()
    clear_caches()


def test_deadline_breach_is_retriable_failure(fresh, monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS_POINT_DELAY_S", "5.0")
    results = run_points([POINT], jobs=1, retries=1, strict=False, deadline_s=0.2)
    failure = results[0]
    assert isinstance(failure, PointFailure)
    assert failure.kind == "deadline"
    assert failure.attempts == 2  # the breach went through the retry loop
    assert "[deadline]" in str(failure)


def test_rss_breach_is_retriable_failure(fresh, monkeypatch):
    # ballast far above the ceiling: the allocation itself must fail
    monkeypatch.setenv("REPRO_CHAOS_POINT_ALLOC_MB", "16384")
    results = run_points([POINT], jobs=1, retries=0, strict=False, rss_mb=1024)
    failure = results[0]
    assert isinstance(failure, PointFailure)
    assert failure.kind == "rss"
    assert "MemoryError" in failure.error


def test_guarded_point_still_succeeds_within_limits(fresh):
    results = run_points([POINT], jobs=1, deadline_s=300.0, rss_mb=16384)
    assert isinstance(results[0], RunResult)
    # and the guard was torn down: a follow-up unguarded run is unaffected
    clear_caches(disk=True)
    assert isinstance(run_points([POINT], jobs=1)[0], RunResult)


def test_breached_point_is_not_cached(fresh, monkeypatch):
    from repro.core.sweeps import cached_lookup

    monkeypatch.setenv("REPRO_CHAOS_POINT_DELAY_S", "5.0")
    run_points([POINT], jobs=1, retries=0, strict=False, deadline_s=0.2)
    assert cached_lookup(*POINT) is None


def test_resolve_guard_envs(monkeypatch):
    assert resolve_deadline() is None
    assert resolve_rss_limit() is None
    monkeypatch.setenv("REPRO_POINT_DEADLINE_S", "12.5")
    monkeypatch.setenv("REPRO_POINT_RSS_MB", "256")
    assert resolve_deadline() == 12.5
    assert resolve_rss_limit() == 256
    assert resolve_deadline(3.0) == 3.0  # explicit beats env
    assert resolve_rss_limit(512) == 512
    monkeypatch.setenv("REPRO_POINT_DEADLINE_S", "garbage")
    monkeypatch.setenv("REPRO_POINT_RSS_MB", "-1")
    assert resolve_deadline() is None
    assert resolve_rss_limit() is None
