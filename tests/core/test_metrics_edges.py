"""Edge-case tests for RunResult metrics."""

import pytest

from repro.arch.processor import ProcessorStats
from repro.core import ClusterConfig, RunResult
from repro.protocol import ProtocolCounters


def make_result(n_procs=2, compute=1_000_000, total=500_000, serial=4_000_000):
    stats = []
    for _ in range(n_procs):
        s = ProcessorStats()
        s.add("compute", compute)
        s.add("data_wait", compute // 10)
        s.count("messages_sent", 10)
        s.count("bytes_sent", 1 << 20)
        stats.append(s)
    return RunResult(
        app_name="synthetic",
        problem="",
        config=ClusterConfig(
            comm=ClusterConfig().comm.replace(procs_per_node=2), total_procs=n_procs
        ),
        total_cycles=total,
        serial_cycles=serial,
        proc_stats=stats,
        counters=ProtocolCounters(),
        uncontended_busy_max=compute,
    )


def test_speedup_definition():
    r = make_result()
    assert r.speedup == pytest.approx(4_000_000 / 500_000)


def test_ideal_uses_uncontended_busy():
    r = make_result()
    assert r.ideal_speedup == pytest.approx(4.0)


def test_ideal_falls_back_to_measured_busy():
    r = make_result()
    r.uncontended_busy_max = 0
    # measured busy = compute + local_stall = 1_000_000
    assert r.ideal_speedup == pytest.approx(4.0)


def test_rates_per_mcycle():
    r = make_result()
    # 10 messages per proc over 1 Mcycle of compute
    assert r.messages_per_proc_per_mcycle == pytest.approx(10.0)
    assert r.mbytes_per_proc_per_mcycle == pytest.approx(1.0)


def test_rates_survive_zero_compute():
    r = make_result(compute=0)
    assert r.messages_per_proc_per_mcycle >= 0  # no division crash


def test_unknown_counter_is_zero():
    r = make_result()
    assert r.per_proc_per_mcycle("nonexistent") == 0.0


def test_time_breakdown_totals():
    r = make_result()
    bd = r.time_breakdown()
    assert bd["compute"] == 2_000_000
    assert bd["data_wait"] == 200_000
    fr = r.breakdown_fractions()
    assert sum(fr.values()) == pytest.approx(1.0)


def test_slowdown_vs_symmetry():
    fast = make_result(total=400_000)
    slow = make_result(total=800_000)
    assert slow.slowdown_vs(fast) == pytest.approx(0.5)
    assert fast.slowdown_vs(slow) == pytest.approx(-1.0)


def test_summary_contains_key_fields():
    text = make_result().summary()
    assert "synthetic" in text
    assert "ideal" in text
