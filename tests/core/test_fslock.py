"""fslock staleness: PID-reuse-proof holder identification."""

import os
import subprocess
import sys

import pytest

from repro.core import fslock


def test_process_start_time_of_self_matches_proc():
    start = fslock.process_start_time(os.getpid())
    if start is None:
        pytest.skip("no /proc on this platform")
    with open(f"/proc/{os.getpid()}/stat", "rb") as fh:
        raw = fh.read()
    assert str(start).encode() in raw[raw.rindex(b")") :]
    assert start > 0


def test_process_start_time_of_dead_pid_is_none():
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    assert fslock.process_start_time(proc.pid) is None


def test_is_process_alive_self():
    pid, start = fslock.process_identity()
    assert pid == os.getpid()
    assert fslock.is_process_alive(pid, start)


def test_recycled_pid_counts_as_dead():
    """A live PID with a mismatched start time is a *different* process."""
    pid, start = fslock.process_identity()
    if start is None:
        pytest.skip("no /proc on this platform")
    assert not fslock.is_process_alive(pid, start + 12345)


def test_lock_holder_reads_pid_and_start(tmp_path):
    path = tmp_path / ".lock"
    with fslock.file_lock(path):
        assert fslock.lock_holder(path) == os.getpid()
    # after release the recorded identity is still this (live) process
    assert fslock.lock_holder(path) == os.getpid()


def test_lock_holder_rejects_recycled_pid(tmp_path):
    """The wedge scenario: lock file names a live PID that belongs to a
    *recycled* identity — must read as stale, not as a live holder."""
    start = fslock.process_start_time(os.getpid())
    if start is None:
        pytest.skip("no /proc on this platform")
    path = tmp_path / ".lock"
    path.write_text(f"{os.getpid()} {start + 99999}\n")
    assert fslock.lock_holder(path) is None


def test_lock_holder_dead_pid_is_none(tmp_path):
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    path = tmp_path / ".lock"
    path.write_text(f"{proc.pid} 12345\n")
    assert fslock.lock_holder(path) is None


def test_lock_holder_legacy_pid_only_format(tmp_path):
    """Old lock files record just the pid: fall back to plain liveness."""
    path = tmp_path / ".lock"
    path.write_text(f"{os.getpid()}\n")
    assert fslock.lock_holder(path) == os.getpid()
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    path.write_text(f"{proc.pid}\n")
    assert fslock.lock_holder(path) is None


def test_lock_holder_garbage_file(tmp_path):
    path = tmp_path / ".lock"
    path.write_text("not a pid\n")
    assert fslock.lock_holder(path) is None
    assert fslock.lock_holder(tmp_path / "absent") is None


# --------------------------------------------------------------------- #
# no-procfs hosts (macOS, slim containers): degrade, never assume dead
# --------------------------------------------------------------------- #
def test_no_procfs_start_time_is_none(tmp_path, monkeypatch):
    """With /proc gone, identity degrades to ``(pid, None)``."""
    monkeypatch.setattr(fslock, "PROC_ROOT", str(tmp_path / "no-proc"))
    assert fslock.process_start_time(os.getpid()) is None
    assert not fslock.has_procfs()
    pid, start = fslock.process_identity()
    assert pid == os.getpid() and start is None


def test_no_procfs_liveness_falls_back_to_existence(tmp_path, monkeypatch):
    """Without procfs a recorded start time cannot be compared: a live
    PID must still count as alive (never 'holder assumed dead')."""
    monkeypatch.setattr(fslock, "PROC_ROOT", str(tmp_path / "no-proc"))
    # live pid, recorded start unverifiable -> alive
    assert fslock.is_process_alive(os.getpid(), 12345)
    # live pid, no recorded start -> alive
    assert fslock.is_process_alive(os.getpid(), None)
    # genuinely absent pid -> dead (existence check still works)
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    assert not fslock.is_process_alive(proc.pid, None)


def test_no_procfs_lock_holder_still_reports_live_pid(tmp_path, monkeypatch):
    monkeypatch.setattr(fslock, "PROC_ROOT", str(tmp_path / "no-proc"))
    path = tmp_path / ".lock"
    path.write_text(f"{os.getpid()} 424242\n")
    assert fslock.lock_holder(path) == os.getpid()


def test_file_lock_mutual_exclusion_still_works(tmp_path):
    """The identity stamp must not break basic lock semantics."""
    path = tmp_path / ".lock"
    with fslock.file_lock(path):
        with pytest.raises(fslock.LockTimeout) as err:
            # second acquisition in another *process* would block; in the
            # same process flock is re-entrant per-fd, so probe via a
            # subprocess that tries a 0.2s acquisition.
            code = (
                "import sys; sys.path.insert(0, sys.argv[2])\n"
                "from repro.core.fslock import file_lock\n"
                "with file_lock(sys.argv[1], timeout=0.2):\n"
                "    pass\n"
            )
            proc = subprocess.run(
                [sys.executable, "-c", code, str(path), "src"],
                capture_output=True,
                text=True,
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            )
            if proc.returncode == 0:
                pytest.fail("subprocess acquired a held lock")
            raise fslock.LockTimeout(str(path), 0.2, os.getpid())
        assert "could not lock" in str(err.value)
