"""The golden-snapshot gate: bless determinism and one-cycle sensitivity."""

import importlib.util
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "golden_regression.py"


@pytest.fixture(scope="module")
def golden():
    spec = importlib.util.spec_from_file_location("golden_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("golden_regression", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def tmp_snapshot(golden, tmp_path, monkeypatch):
    path = tmp_path / "golden_snapshot.json"
    monkeypatch.setattr(golden, "SNAPSHOT_PATH", path)
    return path


def _fft_only(golden, perturb=0):
    """Run just the fft points (fast) through the script's machinery."""
    from repro.apps import get_app
    from repro.core import run_simulation

    points = {}
    for tag, app, cfg in golden.grid_points(perturb):
        if app != "fft":
            continue
        trace = get_app(
            app, page_size=cfg.comm.page_size, scale=golden.SCALE, seed=cfg.seed
        )
        result = run_simulation(trace, cfg)
        obs = golden.observe(result)
        points[tag] = {
            "digest": golden.digest(obs),
            "total_cycles": obs["total_cycles"],
        }
    return points


def test_check_fails_without_snapshot(golden, tmp_snapshot):
    assert golden.check({}) == 1


def test_bless_then_check_roundtrip(golden, tmp_snapshot):
    points = _fft_only(golden)
    golden.bless(points)
    first = tmp_snapshot.read_bytes()
    assert golden.check(points) == 0
    # blessing again must be byte-identical (no timestamps, sorted keys)
    golden.bless(points)
    assert tmp_snapshot.read_bytes() == first


def test_one_cycle_perturbation_fails_check(golden, tmp_snapshot):
    """The acceptance demo: +1 handler cycle must flip digests."""
    golden.bless(_fft_only(golden))
    perturbed = _fft_only(golden, perturb=1)
    assert golden.check(perturbed) == 1


def test_model_version_mismatch_fails_check(golden, tmp_snapshot, monkeypatch):
    points = _fft_only(golden)
    golden.bless(points)
    monkeypatch.setattr(golden, "MODEL_VERSION", golden.MODEL_VERSION + 1)
    assert golden.check(points) == 1


def test_digest_is_canonical(golden):
    a = golden.digest({"b": 1, "a": {"y": 2, "x": 3}})
    b = golden.digest({"a": {"x": 3, "y": 2}, "b": 1})
    assert a == b


def test_committed_snapshot_matches_script_grid(golden):
    """The committed snapshot must cover exactly the script's grid tags."""
    import json

    snapshot = json.loads(
        (REPO_ROOT / "scripts" / "golden_snapshot.json").read_text()
    )
    expected_tags = {tag for tag, _, _ in golden.grid_points()}
    assert set(snapshot["points"]) == expected_tags
    from repro.core.runcache import MODEL_VERSION

    assert snapshot["model_version"] == MODEL_VERSION
