"""Metrics registry unit tests: zero-cost disable, interval bookkeeping."""

import pytest

from repro.core.stats import BusyTracker, MetricsRegistry, QueueDepthStat


# --------------------------------------------------------------------- #
# BusyTracker
# --------------------------------------------------------------------- #
def test_busy_tracker_simple_interval():
    bt = BusyTracker()
    bt.begin(10)
    bt.end(25)
    assert bt.busy_cycles == 15
    assert bt.intervals == 1
    assert not bt.active


def test_busy_tracker_counts_overlap_once():
    """Simultaneous/nested busy intervals must not double-count."""
    bt = BusyTracker()
    bt.begin(10)  # handler A
    bt.begin(12)  # handler B interrupts on the same resource
    assert bt.active
    bt.end(20)  # A finishes; B still running
    assert bt.busy_cycles == 0  # interval still open
    bt.end(30)
    assert bt.busy_cycles == 20  # union [10, 30), not 18 + 10
    assert bt.intervals == 1


def test_busy_tracker_simultaneous_begin_end_at_same_time():
    bt = BusyTracker()
    bt.begin(5)
    bt.begin(5)
    bt.end(5)
    bt.end(9)
    assert bt.busy_cycles == 4


def test_busy_tracker_unmatched_end_raises():
    bt = BusyTracker()
    with pytest.raises(RuntimeError):
        bt.end(10)


def test_busy_tracker_time_backwards_raises():
    bt = BusyTracker()
    bt.begin(10)
    with pytest.raises(ValueError):
        bt.end(5)


def test_busy_as_of_includes_open_interval():
    bt = BusyTracker()
    bt.begin(0)
    bt.end(10)
    bt.begin(50)
    assert bt.busy_cycles == 10
    assert bt.busy_as_of(60) == 20


# --------------------------------------------------------------------- #
# QueueDepthStat
# --------------------------------------------------------------------- #
def test_queue_depth_stat_mean_max():
    q = QueueDepthStat()
    assert q.mean == 0.0
    for d in (1, 5, 3):
        q.sample(d)
    assert q.samples == 3
    assert q.max == 5
    assert q.mean == pytest.approx(3.0)


# --------------------------------------------------------------------- #
# MetricsRegistry
# --------------------------------------------------------------------- #
def test_registry_counters_and_cycles():
    reg = MetricsRegistry()
    reg.bump("nic.sent")
    reg.bump("nic.sent", 2)
    reg.add_cycles("handler.page_fetch", 750)
    reg.add_cycles("handler.page_fetch", 250)
    assert reg.counters == {"nic.sent": 3}
    assert reg.cycles == {"handler.page_fetch": 1000}


def test_disabled_registry_collects_nothing():
    """Soft-disabled registry: every reporting call is a cheap no-op."""
    reg = MetricsRegistry(enabled=False)
    reg.bump("x")
    reg.add_cycles("y", 10)
    reg.begin_busy("cpu", 0)
    reg.end_busy("cpu", 10)
    reg.sample_queue("bus", 3)
    reg.phase_mark(100, "barrier.0", {"compute": 50})
    assert reg.counters == {}
    assert reg.cycles == {}
    assert reg.busy == {}
    assert reg.queue_depths == {}
    assert reg.phase_marks == []


def test_registry_busy_export_closes_open_intervals():
    reg = MetricsRegistry()
    reg.begin_busy("cpu", 0)
    reg.end_busy("cpu", 40)
    reg.begin_busy("ni", 10)
    assert reg.busy_cycles() == {"cpu": 40, "ni": 0}
    assert reg.busy_cycles(as_of=30) == {"cpu": 40, "ni": 20}


def test_registry_phase_marks_snapshot_copies():
    """phase_mark stores a copy; later mutation must not alias."""
    reg = MetricsRegistry()
    cum = {"compute": 10}
    reg.phase_mark(5, "barrier.0.0", cum)
    cum["compute"] = 99
    assert reg.phase_marks == [(5, "barrier.0.0", {"compute": 10})]


def test_registry_queue_summary():
    reg = MetricsRegistry()
    reg.sample_queue("membus0.backlog", 2.0)
    reg.sample_queue("membus0.backlog", 4.0)
    summary = reg.queue_summary()
    assert summary["membus0.backlog"]["max"] == 4.0
    assert summary["membus0.backlog"]["mean"] == pytest.approx(3.0)
    assert summary["membus0.backlog"]["samples"] == 2.0
