"""Fabric chaos tests: SIGKILL/SIGSTOP workers mid-sweep, byte-identical merge.

The acceptance scenario for the distributed sweep fabric: a 6-point grid
worked by 3 worker processes, one SIGKILLed mid-point and one SIGSTOPped
past its lease TTL, must

* complete every point (survivors steal the abandoned leases),
* reclaim each expired lease exactly once (claims log),
* reject every stale-token write the resurrected worker attempts
  (rejection counter > 0, durable ``rejections.jsonl``), and
* produce merged results byte-identical to a plain serial run of the
  same grid in a pristine cache.

Workers run with ``REPRO_CHAOS_POINT_DELAY_S`` stretching every computed
point, so the signals land mid-computation deterministically.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core import runcache
from repro.core.checkpoint import SweepCheckpoint
from repro.core.config import ClusterConfig
from repro.core.executor import Point, PointFailure, run_points
from repro.core.fabric import LeaseStore
from repro.core.sweeps import clear_caches

SCALE = 0.05
SWEEP = "chaos/kill-stop"
TTL_S = 2.0
POINT_DELAY_S = 0.7
DEADLINE_S = 120.0

# Worker child: join the sweep's claim loop, then print final stats as
# a parseable line.  Runs `repro.core.fabric.FabricWorker` directly so
# stats (fenced/rejected counters) come back to the test.
CHILD = r"""
import json, sys
from repro.core.fabric import FabricWorker

stats = FabricWorker(sys.argv[1], worker_id=sys.argv[2], ttl_s=float(sys.argv[3])).run()
print("STATS " + json.dumps(stats), flush=True)
"""


def _grid():
    base = ClusterConfig()
    return [
        Point("lu", SCALE, base.with_comm(interrupt_cost=500 + 100 * i))
        for i in range(6)
    ]


def _canonical(results):
    """Canonical bytes for a merged grid — the byte-identity oracle."""
    assert not any(isinstance(r, PointFailure) for r in results)
    return json.dumps(
        [dataclasses.asdict(r) for r in results],
        sort_keys=True,
        default=repr,
    ).encode("utf-8")


def _use_dirs(monkeypatch, tmp_path, tag):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / tag / "cache"))
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / tag / "cp"))
    monkeypatch.setenv("REPRO_FABRIC_DIR", str(tmp_path / tag / "fabric"))
    monkeypatch.delenv("REPRO_CHAOS_POINT_DELAY_S", raising=False)
    runcache.reset_disk_cache()
    clear_caches()


def _spawn_worker(worker_id):
    env = dict(
        os.environ,
        REPRO_CHAOS_POINT_DELAY_S=str(POINT_DELAY_S),
    )
    return subprocess.Popen(
        [sys.executable, "-c", CHILD, SWEEP, worker_id, str(TTL_S)],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )


def _wait_for(predicate, what, deadline_s=DEADLINE_S):
    t0 = time.time()
    while time.time() - t0 < deadline_s:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out after {deadline_s:g}s waiting for {what}")


def _worker_stats(proc, deadline_s=30.0):
    out, _ = proc.communicate(timeout=deadline_s)
    for line in out.splitlines():
        if line.startswith("STATS "):
            return json.loads(line[len("STATS "):])
    pytest.fail(f"worker printed no stats line; stdout was: {out!r}")


@pytest.fixture
def chaos_env(tmp_path, monkeypatch):
    yield tmp_path, monkeypatch
    runcache.reset_disk_cache()
    clear_caches()


def test_sigkill_sigstop_chaos_merges_byte_identical(chaos_env):
    tmp_path, monkeypatch = chaos_env
    points = _grid()

    # ---- serial baseline in a pristine cache --------------------------- #
    _use_dirs(monkeypatch, tmp_path, "serial")
    baseline = _canonical(run_points(points, jobs=1))
    clear_caches()

    # ---- fabric run under fault injection ------------------------------ #
    _use_dirs(monkeypatch, tmp_path, "fabric")
    store = LeaseStore(SWEEP)
    keys = set(store.init_grid(points))
    assert len(keys) == 6

    procs = {wid: _spawn_worker(wid) for wid in ("w1", "w2", "w3")}
    stopped = None
    try:
        # Wait until the victims each hold a lease, i.e. are mid-compute
        # (the chaos delay stretches every point to ~0.7s+).
        def claimed(wid):
            return any(c["worker"] == wid for c in store.claims())

        _wait_for(lambda: claimed("w1") and claimed("w2"),
                  "w1 and w2 to claim leases")
        time.sleep(0.2)  # land the signals mid-point, not between points

        procs["w1"].kill()  # SIGKILL: holder dies, lease reclaimed by liveness
        os.kill(procs["w2"].pid, signal.SIGSTOP)  # freeze past the TTL
        stopped = procs["w2"]
        w2_keys = {
            lease.key
            for lease in store.leases()
            if lease.worker == "w2" and lease.status == "held"
        }
        assert w2_keys, "stopped worker should hold at least one lease"

        # The survivor (w3) must finish the whole grid: fresh points, the
        # killed worker's lease (immediately reclaimable — holder dead),
        # and the stopped worker's lease once its TTL expires.
        cp = SweepCheckpoint(SWEEP)

        def all_done():
            cp.refresh()
            return keys <= cp.completed_keys()

        _wait_for(all_done, "all 6 points to be journaled done")
        assert cp.failed_keys() == set()

        # Resurrect the paused worker *after* its points were re-done: its
        # pending writes now carry a superseded fencing token and must be
        # rejected, not accepted.
        os.kill(stopped.pid, signal.SIGCONT)
        stopped = None
        w2_stats = _worker_stats(procs["w2"])
        w3_stats = _worker_stats(procs["w3"])
    finally:
        if stopped is not None:
            os.kill(stopped.pid, signal.SIGCONT)
        for proc in procs.values():
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    # ---- every expired lease reclaimed exactly once -------------------- #
    steals = [c for c in store.claims() if c["reason"] == "steal"]
    steals_per_key = {}
    for c in steals:
        steals_per_key[c["key"]] = steals_per_key.get(c["key"], 0) + 1
    assert steals, "the killed/stopped workers' leases must be stolen"
    assert all(n == 1 for n in steals_per_key.values()), (
        f"a lease was reclaimed more than once: {steals_per_key}"
    )
    assert w2_keys <= set(steals_per_key), (
        "the stopped worker's expired lease was never stolen"
    )
    # only the survivor (or the resurrected w2, post-fence) stole work
    assert all(c["worker"] in ("w2", "w3") for c in steals)

    # ---- stale writes were rejected, none accepted --------------------- #
    rejections = store.rejections()
    assert rejections, "the resurrected worker's stale writes must be rejected"
    assert all(r["worker"] == "w2" for r in rejections)
    assert all(r["current_token"] > r["held_token"] for r in rejections)
    assert w2_stats["rejected"] > 0
    assert w2_stats["rejected"] == len(rejections)
    assert w3_stats["rejected"] == 0
    assert w3_stats["computed"] + w2_stats["computed"] >= 6 - len(w2_keys)
    # the journal credits each point exactly once, never to a stale token
    cp.refresh()
    by_key = {}
    for rec in cp.load():
        if rec["status"] == "done":
            by_key.setdefault(rec["key"], []).append(rec)
    assert set(by_key) == keys
    for key, recs in by_key.items():
        assert len(recs) == 1, f"point {key[:12]} journaled done twice"
        current = store.read_lease(key)
        assert recs[0]["token"] == current.token

    # ---- merged results byte-identical to the serial baseline ---------- #
    clear_caches()  # force the merge to come from the fabric's disk cache
    merged = _canonical(run_points(points, jobs=1))
    assert merged == baseline
