"""Concurrent multi-writer checkpoint appends: no torn lines, union on load.

Two separate processes journaling into the *same* sweep directory under
contention must never interleave bytes within a record or lose each
other's appends — the advisory lock + read-modify-rename append in
:meth:`repro.core.checkpoint.SweepCheckpoint.record` serializes them.
This is the single-sweep invariant the distributed fabric builds on
(fabric workers share one journal per sweep).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.checkpoint import SweepCheckpoint

WRITERS = 2
RECORDS_PER_WRITER = 40

# Each writer process appends its own batch of records as fast as it can;
# a barrier file keeps them from starting until both are ready, so the
# appends genuinely contend.
CHILD = r"""
import os, sys, time
from repro.core.checkpoint import SweepCheckpoint

writer, n = sys.argv[1], int(sys.argv[2])
cp = SweepCheckpoint("concurrent/journal").open()
barrier = os.path.join(os.environ["REPRO_CHECKPOINT_DIR"], "go")
while not os.path.exists(barrier):
    time.sleep(0.001)
for i in range(n):
    cp.record(f"{writer}-{i:03d}", "done", writer=writer, payload="x" * 64)
"""


@pytest.fixture
def ckpt_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
    return tmp_path


def test_two_processes_append_without_tearing(ckpt_dir):
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", CHILD, f"w{i}", str(RECORDS_PER_WRITER)],
            env=dict(os.environ, REPRO_CHECKPOINT_DIR=str(ckpt_dir)),
        )
        for i in range(WRITERS)
    ]
    (ckpt_dir / "go").write_text("")
    for p in procs:
        assert p.wait(timeout=120) == 0

    cp = SweepCheckpoint("concurrent/journal")

    # Byte-level: every line is a complete, parseable JSON record — no
    # interleaved or truncated appends anywhere (not just at the tail).
    raw = cp.journal_path.read_bytes()
    assert raw.endswith(b"\n")
    lines = raw.decode("utf-8").splitlines()
    parsed = [json.loads(line) for line in lines]
    assert len(parsed) == WRITERS * RECORDS_PER_WRITER

    # Record-level: load() sees the union of both writers' appends, each
    # exactly once, with its payload intact.
    cp.refresh()
    assert cp.corrupt_lines == 0
    expected = {
        f"w{i}-{j:03d}"
        for i in range(WRITERS)
        for j in range(RECORDS_PER_WRITER)
    }
    keys = [rec["key"] for rec in parsed]
    assert set(keys) == expected
    assert len(keys) == len(set(keys)), "a concurrent append was duplicated"
    assert cp.completed_keys() == expected
    for rec in parsed:
        assert rec["writer"] == rec["key"].split("-")[0]
        assert rec["payload"] == "x" * 64

    # Each writer's own records appear in its program order (the lock
    # serializes appends; it must not reorder a single writer's stream).
    for i in range(WRITERS):
        mine = [k for k in keys if k.startswith(f"w{i}-")]
        assert mine == sorted(mine)
