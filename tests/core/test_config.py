"""Unit tests for ClusterConfig."""

import pytest

from repro.arch import ACHIEVABLE, BEST, CommParams
from repro.core import ClusterConfig


def test_defaults_are_achievable_16_procs():
    cfg = ClusterConfig()
    assert cfg.comm == ACHIEVABLE
    assert cfg.total_procs == 16
    assert cfg.n_nodes == 4
    assert cfg.protocol == "hlrc"


def test_with_comm_builds_new_config():
    cfg = ClusterConfig().with_comm(interrupt_cost=9999)
    assert cfg.comm.interrupt_cost == 9999
    assert ClusterConfig().comm.interrupt_cost == ACHIEVABLE.interrupt_cost


def test_best_config():
    cfg = ClusterConfig(comm=BEST)
    assert cfg.comm.host_overhead == 0
    assert cfg.n_nodes == 4


def test_invalid_protocol_rejected():
    with pytest.raises(ValueError):
        ClusterConfig(protocol="treadmarks")


def test_invalid_collective_rejected_with_choices():
    with pytest.raises(
        ValueError, match=r"unknown collective 'butterfly'.*flat.*tree.*dissemination"
    ):
        ClusterConfig(collective="butterfly")


def test_collective_default_is_flat():
    assert ClusterConfig().collective == "flat"


def test_procs_must_divide_by_clustering():
    with pytest.raises(ValueError):
        ClusterConfig(comm=CommParams(procs_per_node=3), total_procs=16)
    cfg = ClusterConfig(comm=CommParams(procs_per_node=8), total_procs=16)
    assert cfg.n_nodes == 2


def test_label_mentions_key_parameters():
    label = ClusterConfig(protocol="aurc").label()
    assert "aurc" in label
    assert "intr=500" in label
    assert "ppn=4" in label


def test_replace():
    cfg = ClusterConfig().replace(protocol="aurc", seed=7)
    assert cfg.protocol == "aurc"
    assert cfg.seed == 7
