"""Tests for report formatting and the sweep/caching helpers."""

import pytest

from repro.core import ClusterConfig
from repro.core.reporting import format_percent, format_table
from repro.core.sweeps import (
    cached_run,
    cached_trace,
    clear_caches,
    max_slowdown,
    run_apps,
    slowdown_between,
    sweep_comm_param,
)


# --------------------------------------------------------------------- #
# reporting
# --------------------------------------------------------------------- #
def test_format_table_alignment():
    text = format_table(["app", "speedup"], [["fft", 4.5], ["lu", 12.25]])
    lines = text.splitlines()
    assert lines[0].startswith("app")
    assert set(lines[1]) <= {"-", " "}
    assert "4.50" in lines[2]
    assert "12.2" in lines[3] or "12.25" in lines[3]


def test_format_table_title_and_large_numbers():
    text = format_table(["n"], [[1234567.0]], title="Big")
    assert text.startswith("Big\n=")
    assert "1,234,567" in text


def test_format_table_mixed_types():
    text = format_table(["a", "b", "c"], [["x", 3, 0.123456]])
    assert "0.12" in text
    assert "x" in text


def test_format_percent():
    assert format_percent(0.123) == "+12.3%"
    assert format_percent(-0.05) == "-5.0%"
    assert format_percent(0.0) == "+0.0%"


# --------------------------------------------------------------------- #
# sweeps & caching
# --------------------------------------------------------------------- #
def test_cached_trace_reuses_object():
    clear_caches()
    a = cached_trace("lu", 0.2, 4096, 42)
    b = cached_trace("lu", 0.2, 4096, 42)
    assert a is b
    c = cached_trace("lu", 0.2, 8192, 42)
    assert c is not a


def test_cached_run_reuses_result():
    clear_caches()
    cfg = ClusterConfig()
    a = cached_run("lu", 0.2, cfg)
    b = cached_run("lu", 0.2, cfg)
    assert a is b
    c = cached_run("lu", 0.2, cfg.with_comm(interrupt_cost=0))
    assert c is not a


def test_cached_run_regenerates_trace_for_page_size():
    clear_caches()
    small = cached_run("lu", 0.2, ClusterConfig().with_comm(page_size=1024))
    big = cached_run("lu", 0.2, ClusterConfig().with_comm(page_size=16384))
    assert small.total_cycles != big.total_cycles


def test_sweep_comm_param_monotone_interrupts():
    clear_caches()
    results = sweep_comm_param("raytrace", "interrupt_cost", (0, 10000), scale=0.2)
    assert len(results) == 2
    assert results[0].speedup > results[1].speedup
    assert max_slowdown(results) > 0
    assert slowdown_between(results[0], results[1]) == pytest.approx(
        max_slowdown(results)
    )


def test_run_apps_subset():
    clear_caches()
    out = run_apps(apps=["lu", "water-sp"], scale=0.2)
    assert set(out) == {"lu", "water-sp"}
    assert all(r.speedup > 0 for r in out.values())
