"""Network-fabric chaos tests: broker crashes, frozen workers, partitions.

The multi-machine acceptance scenarios for the TCP lease broker:

* **Broker SIGKILL + restart** — workers ride out the outage on their
  retry budget, the restarted broker recovers fencing state from its
  append-only journal and never reissues a token, and the finished
  sweep is byte-identical to a serial run.
* **SIGSTOP a remote worker past its lease TTL** — the survivor steals
  the expired lease exactly once; the resurrected worker's stale write
  is rejected (durable ``rejections.jsonl``), never accepted.
* **Partition during renewal** — a chaos proxy black-holes one worker's
  link mid-lease; after the lease is stolen and the partition heals,
  the partitioned worker's write attempt is fenced, not accepted.

Every scenario ends with the byte-identity oracle: merged results must
equal a plain serial run of the same grid in a pristine cache.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core import runcache
from repro.core.checkpoint import SweepCheckpoint
from repro.core.config import ClusterConfig
from repro.core.executor import Point, PointFailure, run_points
from repro.core.fabric import fabric_root
from repro.core.fabric_net import ChaosProxy, FabricBroker, RemoteLeaseStore
from repro.core.sweeps import clear_caches

SCALE = 0.05
TTL_S = 2.0
DEADLINE_S = 120.0

# Broker child: a SIGKILL-able broker process.  Prints its concrete
# address once listening, then parks forever (the test kills it).
BROKER_CHILD = r"""
import sys, threading
from repro.core.fabric_net import FabricBroker

broker = FabricBroker(host="127.0.0.1", port=int(sys.argv[1])).start()
print("ADDR " + broker.addr, flush=True)
threading.Event().wait()
"""

# Worker child: join the sweep over TCP (REPRO_FABRIC_ADDR), print
# final stats as a parseable line.
WORKER_CHILD = r"""
import json, sys
from repro.core.fabric import FabricWorker
from repro.core.fabric_net import make_lease_store

sweep, wid, ttl = sys.argv[1], sys.argv[2], float(sys.argv[3])
store = make_lease_store(sweep)
stats = FabricWorker(sweep, worker_id=wid, ttl_s=ttl, store=store).run()
store.close()
print("STATS " + json.dumps(stats), flush=True)
"""


def _grid():
    base = ClusterConfig()
    return [
        Point("lu", SCALE, base.with_comm(interrupt_cost=500 + 100 * i))
        for i in range(6)
    ]


def _canonical(results):
    assert not any(isinstance(r, PointFailure) for r in results)
    return json.dumps(
        [dataclasses.asdict(r) for r in results],
        sort_keys=True,
        default=repr,
    ).encode("utf-8")


def _use_dirs(monkeypatch, tmp_path, tag):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / tag / "cache"))
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / tag / "cp"))
    monkeypatch.setenv("REPRO_FABRIC_DIR", str(tmp_path / tag / "fabric"))
    monkeypatch.delenv("REPRO_CHAOS_POINT_DELAY_S", raising=False)
    monkeypatch.delenv("REPRO_FABRIC_ADDR", raising=False)
    runcache.reset_disk_cache()
    clear_caches()


def _spawn_broker(port):
    proc = subprocess.Popen(
        [sys.executable, "-c", BROKER_CHILD, str(port)],
        stdout=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("ADDR "), f"broker child said {line!r}"
    return proc, line[len("ADDR "):]


def _spawn_worker(sweep, worker_id, addr, point_delay_s, **env_overrides):
    env = dict(
        os.environ,
        REPRO_FABRIC_ADDR=addr,
        REPRO_CHAOS_POINT_DELAY_S=str(point_delay_s),
    )
    env.update({k: str(v) for k, v in env_overrides.items()})
    return subprocess.Popen(
        [sys.executable, "-c", WORKER_CHILD, sweep, worker_id, str(TTL_S)],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )


def _wait_for(predicate, what, deadline_s=DEADLINE_S):
    t0 = time.time()
    while time.time() - t0 < deadline_s:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out after {deadline_s:g}s waiting for {what}")


def _worker_stats(proc, deadline_s=60.0):
    out, _ = proc.communicate(timeout=deadline_s)
    for line in out.splitlines():
        if line.startswith("STATS "):
            return json.loads(line[len("STATS "):])
    pytest.fail(f"worker printed no stats line; stdout was: {out!r}")


def _client(sweep, addr):
    return RemoteLeaseStore(
        sweep, addr, rpc_timeout_s=2.0, retry_budget_s=2.0,
        backoff_base_s=0.01, client_name="observer",
    )


def _assert_exactly_once_and_identical(store, sweep, keys, points, baseline):
    """Shared tail oracle: journal exactly-once, tokens current,
    merged results byte-identical to the serial baseline."""
    cp = SweepCheckpoint(sweep)
    cp.refresh()
    by_key = {}
    for rec in cp.load():
        if rec["status"] == "done":
            by_key.setdefault(rec["key"], []).append(rec)
    assert set(by_key) == keys
    for key, recs in by_key.items():
        assert len(recs) == 1, f"point {key[:12]} journaled done twice"
        assert recs[0]["token"] == store.read_lease(key).token
    clear_caches()  # force the merge to come from the fabric's disk cache
    assert _canonical(run_points(points, jobs=1)) == baseline


@pytest.fixture
def chaos_env(tmp_path, monkeypatch):
    yield tmp_path, monkeypatch
    runcache.reset_disk_cache()
    clear_caches()


# --------------------------------------------------------------------- #
# scenario 1: broker SIGKILLed mid-sweep, restarted from its journal
# --------------------------------------------------------------------- #
def test_broker_sigkill_restart_never_reissues_tokens(chaos_env):
    tmp_path, monkeypatch = chaos_env
    sweep = "netchaos/broker-kill"
    points = _grid()

    _use_dirs(monkeypatch, tmp_path, "serial")
    baseline = _canonical(run_points(points, jobs=1))
    clear_caches()

    _use_dirs(monkeypatch, tmp_path, "fabric")
    broker_proc, addr = _spawn_broker(0)
    port = int(addr.rsplit(":", 1)[1])
    store = _client(sweep, addr)
    keys = set(store.init_grid(points))
    assert len(keys) == 6

    workers = {
        wid: _spawn_worker(
            sweep, wid, addr, point_delay_s=0.7,
            # generous budget: workers must ride out the restart window
            REPRO_FABRIC_RETRY_BUDGET_S=20, REPRO_FABRIC_RPC_TIMEOUT_S=2,
        )
        for wid in ("w1", "w2")
    }
    try:
        def claimed(wid):
            return any(c["worker"] == wid for c in store.claims())

        _wait_for(lambda: claimed("w1") and claimed("w2"),
                  "both workers to claim leases")
        store.close()
        time.sleep(0.2)  # land the kill mid-point, mid-protocol
        broker_proc.kill()
        broker_proc.wait()
        time.sleep(0.5)  # a real outage: clients must retry, not die
        broker_proc, addr2 = _spawn_broker(port)
        assert addr2 == addr, "restart must reuse the advertised port"

        cp = SweepCheckpoint(sweep)

        def all_done():
            cp.refresh()
            return keys <= cp.completed_keys()

        _wait_for(all_done, "all 6 points to be journaled done")
        stats = {wid: _worker_stats(proc) for wid, proc in workers.items()}

        # neither worker drained: the outage stayed inside the retry budget
        assert all("broker_lost" not in s for s in stats.values()), stats
        assert sum(s["computed"] for s in stats.values()) >= 6

        # the journal spans both incarnations with strictly increasing,
        # never-reissued mint events
        journal = fabric_root() / sweep / "broker.jsonl"
        mints = [
            rec["token"]
            for rec in map(json.loads, journal.read_text().splitlines())
            if rec.get("ev") == "mint"
        ]
        assert mints == sorted(mints), "mint tokens must be monotonic"
        assert len(mints) == len(set(mints)), "a fencing token was reissued"

        store = _client(sweep, addr)
        claim_tokens = [c["token"] for c in store.claims()]
        assert len(claim_tokens) == len(set(claim_tokens))
        _assert_exactly_once_and_identical(store, sweep, keys, points, baseline)
        store.close()
    finally:
        for proc in workers.values():
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        if broker_proc.poll() is None:
            broker_proc.kill()
            broker_proc.wait()


# --------------------------------------------------------------------- #
# scenario 2: remote worker SIGSTOPped past its lease TTL
# --------------------------------------------------------------------- #
def test_sigstop_remote_worker_stolen_once_and_fenced(chaos_env):
    tmp_path, monkeypatch = chaos_env
    sweep = "netchaos/sigstop"
    points = _grid()

    _use_dirs(monkeypatch, tmp_path, "serial")
    baseline = _canonical(run_points(points, jobs=1))
    clear_caches()

    _use_dirs(monkeypatch, tmp_path, "fabric")
    broker = FabricBroker(port=0).start()
    store = _client(sweep, broker.addr)
    keys = set(store.init_grid(points))

    workers = {
        wid: _spawn_worker(sweep, wid, broker.addr, point_delay_s=0.7)
        for wid in ("w1", "w2")
    }
    stopped = None
    try:
        _wait_for(
            lambda: any(c["worker"] == "w1" for c in store.claims()),
            "w1 to claim a lease",
        )
        time.sleep(0.2)  # freeze mid-point, not between points
        os.kill(workers["w1"].pid, signal.SIGSTOP)
        stopped = workers["w1"]
        w1_keys = {
            lease.key
            for lease in store.leases()
            if lease.worker == "w1" and lease.status == "held"
        }
        assert w1_keys, "stopped worker should hold at least one lease"

        cp = SweepCheckpoint(sweep)

        def all_done():
            cp.refresh()
            return keys <= cp.completed_keys()

        _wait_for(all_done, "all 6 points to be journaled done")
        assert cp.failed_keys() == set()

        # resurrect w1 *after* its point was re-done under a newer token
        os.kill(stopped.pid, signal.SIGCONT)
        stopped = None
        w1_stats = _worker_stats(workers["w1"])
        w2_stats = _worker_stats(workers["w2"])

        steals = [c for c in store.claims() if c["reason"] == "steal"]
        steals_per_key = {}
        for c in steals:
            steals_per_key[c["key"]] = steals_per_key.get(c["key"], 0) + 1
        assert w1_keys <= set(steals_per_key), "expired lease never stolen"
        assert all(n == 1 for n in steals_per_key.values()), (
            f"a lease was reclaimed more than once: {steals_per_key}"
        )

        rejections = store.rejections()
        assert rejections, "the resurrected worker's write must be rejected"
        assert all(r["worker"] == "w1" for r in rejections)
        assert all(r["current_token"] > r["held_token"] for r in rejections)
        assert w1_stats["rejected"] == len(rejections) > 0
        assert w2_stats["rejected"] == 0
        # the rejection log is durable on the broker's disk, not just RAM
        assert (fabric_root() / sweep / "rejections.jsonl").is_file()

        _assert_exactly_once_and_identical(store, sweep, keys, points, baseline)
    finally:
        if stopped is not None:
            os.kill(stopped.pid, signal.SIGCONT)
        for proc in workers.values():
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        store.close()
        broker.stop()


# --------------------------------------------------------------------- #
# scenario 3: network partition during renewal, healed after the steal
# --------------------------------------------------------------------- #
def test_partition_during_renewal_write_is_fenced_after_heal(chaos_env):
    tmp_path, monkeypatch = chaos_env
    sweep = "netchaos/partition"
    points = _grid()

    _use_dirs(monkeypatch, tmp_path, "serial")
    baseline = _canonical(run_points(points, jobs=1))
    clear_caches()

    _use_dirs(monkeypatch, tmp_path, "fabric")
    broker = FabricBroker(port=0).start()
    proxy = ChaosProxy(broker.addr, seed=7).start()
    store = _client(sweep, broker.addr)
    keys = set(store.init_grid(points))

    # w1 talks through the proxy with a slow point and a patient budget;
    # w2 talks straight to the broker and computes fast.
    w1 = _spawn_worker(
        sweep, "w1", proxy.addr, point_delay_s=3.0,
        REPRO_FABRIC_RPC_TIMEOUT_S=0.5, REPRO_FABRIC_RETRY_BUDGET_S=8,
    )
    w2 = None
    try:
        _wait_for(
            lambda: any(c["worker"] == "w1" for c in store.claims()),
            "w1 to claim a lease through the proxy",
        )
        w1_keys = {
            lease.key
            for lease in store.leases()
            if lease.worker == "w1" and lease.status == "held"
        }
        assert w1_keys
        proxy.partition()  # black-hole w1 mid-lease, mid-compute

        w2 = _spawn_worker(sweep, "w2", broker.addr, point_delay_s=0.1)

        def w1_lease_stolen():
            return any(
                c["reason"] == "steal" and c["key"] in w1_keys
                for c in store.claims()
            )

        _wait_for(w1_lease_stolen, "w2 to steal the partitioned lease")
        proxy.heal()  # w1's pending write now races a superseded token

        cp = SweepCheckpoint(sweep)

        def all_done():
            cp.refresh()
            return keys <= cp.completed_keys()

        _wait_for(all_done, "all 6 points to be journaled done")
        w1_stats = _worker_stats(w1)
        w2_stats = _worker_stats(w2)

        rejections = store.rejections()
        assert rejections, "the partitioned worker's write must be rejected"
        assert all(r["worker"] == "w1" for r in rejections)
        assert w1_stats["rejected"] == len(rejections) > 0
        assert w2_stats["rejected"] == 0

        steals = [c for c in store.claims() if c["reason"] == "steal"]
        steals_per_key = {}
        for c in steals:
            steals_per_key[c["key"]] = steals_per_key.get(c["key"], 0) + 1
        assert all(n == 1 for n in steals_per_key.values()), (
            f"a lease was reclaimed more than once: {steals_per_key}"
        )

        _assert_exactly_once_and_identical(store, sweep, keys, points, baseline)
    finally:
        for proc in (w1, w2):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
        store.close()
        proxy.stop()
        broker.stop()
