"""Distributed sweep fabric: leases, fencing tokens, write guards, workers."""

import dataclasses
import json
import time

import pytest

from repro.core import runcache
from repro.core.checkpoint import SweepCheckpoint
from repro.core.config import ClusterConfig
from repro.core.executor import Point
from repro.core.fabric import (
    FabricWorker,
    Lease,
    LeaseStore,
    StaleFencingTokenError,
    WriteFence,
    install_fence,
    list_fabric_sweeps,
    sweep_status,
    uninstall_fence,
)
from repro.core.sweeps import clear_caches

SCALE = 0.05


@pytest.fixture
def fresh(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "cp"))
    monkeypatch.setenv("REPRO_FABRIC_DIR", str(tmp_path / "fabric"))
    runcache.reset_disk_cache()
    clear_caches()
    yield tmp_path
    uninstall_fence()
    runcache.reset_disk_cache()
    clear_caches()


def _points(n=2):
    base = ClusterConfig()
    apps = ["fft", "lu", "radix", "ocean"]
    return [Point(apps[i % len(apps)], SCALE, base) for i in range(n)]


# --------------------------------------------------------------------- #
# grid init
# --------------------------------------------------------------------- #
def test_init_grid_is_idempotent(fresh):
    store = LeaseStore("unit/grid")
    keys = store.init_grid(_points(2))
    assert len(keys) == 2 and store.exists
    assert store.init_grid(_points(2)) == keys  # same grid: no-op
    loaded = store.load_grid()
    assert [k for k, _ in loaded] == keys
    assert loaded[0][1].app == "fft" and loaded[0][1].config == ClusterConfig()


def test_init_grid_rejects_different_grid(fresh):
    store = LeaseStore("unit/grid2")
    store.init_grid(_points(2))
    with pytest.raises(ValueError, match="different"):
        store.init_grid(_points(3))


def test_duplicate_points_collapse_to_one_lease(fresh):
    store = LeaseStore("unit/dup")
    pts = _points(1) * 3
    assert len(store.init_grid(pts)) == 1


def test_invalid_sweep_name_rejected(fresh):
    with pytest.raises(ValueError, match="invalid sweep name"):
        LeaseStore("../escape")


# --------------------------------------------------------------------- #
# lease lifecycle + fencing tokens
# --------------------------------------------------------------------- #
def test_claim_renew_release_lifecycle(fresh):
    store = LeaseStore("unit/life")
    (key,) = store.init_grid(_points(1))
    lease = store.claim(key, "w1", ttl_s=30)
    assert lease is not None and lease.token == 1 and not lease.stolen
    # a live lease blocks other claimants
    assert store.claim(key, "w2", ttl_s=30) is None
    renewed = store.renew(lease)
    assert renewed.expires_unix >= lease.expires_unix
    assert store.release(renewed, "done")
    # terminal leases are never reclaimed
    assert store.claim(key, "w2", ttl_s=30) is None
    assert store.read_lease(key).status == "done"


def test_expired_lease_is_stolen_with_higher_token(fresh):
    store = LeaseStore("unit/steal")
    (key,) = store.init_grid(_points(1))
    lease = store.claim(key, "w1", ttl_s=0.01)
    time.sleep(0.05)
    stolen = store.claim(key, "w2", ttl_s=30)
    assert stolen is not None and stolen.stolen
    assert stolen.token > lease.token and stolen.prev_token == lease.token
    reasons = [(c["reason"], c["worker"]) for c in store.claims()]
    assert reasons == [("grant", "w1"), ("steal", "w2")]


def test_dead_holder_is_reclaimed_before_ttl(fresh):
    store = LeaseStore("unit/dead")
    (key,) = store.init_grid(_points(1))
    lease = store.claim(key, "w1", ttl_s=3600)
    # rewrite the lease as if held by a long-dead process: liveness, not
    # the TTL, must make it reclaimable
    dead = dataclasses.replace(lease, pid=2**22 - 3, pid_start=12345)
    store._atomic_write(
        store._lease_path(key), json.dumps(dead.to_dict()) + "\n"
    )
    assert store.read_lease(key).reclaimable()
    stolen = store.claim(key, "w2", ttl_s=30)
    assert stolen is not None and stolen.prev_token == lease.token


def test_no_procfs_degrades_to_ttl_only_liveness(fresh):
    """A lease whose holder identity could not be recorded (no procfs:
    ``pid_start is None``) must NOT be reclaimed early — a bare PID
    probe could misread a recycled (or coincidentally free) PID.  The
    lease is reclaimed by its TTL alone."""
    store = LeaseStore("unit/no-procfs")
    (key,) = store.init_grid(_points(1))
    lease = store.claim(key, "w1", ttl_s=0.3)
    # rewrite as a holder with a dead PID but an unknowable start time
    unknowable = dataclasses.replace(lease, pid=2**22 - 3, pid_start=None)
    store._atomic_write(
        store._lease_path(key), json.dumps(unknowable.to_dict()) + "\n"
    )
    current = store.read_lease(key)
    assert current.holder_alive(), "never assume dead on weak evidence"
    assert not current.reclaimable()
    assert store.claim(key, "w2", ttl_s=30) is None  # TTL still running
    time.sleep(0.35)
    stolen = store.claim(key, "w2", ttl_s=30)  # TTL expiry reclaims it
    assert stolen is not None and stolen.stolen


def test_session_lease_liveness_is_ttl_and_session_only(fresh):
    """Broker-granted leases (remote holders) carry ``pid=0``/``session``:
    local PID probes must not apply, and a broker-supplied session-expiry
    predicate reclaims them before the lease TTL."""
    store = LeaseStore("unit/session")
    (key,) = store.init_grid(_points(1))
    lease = store.claim(key, "w1", ttl_s=3600, session="s1-deadbeef")
    assert lease.pid == 0 and lease.pid_start is None
    assert lease.session == "s1-deadbeef"
    assert lease.holder_alive() and not lease.reclaimable()
    # another claimant is blocked while the session counts as live
    assert store.claim(key, "w2", ttl_s=30) is None
    assert (
        store.claim(key, "w2", ttl_s=30, session_expired=lambda sid: False)
        is None
    )
    # ...and steals the lease once the broker says the session died
    stolen = store.claim(
        key, "w2", ttl_s=30, session="s2-cafe", session_expired=lambda sid: True
    )
    assert stolen is not None and stolen.stolen
    assert stolen.prev_token == lease.token
    claims = store.claims()
    assert claims[-1]["session"] == "s2-cafe"


def test_resolve_ttl_bounds_and_env(fresh, monkeypatch):
    from repro.core.fabric import DEFAULT_TTL_S, MAX_TTL_S, resolve_ttl

    assert resolve_ttl(None) == DEFAULT_TTL_S
    assert resolve_ttl(5.0) == 5.0
    monkeypatch.setenv("REPRO_FABRIC_TTL_S", "12.5")
    assert resolve_ttl(None) == 12.5
    assert resolve_ttl(7.0) == 7.0  # explicit arg beats the env
    with pytest.raises(ValueError, match="REPRO_FABRIC_TTL_S"):
        monkeypatch.setenv("REPRO_FABRIC_TTL_S", "not-a-number")
        resolve_ttl(None)
    monkeypatch.delenv("REPRO_FABRIC_TTL_S")
    with pytest.raises(ValueError, match="outside"):
        resolve_ttl(0.01)  # below 3 heartbeat intervals
    with pytest.raises(ValueError, match="outside"):
        resolve_ttl(MAX_TTL_S * 2)
    with pytest.raises(ValueError, match="--ttl"):
        resolve_ttl(-1.0)


def test_renew_after_supersede_raises_stale_token(fresh):
    store = LeaseStore("unit/renew-stale")
    (key,) = store.init_grid(_points(1))
    lease = store.claim(key, "w1", ttl_s=0.01)
    time.sleep(0.05)
    store.claim(key, "w2", ttl_s=30)
    with pytest.raises(StaleFencingTokenError):
        store.renew(lease)
    # ...and the stale holder's release is a no-op, not a clobber
    assert not store.release(lease, "done")
    assert store.read_lease(key).worker == "w2"


def test_lease_from_dict_ignores_unknown_fields(fresh):
    lease = Lease.from_dict(
        {
            "key": "k",
            "token": 3,
            "worker": "w",
            "pid": 1,
            "pid_start": None,
            "granted_unix": 0.0,
            "ttl_s": 1.0,
            "expires_unix": 1.0,
            "from_the_future": True,
        }
    )
    assert lease.token == 3 and not hasattr(lease, "from_the_future")


# --------------------------------------------------------------------- #
# write fence
# --------------------------------------------------------------------- #
def test_fence_tags_valid_writes_and_rejects_stale(fresh):
    store = LeaseStore("unit/fence")
    (key,) = store.init_grid(_points(1))
    fence = WriteFence(store, "w1", managed={key})
    # unmanaged keys pass through untouched
    assert fence.check("somebody-elses-key") is None
    lease = store.claim(key, "w1", ttl_s=0.01)
    fence.track(lease)
    assert fence.check(key) == {"token": lease.token, "worker": "w1"}
    # supersede the lease: the same check must now reject, durably
    time.sleep(0.05)
    store.claim(key, "w2", ttl_s=30)
    with pytest.raises(StaleFencingTokenError) as exc:
        fence.check(key)
    assert exc.value.held_token == lease.token
    assert exc.value.current_token > lease.token
    assert fence.rejected == 1
    assert store.rejections()[0]["worker"] == "w1"


def test_installed_fence_guards_journal_and_cache(fresh):
    from repro.apps import get_app
    from repro.core import run_simulation

    result = run_simulation(
        get_app("fft", page_size=4096, scale=SCALE, seed=42), ClusterConfig()
    )
    store = LeaseStore("unit/guards")
    (key,) = store.init_grid(_points(1))
    fence = WriteFence(store, "w1", managed={key})
    lease = store.claim(key, "w1", ttl_s=0.01)
    fence.track(lease)
    install_fence(fence)
    try:
        cp = SweepCheckpoint("unit/guards").open()
        cp.record(key, "done")
        rec = cp.load()[0]
        assert rec["token"] == lease.token and rec["worker"] == "w1"

        time.sleep(0.05)
        store.claim(key, "w2", ttl_s=30)  # supersede
        with pytest.raises(StaleFencingTokenError):
            cp.record(key, "failed")
        assert len(cp.load()) == 1  # the rejected append never happened

        cache = runcache.disk_cache()
        with pytest.raises(StaleFencingTokenError):
            cache.put(key, result)
        assert cache.get(key) is None
        assert fence.rejected == 2
    finally:
        uninstall_fence()
    # with the fence uninstalled the same writes go through again
    cache = runcache.disk_cache()
    cache.put(key, result)
    assert cache.get(key) is not None


# --------------------------------------------------------------------- #
# worker + status
# --------------------------------------------------------------------- #
def test_single_worker_completes_grid_and_tags_journal(fresh):
    store = LeaseStore("unit/solo")
    keys = store.init_grid(_points(2))
    stats = FabricWorker("unit/solo", worker_id="solo", ttl_s=30).run()
    assert stats == {
        "computed": 2, "failed": 0, "stolen": 0, "fenced": 0, "rejected": 0,
    }
    cp = SweepCheckpoint("unit/solo")
    cp.refresh()
    assert cp.completed_keys() == set(keys)
    for rec in cp.load():
        assert rec["worker"] == "solo" and isinstance(rec["token"], int)
    # every lease ended terminal; all results are served from the cache
    assert all(lease.status == "done" for lease in store.leases())
    st = sweep_status(store)
    assert st["done"] == 2 and st["orphaned"] == 0 and st["steals"] == 0


def test_sweep_status_counts_orphaned_distinct_from_failed(fresh):
    store = LeaseStore("unit/orphan")
    keys = store.init_grid(_points(3))
    # key 0: journaled failed; key 1: lease expired un-journaled (orphan);
    # key 2: untouched
    SweepCheckpoint("unit/orphan").open().record(keys[0], "failed")
    store.claim(keys[1], "w1", ttl_s=0.01)
    time.sleep(0.05)
    st = sweep_status(store)
    assert st["failed"] == 1
    assert st["orphaned"] == 1
    assert st["unclaimed"] == 1
    assert st["done"] == 0


def test_list_fabric_sweeps(fresh):
    assert list_fabric_sweeps() == []
    LeaseStore("unit/list-a").init_grid(_points(1))
    LeaseStore("unit/list-b").init_grid(_points(1))
    names = [s.sweep for s in list_fabric_sweeps()]
    assert names == ["unit/list-a", "unit/list-b"]
