"""Persistent disk cache: content hashing, round-trips, invalidation."""

import dataclasses
import pickle
import subprocess
import sys

import pytest

from repro.arch.params import CommParams
from repro.core import runcache
from repro.core.config import ClusterConfig
from repro.core.runcache import DiskCache, content_key
from repro.core.sweeps import cached_lookup, cached_run, clear_caches


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    runcache.reset_disk_cache()
    clear_caches()
    yield tmp_path
    runcache.reset_disk_cache()
    clear_caches()


# --------------------------------------------------------------------- #
# content hashing
# --------------------------------------------------------------------- #
def test_content_key_is_deterministic():
    cfg = ClusterConfig()
    assert content_key("fft", 0.5, cfg) == content_key("fft", 0.5, cfg)
    assert content_key("fft", 0.5, cfg) == content_key("fft", 0.5, ClusterConfig())


def test_content_key_stable_across_processes():
    """The hash must not depend on per-process state (PYTHONHASHSEED etc.)."""
    import os
    import pathlib

    repo_root = pathlib.Path(__file__).resolve().parents[2]
    code = (
        "from repro.core.runcache import content_key;"
        "from repro.core.config import ClusterConfig;"
        "print(content_key('fft', 0.5, ClusterConfig()))"
    )
    outs = {
        subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            cwd=repo_root,
            env={
                **os.environ,
                "PYTHONHASHSEED": seed,
                "PYTHONPATH": str(repo_root / "src"),
            },
        ).stdout.strip()
        for seed in ("0", "1234")
    }
    assert outs == {content_key("fft", 0.5, ClusterConfig())}


def test_content_key_changes_with_every_comm_field():
    base = ClusterConfig()
    base_key = content_key("fft", 0.5, base)
    bumped = {
        "host_overhead": 501,
        "io_bus_mb_per_mhz": 0.25,
        "ni_occupancy": 501,
        "interrupt_cost": 501,
        "page_size": 8192,
        "procs_per_node": 2,
        "interrupt_scheme": "round_robin",
        "protocol_processing": "ni-offload",
        "poll_latency": 100,
        "assist_overhead": 100,
        "nis_per_node": 2,
        "comm_regime": "rdma",
        "rdma_post_cycles": 100,
    }
    # every CommParams field must be covered by this test
    assert set(bumped) == {f.name for f in dataclasses.fields(CommParams)}
    for field, value in bumped.items():
        key = content_key("fft", 0.5, base.with_comm(**{field: value}))
        assert key != base_key, f"hash ignores CommParams.{field}"


def test_content_key_covers_app_scale_seed_and_model_version(monkeypatch):
    base = ClusterConfig()
    k = content_key("fft", 0.5, base)
    assert content_key("lu", 0.5, base) != k
    assert content_key("fft", 0.25, base) != k
    assert content_key("fft", 0.5, base.replace(seed=7)) != k
    monkeypatch.setattr(runcache, "MODEL_VERSION", runcache.MODEL_VERSION + 1)
    assert content_key("fft", 0.5, base) != k


# --------------------------------------------------------------------- #
# disk round-trips
# --------------------------------------------------------------------- #
def test_disk_cache_roundtrip_is_value_identical(cache_dir):
    cfg = ClusterConfig()
    computed = cached_run("lu", 0.1, cfg)
    clear_caches()  # drop memory; force the disk layer
    from_disk = cached_run("lu", 0.1, cfg)
    assert from_disk is not computed
    assert from_disk == computed
    # a re-pickle of the unpickled record must round-trip to the same value
    assert pickle.loads(pickle.dumps(from_disk)) == computed


def test_cached_lookup_misses_then_hits(cache_dir):
    cfg = ClusterConfig()
    assert cached_lookup("lu", 0.1, cfg) is None
    cached_run("lu", 0.1, cfg)
    clear_caches()
    assert cached_lookup("lu", 0.1, cfg) is not None


@pytest.mark.parametrize(
    "junk",
    [
        b"not a pickle",
        b"garbage\n",  # pickle.load raises ValueError, not UnpicklingError
        b"",
        pickle.dumps({"magic": "wrong"})[:-3],  # truncated
        pickle.dumps(["not", "a", "record"]),  # valid pickle, wrong shape
    ],
)
def test_corrupt_record_is_a_miss(cache_dir, junk):
    cache = DiskCache(cache_dir)
    key = content_key("fft", 0.5, ClusterConfig())
    (cache_dir / f"{key}.pkl").write_bytes(junk)
    assert cache.get(key) is None


def test_stale_model_version_is_a_miss(cache_dir, monkeypatch):
    cfg = ClusterConfig()
    cached_run("lu", 0.1, cfg)
    clear_caches()
    monkeypatch.setattr(runcache, "MODEL_VERSION", runcache.MODEL_VERSION + 1)
    # same key function would differ too, but even a forged key must miss
    # because the record header carries the version it was written under
    cache = runcache.disk_cache()
    for entry in cache.entries():
        assert cache.get(entry.stem) is None


def test_clear_caches_disk_flag(cache_dir):
    cached_run("lu", 0.1, ClusterConfig())
    cache = runcache.disk_cache()
    assert cache.stats()["entries"] == 1
    clear_caches()  # memory only
    assert cache.stats()["entries"] == 1
    clear_caches(disk=True)
    assert cache.stats()["entries"] == 0
    assert cached_lookup("lu", 0.1, ClusterConfig()) is None


def test_disk_cache_can_be_disabled(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    runcache.reset_disk_cache()
    clear_caches()
    try:
        assert runcache.disk_cache() is None
        cached_run("lu", 0.1, ClusterConfig())
        assert list(tmp_path.iterdir()) == []
    finally:
        runcache.reset_disk_cache()
        clear_caches()
