"""End-to-end observability: profiled runs, invariants, export, caching."""

import json

import pytest

from repro.apps import get_app
from repro.core import ClusterConfig, MetricsRegistry, run_simulation
from repro.core import runcache
from repro.core.metrics import TIME_CATEGORIES
from repro.core.reporting import run_record, write_csv, write_jsonl
from repro.core.sweeps import cache_store, cached_lookup, clear_caches

SCALE = 0.05


@pytest.fixture(scope="module")
def profiled():
    """One small profiled fft run shared by the invariant tests."""
    cfg = ClusterConfig()
    trace = get_app("fft", page_size=cfg.comm.page_size, scale=SCALE, seed=cfg.seed)
    registry = MetricsRegistry()
    result = run_simulation(trace, cfg, metrics=registry)
    return result


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    runcache.reset_disk_cache()
    clear_caches()
    yield tmp_path
    runcache.reset_disk_cache()
    clear_caches()


# --------------------------------------------------------------------- #
# passivity: metrics collection must not change simulated behaviour
# --------------------------------------------------------------------- #
def test_metrics_do_not_perturb_results(profiled):
    cfg = ClusterConfig()
    trace = get_app("fft", page_size=cfg.comm.page_size, scale=SCALE, seed=cfg.seed)
    plain = run_simulation(trace, cfg)
    assert plain.total_cycles == profiled.total_cycles
    assert plain.time_breakdown() == profiled.time_breakdown()
    assert plain.counters == profiled.counters


# --------------------------------------------------------------------- #
# utilization
# --------------------------------------------------------------------- #
def test_utilization_present_even_without_registry():
    """Busy harvesting rides on FluidQueue's unconditional counters."""
    cfg = ClusterConfig()
    trace = get_app("fft", page_size=cfg.comm.page_size, scale=SCALE, seed=cfg.seed)
    result = run_simulation(trace, cfg)
    util = result.utilization()
    assert util, "resource_busy should be harvested on every run"
    assert any(name.startswith("membus") for name in util)
    assert any(name.startswith("cpu.") for name in util)


def test_utilization_values_are_fractions(profiled):
    for name, u in profiled.utilization().items():
        assert 0.0 <= u <= 1.0, f"{name}: utilization {u} outside [0, 1]"
    busiest = max(profiled.utilization().values())
    assert busiest > 0.05, "some resource must be measurably busy"


# --------------------------------------------------------------------- #
# phase breakdown
# --------------------------------------------------------------------- #
def test_phase_fractions_sum_to_one(profiled):
    phases = profiled.phase_breakdown()
    assert phases, "profiled run must produce phase marks"
    for phase in phases:
        total = sum(phase["fractions"].values())
        assert total == pytest.approx(1.0, abs=1e-6), (
            f"{phase['label']}: fractions sum to {total}"
        )
        assert set(phase["fractions"]) <= set(TIME_CATEGORIES)


def test_phases_are_contiguous_and_ordered(profiled):
    phases = profiled.phase_breakdown()
    for prev, cur in zip(phases, phases[1:]):
        # epochs are ordered; zero-cost epochs may be dropped, leaving gaps
        assert cur["start"] >= prev["end"]
        assert cur["end"] > cur["start"]
    assert phases[-1]["label"] == "run_end"
    assert phases[-1]["end"] == profiled.total_cycles


def test_phase_cycles_match_aggregate(profiled):
    """Per-phase deltas must sum back to the whole-run breakdown."""
    phases = profiled.phase_breakdown()
    summed = {}
    for phase in phases:
        for cat, cyc in phase["cycles"].items():
            summed[cat] = summed.get(cat, 0) + cyc
    aggregate = {k: v for k, v in profiled.time_breakdown().items() if v}
    assert {k: v for k, v in summed.items() if v} == aggregate


def test_hotspots_ranked_desc(profiled):
    spots = profiled.hotspots(top=5)
    assert spots, "profiled run must record protocol hotspots"
    cycles = [c for _, c, _ in spots]
    assert cycles == sorted(cycles, reverse=True)
    names = [n for n, _, _ in spots]
    assert any("handler" in n or "protocol" in n for n in names)


def test_unprofiled_run_has_no_phases():
    cfg = ClusterConfig()
    trace = get_app("fft", page_size=cfg.comm.page_size, scale=SCALE, seed=cfg.seed)
    result = run_simulation(trace, cfg)
    assert result.phase_marks == []
    assert result.phase_breakdown() == []
    assert result.metrics_counters == {}


# --------------------------------------------------------------------- #
# runcache round-trip of the new fields
# --------------------------------------------------------------------- #
def test_runcache_roundtrip_preserves_observability_fields(cache_dir, profiled):
    cfg = ClusterConfig()
    cache_store("fft", SCALE, cfg, profiled)
    clear_caches()  # drop memory; force the disk layer
    from_disk = cached_lookup("fft", SCALE, cfg)
    assert from_disk is not None
    assert from_disk.resource_busy == profiled.resource_busy
    assert from_disk.phase_marks == profiled.phase_marks
    assert from_disk.metrics_counters == profiled.metrics_counters
    assert from_disk.metrics_cycles == profiled.metrics_cycles
    assert from_disk.queue_stats == profiled.queue_stats
    assert from_disk.phase_breakdown() == profiled.phase_breakdown()


# --------------------------------------------------------------------- #
# structured export
# --------------------------------------------------------------------- #
def test_run_record_is_json_serializable(profiled):
    record = run_record(profiled)
    blob = json.dumps(record, sort_keys=True)
    back = json.loads(blob)
    assert back["app"] == "fft"
    assert back["utilization"]
    assert back["phases"]
    assert back["hotspots"]


def test_write_jsonl_and_csv(tmp_path, profiled):
    jsonl = tmp_path / "runs.jsonl"
    assert write_jsonl(jsonl, [profiled, profiled]) == 2
    lines = jsonl.read_text().splitlines()
    assert len(lines) == 2
    rec = json.loads(lines[0])
    assert rec["total_cycles"] == profiled.total_cycles

    csv_path = tmp_path / "runs.csv"
    assert write_csv(csv_path, [profiled]) == 1
    header, row = csv_path.read_text().splitlines()
    assert "total_cycles" in header.split(",")
    assert any(col.startswith("util.") for col in header.split(","))
