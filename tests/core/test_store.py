"""Columnar result store: round-trips, views, migrations, concurrency.

The store is the append-only system of record for completed runs
(:mod:`repro.core.store`); these tests pin its durability contract:

* ingest -> materialized view -> export round-trips losslessly,
  including non-finite metric values (sqlite would silently turn a bare
  ``NaN`` into ``NULL``);
* re-ingesting a key is a no-op, and the same content hash served at a
  different fidelity is a *separate* row (an analytic serve must never
  shadow the DES row);
* a v1 database upgrades in place on open, a newer-schema database is
  refused;
* two processes ingesting into one database under contention (the same
  advisory lock the run cache uses) lose nothing and duplicate nothing.
"""

import json
import os
import sqlite3
import subprocess
import sys
import time

import pytest

from repro.apps import get_app
from repro.core import ClusterConfig, run_simulation
from repro.core.store import (
    SCHEMA_VERSION,
    ResultStore,
    SchemaMismatchError,
    ingest_quietly,
    reset_result_store,
)

SCALE = 0.02


@pytest.fixture(scope="module")
def results():
    """Two real (tiny) runs: same app, both protocols."""
    out = {}
    for proto in ("hlrc", "aurc"):
        cfg = ClusterConfig().replace(protocol=proto)
        trace = get_app("fft", page_size=cfg.comm.page_size, scale=SCALE, seed=cfg.seed)
        out[proto] = run_simulation(trace, cfg)
    return out


@pytest.fixture
def store(tmp_path):
    s = ResultStore(tmp_path / "store.sqlite")
    yield s
    s.close()


# --------------------------------------------------------------------- #
# ingest -> views -> export round-trip
# --------------------------------------------------------------------- #
def test_ingest_round_trip_through_views(store, results):
    r = results["hlrc"]
    assert store.ingest_result("k-hlrc", r, scale=SCALE, sweep="s1") is True

    rows = store.speedups(app="fft")
    assert len(rows) == 1
    row = rows[0]
    assert row["key"] == "k-hlrc"
    assert row["protocol"] == "hlrc"
    assert row["speedup"] == pytest.approx(r.speedup)
    assert row["ideal_speedup"] == pytest.approx(r.ideal_speedup)

    # long-format metrics mirror the result's own breakdowns
    cycles = store.metrics("k-hlrc", kind="cycles")
    assert cycles == r.time_breakdown()
    util = store.metrics("k-hlrc", kind="util")
    assert util == pytest.approx(r.utilization())

    # the full record column reconstructs the reporting dict
    conn = sqlite3.connect(store.path)
    record, sweep = conn.execute(
        "SELECT record, sweep FROM runs WHERE key='k-hlrc'"
    ).fetchone()
    conn.close()
    assert sweep == "s1"
    assert json.loads(record)["app"] == "fft"


def test_reingest_is_noop_and_fidelity_is_separate(store, results):
    r = results["hlrc"]
    assert store.ingest_result("k", r, scale=SCALE) is True
    assert store.ingest_result("k", r, scale=SCALE) is False
    assert store.stats()["runs"] == 1
    # same content hash served by the fast model: its own row, never a
    # shadow of the DES one
    assert store.ingest_result("k", r, scale=SCALE, fidelity="analytic") is True
    assert store.stats()["runs"] == 2
    des = store.speedups(fidelity="des")
    fast = store.speedups(fidelity="analytic")
    assert len(des) == len(fast) == 1


def test_slowdown_view_aggregates_per_group(store, results):
    r = results["hlrc"]
    slow = results["aurc"]
    store.ingest_result("k1", r, scale=SCALE)
    store.ingest_result("k2", slow, scale=SCALE)
    groups = store.slowdowns()
    assert len(groups) == 2  # one per protocol
    by_proto = {g["protocol"]: g for g in groups}
    assert by_proto["hlrc"]["points"] == 1
    assert by_proto["hlrc"]["best"] == pytest.approx(r.speedup)
    # a second run in the same group recomputes only that group
    store.ingest_result("k3", r, scale=SCALE)
    by_proto = {g["protocol"]: g for g in store.slowdowns()}
    assert by_proto["hlrc"]["points"] == 2
    assert by_proto["aurc"]["points"] == 1


def test_non_finite_metric_values_round_trip(store, results):
    r = results["hlrc"].with_meta(
        bad_nan=float("nan"), bad_inf=float("inf"), bad_ninf=float("-inf")
    )
    store.ingest_result("k-nan", r, scale=SCALE)
    meta = store.metrics("k-nan", kind="meta")
    import math

    assert math.isnan(meta["bad_nan"])
    assert meta["bad_inf"] == float("inf")
    assert meta["bad_ninf"] == float("-inf")
    # exports decode them too (sqlite stores them as tagged text)
    out = store.path.parent / "runs.jsonl"
    store.export_jsonl(out, table="run_metrics")
    dumped = [json.loads(line) for line in out.read_text().splitlines()]
    by_name = {d["name"]: d["value"] for d in dumped if d["kind"] == "meta"}
    assert math.isnan(by_name["bad_nan"])
    assert by_name["bad_inf"] == float("inf")


def test_csv_export_and_unknown_table_refused(store, results):
    store.ingest_result("k", results["hlrc"], scale=SCALE)
    out = store.path.parent / "runs.csv"
    assert store.export_csv(out, table="runs") == 1
    header = out.read_text().splitlines()[0]
    assert header.startswith("key,fidelity,model_version")
    with pytest.raises(ValueError, match="unknown table"):
        store.export_csv(out, table="sqlite_master")  # no SQL injection path


# --------------------------------------------------------------------- #
# artifacts + CI history rows
# --------------------------------------------------------------------- #
def test_artifact_history_serves_newest(store):
    store.ingest_artifact("figure01", "old render", scale=1.0, source="t")
    store.ingest_artifact("figure01", "new render", scale=1.0, source="t")
    store.ingest_artifact("figure01", "tiny render", scale=0.05, source="t")
    art = store.artifact("figure01", scale=1.0)
    assert art["text"] == "new render"
    assert store.artifact("figure01")["text"] == "tiny render"  # newest overall
    assert store.artifact("nope") is None
    assert store.artifact_ids() == [("figure01", 0.05, 1), ("figure01", 1.0, 2)]


def test_bench_history_trend_order(store):
    for i in range(3):
        store.append_bench("sweep", {"serial_cold_s": 10.0 + i}, source="t")
    trend = store.bench_trend("sweep", last=2)
    assert [r["payload"]["serial_cold_s"] for r in trend] == [11.0, 12.0]
    assert store.bench_trend("engine") == []


def test_golden_history_dedup_and_diff(store):
    points_v1 = {
        "fft/hlrc/clean": {"digest": "aaa", "total_cycles": 100},
        "fft/aurc/clean": {"digest": "bbb", "total_cycles": 200},
    }
    assert store.append_golden(points_v1, model_version=1) == 2
    # re-recording the identical grid adds nothing
    assert store.append_golden(points_v1, model_version=1) == 0
    points_v2 = {
        "fft/hlrc/clean": {"digest": "aaa", "total_cycles": 100},  # unchanged
        "fft/aurc/clean": {"digest": "ccc", "total_cycles": 222},  # moved
        "lu/hlrc/clean": {"digest": "ddd", "total_cycles": 50},  # new point
    }
    assert store.append_golden(points_v2, model_version=2) == 3
    diff = store.diff_model_versions(1, 2)
    status = {g["tag"]: g["status"] for g in diff["golden"]}
    assert status == {
        "fft/hlrc/clean": "same",
        "fft/aurc/clean": "changed",
        "lu/hlrc/clean": "only-v2",
    }


# --------------------------------------------------------------------- #
# schema versioning
# --------------------------------------------------------------------- #
V1_DDL = """
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE runs (
    key TEXT PRIMARY KEY, model_version INTEGER NOT NULL, sweep TEXT,
    app TEXT NOT NULL, problem TEXT, protocol TEXT, config TEXT,
    seed INTEGER, scale REAL, n_procs INTEGER, total_cycles INTEGER,
    serial_cycles INTEGER, speedup REAL, ideal_speedup REAL,
    created_unix REAL, record TEXT NOT NULL
);
CREATE TABLE run_metrics (
    key TEXT NOT NULL, kind TEXT NOT NULL, name TEXT NOT NULL, value,
    PRIMARY KEY (key, kind, name)
);
CREATE TABLE view_speedups (
    key TEXT PRIMARY KEY, app TEXT NOT NULL, protocol TEXT, scale REAL,
    model_version INTEGER, config TEXT, speedup REAL, ideal_speedup REAL
);
INSERT INTO meta VALUES ('schema_version', '1');
INSERT INTO runs VALUES ('old-key', 1, NULL, 'fft', 'p', 'hlrc', 'cfg',
                         0, 1.0, 16, 100, 400, 4.0, 8.0, 0.0, '{}');
"""


def test_v1_database_migrates_in_place(tmp_path, results):
    db = tmp_path / "old.sqlite"
    conn = sqlite3.connect(db)
    conn.executescript(V1_DDL)
    conn.commit()
    conn.close()

    store = ResultStore(db)
    try:
        # v1 rows are visible with the default fidelity...
        assert store.stats()["schema_version"] == SCHEMA_VERSION
        conn = sqlite3.connect(db)
        fid, version = conn.execute(
            "SELECT (SELECT fidelity FROM runs WHERE key='old-key'),"
            " (SELECT value FROM meta WHERE key='schema_version')"
        ).fetchone()
        conn.close()
        assert fid == "des"
        assert int(version) == SCHEMA_VERSION
        # ...and the migrated database accepts new-schema ingests
        assert store.ingest_result("new-key", results["hlrc"], scale=SCALE)
        assert store.stats()["runs"] == 2
    finally:
        store.close()


def test_newer_schema_is_refused(tmp_path):
    db = tmp_path / "future.sqlite"
    conn = sqlite3.connect(db)
    conn.executescript(
        "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);"
        f"INSERT INTO meta VALUES ('schema_version', '{SCHEMA_VERSION + 7}');"
    )
    conn.commit()
    conn.close()
    store = ResultStore(db)
    with pytest.raises(SchemaMismatchError, match="refusing to open"):
        store.stats()


def test_unmigratable_version_is_refused(tmp_path):
    db = tmp_path / "odd.sqlite"
    conn = sqlite3.connect(db)
    conn.executescript(
        "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);"
        "INSERT INTO meta VALUES ('schema_version', '0');"
    )
    conn.commit()
    conn.close()
    with pytest.raises(SchemaMismatchError, match="no migration"):
        ResultStore(db).stats()


# --------------------------------------------------------------------- #
# best-effort hook contract
# --------------------------------------------------------------------- #
def test_ingest_quietly_swallows_store_failures(tmp_path, results, monkeypatch):
    # a directory where the database file should be: every open fails
    bad = tmp_path / "store.sqlite"
    bad.mkdir()
    monkeypatch.setenv("REPRO_STORE_PATH", str(bad))
    reset_result_store()
    try:
        assert ingest_quietly([("k", results["hlrc"], SCALE)]) == 0
    finally:
        reset_result_store()


def test_disable_switch(monkeypatch, results):
    monkeypatch.setenv("REPRO_RESULT_STORE", "0")
    reset_result_store()
    try:
        from repro.core.store import result_store

        assert result_store() is None
        assert ingest_quietly([("k", results["hlrc"], SCALE)]) == 0
    finally:
        reset_result_store()


# --------------------------------------------------------------------- #
# cross-process ingest under contention
# --------------------------------------------------------------------- #
CHILD = r"""
import os, sys, time
from repro.apps import get_app
from repro.core import ClusterConfig, run_simulation
from repro.core.store import ResultStore

writer, n, db = sys.argv[1], int(sys.argv[2]), sys.argv[3]
cfg = ClusterConfig()
trace = get_app("fft", page_size=cfg.comm.page_size, scale=0.02, seed=cfg.seed)
result = run_simulation(trace, cfg)
store = ResultStore(db)
barrier = db + ".go"
while not os.path.exists(barrier):
    time.sleep(0.001)
# every writer tries the same shared keys plus some of its own: the
# shared ones must come out exactly once
for i in range(n):
    store.ingest_result(f"shared-{i:03d}", result, scale=0.02, sweep="race")
    store.ingest_result(f"{writer}-{i:03d}", result, scale=0.02, sweep="race")
"""

WRITERS = 2
KEYS_PER_WRITER = 12


def test_two_processes_ingest_without_loss_or_duplication(tmp_path):
    db = tmp_path / "race.sqlite"
    env = dict(os.environ, PYTHONPATH="src")
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", CHILD, f"w{i}", str(KEYS_PER_WRITER), str(db)],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        for i in range(WRITERS)
    ]
    time.sleep(0.2)  # let both children finish their setup simulation
    (tmp_path / "race.sqlite.go").write_text("")
    for p in procs:
        assert p.wait(timeout=120) == 0

    store = ResultStore(db)
    try:
        expected = {f"shared-{i:03d}" for i in range(KEYS_PER_WRITER)} | {
            f"w{w}-{i:03d}"
            for w in range(WRITERS)
            for i in range(KEYS_PER_WRITER)
        }
        assert store.stats()["runs"] == len(expected)
        keys = [r["key"] for r in store.speedups()]
        assert set(keys) == expected
        assert len(keys) == len(set(keys)), "a contended ingest was duplicated"
        # the view aggregate saw every row exactly once
        (group,) = store.slowdowns()
        assert group["points"] == len(expected)
    finally:
        store.close()
