"""End-to-end property tests: random well-formed trace programs must run
to completion with protocol invariants intact, on both protocols."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import AppTrace
from repro.arch import CommParams
from repro.core import ClusterConfig, run_simulation

N_PROCS = 4


def build_trace(programs):
    """programs: per-proc list of abstract ops -> a valid AppTrace.

    Ops: ("c", cycles), ("r", page), ("w", page, words),
    ("cs", lock, page, words)  — a critical section around a read+write —
    and a trailing barrier for everyone.
    """
    events = []
    for prog in programs:
        evs = []
        for op in prog:
            kind = op[0]
            if kind == "c":
                evs.append(("c", op[1], op[1] // 10, 100))
            elif kind == "r":
                evs.append(("r", op[1]))
            elif kind == "w":
                evs.append(("w", op[1], op[2], 1))
            elif kind == "cs":
                _, lock, page, words = op
                evs.append(("a", lock))
                evs.append(("r", page))
                evs.append(("w", page, words, 1))
                evs.append(("l", lock))
        evs.append(("b", 0))
        events.append(evs)
    trace = AppTrace(
        name="random",
        n_procs=N_PROCS,
        events=events,
        serial_cycles=sum(
            ev[1] + ev[2] for evs in events for ev in evs if ev[0] == "c"
        )
        or 1,
        shared_bytes=0,
    )
    trace.validate()
    return trace


op_strategy = st.one_of(
    st.tuples(st.just("c"), st.integers(100, 20_000)),
    st.tuples(st.just("r"), st.integers(0, 15)),
    st.tuples(st.just("w"), st.integers(0, 15), st.integers(1, 64)),
    st.tuples(
        st.just("cs"), st.integers(0, 5), st.integers(0, 15), st.integers(1, 32)
    ),
)

programs_strategy = st.lists(
    st.lists(op_strategy, max_size=12), min_size=N_PROCS, max_size=N_PROCS
)


@given(programs=programs_strategy, protocol=st.sampled_from(["hlrc", "aurc"]))
@settings(max_examples=30, deadline=None)
def test_random_programs_complete_with_consistent_counters(programs, protocol):
    trace = build_trace(programs)
    config = ClusterConfig(
        comm=CommParams(procs_per_node=2),
        total_procs=N_PROCS,
        protocol=protocol,
        home_policy="round_robin",
    )
    result = run_simulation(trace, config)

    # completion and basic sanity
    assert result.total_cycles >= 0
    c = result.counters
    # fetches never exceed faults (fetch coalescing), and per-CPU counts
    # aggregate to the cluster counters
    assert c.page_fetches <= c.page_faults
    assert sum(s.get_count("page_faults") for s in result.proc_stats) == c.page_faults
    assert (
        sum(s.get_count("local_lock_acquires") for s in result.proc_stats)
        == c.local_lock_acquires
    )
    assert (
        sum(s.get_count("remote_lock_acquires") for s in result.proc_stats)
        == c.remote_lock_acquires
    )
    # every barrier participant arrived exactly once
    assert c.barriers == N_PROCS
    # time categories are non-negative and compute matches the trace
    for proc, stats in enumerate(result.proc_stats):
        assert all(v >= 0 for v in stats.time.values())
    total_compute = sum(s.time["compute"] for s in result.proc_stats)
    expected = sum(ev[1] for evs in trace.events for ev in evs if ev[0] == "c")
    assert total_compute == expected


@given(programs=programs_strategy)
@settings(max_examples=15, deadline=None)
def test_random_programs_deterministic(programs):
    trace = build_trace(programs)
    config = ClusterConfig(
        comm=CommParams(procs_per_node=2),
        total_procs=N_PROCS,
        home_policy="round_robin",
    )
    a = run_simulation(trace, config)
    b = run_simulation(trace, config)
    assert a.total_cycles == b.total_cycles
    assert a.counters.page_fetches == b.counters.page_fetches
    assert a.counters.remote_lock_acquires == b.counters.remote_lock_acquires


@given(programs=programs_strategy)
@settings(max_examples=15, deadline=None)
def test_mutual_exclusion_under_random_programs(programs):
    """Instrument the lock manager: no two holders of one lock overlap."""
    from repro.core import Cluster
    from repro.core.run import _worker

    trace = build_trace(programs)
    config = ClusterConfig(
        comm=CommParams(procs_per_node=2),
        total_procs=N_PROCS,
        home_policy="round_robin",
    )
    cluster = Cluster(config)
    lm = cluster.protocol.locks
    orig_acquire, orig_release = lm.acquire, lm.release
    holders = {}
    violations = []

    def acquire(cpu, lock_id):
        snap = yield from orig_acquire(cpu, lock_id)
        if holders.get(lock_id) is not None:
            violations.append((lock_id, holders[lock_id], cpu.global_id))
        holders[lock_id] = cpu.global_id
        return snap

    def release(cpu, lock_id, vc):
        holders[lock_id] = None
        yield from orig_release(cpu, lock_id, vc)

    lm.acquire, lm.release = acquire, release
    for pid, evs in enumerate(trace.events):
        cluster.sim.spawn(_worker(cluster, cluster.procs[pid], evs))
    cluster.sim.run()
    assert violations == []
    assert all(cpu.finish_time is not None for cpu in cluster.procs)
