"""Parallel executor: determinism, ordering, dedup, jobs resolution."""

import dataclasses
import json

import pytest

from repro.arch.params import HOST_OVERHEAD_SWEEP
from repro.core import runcache
from repro.core.config import ClusterConfig
from repro.core.executor import (
    Point,
    prefetch,
    resolve_jobs,
    run_points,
    set_default_jobs,
)
from repro.core.sweeps import cached_lookup, clear_caches, run_apps, sweep_comm_param

#: a small 3-app x 3-point grid (distinct interrupt costs force real runs)
GRID_APPS = ("fft", "lu", "water-sp")
GRID_COSTS = (0, 500, 2000)
GRID_SCALE = 0.05


def _grid():
    base = ClusterConfig()
    return [
        (app, GRID_SCALE, base.with_comm(interrupt_cost=c))
        for app in GRID_APPS
        for c in GRID_COSTS
    ]


@pytest.fixture
def fresh(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    runcache.reset_disk_cache()
    clear_caches()
    yield
    runcache.reset_disk_cache()
    clear_caches()


def _canon(results):
    """Canonical serialization: every field of every RunResult, as JSON."""
    return json.dumps(
        [
            {
                "app": r.app_name,
                "problem": r.problem,
                "config": dataclasses.asdict(r.config),
                "total_cycles": r.total_cycles,
                "serial_cycles": r.serial_cycles,
                "uncontended_busy_max": r.uncontended_busy_max,
                "proc_stats": [
                    {"time": s.time, "counters": sorted(s.counters.items())}
                    for s in r.proc_stats
                ],
                "counters": dataclasses.asdict(r.counters),
                "meta": sorted(r.meta.items()),
            }
            for r in results
        ],
        sort_keys=True,
        default=repr,
    )


def test_parallel_matches_serial_bit_identically(fresh):
    serial = run_points(_grid(), jobs=1)
    clear_caches(disk=True)
    parallel = run_points(_grid(), jobs=4)
    assert serial == parallel
    assert _canon(serial) == _canon(parallel)


def test_run_points_preserves_order_and_dedups(fresh):
    base = ClusterConfig()
    pts = [
        ("lu", GRID_SCALE, base),
        ("fft", GRID_SCALE, base),
        ("lu", GRID_SCALE, base),  # duplicate: must be simulated once
    ]
    results = run_points(pts, jobs=2)
    assert [r.app_name for r in results] == ["lu", "fft", "lu"]
    assert results[0] is results[2]


def test_run_points_populates_shared_caches(fresh):
    p = Point("lu", GRID_SCALE, ClusterConfig())
    assert cached_lookup(*p) is None
    prefetch([p], jobs=2)
    assert cached_lookup(*p) is not None
    # and the disk layer saw it too
    clear_caches()
    assert cached_lookup(*p) is not None


def test_sweep_and_run_apps_accept_jobs(fresh):
    results = sweep_comm_param(
        "lu", "host_overhead", HOST_OVERHEAD_SWEEP[:2], scale=GRID_SCALE, jobs=2
    )
    assert len(results) == 2
    out = run_apps(apps=["lu", "fft"], scale=GRID_SCALE, jobs=2)
    assert set(out) == {"lu", "fft"}


def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 1
    assert resolve_jobs(3) == 3
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5
    assert resolve_jobs(2) == 2  # explicit beats env
    set_default_jobs(7)
    try:
        assert resolve_jobs() == 7  # default beats env
        assert resolve_jobs(2) == 2  # explicit still wins
    finally:
        set_default_jobs(None)
    assert resolve_jobs(0) >= 1  # 0 = all cores


def test_resolve_jobs_ignores_garbage_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    assert resolve_jobs() == 1


def test_jobs_zero_means_all_cores(monkeypatch):
    import os

    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_JOBS", "0")
    assert resolve_jobs() == (os.cpu_count() or 1)
    assert resolve_jobs(-3) == 1  # negatives clamp to serial, not crash


def test_single_point_grid_runs_serial_even_with_jobs(fresh):
    """One unique point (after dedup) must not pay process-pool startup."""
    base = ClusterConfig()
    pts = [("lu", GRID_SCALE, base)] * 4  # dedups to a single point
    results = run_points(pts, jobs=8)
    assert len(results) == 4
    assert all(r is results[0] for r in results)
