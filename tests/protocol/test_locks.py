"""Tests for the token-based distributed lock protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.protocol.conftest import build, run_workers

# 2 nodes x 2 procs; lock L homes at node L % 2.


def test_local_acquire_at_home_no_messages():
    cluster = build()

    def worker(cpu, proto):
        yield from proto.acquire(cpu, 0)  # lock 0 homes at node 0
        yield from proto.release(cpu, 0)

    run_workers(cluster, {0: worker})
    c = cluster.protocol.counters
    assert c.local_lock_acquires == 1
    assert c.remote_lock_acquires == 0
    assert cluster.procs[0].stats.get_count("messages_sent") == 0


def test_remote_acquire_uses_messages_and_interrupt():
    cluster = build()

    def worker(cpu, proto):
        yield from proto.acquire(cpu, 1)  # lock 1 homes at node 1
        yield from proto.release(cpu, 1)

    run_workers(cluster, {0: worker})
    c = cluster.protocol.counters
    assert c.remote_lock_acquires == 1
    assert c.local_lock_acquires == 0
    assert cluster.nodes[1].cpus[0].stats.get_count("interrupts") >= 1
    assert cluster.procs[0].stats.time["lock_wait"] > 0


def test_token_caching_makes_reacquire_local():
    """After a remote acquire, the token stays at the node: the next
    acquire by either processor of that node is local."""
    cluster = build()

    def first(cpu, proto):
        yield from proto.acquire(cpu, 1)
        yield from proto.release(cpu, 1)

    run_workers(cluster, {0: first})
    assert cluster.protocol.counters.remote_lock_acquires == 1

    def second(cpu, proto):
        yield from proto.acquire(cpu, 1)
        yield from proto.release(cpu, 1)

    cluster.sim.spawn(second(cluster.procs[1], cluster.protocol))
    cluster.sim.run()
    c = cluster.protocol.counters
    assert c.remote_lock_acquires == 1
    assert c.local_lock_acquires == 1


def test_intra_node_contention_waits_locally():
    cluster = build()
    order = []

    def worker(tag, hold):
        def gen(cpu, proto):
            yield from proto.acquire(cpu, 0)
            order.append((tag, "got", cluster.sim.now))
            yield from cpu.busy(hold, "compute")
            yield from proto.release(cpu, 0)

        return gen

    run_workers(cluster, {0: worker("a", 10_000), 1: worker("b", 10)})
    assert [t for t, _, _ in order] == ["a", "b"]
    # b waited for a's hold
    assert order[1][2] >= order[0][2] + 10_000
    assert cluster.protocol.counters.local_lock_acquires == 2


def test_token_recall_across_nodes():
    """Holder at node 0 (token cached), requester at node 1: home must
    recall the token and grant after the release."""
    cluster = build()
    order = []

    def holder(cpu, proto):
        yield from proto.acquire(cpu, 1)  # remote: token moves to node 0
        order.append(("holder", cluster.sim.now))
        yield from cpu.busy(200_000, "compute")
        yield from proto.release(cpu, 1)

    def requester(cpu, proto):
        yield cluster.sim.timeout(50_000)  # arrive while holder works
        yield from proto.acquire(cpu, 1)
        order.append(("requester", cluster.sim.now))
        yield from proto.release(cpu, 1)

    run_workers(cluster, {0: holder, 2: requester})
    assert [t for t, _ in order] == ["holder", "requester"]
    # the requester could not get it before the holder's release
    assert order[1][1] > order[0][1] + 200_000


def test_home_local_request_with_token_elsewhere():
    """Requester at the lock's own home while the token is cached away:
    local request queues at home, recall brings the token back."""
    cluster = build()
    got = []

    def remote_first(cpu, proto):
        yield from proto.acquire(cpu, 1)  # token to node 0
        yield from cpu.busy(200_000, "compute")
        yield from proto.release(cpu, 1)

    def home_second(cpu, proto):
        # wait until the token has really migrated to node 0
        while proto.locks.state(1).token_node != 0:
            yield cluster.sim.timeout(1_000)
        yield from proto.acquire(cpu, 1)  # proc 2 is at home node 1
        got.append(cluster.sim.now)
        yield from proto.release(cpu, 1)

    run_workers(cluster, {0: remote_first, 2: home_second})
    assert len(got) == 1
    c = cluster.protocol.counters
    assert c.remote_lock_acquires == 2  # both needed the token moved


def test_release_by_non_holder_raises():
    cluster = build()

    def worker(cpu, proto):
        yield from proto.locks.release(cpu, 0, proto.vc[cpu.global_id].snapshot())

    with pytest.raises(Exception):
        run_workers(cluster, {0: worker})


def test_fifo_service_under_cross_node_contention():
    cluster = build()
    order = []

    def worker(tag, start):
        def gen(cpu, proto):
            yield cluster.sim.timeout(start)
            yield from proto.acquire(cpu, 0)
            order.append(tag)
            yield from cpu.busy(5_000, "compute")
            yield from proto.release(cpu, 0)

        return gen

    run_workers(
        cluster,
        {0: worker("n0a", 0), 2: worker("n1a", 100), 3: worker("n1b", 200)},
    )
    assert len(order) == 3
    assert order[0] == "n0a"


@given(
    pattern=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 2), st.integers(100, 5000)),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=25, deadline=None)
def test_mutual_exclusion_property(pattern):
    """Property: whatever the acquire pattern, no two processors ever hold
    the same lock simultaneously, and every acquire eventually completes."""
    cluster = build()
    holders = {}
    violations = []
    completed = []

    def worker(cpu, proto, lock_id, hold):
        def gen(c, p):
            yield from p.acquire(c, lock_id)
            if holders.get(lock_id) is not None:
                violations.append((lock_id, holders[lock_id], c.global_id))
            holders[lock_id] = c.global_id
            yield from c.busy(hold, "compute")
            holders[lock_id] = None
            yield from p.release(c, lock_id)
            completed.append(c.global_id)

        return gen(cpu, proto)

    for proc_id, lock_id, hold in pattern:
        cluster.sim.spawn(
            worker(cluster.procs[proc_id], cluster.protocol, lock_id, hold)
        )
    cluster.sim.run()
    assert violations == []
    assert len(completed) == len(pattern)
