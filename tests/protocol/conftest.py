"""Fixtures for protocol tests: small clusters and process drivers."""

import pytest

from repro.arch import ArchParams, CommParams
from repro.core import Cluster, ClusterConfig


def small_config(**kw):
    """4 processors on 2 nodes, round-robin homes for determinism."""
    comm_kw = {
        k: kw.pop(k)
        for k in (
            "host_overhead",
            "io_bus_mb_per_mhz",
            "ni_occupancy",
            "interrupt_cost",
            "page_size",
            "procs_per_node",
            "interrupt_scheme",
        )
        if k in kw
    }
    comm = CommParams(**{"procs_per_node": 2, **comm_kw})
    defaults = dict(
        arch=ArchParams(),
        comm=comm,
        total_procs=4,
        home_policy="round_robin",
    )
    defaults.update(kw)
    return ClusterConfig(**defaults)


def build(**kw):
    return Cluster(small_config(**kw))


def run_workers(cluster, worker_fns):
    """Spawn one worker generator per entry {proc_id: fn(cpu, protocol)}
    and run the simulation to completion."""
    for proc_id, fn in worker_fns.items():
        cpu = cluster.procs[proc_id]
        cluster.sim.spawn(fn(cpu, cluster.protocol), name=f"worker{proc_id}")
    cluster.sim.run()
    return cluster


@pytest.fixture
def cluster():
    return build()
