"""Property tests for the pluggable barrier collectives.

Every topology (flat, binomial tree, dissemination) must implement the
same barrier contract, so each invariant below is checked directly on
the verify-event stream rather than trusting the implementation:

* **safety** — no processor's release event appears before every
  processor's arrival event for that episode (stream order *and*
  simulated time);
* **liveness/exactness** — every episode releases each participant
  exactly once;
* **monotonicity** — each processor's visits to a barrier id carry
  consecutive epoch numbers starting at 0.

The same invariants are replayed under seeded fault injection (drops,
duplicates, delay spikes): a collective that forgets a retransmit or
double-serves a duplicated hop fails here first.  A differential test
then pins the memory-model side: the per-page version history under any
topology equals the zero-cost ideal model's prediction, so collectives
can change *timing* but never *ordering*.

The dissemination phase-attribution regression pins satellite behaviour
of the metrics layer: inter-stage hop waits must land in the barrier
phase (the episode's phase mark fires when the *last* representative
completes), and per-episode hop counts match the textbook message
complexity — ``n·ceil(log2 n)`` for dissemination, ``2(n-1)`` for the
tree's up+down sweep.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import CommParams
from repro.core import ClusterConfig
from repro.core.stats import MetricsRegistry
from repro.net.faults import FaultParams
from repro.protocol.collectives import COLLECTIVES
from repro.verify.events import EV_BARRIER_ARRIVE, EV_BARRIER_RELEASE
from repro.verify.ideal import ideal_interval_sets, interval_sets_from_log
from tests.verify.workloads import (
    PATTERNS,
    assert_oracle_clean,
    fault_point_strategy,
    make_trace,
    run_verified,
)

#: (total_procs, procs_per_node) corners: pure inter-node (1/node), a
#: non-power-of-two node count (3 nodes), and multi-processor nodes
SHAPES = ((4, 1), (4, 2), (6, 2), (8, 2), (8, 4))


def _config(total, ppn, collective, protocol="hlrc", faults=None):
    return ClusterConfig(
        comm=CommParams(procs_per_node=ppn),
        total_procs=total,
        protocol=protocol,
        home_policy="round_robin",
        collective=collective,
        faults=faults if faults is not None else FaultParams(),
    )


def _single_barrier_trace(n_procs):
    """Each proc dirties its own page, then one global barrier."""
    events = [[("w", p, 4, 1), ("b", 0)] for p in range(n_procs)]
    return make_trace(events, "single_barrier")


def check_barrier_invariants(records, n_procs, collective, context=""):
    """Assert the release contract directly on the verify-event stream."""
    all_procs = frozenset(range(n_procs))
    # episode -> {"arrive": {proc: (stream_pos, time)}, "release": {...}}
    episodes = {}
    pos = 0
    for rec in records:
        if rec.kind not in (EV_BARRIER_ARRIVE, EV_BARRIER_RELEASE):
            continue
        proc, _node, barrier_id, epoch, topology = rec.detail
        assert topology == collective, (
            f"{context}: event tagged {topology!r}, ran {collective!r}"
        )
        side = "arrive" if rec.kind == EV_BARRIER_ARRIVE else "release"
        ep = episodes.setdefault(
            (barrier_id, epoch), {"arrive": {}, "release": {}}
        )
        assert proc not in ep[side], (
            f"{context}: duplicate {side} for proc {proc} in episode "
            f"{(barrier_id, epoch)}"
        )
        ep[side][proc] = (pos, rec.time)
        pos += 1

    assert episodes, f"{context}: no barrier episodes recorded"
    for key, ep in episodes.items():
        assert frozenset(ep["arrive"]) == all_procs, (
            f"{context}: episode {key} arrivals {sorted(ep['arrive'])} "
            f"!= all procs"
        )
        # exactly one release per participant (duplicates caught above)
        assert frozenset(ep["release"]) == all_procs, (
            f"{context}: episode {key} releases {sorted(ep['release'])} "
            f"!= all procs"
        )
        last_arrive_pos = max(p for p, _ in ep["arrive"].values())
        last_arrive_time = max(t for _, t in ep["arrive"].values())
        first_release_pos = min(p for p, _ in ep["release"].values())
        first_release_time = min(t for _, t in ep["release"].values())
        assert first_release_pos > last_arrive_pos, (
            f"{context}: episode {key} released a processor before the "
            f"last arrival was recorded"
        )
        assert first_release_time >= last_arrive_time, (
            f"{context}: episode {key} release at t={first_release_time} "
            f"precedes last arrival at t={last_arrive_time}"
        )

    # each proc's visits to a barrier id carry consecutive epochs from 0
    visits = {}
    for barrier_id, epoch in episodes:
        for proc in range(n_procs):
            visits.setdefault((proc, barrier_id), []).append(epoch)
    for (proc, barrier_id), epochs in visits.items():
        assert sorted(epochs) == list(range(len(epochs))), (
            f"{context}: proc {proc} barrier {barrier_id} epochs "
            f"{sorted(epochs)} are not consecutive from 0"
        )
    return episodes


@given(
    shape=st.sampled_from(SHAPES),
    collective=st.sampled_from(COLLECTIVES),
    protocol=st.sampled_from(["hlrc", "aurc"]),
    pattern=st.sampled_from(sorted(PATTERNS)),
    rounds=st.integers(min_value=1, max_value=2),
    n_pages=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_collective_release_contract(
    shape, collective, protocol, pattern, rounds, n_pages
):
    total, ppn = shape
    trace = PATTERNS[pattern](rounds, n_pages, 16, 500, n_procs=total)
    context = f"{pattern}/{collective}/{protocol}/{total}p{ppn}ppn"
    result, vlog = run_verified(trace, _config(total, ppn, collective, protocol))
    assert_oracle_clean(result, context)
    check_barrier_invariants(vlog.records, total, collective, context)


@given(
    shape=st.sampled_from(((4, 1), (6, 2), (8, 4))),
    collective=st.sampled_from(COLLECTIVES),
    pattern=st.sampled_from(sorted(PATTERNS)),
    faults=fault_point_strategy,
)
@settings(max_examples=25, deadline=None)
def test_collective_release_contract_under_faults(
    shape, collective, pattern, faults
):
    total, ppn = shape
    trace = PATTERNS[pattern](2, 3, 16, 500, n_procs=total)
    context = f"{pattern}/{collective}/faults/{total}p{ppn}ppn"
    result, vlog = run_verified(
        trace, _config(total, ppn, collective, faults=faults)
    )
    assert_oracle_clean(result, context)
    check_barrier_invariants(vlog.records, total, collective, context)


@given(
    shape=st.sampled_from(SHAPES),
    protocol=st.sampled_from(["hlrc", "aurc"]),
    pattern=st.sampled_from(sorted(PATTERNS)),
    rounds=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=20, deadline=None)
def test_topologies_preserve_version_history(shape, protocol, pattern, rounds):
    """Collectives change timing, never ordering: every topology's
    per-page version sets equal the zero-cost ideal model's."""
    total, ppn = shape
    trace = PATTERNS[pattern](rounds, 3, 16, 500, n_procs=total)
    ideal = ideal_interval_sets(trace)
    for collective in COLLECTIVES:
        context = f"{pattern}/{collective}/{protocol}/{total}p{ppn}ppn"
        result, vlog = run_verified(
            trace, _config(total, ppn, collective, protocol)
        )
        assert_oracle_clean(result, context)
        assert interval_sets_from_log(vlog.records) == ideal, context


def test_hop_counts_match_message_complexity():
    """4 nodes, one episode: dissemination sends n*log2(n)=8 hops, the
    binomial tree 2(n-1)=6, flat uses the legacy path (no hop counter)."""
    expected = {"flat": 0, "tree": 6, "dissemination": 8}
    for collective, hops in expected.items():
        result, _ = run_verified(
            _single_barrier_trace(4), _config(4, 1, collective)
        )
        assert result.counters.extra.get("collective_hops", 0) == hops, collective


def test_dissemination_phase_attribution():
    """Inter-stage hop waits belong to the barrier phase: the episode's
    phase mark fires only when the last representative completes, so
    every epoch of a profiled run shows its barrier_wait cost and the
    marks cover each episode exactly once."""
    from repro.core import run_simulation

    trace = PATTERNS["producer_consumer"](2, 2, 16, 500, n_procs=4)
    metrics = MetricsRegistry()
    result = run_simulation(
        trace, _config(4, 1, "dissemination"), metrics=metrics
    )
    n_episodes = 4  # producer_consumer: two barriers per round, 2 rounds
    barrier_marks = [
        label for _, label, _ in result.phase_marks if label.startswith("barrier.")
    ]
    assert barrier_marks == [
        "barrier.0.0", "barrier.1.0", "barrier.2.0", "barrier.3.0"
    ]
    assert result.counters.extra["collective_hops"] == 8 * n_episodes
    phases = result.phase_breakdown()
    assert phases, "profiled run produced no phase records"
    for phase in phases:
        assert abs(sum(phase["fractions"].values()) - 1.0) < 1e-9
        if str(phase["label"]).startswith("barrier."):
            assert phase["cycles"]["barrier_wait"] > 0, phase["label"]
