"""Unit and property tests for vector clocks and interval logs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocol import IntervalLog, VectorClock, notices_wire_bytes


def test_vector_clock_starts_at_zero():
    vc = VectorClock(4)
    assert vc.snapshot() == (0, 0, 0, 0)


def test_increment_returns_interval_number():
    vc = VectorClock(2)
    assert vc.increment(0) == 1
    assert vc.increment(0) == 2
    assert vc.snapshot() == (2, 0)


def test_merge_is_componentwise_max():
    a = VectorClock(3, [1, 5, 2])
    b = VectorClock(3, [4, 0, 2])
    a.merge(b)
    assert a.snapshot() == (4, 5, 2)


def test_dominates():
    a = VectorClock(2, [2, 3])
    b = VectorClock(2, [1, 3])
    assert a.dominates(b)
    assert not b.dominates(a)
    assert a.dominates(a.copy())


def test_snapshot_round_trip():
    a = VectorClock(3, [1, 2, 3])
    b = VectorClock.from_snapshot(a.snapshot())
    assert a == b
    b.increment(0)
    assert a != b  # snapshot decoupled


def test_clock_validation():
    with pytest.raises(ValueError):
        VectorClock(2, [1])
    with pytest.raises(ValueError):
        VectorClock(2, [1, -1])
    with pytest.raises(ValueError):
        VectorClock(2).merge(VectorClock(3))


vc_lists = st.lists(st.integers(0, 20), min_size=3, max_size=3)


@given(a=vc_lists, b=vc_lists, c=vc_lists)
def test_merge_semilattice_properties(a, b, c):
    """merge is commutative, associative, idempotent; result dominates both."""

    def merged(x, y):
        vx = VectorClock(3, x)
        vx.merge(VectorClock(3, y))
        return vx.snapshot()

    assert merged(a, b) == merged(b, a)
    assert merged(list(merged(a, b)), c) == merged(a, list(merged(b, c)))
    assert merged(a, a) == tuple(a)
    m = VectorClock(3, list(merged(a, b)))
    assert m.dominates(VectorClock(3, a))
    assert m.dominates(VectorClock(3, b))


# --------------------------------------------------------------------- #
# IntervalLog
# --------------------------------------------------------------------- #
def test_interval_log_append_and_lookup():
    log = IntervalLog(2)
    assert log.append(0, [10, 11]) == 1
    assert log.append(0, [12]) == 2
    assert log.pages_of(0, 1) == (10, 11)
    assert log.pages_of(0, 2) == (12,)
    assert log.interval_count(0) == 2
    assert log.interval_count(1) == 0


def test_notices_between_simple():
    log = IntervalLog(2)
    log.append(0, [1, 2])
    log.append(0, [3])
    log.append(1, [4])
    old = VectorClock(2, [0, 0])
    new = VectorClock(2, [2, 1])
    assert log.notices_between(old, new) == {1, 2, 3, 4}
    # partial coverage
    assert log.notices_between(VectorClock(2, [1, 0]), new) == {3, 4}
    # already seen everything
    assert log.notices_between(new, new) == set()


def test_notices_between_clamps_to_log_length():
    log = IntervalLog(1)
    log.append(0, [7])
    # clock claims 5 intervals but the log only has 1
    assert log.notices_between(VectorClock(1, [0]), VectorClock(1, [5])) == {7}


def test_notice_count_between():
    log = IntervalLog(2)
    log.append(0, [1, 2, 3])
    log.append(1, [4])
    old = VectorClock(2)
    new = VectorClock(2, [1, 1])
    assert log.notice_count_between(old, new) == 4
    assert notices_wire_bytes(4) == 32


@given(
    intervals=st.lists(
        st.tuples(st.integers(0, 2), st.lists(st.integers(0, 50), max_size=5)),
        max_size=30,
    ),
    cut=st.integers(0, 30),
)
def test_notices_between_monotone(intervals, cut):
    """Property: widening the clock window never loses notices, and the
    full window equals the union of all logged pages."""
    log = IntervalLog(3)
    for proc, pages in intervals:
        log.append(proc, pages)
    full = VectorClock(3, [log.interval_count(p) for p in range(3)])
    zero = VectorClock(3)
    all_pages = log.notices_between(zero, full)
    expected = set()
    for proc, pages in intervals:
        expected.update(pages)
    assert all_pages == expected

    # a mid clock yields a subset
    mid = VectorClock(3, [min(cut, log.interval_count(p)) for p in range(3)])
    some = log.notices_between(zero, mid)
    assert some <= all_pages
    rest = log.notices_between(mid, full)
    assert some | rest == all_pages
