"""Tests for the SMP node-sharing machinery and clustering mechanics."""

from repro.arch import CommParams
from repro.core import Cluster, ClusterConfig


def build(ppn, total=8, **kw):
    return Cluster(
        ClusterConfig(
            comm=CommParams(procs_per_node=ppn, **kw),
            total_procs=total,
            home_policy="round_robin",
        )
    )


def run_workers(cluster, workers):
    for pid, fn in workers.items():
        cluster.sim.spawn(fn(cluster.procs[pid], cluster.protocol))
    cluster.sim.run()
    return cluster


def test_whole_node_shares_one_fetched_page():
    """After any processor of a node fetches a page, every sibling reads
    it for free."""
    cluster = build(ppn=4, total=8)
    order = []

    def first(cpu, proto):
        yield from proto.read(cpu, 1)  # page 1 homes at node 1: fetch
        order.append("fetched")

    def siblings(cpu, proto):
        while "fetched" not in order:
            yield cluster.sim.timeout(1000)
        before = cluster.sim.now
        yield from proto.read(cpu, 1)
        assert cluster.sim.now == before  # free: already node-valid

    run_workers(cluster, {0: first, 1: siblings, 2: siblings})
    assert cluster.protocol.counters.page_fetches == 1


def test_invalidation_is_node_wide():
    """An acquire-driven invalidation drops the page for the whole node,
    so the next reader (any sibling) re-fetches once."""
    cluster = build(ppn=2, total=4)
    phase = []

    def writer(cpu, proto):
        yield from proto.acquire(cpu, 5)
        yield from proto.write(cpu, 2, words=4)  # page 2 homes at node 0
        yield from proto.release(cpu, 5)
        phase.append("written")

    def reader_a(cpu, proto):
        yield from proto.read(cpu, 2)  # cold fetch for node 1
        while "written" not in phase:
            yield cluster.sim.timeout(1000)
        yield from proto.acquire(cpu, 5)
        yield from proto.release(cpu, 5)
        phase.append("invalidated")

    def reader_b(cpu, proto):
        while "invalidated" not in phase:
            yield cluster.sim.timeout(1000)
        yield from proto.read(cpu, 2)  # sibling pays the re-fetch

    run_workers(cluster, {0: writer, 2: reader_a, 3: reader_b})
    # one cold fetch + one post-invalidation fetch, node-wide
    assert cluster.protocol.counters.page_fetches == 2


def test_single_node_cluster_never_touches_network():
    cluster = build(ppn=8, total=8)

    def worker(cpu, proto):
        yield from proto.read(cpu, 3)
        yield from proto.write(cpu, 3, words=4)
        yield from proto.acquire(cpu, 1)
        yield from proto.release(cpu, 1)
        yield from proto.barrier(cpu, 0)

    run_workers(cluster, {i: worker for i in range(8)})
    assert cluster.network.messages_carried == 0
    c = cluster.protocol.counters
    assert c.page_fetches == 0
    assert c.remote_lock_acquires == 0
    assert c.local_lock_acquires == 8


def test_more_clustering_fewer_fetches_same_trace():
    from repro.apps import get_app
    from repro.core import run_simulation

    app = get_app("water-nsq", n_procs=8, scale=0.3)
    few = run_simulation(
        app,
        ClusterConfig(
            comm=CommParams(procs_per_node=1), total_procs=8, home_policy="round_robin"
        ),
    )
    many = run_simulation(
        app,
        ClusterConfig(
            comm=CommParams(procs_per_node=4), total_procs=8, home_policy="round_robin"
        ),
    )
    assert many.counters.page_fetches < few.counters.page_fetches
