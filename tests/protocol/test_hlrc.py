"""Integration tests for the HLRC engine on a small real cluster."""

import pytest

from tests.protocol.conftest import build, run_workers

# With home_policy="round_robin" on 2 nodes: even pages home at node 0,
# odd pages at node 1.  Procs 0,1 are node 0; procs 2,3 are node 1.


def test_read_of_home_page_is_free():
    cluster = build()
    times = []

    def worker(cpu, proto):
        yield from proto.read(cpu, 0)  # page 0 homes at node 0
        times.append(cluster.sim.now)

    run_workers(cluster, {0: worker})
    assert times == [0]
    assert cluster.protocol.counters.page_faults == 0


def test_remote_read_faults_and_fetches():
    cluster = build()

    def worker(cpu, proto):
        yield from proto.read(cpu, 1)  # page 1 homes at node 1: remote

    run_workers(cluster, {0: worker})
    c = cluster.protocol.counters
    assert c.page_faults == 1
    assert c.page_fetches == 1
    assert cluster.procs[0].stats.time["data_wait"] > 0
    # second read hits the cached copy
    cluster.sim.spawn(cluster.protocol.read(cluster.procs[0], 1))
    cluster.sim.run()
    assert c.page_faults == 1


def test_node_level_fetch_coalescing():
    """Two processors of the same node faulting on the same page issue
    one fetch but two faults."""
    cluster = build()

    def worker(cpu, proto):
        yield from proto.read(cpu, 1)

    run_workers(cluster, {0: worker, 1: worker})
    c = cluster.protocol.counters
    assert c.page_faults == 2
    assert c.page_fetches == 1


def test_different_nodes_fetch_independently():
    cluster = build()

    def worker(cpu, proto):
        yield from proto.read(cpu, 3)  # homes at node 1

    # proc 0 (node 0) fetches; proc 2 (node 1) is at home: free
    run_workers(cluster, {0: worker, 2: worker})
    assert cluster.protocol.counters.page_fetches == 1


def test_write_creates_twin_once_per_node():
    cluster = build()

    def worker(cpu, proto):
        yield from proto.write(cpu, 1, words=10)
        yield from proto.write(cpu, 1, words=5)

    run_workers(cluster, {0: worker})
    assert 1 in cluster.protocol.mem[0].twins
    assert cluster.protocol.dirty[0][1] == 15
    # protocol time includes twin creation
    assert cluster.procs[0].stats.time["protocol"] > 0


def test_write_at_home_needs_no_twin():
    cluster = build()

    def worker(cpu, proto):
        yield from proto.write(cpu, 0, words=10)  # page 0 homes locally

    run_workers(cluster, {0: worker})
    assert 0 not in cluster.protocol.mem[0].twins
    assert cluster.protocol.dirty[0][0] == 10


def test_release_flushes_diff_to_home_and_opens_interval():
    cluster = build()

    def worker(cpu, proto):
        yield from proto.acquire(cpu, 0)
        yield from proto.write(cpu, 1, words=20)
        yield from proto.release(cpu, 0)

    run_workers(cluster, {0: worker})
    c = cluster.protocol.counters
    assert c.diffs_created == 1
    assert c.diff_words == 20
    assert c.write_notices == 1
    assert cluster.protocol.vc[0].snapshot()[0] == 1
    assert cluster.protocol.log.pages_of(0, 1) == (1,)
    assert not cluster.protocol.dirty[0]
    assert 1 not in cluster.protocol.mem[0].twins  # twin retired


def test_home_writes_flush_without_messages():
    cluster = build()

    def worker(cpu, proto):
        yield from proto.acquire(cpu, 0)
        yield from proto.write(cpu, 0, words=20)  # home-local page
        yield from proto.release(cpu, 0)

    run_workers(cluster, {0: worker})
    c = cluster.protocol.counters
    assert c.diffs_created == 0
    assert c.write_notices == 1  # notice still logged for others


def test_acquire_invalidates_pages_with_unseen_notices():
    """Producer (proc 0) writes page 2 under a lock; consumer (proc 2,
    other node) has a stale copy which must be invalidated at acquire and
    re-fetched at the next read — LRC end to end."""
    cluster = build()
    order = []

    def producer(cpu, proto):
        yield from proto.read(cpu, 2)  # page 2 homes at node 0 (local)
        yield from proto.acquire(cpu, 5)
        yield from proto.write(cpu, 2, words=8)
        yield from proto.release(cpu, 5)
        order.append("produced")

    def consumer(cpu, proto):
        yield from proto.read(cpu, 2)  # fetch a copy (will become stale)
        # wait until producer released, then acquire the same lock
        while "produced" not in order:
            yield cluster.sim.timeout(1000)
        yield from proto.acquire(cpu, 5)
        yield from proto.release(cpu, 5)
        order.append("acquired")
        yield from proto.read(cpu, 2)  # must re-fetch

    run_workers(cluster, {0: producer, 2: consumer})
    c = cluster.protocol.counters
    assert order == ["produced", "acquired"]
    # consumer fetched page 2 twice: initial + after invalidation
    assert cluster.procs[2].stats.get_count("page_fetches") == 2
    assert cluster.protocol.mem[1].invalidations == 1


def test_home_node_never_invalidates_its_own_pages():
    cluster = build()

    def producer(cpu, proto):
        yield from proto.acquire(cpu, 5)
        yield from proto.write(cpu, 3, words=4)  # page 3 homes at node 1
        yield from proto.release(cpu, 5)

    def home_reader(cpu, proto):
        yield cluster.sim.timeout(500_000)
        yield from proto.acquire(cpu, 5)
        yield from proto.release(cpu, 5)
        yield from proto.read(cpu, 3)  # at home: still free

    run_workers(cluster, {0: producer, 2: home_reader})
    assert cluster.procs[2].stats.get_count("page_fetches", ) == 0
    assert cluster.protocol.mem[1].invalidations == 0


def test_barrier_propagates_notices_to_everyone():
    cluster = build()
    fetches_after = {}

    def writer(cpu, proto):
        yield from proto.read(cpu, 1)
        # no lock: barrier is the synchronization
        yield from proto.write(cpu, 2, words=4)  # page 2 homes at node 0
        yield from proto.barrier(cpu, 0)

    def reader(cpu, proto):
        yield from proto.read(cpu, 2)  # pre-barrier copy
        yield from proto.barrier(cpu, 0)
        before = cpu.stats.get_count("page_fetches")
        yield from proto.read(cpu, 2)  # stale: must re-fetch
        fetches_after[cpu.global_id] = cpu.stats.get_count("page_fetches") - before

    others = {pid: reader for pid in (1, 2, 3)}
    run_workers(cluster, {0: writer, **others})
    # node-1 readers (procs 2,3) had a stale copy; after the barrier one
    # node-level re-fetch happens
    assert fetches_after[2] + fetches_after[3] >= 1
    assert cluster.protocol.counters.barriers == 4


def test_interrupts_counted_at_home_on_fetch():
    cluster = build()

    def worker(cpu, proto):
        yield from proto.read(cpu, 1)  # home node 1 gets interrupted

    run_workers(cluster, {0: worker})
    node1_cpu0 = cluster.nodes[1].cpus[0]
    assert node1_cpu0.stats.get_count("interrupts") == 1
    assert node1_cpu0.stats.time["handler"] > 0


def test_interrupt_cost_dominates_fetch_latency():
    """The paper's headline effect at micro scale: raising interrupt cost
    directly lengthens the page-fetch critical path."""

    def fetch_time(interrupt_cost):
        cluster = build(interrupt_cost=interrupt_cost)
        done = []

        def worker(cpu, proto):
            yield from proto.read(cpu, 1)
            done.append(cluster.sim.now)

        run_workers(cluster, {0: worker})
        return done[0]

    t0, t1 = fetch_time(0), fetch_time(5000)
    assert t1 - t0 == pytest.approx(2 * 5000, rel=0.05)
