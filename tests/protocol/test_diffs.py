"""Unit and property tests for twin/diff machinery and its cost model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.arch import ArchParams
from repro.protocol import (
    apply_diff,
    compute_diff,
    diff_apply_cost,
    diff_create_cost,
    diff_wire_bytes,
    page_words,
    twin_cost,
)


def test_compute_diff_finds_changes():
    twin = np.zeros(16, dtype=np.uint32)
    cur = twin.copy()
    cur[3] = 7
    cur[10] = 9
    diff = compute_diff(twin, cur)
    assert list(diff.indices) == [3, 10]
    assert list(diff.values) == [7, 9]
    assert diff.word_count == 2


def test_empty_diff_for_identical_pages():
    twin = np.arange(32, dtype=np.uint32)
    diff = compute_diff(twin, twin.copy())
    assert diff.word_count == 0
    assert diff.wire_bytes() == 0


def test_apply_diff_updates_home_copy():
    twin = np.zeros(8, dtype=np.uint32)
    cur = twin.copy()
    cur[[1, 5]] = [11, 55]
    diff = compute_diff(twin, cur)
    home = np.zeros(8, dtype=np.uint32)
    apply_diff(home, diff)
    assert np.array_equal(home, cur)


def test_apply_diff_bounds_check():
    twin = np.zeros(8, dtype=np.uint32)
    cur = twin.copy()
    cur[7] = 1
    diff = compute_diff(twin, cur)
    small = np.zeros(4, dtype=np.uint32)
    with pytest.raises(ValueError):
        apply_diff(small, diff)


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        compute_diff(np.zeros(4, dtype=np.uint32), np.zeros(8, dtype=np.uint32))


@given(
    base=arrays(np.uint32, 64, elements=st.integers(0, 2**32 - 1)),
    cur=arrays(np.uint32, 64, elements=st.integers(0, 2**32 - 1)),
)
def test_diff_round_trip_property(base, cur):
    """Invariant: applying the diff to a copy of the twin reproduces the
    current page exactly — the soundness of diff-based propagation."""
    diff = compute_diff(base, cur)
    home = base.copy()
    apply_diff(home, diff)
    assert np.array_equal(home, cur)
    # diff is minimal: it contains exactly the differing words
    assert diff.word_count == int(np.count_nonzero(base != cur))


# --------------------------------------------------------------------- #
# cost model
# --------------------------------------------------------------------- #
@pytest.fixture
def arch():
    return ArchParams()


def test_page_words(arch):
    assert page_words(arch, 4096) == 1024


def test_twin_cost_scales_with_page_size(arch):
    assert twin_cost(arch, 8192) == 2 * twin_cost(arch, 4096)
    assert twin_cost(arch, 4096) == 1024 * arch.twin_copy_cycles_per_word


def test_diff_create_cost_has_compare_floor(arch):
    """Even a one-word diff pays the full-page comparison."""
    floor = page_words(arch, 4096) * arch.diff_compare_cycles_per_word
    assert diff_create_cost(arch, 4096, 0) == floor
    assert diff_create_cost(arch, 4096, 1) == floor + arch.diff_include_cycles_per_word


def test_diff_create_cost_monotone_in_words(arch):
    costs = [diff_create_cost(arch, 4096, w) for w in (0, 10, 100, 1024, 5000)]
    assert costs == sorted(costs)
    # included words are clamped to the page
    assert diff_create_cost(arch, 4096, 5000) == diff_create_cost(arch, 4096, 1024)


def test_diff_apply_cost(arch):
    assert diff_apply_cost(arch, 10) == 10 * arch.diff_include_cycles_per_word


def test_diff_wire_bytes(arch):
    assert diff_wire_bytes(arch, 0) == 16
    assert diff_wire_bytes(arch, 10) == 16 + 10 * (4 + arch.word_bytes)
