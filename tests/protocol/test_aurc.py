"""Tests for the AURC (automatic update) protocol variant."""

import pytest

from tests.protocol.conftest import build, run_workers


def test_aurc_writes_emit_update_traffic():
    cluster = build(protocol="aurc")

    def worker(cpu, proto):
        yield from proto.write(cpu, 1, words=10, runs=2)  # page 1 homes remotely

    run_workers(cluster, {0: worker})
    c = cluster.protocol.counters
    assert c.updates_sent == 1
    assert c.update_words == 10
    assert c.diffs_created == 0
    assert cluster.nodes[0].nic.messages_sent >= 1


def test_aurc_no_twins():
    cluster = build(protocol="aurc")

    def worker(cpu, proto):
        yield from proto.write(cpu, 1, words=10)

    run_workers(cluster, {0: worker})
    assert 1 not in cluster.protocol.mem[0].twins


def test_aurc_home_writes_stay_local():
    cluster = build(protocol="aurc")

    def worker(cpu, proto):
        yield from proto.write(cpu, 0, words=10)  # page 0 homes locally

    run_workers(cluster, {0: worker})
    assert cluster.protocol.counters.updates_sent == 0


def test_aurc_fine_grain_runs_become_packets():
    """A scattered write (many runs) emits at least that many packets."""
    cluster = build(protocol="aurc")

    def worker(cpu, proto):
        yield from proto.write(cpu, 1, words=16, runs=8)

    run_workers(cluster, {0: worker})
    assert cluster.nodes[0].nic.packets_sent >= 8


def test_aurc_release_waits_for_update_drain():
    """With a slow I/O bus, the release cannot complete before the update
    traffic has drained to the home."""
    cluster = build(protocol="aurc", io_bus_mb_per_mhz=0.25)
    done = []

    def worker(cpu, proto):
        yield from proto.acquire(cpu, 0)
        for page in (1, 3, 5, 7):
            yield from proto.write(cpu, page, words=1000)
        yield from proto.release(cpu, 0)
        done.append(cluster.sim.now)

    run_workers(cluster, {0: worker})
    # 4 x 1000 words x 4B = 16 KB at 0.25 B/cyc >= 64k cycles of drain
    assert done[0] > 64_000
    assert not cluster.protocol._outstanding[0]


def test_aurc_release_creates_notices_like_hlrc():
    cluster = build(protocol="aurc")

    def worker(cpu, proto):
        yield from proto.acquire(cpu, 0)
        yield from proto.write(cpu, 1, words=4)
        yield from proto.release(cpu, 0)

    run_workers(cluster, {0: worker})
    c = cluster.protocol.counters
    assert c.write_notices == 1
    assert cluster.protocol.log.pages_of(0, 1) == (1,)


def test_aurc_invalidation_consistency_end_to_end():
    cluster = build(protocol="aurc")
    order = []

    def producer(cpu, proto):
        yield from proto.acquire(cpu, 5)
        yield from proto.write(cpu, 2, words=8)  # page 2 homes at node 0
        yield from proto.release(cpu, 5)
        order.append("produced")

    def consumer(cpu, proto):
        yield from proto.read(cpu, 2)
        while "produced" not in order:
            yield cluster.sim.timeout(1000)
        yield from proto.acquire(cpu, 5)
        yield from proto.release(cpu, 5)
        yield from proto.read(cpu, 2)  # must re-fetch after invalidation

    run_workers(cluster, {0: producer, 2: consumer})
    assert cluster.procs[2].stats.get_count("page_fetches") == 2


def test_aurc_more_sensitive_to_ni_occupancy_than_hlrc():
    """Figure 11's mechanism at micro scale: per-run update packets make
    AURC's runtime grow faster with NI occupancy than HLRC's."""

    def runtime(protocol, occupancy):
        cluster = build(protocol=protocol, ni_occupancy=occupancy)
        done = []

        def worker(cpu, proto):
            yield from proto.acquire(cpu, 0)
            for page in range(1, 40, 2):  # remote pages
                yield from proto.write(cpu, page, words=16, runs=4)
            yield from proto.release(cpu, 0)
            done.append(cluster.sim.now)

        run_workers(cluster, {0: worker})
        return done[0]

    hlrc_growth = runtime("hlrc", 4000) - runtime("hlrc", 0)
    aurc_growth = runtime("aurc", 4000) - runtime("aurc", 0)
    assert aurc_growth > hlrc_growth


def test_aurc_outstanding_list_pruned():
    cluster = build(protocol="aurc")

    def worker(cpu, proto):
        for i in range(80):
            yield from proto.write(cpu, 1, words=2)
            yield cluster.sim.timeout(10_000)  # let updates drain

    run_workers(cluster, {0: worker})
    assert len(cluster.protocol._outstanding[0]) <= 65
