"""Tests for hierarchical barriers."""

from repro.arch import CommParams
from repro.core import Cluster, ClusterConfig

from tests.protocol.conftest import build, run_workers


def test_barrier_releases_all_together():
    cluster = build()
    release_times = {}

    def worker(delay):
        def gen(cpu, proto):
            yield cluster.sim.timeout(delay)
            yield from proto.barrier(cpu, 0)
            release_times[cpu.global_id] = cluster.sim.now

        return gen

    run_workers(
        cluster, {0: worker(0), 1: worker(5_000), 2: worker(10_000), 3: worker(123)}
    )
    assert len(release_times) == 4
    # nobody is released before the last arrival
    assert min(release_times.values()) >= 10_000
    # releases are close together (one message round)
    spread = max(release_times.values()) - min(release_times.values())
    assert spread < 100_000


def test_barrier_no_interrupts():
    """Barriers use synchronous messages: no interrupt is ever raised."""
    cluster = build()

    def worker(cpu, proto):
        yield from proto.barrier(cpu, 0)

    run_workers(cluster, {i: worker for i in range(4)})
    for node in cluster.nodes:
        assert node.irq.interrupts_raised == 0


def test_barrier_counts_per_processor():
    cluster = build()

    def worker(cpu, proto):
        for _ in range(3):
            yield from proto.barrier(cpu, 7)

    run_workers(cluster, {i: worker for i in range(4)})
    assert cluster.protocol.counters.barriers == 12
    for cpu in cluster.procs:
        assert cpu.stats.get_count("barriers") == 3


def test_back_to_back_barriers_do_not_alias():
    cluster = build()
    checkpoints = []

    def worker(cpu, proto):
        yield from proto.barrier(cpu, 0)
        checkpoints.append(("a", cpu.global_id, cluster.sim.now))
        yield from proto.barrier(cpu, 0)
        checkpoints.append(("b", cpu.global_id, cluster.sim.now))

    run_workers(cluster, {i: worker for i in range(4)})
    a_times = [t for tag, _, t in checkpoints if tag == "a"]
    b_times = [t for tag, _, t in checkpoints if tag == "b"]
    assert len(a_times) == len(b_times) == 4
    assert min(b_times) >= max(a_times)  # strict phase ordering


def test_single_node_barrier_pure_shared_memory():
    config = ClusterConfig(
        comm=CommParams(procs_per_node=4), total_procs=4, home_policy="round_robin"
    )
    cluster = Cluster(config)
    released = []

    def worker(cpu, proto):
        yield from proto.barrier(cpu, 0)
        released.append(cluster.sim.now)

    for cpu in cluster.procs:
        cluster.sim.spawn(worker(cpu, cluster.protocol))
    cluster.sim.run()
    assert len(released) == 4
    assert cluster.network.messages_carried == 0


def test_uniprocessor_nodes_barrier_all_messages():
    config = ClusterConfig(
        comm=CommParams(procs_per_node=1), total_procs=4, home_policy="round_robin"
    )
    cluster = Cluster(config)

    def worker(cpu, proto):
        yield from proto.barrier(cpu, 0)

    for cpu in cluster.procs:
        cluster.sim.spawn(worker(cpu, cluster.protocol))
    cluster.sim.run()
    # 3 arrivals to the master + 3 releases
    assert cluster.network.messages_carried == 6


def test_barrier_wait_time_charged_to_early_arrivals():
    cluster = build()

    def early(cpu, proto):
        yield from proto.barrier(cpu, 0)

    def late(cpu, proto):
        yield from cpu.busy(100_000, "compute")
        yield from proto.barrier(cpu, 0)

    run_workers(cluster, {0: early, 1: early, 2: early, 3: late})
    assert cluster.procs[0].stats.time["barrier_wait"] >= 90_000
    assert cluster.procs[3].stats.time["barrier_wait"] < 50_000
