"""Tests for release-flush batching, dirty clamping and write paths."""

import pytest

from repro.arch import ArchParams
from repro.protocol import diff_wire_bytes, page_words

from tests.protocol.conftest import build, run_workers

# 2 nodes x 2 procs, round-robin homes: even pages -> node 0, odd -> node 1.


def test_flush_batches_diffs_per_home():
    """Dirty pages homed at the same remote node travel in ONE message."""
    cluster = build()

    def worker(cpu, proto):
        yield from proto.acquire(cpu, 0)
        # three pages all homed at node 1
        for page in (1, 3, 5):
            yield from proto.write(cpu, page, words=10)
        yield from proto.release(cpu, 0)

    run_workers(cluster, {0: worker})
    c = cluster.protocol.counters
    assert c.diffs_created == 3
    # message count: 3 fetch RPCs (req+reply each) + 1 diff batch (+ack)
    # => the diff path contributed exactly one request across the wire
    diff_requests = [
        1
        for _ in range(1)
        if cluster.nodes[1].nic.messages_received > 0
    ]
    assert diff_requests
    # verify via per-cpu counter: 3 fetch sends + 1 diff send
    sends = cluster.procs[0].stats.get_count("messages_sent")
    assert sends == 4


def test_dirty_words_clamped_to_page():
    cluster = build()
    words = page_words(ArchParams(), 4096)

    def worker(cpu, proto):
        yield from proto.write(cpu, 1, words=10 * words)
        yield from proto.write(cpu, 1, words=10 * words)

    run_workers(cluster, {0: worker})
    assert cluster.protocol.dirty[0][1] == words


def test_flush_without_dirty_is_noop():
    cluster = build()

    def worker(cpu, proto):
        yield from proto.acquire(cpu, 0)
        yield from proto.release(cpu, 0)

    run_workers(cluster, {0: worker})
    c = cluster.protocol.counters
    assert c.diffs_created == 0
    assert c.write_notices == 0
    assert cluster.protocol.vc[0].snapshot()[0] == 0  # no interval opened


def test_mixed_home_flush_splits_by_home():
    cluster = build()

    def worker(cpu, proto):
        yield from proto.acquire(cpu, 0)
        yield from proto.write(cpu, 1, words=4)  # home node 1 (remote)
        yield from proto.write(cpu, 2, words=4)  # home node 0 (local)
        yield from proto.write(cpu, 3, words=4)  # home node 1 (remote)
        yield from proto.release(cpu, 0)

    run_workers(cluster, {0: worker})
    c = cluster.protocol.counters
    assert c.diffs_created == 2  # only the remote pages diff
    assert c.write_notices == 3  # but all three get notices


def test_diff_wire_bytes_scale_with_words():
    arch = ArchParams()
    assert diff_wire_bytes(arch, 100) > diff_wire_bytes(arch, 10)


def test_two_procs_same_node_both_flush_own_dirty():
    cluster = build()

    def worker(lock_id, page):
        def gen(cpu, proto):
            yield from proto.acquire(cpu, lock_id)
            yield from proto.write(cpu, page, words=8)
            yield from proto.release(cpu, lock_id)

        return gen

    run_workers(cluster, {0: worker(0, 1), 1: worker(2, 3)})
    c = cluster.protocol.counters
    assert c.diffs_created == 2
    assert cluster.protocol.vc[0].snapshot() == (1, 0, 0, 0)
    assert cluster.protocol.vc[1].snapshot() == (0, 1, 0, 0)


def test_interval_log_records_flushed_pages_in_order():
    cluster = build()

    def worker(cpu, proto):
        for k, page in enumerate((1, 3)):
            yield from proto.acquire(cpu, 0)
            yield from proto.write(cpu, page, words=2)
            yield from proto.release(cpu, 0)

    run_workers(cluster, {0: worker})
    log = cluster.protocol.log
    assert log.interval_count(0) == 2
    assert log.pages_of(0, 1) == (1,)
    assert log.pages_of(0, 2) == (3,)


def test_free_fetch_mode_skips_fetches_but_keeps_semantics():
    cluster = build(free_page_fetches=True)

    def worker(cpu, proto):
        yield from proto.read(cpu, 1)
        yield from proto.write(cpu, 1, words=4)

    run_workers(cluster, {0: worker})
    c = cluster.protocol.counters
    assert c.page_fetches == 0
    assert c.page_faults == 0
    assert 1 in cluster.protocol.mem[0].valid
    assert cluster.protocol.dirty[0][1] == 4
