"""Fault injection + reliable delivery: determinism, recovery, exhaustion."""

import pytest

from repro.apps import get_app
from repro.core import ClusterConfig, run_simulation
from repro.core.runcache import content_key
from repro.net.faults import FaultInjector, FaultParams, RetryExhaustedError
from repro.sim.engine import SimulationStuckError

# Golden numbers for the default config at scale 0.05, seed 42, captured
# from the seed model (pre-fault-injection).  FaultParams all-off MUST
# reproduce these bit-identically — the reliability machinery has to be
# zero-cost when disabled.
FFT_GOLDEN = dict(
    total_cycles=217099,
    serial_cycles=307056,
    meta={
        "network_messages": 108.0,
        "network_bytes": 160056.0,
        "sim_events": 1920.0,
        "interrupts": 36.0,
    },
)
LU_GOLDEN = dict(
    total_cycles=27264567,
    serial_cycles=169442372,
    meta={
        "network_messages": 1670.0,
        "network_bytes": 3411424.0,
        "sim_events": 13713.0,
        "interrupts": 784.0,
    },
)


def _run(app, config, scale=0.05):
    trace = get_app(app, page_size=config.comm.page_size, scale=scale, seed=config.seed)
    return run_simulation(trace, config)


# --------------------------------------------------------------------- #
# FaultParams validation
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "kw, field",
    [
        ({"drop_prob": -0.1}, "drop_prob"),
        ({"drop_prob": 1.5}, "drop_prob"),
        ({"dup_prob": 2.0}, "dup_prob"),
        ({"delay_spike_prob": -1e-9}, "delay_spike_prob"),
        ({"stall_prob": 7}, "stall_prob"),
        ({"link_degradation": 1.0}, "link_degradation"),
        ({"delay_spike_cycles": -1}, "delay_spike_cycles"),
        ({"retry_timeout": 0}, "retry_timeout"),
        ({"max_retries": -1}, "max_retries"),
        ({"retry_backoff": 0.5}, "retry_backoff"),
        ({"retry_jitter": -0.1}, "retry_jitter"),
        ({"retry_jitter": 1.5}, "retry_jitter"),
        ({"degraded_links": ((0, 1, 1.5),)}, "degraded_links"),
    ],
)
def test_fault_params_validation_names_field(kw, field):
    with pytest.raises(ValueError, match=field):
        FaultParams(**kw)


def test_fault_params_enabled():
    assert not FaultParams().enabled
    assert FaultParams(drop_prob=0.01).enabled
    assert FaultParams(dup_prob=0.01).enabled
    assert FaultParams(delay_spike_prob=0.01).enabled
    assert FaultParams(stall_prob=0.01).enabled
    assert FaultParams(link_degradation=0.5).enabled
    assert FaultParams(degraded_links=((0, 1, 0.5),)).enabled
    # recovery knobs alone do not arm the injector
    assert not FaultParams(retry_timeout=1234, max_retries=3).enabled


def test_cluster_config_rejects_non_fault_params():
    with pytest.raises(ValueError, match="faults"):
        ClusterConfig(faults={"drop_prob": 0.1})


# --------------------------------------------------------------------- #
# zero-cost when off: golden equality with the seed model
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "app, golden", [("fft", FFT_GOLDEN), ("lu", LU_GOLDEN)]
)
def test_faults_off_reproduces_seed_baseline(app, golden):
    r = run_simulation(
        get_app(app, page_size=4096, scale=0.05, seed=42), ClusterConfig()
    )
    assert r.total_cycles == golden["total_cycles"]
    assert r.serial_cycles == golden["serial_cycles"]
    assert r.meta == golden["meta"]  # no reliability keys sneak in


def test_explicit_default_fault_params_same_cache_key():
    base = ClusterConfig()
    explicit = ClusterConfig(faults=FaultParams())
    assert base == explicit
    assert content_key("fft", 0.05, base) == content_key("fft", 0.05, explicit)


def test_faulty_config_changes_cache_key():
    base = ClusterConfig()
    faulty = base.with_faults(drop_prob=0.01)
    assert content_key("fft", 0.05, base) != content_key("fft", 0.05, faulty)
    reseeded = faulty.with_faults(fault_seed=99)
    assert content_key("fft", 0.05, faulty) != content_key("fft", 0.05, reseeded)


# --------------------------------------------------------------------- #
# injector determinism
# --------------------------------------------------------------------- #
def test_injector_same_seed_same_draws():
    params = FaultParams(
        drop_prob=0.1, dup_prob=0.1, delay_spike_prob=0.1, stall_prob=0.1
    )

    def draws(p):
        inj = FaultInjector(p)
        return [
            (inj.draw_stall(), inj.draw_spike(), inj.draw_drop(), inj.draw_duplicate())
            for _ in range(1000)
        ]

    assert draws(params) == draws(params)
    assert draws(params) != draws(params.replace(fault_seed=8))


def test_faulty_run_bit_identical_for_fixed_seed():
    cfg = ClusterConfig(
        faults=FaultParams(drop_prob=0.02, dup_prob=0.01, retry_timeout=50_000)
    )
    a = _run("fft", cfg)
    b = _run("fft", cfg)
    assert a.total_cycles == b.total_cycles
    assert a.meta == b.meta
    assert a.proc_stats == b.proc_stats


# --------------------------------------------------------------------- #
# decorrelated retransmit backoff jitter
# --------------------------------------------------------------------- #
def test_backoff_jitter_is_deterministic_per_seed():
    """Jitter draws come from a dedicated stream seeded by fault_seed:
    same seed -> bit-identical run, different seed -> different timing."""
    heavy = FaultParams(drop_prob=0.15, retry_timeout=20_000, max_retries=64)
    a = _run("fft", ClusterConfig(faults=heavy))
    b = _run("fft", ClusterConfig(faults=heavy))
    assert a.total_cycles == b.total_cycles
    assert a.meta == b.meta


def test_jitter_zero_reproduces_deterministic_ladder():
    """retry_jitter=0 must follow the legacy timeout * backoff formula."""
    from repro.net.messaging import MessagingLayer

    layer = MessagingLayer.__new__(MessagingLayer)
    layer.faults = FaultParams(
        drop_prob=0.01, retry_timeout=10_000, retry_backoff=2.0, retry_jitter=0.0
    )
    layer._backoff_rng = None
    assert layer._next_timeout(10_000) == 20_000
    assert layer._next_timeout(20_000) == 40_000


def test_jitter_decorrelates_but_stays_bounded():
    """With jitter on, successive timeouts vary inside
    [(1-j)*det, (1-j)*det + j*3*timeout] and never collapse below the
    base timeout's deterministic floor."""
    import random as _random

    from repro.net.messaging import MessagingLayer

    layer = MessagingLayer.__new__(MessagingLayer)
    layer.faults = FaultParams(
        drop_prob=0.01, retry_timeout=10_000, retry_backoff=2.0, retry_jitter=1.0
    )
    layer._backoff_rng = _random.Random(7)
    draws = {layer._next_timeout(10_000) for _ in range(64)}
    assert len(draws) > 1, "fully-jittered backoff must vary"
    assert all(10_000 <= d <= 30_000 for d in draws)
@pytest.mark.parametrize("protocol", ["hlrc", "aurc"])
def test_protocols_complete_under_drops(protocol):
    cfg = ClusterConfig(
        protocol=protocol,
        faults=FaultParams(drop_prob=0.02, retry_timeout=50_000),
    )
    r = _run("lu", cfg)
    assert r.total_cycles >= LU_GOLDEN["total_cycles"]  # loss never speeds it up
    assert r.meta["messages_lost"] > 0
    assert r.meta["retransmits"] > 0
    assert r.meta["faults_dropped"] == r.meta["messages_lost"]


def test_duplicates_are_suppressed():
    cfg = ClusterConfig(faults=FaultParams(dup_prob=0.2))
    r = _run("fft", cfg)
    assert r.meta["faults_duplicated"] > 0
    # every duplicate the injector created was caught by receiver dedup
    assert r.meta["duplicates_suppressed"] == r.meta["faults_duplicated"]
    # pure duplication never slows the app down or corrupts the run
    assert r.total_cycles == FFT_GOLDEN["total_cycles"]


def test_delay_spikes_slow_but_complete():
    cfg = ClusterConfig(
        faults=FaultParams(delay_spike_prob=0.3, delay_spike_cycles=5_000)
    )
    r = _run("fft", cfg)
    assert r.meta["faults_delay_spikes"] > 0
    assert r.total_cycles > FFT_GOLDEN["total_cycles"]


# --------------------------------------------------------------------- #
# retry exhaustion surfaces as a structured error, never a hang
# --------------------------------------------------------------------- #
def test_retry_exhaustion_raises_structured_error():
    cfg = ClusterConfig(
        faults=FaultParams(
            drop_prob=1.0, retry_timeout=1_000, max_retries=2, fault_seed=7
        )
    )
    with pytest.raises(RetryExhaustedError) as exc:
        _run("fft", cfg)
    err = exc.value
    assert isinstance(err, SimulationStuckError)
    assert err.attempts == 2  # retransmissions made == max_retries
    assert "retry budget exhausted" in str(err)
    assert 0 <= err.src_node and 0 <= err.dst_node
