"""Unit tests for Message/packet arithmetic."""

import pytest

from repro.net import Message, MessageKind
from repro.sim import Event, Simulator


def make_msg(size=4096, kind=MessageKind.SYNC, **kw):
    return Message(src_node=0, dst_node=1, kind=kind, size_bytes=size, **kw)


def test_packet_count_single_page():
    msg = make_msg(4096)
    assert msg.packet_count(mtu=4096) == 1


def test_packet_count_rounds_up():
    assert make_msg(4097).packet_count(4096) == 2
    assert make_msg(8192).packet_count(4096) == 2
    assert make_msg(1).packet_count(4096) == 1


def test_empty_message_still_one_packet():
    assert make_msg(0).packet_count(4096) == 1


def test_wire_bytes_adds_header_per_packet():
    msg = make_msg(8192)
    assert msg.wire_bytes(mtu=4096, header_bytes=64) == 8192 + 2 * 64


def test_invalid_mtu_rejected():
    with pytest.raises(ValueError):
        make_msg().packet_count(0)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        make_msg(-1)


def test_intra_node_message_rejected():
    with pytest.raises(ValueError):
        Message(src_node=0, dst_node=0, kind=MessageKind.SYNC, size_bytes=0)


def test_reply_requires_reply_to():
    with pytest.raises(ValueError):
        Message(src_node=0, dst_node=1, kind=MessageKind.REPLY, size_bytes=0)
    sim = Simulator()
    msg = Message(
        src_node=0, dst_node=1, kind=MessageKind.REPLY, size_bytes=0, reply_to=Event(sim)
    )
    assert msg.kind is MessageKind.REPLY


def test_message_ids_unique():
    a, b = make_msg(), make_msg()
    assert a.msg_id != b.msg_id
