"""Shared fixtures: a minimal two-node communication fabric."""

import pytest

from repro.arch import ArchParams, CommParams, MemoryBus, Processor
from repro.net import IOBus, MessagingLayer, Network, NetworkInterface
from repro.osys import InterruptController
from repro.sim import Simulator


class MiniNode:
    """A bare node: one CPU, memory bus, I/O bus, NI, interrupt controller."""

    def __init__(self, sim, node_id, arch, comm, network, n_cpus=1):
        self.node_id = node_id
        self.membus = MemoryBus(sim, arch, name=f"membus{node_id}")
        self.iobus = IOBus(sim, comm.io_bytes_per_cycle, name=f"iobus{node_id}")
        self.cpus = [
            Processor(sim, global_id=node_id * n_cpus + i, cpu_index=i, bus=self.membus)
            for i in range(n_cpus)
        ]
        self.nic = NetworkInterface(sim, node_id, arch, comm, self.membus, self.iobus, network)
        self.irq = InterruptController(sim, self.cpus, comm)


class MiniCluster:
    def __init__(self, sim, arch, comm, n_nodes=2, n_cpus=1):
        self.network = Network(sim, arch.link_bytes_per_cycle, arch.link_latency_cycles)
        self.nodes = [
            MiniNode(sim, i, arch, comm, self.network, n_cpus=n_cpus) for i in range(n_nodes)
        ]
        self.msg = MessagingLayer(sim, arch, comm, {n.node_id: n.nic for n in self.nodes})


@pytest.fixture
def arch():
    return ArchParams()


@pytest.fixture
def comm():
    return CommParams()


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def cluster(sim, arch, comm):
    return MiniCluster(sim, arch, comm)


def make_cluster(sim, arch=None, comm=None, n_nodes=2, n_cpus=1):
    return MiniCluster(sim, arch or ArchParams(), comm or CommParams(), n_nodes, n_cpus)
