"""Tests for NI queue back-pressure, DATA messages, and send variants."""

import pytest

from repro.arch import ArchParams, CommParams
from repro.net import MessageKind
from repro.net.message import Message
from repro.sim import Simulator

from tests.net.conftest import make_cluster


def test_data_message_deposits_without_interrupt_or_rendezvous():
    sim = Simulator()
    cluster = make_cluster(sim)
    deposited = []

    def sender():
        cpu = cluster.nodes[0].cpus[0]
        ev = yield from cluster.msg.send_data(cpu, 0, 1, size_bytes=256)
        payload = yield ev
        deposited.append((sim.now, payload.kind))

    sim.spawn(sender())
    sim.run()
    assert len(deposited) == 1
    assert deposited[0][1] is MessageKind.DATA
    # no interrupt was raised, nothing waits at a rendezvous
    assert cluster.nodes[1].irq.interrupts_raised == 0


def test_send_data_charges_no_host_overhead():
    sim = Simulator()
    comm = CommParams(host_overhead=5000)
    cluster = make_cluster(sim, comm=comm)
    cpu = cluster.nodes[0].cpus[0]

    def sender():
        yield from cluster.msg.send_data(cpu, 0, 1, size_bytes=64)

    sim.spawn(sender())
    sim.run()
    assert cpu.stats.time["overhead"] == 0
    assert cpu.stats.get_count("messages_sent") == 1


def test_min_packets_floor_respected():
    sim = Simulator()
    cluster = make_cluster(sim)

    def sender():
        cpu = cluster.nodes[0].cpus[0]
        yield from cluster.msg.send_data(cpu, 0, 1, size_bytes=64, min_packets=7)

    sim.spawn(sender())
    sim.run()
    assert cluster.nodes[0].nic.packets_sent == 7


def test_outgoing_queue_overflow_triggers_backpressure():
    """Flooding a tiny NI queue stalls senders and counts overflow
    interrupts."""
    sim = Simulator()
    arch = ArchParams(ni_queue_bytes=4096)
    comm = CommParams(io_bus_mb_per_mhz=0.25)  # slow drain
    cluster = make_cluster(sim, arch=arch, comm=comm)
    overflowed = []
    cluster.nodes[0].nic.on_queue_overflow = lambda: overflowed.append(sim.now)

    def sender():
        cpu = cluster.nodes[0].cpus[0]
        for _ in range(16):
            yield from cluster.msg.send_data(cpu, 0, 1, size_bytes=4096)

    sim.spawn(sender())
    sim.run()
    assert cluster.nodes[0].nic.overflow_interrupts > 0
    assert overflowed  # the hook fired
    assert cluster.nodes[1].nic.messages_received == 16  # all still arrive


def test_store_and_forward_slower_than_cut_through():
    import dataclasses

    def delivery_time(cut_through):
        sim = Simulator()
        arch = dataclasses.replace(ArchParams(), model_cut_through=cut_through)
        cluster = make_cluster(sim, arch=arch)
        got = []

        def receiver():
            yield cluster.msg.receive_sync(1, "x")
            got.append(sim.now)

        def sender():
            yield from cluster.msg.send_sync(cluster.nodes[0].cpus[0], 0, 1, "x", 4096)

        sim.spawn(receiver())
        sim.spawn(sender())
        sim.run()
        return got[0]

    assert delivery_time(cut_through=False) > 1.5 * delivery_time(cut_through=True)


def test_rx_gate_delays_followers_behind_request():
    """A REPLY arriving just after a REQUEST waits for the interrupt
    signalling to finish (when the gate is modelled)."""
    sim = Simulator()
    comm = CommParams(interrupt_cost=10_000)
    cluster = make_cluster(sim, comm=comm)
    cluster.nodes[1].nic.on_request = lambda msg: None  # swallow the request
    got = []

    def sender():
        cpu = cluster.nodes[0].cpus[0]
        yield from cluster.msg.send_async(cpu, 0, 1, "req", 64)
        yield from cluster.msg.send_sync(cpu, 0, 1, "x", 64)

    def receiver():
        yield cluster.msg.receive_sync(1, "x")
        got.append(sim.now)

    sim.spawn(receiver())
    sim.spawn(sender())
    sim.run()
    with_gate = got[0]

    # same flow with free interrupts: no gate hold
    sim2 = Simulator()
    cluster2 = make_cluster(sim2, comm=CommParams(interrupt_cost=0))
    cluster2.nodes[1].nic.on_request = lambda msg: None
    got2 = []

    def sender2():
        cpu = cluster2.nodes[0].cpus[0]
        yield from cluster2.msg.send_async(cpu, 0, 1, "req", 64)
        yield from cluster2.msg.send_sync(cpu, 0, 1, "x", 64)

    def receiver2():
        yield cluster2.msg.receive_sync(1, "x")
        got2.append(sim2.now)

    sim2.spawn(receiver2())
    sim2.spawn(sender2())
    sim2.run()
    assert with_gate > got2[0] + 5_000


def test_free_send_sync_skips_overhead():
    sim = Simulator()
    comm = CommParams(host_overhead=9000)
    cluster = make_cluster(sim, comm=comm)
    cpu = cluster.nodes[0].cpus[0]

    def sender():
        yield from cluster.msg.send_sync(cpu, 0, 1, "x", 64, free_send=True)

    def receiver():
        yield cluster.msg.receive_sync(1, "x")

    sim.spawn(receiver())
    sim.spawn(sender())
    sim.run()
    assert cpu.stats.time["overhead"] == 0
    assert cpu.stats.get_count("messages_sent") == 1


def test_send_from_wrong_nic_rejected():
    sim = Simulator()
    cluster = make_cluster(sim)
    msg = Message(src_node=1, dst_node=0, kind=MessageKind.SYNC, size_bytes=8)
    with pytest.raises(ValueError, match="source"):
        cluster.nodes[0].nic.send(msg)
