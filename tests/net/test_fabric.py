"""Unit tests for IOBus, Network, and the NI pipelines."""

import pytest

from repro.arch import ArchParams, CommParams
from repro.net import IOBus, MessageKind, Network
from repro.net.message import Message
from repro.sim import Simulator

from tests.net.conftest import make_cluster


# --------------------------------------------------------------------- #
# IOBus
# --------------------------------------------------------------------- #
def test_iobus_dma_latency_matches_bandwidth():
    sim = Simulator()
    bus = IOBus(sim, bytes_per_cycle=0.5)
    assert bus.dma_latency(100) == 200
    assert bus.dma_latency(0) == 0


def test_iobus_serializes_dmas():
    sim = Simulator()
    bus = IOBus(sim, bytes_per_cycle=1.0)
    assert bus.dma_latency(100) == 100
    assert bus.dma_latency(100) == 200


def test_iobus_backlog_bytes():
    sim = Simulator()
    bus = IOBus(sim, bytes_per_cycle=2.0)
    bus.dma_latency(4096)
    assert bus.backlog_bytes == pytest.approx(4096, abs=4)


def test_iobus_validation():
    with pytest.raises(ValueError):
        IOBus(Simulator(), bytes_per_cycle=0)
    bus = IOBus(Simulator(), bytes_per_cycle=1.0)
    with pytest.raises(ValueError):
        bus.dma_latency(-1)


# --------------------------------------------------------------------- #
# Network
# --------------------------------------------------------------------- #
def test_network_transit_is_latency_plus_serialization():
    sim = Simulator()
    net = Network(sim, bytes_per_cycle=2.0, latency_cycles=200)
    assert net.transit_cycles(4096) == 200 + 2048


def test_network_delivers_to_attached_receiver():
    sim = Simulator()
    net = Network(sim, bytes_per_cycle=2.0, latency_cycles=100)
    got = []
    net.attach(1, lambda msg, wire: got.append((sim.now, msg.msg_id, wire)))
    msg = Message(src_node=0, dst_node=1, kind=MessageKind.SYNC, size_bytes=100)
    net.carry(msg, wire_bytes=100)
    sim.run()
    assert got == [(150, msg.msg_id, 100)]


def test_network_is_contention_free():
    """Two simultaneous messages to different nodes arrive at the same time."""
    sim = Simulator()
    net = Network(sim, bytes_per_cycle=2.0, latency_cycles=100)
    got = []
    net.attach(1, lambda msg, wire: got.append(sim.now))
    net.attach(2, lambda msg, wire: got.append(sim.now))
    for dst in (1, 2):
        net.carry(
            Message(src_node=0, dst_node=dst, kind=MessageKind.SYNC, size_bytes=100), 100
        )
    sim.run()
    assert got == [150, 150]


def test_network_unattached_destination_raises():
    sim = Simulator()
    net = Network(sim, bytes_per_cycle=2.0, latency_cycles=0)
    with pytest.raises(ValueError):
        net.carry(Message(src_node=0, dst_node=9, kind=MessageKind.SYNC, size_bytes=1), 1)


def test_network_double_attach_rejected():
    sim = Simulator()
    net = Network(sim, bytes_per_cycle=2.0, latency_cycles=0)
    net.attach(0, lambda m, w: None)
    with pytest.raises(ValueError):
        net.attach(0, lambda m, w: None)


# --------------------------------------------------------------------- #
# NI pipelines (end to end over a MiniCluster)
# --------------------------------------------------------------------- #
def test_sync_message_end_to_end_delivery():
    sim = Simulator()
    cluster = make_cluster(sim)
    got = []

    def receiver():
        payload = yield cluster.msg.receive_sync(1, "ping")
        got.append((sim.now, payload))

    def sender():
        cpu = cluster.nodes[0].cpus[0]
        yield from cluster.msg.send_sync(cpu, 0, 1, "ping", 64, payload="hello")

    sim.spawn(receiver())
    sim.spawn(sender())
    sim.run()
    assert len(got) == 1
    assert got[0][1] == "hello"
    assert got[0][0] > 0


def test_sync_delivery_latency_cut_through_floor():
    """End-to-end latency >= host overhead + bottleneck stage + link
    latency (the path is cut-through pipelined, not store-and-forward)."""
    arch = ArchParams()
    comm = CommParams()
    sim = Simulator()
    cluster = make_cluster(sim, arch, comm)
    got = []

    def receiver():
        yield cluster.msg.receive_sync(1, "t")
        got.append(sim.now)

    def sender():
        yield from cluster.msg.send_sync(cluster.nodes[0].cpus[0], 0, 1, "t", 4096)

    sim.spawn(receiver())
    sim.spawn(sender())
    sim.run()
    wire = 4096 + arch.packet_header_bytes
    bottleneck = max(
        comm.ni_occupancy,
        wire / comm.io_bytes_per_cycle,  # the I/O bus is the slow stage
        wire / arch.link_bytes_per_cycle,
    )
    floor = comm.host_overhead + bottleneck + arch.link_latency_cycles
    assert got[0] >= floor
    # and strictly below the store-and-forward sum of stages
    ceiling = (
        comm.host_overhead
        + 2 * comm.ni_occupancy
        + 2 * wire / comm.io_bytes_per_cycle
        + 2 * wire / arch.membus_bytes_per_cycle
        + arch.link_latency_cycles
        + wire / arch.link_bytes_per_cycle
    )
    assert got[0] < ceiling


def test_request_raises_handler_hook():
    sim = Simulator()
    cluster = make_cluster(sim)
    seen = []
    cluster.nodes[1].nic.on_request = lambda msg: seen.append(msg.tag)

    def sender():
        cpu = cluster.nodes[0].cpus[0]
        yield from cluster.msg.send_async(cpu, 0, 1, "page_req", 64)

    sim.spawn(sender())
    sim.run()
    assert seen == ["page_req"]


def test_request_without_hook_crashes_loudly():
    sim = Simulator()
    cluster = make_cluster(sim)

    def sender():
        cpu = cluster.nodes[0].cpus[0]
        yield from cluster.msg.send_async(cpu, 0, 1, "orphan", 64)

    sim.spawn(sender())
    with pytest.raises(Exception):
        sim.run()


def test_host_overhead_charged_to_sender_cpu():
    sim = Simulator()
    comm = CommParams(host_overhead=700)
    cluster = make_cluster(sim, comm=comm)
    cpu = cluster.nodes[0].cpus[0]

    def sender():
        yield from cluster.msg.send_sync(cpu, 0, 1, "x", 64)

    def receiver():
        yield cluster.msg.receive_sync(1, "x")

    sim.spawn(receiver())
    sim.spawn(sender())
    sim.run()
    assert cpu.stats.time["overhead"] == 700
    assert cpu.stats.get_count("messages_sent") == 1
    assert cpu.stats.get_count("bytes_sent") > 64  # headers included


def test_messages_counted_per_sender():
    sim = Simulator()
    cluster = make_cluster(sim)
    cpu = cluster.nodes[0].cpus[0]

    def sender():
        for _ in range(3):
            yield from cluster.msg.send_sync(cpu, 0, 1, "x", 128)

    def receiver():
        for _ in range(3):
            yield cluster.msg.receive_sync(1, "x")

    sim.spawn(receiver())
    sim.spawn(sender())
    sim.run()
    assert cpu.stats.get_count("messages_sent") == 3
    assert cluster.nodes[0].nic.messages_sent == 3
    assert cluster.nodes[1].nic.messages_received == 3


def test_multi_packet_message_counts_packets():
    sim = Simulator()
    arch = ArchParams()
    cluster = make_cluster(sim, arch=arch)

    def sender():
        cpu = cluster.nodes[0].cpus[0]
        yield from cluster.msg.send_sync(cpu, 0, 1, "big", 3 * arch.packet_mtu)

    def receiver():
        yield cluster.msg.receive_sync(1, "big")

    sim.spawn(receiver())
    sim.spawn(sender())
    sim.run()
    assert cluster.nodes[0].nic.packets_sent == 3


def test_zero_occupancy_skips_ni_core():
    sim = Simulator()
    comm = CommParams(ni_occupancy=0)
    cluster = make_cluster(sim, comm=comm)

    def sender():
        yield from cluster.msg.send_sync(cluster.nodes[0].cpus[0], 0, 1, "x", 64)

    def receiver():
        yield cluster.msg.receive_sync(1, "x")

    sim.spawn(receiver())
    sim.spawn(sender())
    sim.run()
    assert cluster.nodes[0].nic.core.requests == 0
