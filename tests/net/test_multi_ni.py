"""Tests for multi-NI nodes (the paper's bandwidth-scaling suggestion)."""

import pytest

from repro.apps import get_app
from repro.arch import CommParams
from repro.core import Cluster, ClusterConfig, run_simulation
from repro.net import NICGroup, NetworkInterface

SCALE = 0.3


def test_validation():
    with pytest.raises(ValueError):
        CommParams(nis_per_node=0)


def test_single_ni_unwrapped():
    cluster = Cluster(ClusterConfig())
    assert isinstance(cluster.nodes[0].nic, NetworkInterface)


def test_multi_ni_group_structure():
    cfg = ClusterConfig().with_comm(nis_per_node=3)
    cluster = Cluster(cfg)
    node = cluster.nodes[0]
    assert isinstance(node.nic, NICGroup)
    assert len(node.nic.nics) == 3
    assert len(node.iobuses) == 3
    # independent I/O buses
    assert len({id(b) for b in node.iobuses}) == 3
    # hooks are wired on every member
    assert all(n.on_request is not None for n in node.nic.nics)


def test_sends_round_robin_across_nis():
    app = get_app("fft", scale=SCALE)
    cfg = ClusterConfig().with_comm(nis_per_node=2)
    r = run_simulation(app, cfg)
    assert r.speedup > 0
    cluster = Cluster(cfg)  # fresh cluster to inspect distribution
    from repro.core.run import _worker

    for pid, evs in enumerate(app.events):
        cluster.sim.spawn(_worker(cluster, cluster.procs[pid], evs))
    cluster.sim.run()
    for node in cluster.nodes:
        counts = [n.messages_sent for n in node.nic.nics]
        assert min(counts) > 0  # both NIs carry traffic
        assert abs(counts[0] - counts[1]) <= max(counts) * 0.5 + 2


def test_second_ni_helps_bandwidth_bound_app():
    app = get_app("radix", scale=SCALE)
    one = run_simulation(app, ClusterConfig().with_comm(nis_per_node=1))
    two = run_simulation(app, ClusterConfig().with_comm(nis_per_node=2))
    assert two.speedup > 1.15 * one.speedup


def test_diminishing_returns_beyond_bottleneck():
    """Once the I/O path stops being the bottleneck, more NIs buy little."""
    app = get_app("fft", scale=SCALE)
    two = run_simulation(app, ClusterConfig().with_comm(nis_per_node=2))
    eight = run_simulation(app, ClusterConfig().with_comm(nis_per_node=8))
    assert eight.speedup < 1.25 * two.speedup


def test_multi_ni_correctness_with_locks_and_barriers():
    """Protocol correctness is unaffected by NI striping."""
    app = get_app("barnes-rebuild", scale=SCALE)
    one = run_simulation(app, ClusterConfig().with_comm(nis_per_node=1))
    two = run_simulation(app, ClusterConfig().with_comm(nis_per_node=2))
    c1, c2 = one.counters, two.counters
    # fetch counts may differ slightly (timing changes the interleaving
    # of invalidations vs in-flight coalescing), but not materially
    assert c1.page_fetches == pytest.approx(c2.page_fetches, rel=0.05)
    assert c1.barriers == c2.barriers
    assert (
        c1.local_lock_acquires + c1.remote_lock_acquires
        == c2.local_lock_acquires + c2.remote_lock_acquires
    )


def test_multi_ni_with_aurc():
    app = get_app("water-nsq", scale=SCALE)
    r = run_simulation(
        app, ClusterConfig(protocol="aurc").with_comm(nis_per_node=2)
    )
    assert r.speedup > 0
    assert r.counters.updates_sent > 0


def test_group_requires_members_same_node():
    cfg = ClusterConfig().with_comm(nis_per_node=2)
    cluster = Cluster(cfg)
    nic_a = cluster.nodes[0].nic.nics[0]
    nic_b = cluster.nodes[1].nic.nics[0]
    with pytest.raises(ValueError):
        NICGroup([nic_a, nic_b])
    with pytest.raises(ValueError):
        NICGroup([])
