"""Integration tests: RPC over NI + interrupt controller (the page-fetch path)."""

import pytest

from repro.arch import ArchParams, CommParams
from repro.sim import Simulator

from tests.net.conftest import make_cluster


def wire_rpc_service(sim, cluster, service_node, service_cycles=100, reply_bytes=4096):
    """Install a request handler on `service_node` that runs a body of
    `service_cycles` on the interrupted CPU and replies."""
    node = cluster.nodes[service_node]

    def handler_body(msg):
        yield sim.timeout(service_cycles)
        yield from cluster.msg.send_reply(
            node.irq.target_cpu(), msg, reply_bytes, payload=("served", msg.payload)
        )

    node.nic.on_request = lambda msg: node.irq.raise_interrupt(handler_body(msg))
    return node


def test_rpc_round_trip_returns_payload():
    sim = Simulator()
    cluster = make_cluster(sim)
    wire_rpc_service(sim, cluster, service_node=1)
    results = []

    def client():
        cpu = cluster.nodes[0].cpus[0]
        reply = yield from cluster.msg.rpc(cpu, 0, 1, "fetch", 64, payload=7)
        results.append((sim.now, reply))

    sim.spawn(client())
    sim.run()
    assert results[0][1] == ("served", 7)
    assert results[0][0] > 0


def test_rpc_blocking_time_charged_to_category():
    sim = Simulator()
    cluster = make_cluster(sim)
    wire_rpc_service(sim, cluster, 1)
    cpu = cluster.nodes[0].cpus[0]

    def client():
        yield from cluster.msg.rpc(cpu, 0, 1, "fetch", 64, wait_category="lock_wait")

    sim.spawn(client())
    sim.run()
    assert cpu.stats.time["lock_wait"] > 0
    assert cpu.stats.time["data_wait"] == 0


def test_rpc_latency_grows_with_interrupt_cost():
    def round_trip(interrupt_cost):
        sim = Simulator()
        comm = CommParams(interrupt_cost=interrupt_cost)
        cluster = make_cluster(sim, comm=comm)
        wire_rpc_service(sim, cluster, 1)
        finish = []

        def client():
            cpu = cluster.nodes[0].cpus[0]
            yield from cluster.msg.rpc(cpu, 0, 1, "fetch", 64)
            finish.append(sim.now)

        sim.spawn(client())
        sim.run()
        return finish[0]

    t_free = round_trip(0)
    t_mid = round_trip(1000)
    t_slow = round_trip(10000)
    assert t_free < t_mid < t_slow
    # the null-interrupt cost (2x per-side) separates the runs exactly once
    assert t_mid - t_free == pytest.approx(2 * 1000, rel=0.05)
    assert t_slow - t_free == pytest.approx(2 * 10000, rel=0.05)


def test_interrupt_handler_steals_from_service_node_app():
    """An application computing on the service node's CPU0 is delayed by
    exactly the handler duration."""
    sim = Simulator()
    comm = CommParams(interrupt_cost=500)
    cluster = make_cluster(sim, comm=comm)
    wire_rpc_service(sim, cluster, 1, service_cycles=2000)
    victim = cluster.nodes[1].cpus[0]
    finish = []

    def victim_app():
        yield from victim.busy(50_000, "compute")
        finish.append(sim.now)

    def client():
        cpu = cluster.nodes[0].cpus[0]
        yield from cluster.msg.rpc(cpu, 0, 1, "fetch", 64)

    sim.spawn(victim_app())
    sim.spawn(client())
    sim.run()
    stolen = victim.stats.time["handler"]
    assert stolen > 2000  # service body + delivery + reply send overhead
    assert finish[0] == 50_000 + stolen


def test_round_robin_delivery_spreads_interrupts():
    sim = Simulator()
    comm = CommParams(interrupt_scheme="round_robin")
    cluster = make_cluster(sim, comm=comm, n_cpus=4)
    node = cluster.nodes[1]

    def handler_body(msg):
        yield sim.timeout(10)
        cpu = node.cpus[0]  # reply from any cpu; use cpu0's stats
        yield from cluster.msg.send_reply(cpu, msg, 64)

    node.nic.on_request = lambda msg: node.irq.raise_interrupt(handler_body(msg))

    def client():
        cpu = cluster.nodes[0].cpus[0]
        for _ in range(8):
            yield from cluster.msg.rpc(cpu, 0, 1, "fetch", 64)

    sim.spawn(client())
    sim.run()
    counts = [c.stats.get_count("interrupts") for c in node.cpus]
    assert counts == [2, 2, 2, 2]


def test_fixed_delivery_targets_cpu0():
    sim = Simulator()
    cluster = make_cluster(sim, n_cpus=4)
    wire_rpc_service(sim, cluster, 1)

    def client():
        cpu = cluster.nodes[0].cpus[0]
        for _ in range(5):
            yield from cluster.msg.rpc(cpu, 0, 1, "fetch", 64)

    sim.spawn(client())
    sim.run()
    counts = [c.stats.get_count("interrupts") for c in cluster.nodes[1].cpus]
    assert counts == [5, 0, 0, 0]


def test_null_interrupt_cost():
    sim = Simulator()
    comm = CommParams(interrupt_cost=500)
    cluster = make_cluster(sim, comm=comm)
    node = cluster.nodes[1]
    done_times = []

    def probe():
        ev = node.irq.null_interrupt()
        yield ev
        done_times.append(sim.now)

    sim.spawn(probe())
    sim.run()
    assert done_times == [comm.null_interrupt_cycles]


def test_concurrent_rpcs_serialize_on_handler_cpu():
    """Two clients hitting the same service node: handlers serialize, so
    the second reply comes later than the first by at least the service."""
    sim = Simulator()
    cluster = make_cluster(sim, n_nodes=3)
    wire_rpc_service(sim, cluster, 2, service_cycles=5000)
    finish = {}

    def client(node_id):
        cpu = cluster.nodes[node_id].cpus[0]
        yield from cluster.msg.rpc(cpu, node_id, 2, "fetch", 64)
        finish[node_id] = sim.now

    sim.spawn(client(0))
    sim.spawn(client(1))
    sim.run()
    assert abs(finish[1] - finish[0]) >= 5000
