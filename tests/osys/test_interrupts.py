"""Direct unit tests for the interrupt controller."""

import pytest

from repro.arch import ArchParams, CommParams, MemoryBus, Processor
from repro.osys import InterruptController
from repro.sim import Simulator


def make_node(sim, n_cpus=2, **comm_kw):
    comm = CommParams(**comm_kw)
    bus = MemoryBus(sim, ArchParams())
    cpus = [Processor(sim, i, i, bus=bus) for i in range(n_cpus)]
    return cpus, InterruptController(sim, cpus, comm)


def test_requires_processors():
    sim = Simulator()
    with pytest.raises(ValueError):
        InterruptController(sim, [], CommParams())


def test_fixed_scheme_always_cpu0():
    sim = Simulator()
    cpus, irq = make_node(sim, n_cpus=4)
    assert all(irq.target_cpu() is cpus[0] for _ in range(5))


def test_round_robin_cycles():
    sim = Simulator()
    cpus, irq = make_node(sim, n_cpus=3, interrupt_scheme="round_robin")
    picks = [irq.target_cpu() for _ in range(6)]
    assert picks == [cpus[0], cpus[1], cpus[2], cpus[0], cpus[1], cpus[2]]


def test_handler_result_delivered_via_done_event():
    sim = Simulator()
    _cpus, irq = make_node(sim, interrupt_cost=100)
    results = []

    def body():
        yield sim.timeout(50)
        return "done-value"

    def waiter():
        value = yield irq.raise_interrupt(body())
        results.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    # issue(100) + delivery(100) + body(50)
    assert results == [(250, "done-value")]


def test_factory_form_receives_target_cpu():
    sim = Simulator()
    cpus, irq = make_node(sim)
    seen = []

    def factory(cpu):
        def body():
            seen.append(cpu)
            return
            yield

        return body()

    irq.raise_interrupt(factory)
    sim.run()
    assert seen == [cpus[0]]


def test_null_interrupt_costs_both_sides():
    sim = Simulator()
    _cpus, irq = make_node(sim, interrupt_cost=700)
    done_at = []

    def waiter():
        yield irq.null_interrupt()
        done_at.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    assert done_at == [1400]


def test_zero_cost_interrupt_is_immediate():
    sim = Simulator()
    _cpus, irq = make_node(sim, interrupt_cost=0)
    done_at = []

    def waiter():
        yield irq.null_interrupt()
        done_at.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    assert done_at == [0]


def test_interrupts_counted():
    sim = Simulator()
    cpus, irq = make_node(sim)
    for _ in range(3):
        irq.null_interrupt()
    sim.run()
    assert irq.interrupts_raised == 3
    assert cpus[0].stats.get_count("interrupts") == 3
