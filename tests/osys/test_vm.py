"""Unit and property tests for the page directory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.osys import PageDirectory, pages_in_range


def test_page_of_basic():
    d = PageDirectory(page_size=4096, n_nodes=4, policy="round_robin")
    assert d.page_of(0) == 0
    assert d.page_of(4095) == 0
    assert d.page_of(4096) == 1
    assert d.page_of(10 * 4096 + 17) == 10


def test_pages_in_range():
    assert pages_in_range(0, 4096, 4096) == (0,)
    assert pages_in_range(0, 4097, 4096) == (0, 1)
    assert pages_in_range(4000, 200, 4096) == (0, 1)
    assert pages_in_range(8192, 0, 4096) == ()


def test_pages_in_range_validation():
    with pytest.raises(ValueError):
        pages_in_range(0, -1, 4096)
    with pytest.raises(ValueError):
        pages_in_range(0, 10, 1000)  # non power of two


def test_first_touch_assignment_sticks():
    d = PageDirectory(page_size=4096, n_nodes=4)
    assert d.home(7, toucher_node=2) == 2
    # later touches by other nodes do not move the home
    assert d.home(7, toucher_node=3) == 2


def test_first_touch_requires_toucher():
    d = PageDirectory(page_size=4096, n_nodes=4)
    with pytest.raises(ValueError):
        d.home(7)


def test_round_robin_spreads_pages():
    d = PageDirectory(page_size=4096, n_nodes=4, policy="round_robin")
    homes = [d.home(p) for p in range(8)]
    assert homes == [0, 1, 2, 3, 0, 1, 2, 3]


def test_block_policy_contiguous():
    d = PageDirectory(page_size=4096, n_nodes=4, policy="block", total_pages_hint=8)
    homes = [d.home(p) for p in range(8)]
    assert homes == [0, 0, 1, 1, 2, 2, 3, 3]


def test_explicit_assignment_and_conflict():
    d = PageDirectory(page_size=4096, n_nodes=4)
    d.assign_home(5, 3)
    assert d.home(5, toucher_node=0) == 3
    with pytest.raises(ValueError):
        d.assign_home(5, 1)
    d.assign_home(5, 3)  # idempotent re-assignment is fine


def test_assign_many_and_balance():
    d = PageDirectory(page_size=4096, n_nodes=2)
    d.assign_many(range(0, 4), 0)
    d.assign_many(range(4, 8), 1)
    assert d.homes_by_node() == {0: 4, 1: 4}
    assert d.assigned_pages == 8


def test_peek_home_has_no_side_effect():
    d = PageDirectory(page_size=4096, n_nodes=4, policy="round_robin")
    assert d.peek_home(3) is None
    assert d.assigned_pages == 0
    d.home(3)
    assert d.peek_home(3) == 3


def test_directory_validation():
    with pytest.raises(ValueError):
        PageDirectory(page_size=1000, n_nodes=2)
    with pytest.raises(ValueError):
        PageDirectory(page_size=4096, n_nodes=0)
    with pytest.raises(ValueError):
        PageDirectory(page_size=4096, n_nodes=2, policy="nope")


@given(
    start=st.integers(0, 1 << 30),
    nbytes=st.integers(1, 1 << 20),
    shift=st.integers(9, 14),
)
def test_pages_in_range_covers_exactly(start, nbytes, shift):
    """Property: the returned pages tile the byte range exactly."""
    page_size = 1 << shift
    pages = pages_in_range(start, nbytes, page_size)
    assert pages[0] == start // page_size
    assert pages[-1] == (start + nbytes - 1) // page_size
    assert list(pages) == list(range(pages[0], pages[-1] + 1))


@given(addrs=st.lists(st.integers(0, 1 << 24), min_size=1, max_size=50))
def test_home_assignment_deterministic_and_stable(addrs):
    """Property: repeated home() calls agree; round-robin equals page % n."""
    d = PageDirectory(page_size=4096, n_nodes=3, policy="round_robin")
    for addr in addrs:
        page = d.page_of(addr)
        assert d.home(page) == page % 3
        assert d.home(page) == d.home(page)
