"""Tests for the per-figure/table experiment drivers.

Run at reduced scale with application subsets; shape assertions mirror
the paper's qualitative claims (full-scale checks live in the benchmark
harness and EXPERIMENTS.md)."""

import pytest

from repro.experiments import (
    correlations,
    figure01_speedups,
    figure03_messages,
    figure04_bytes,
    figure05_host_overhead,
    figure06_ni_occupancy,
    figure07_io_bandwidth,
    figure09_interrupt,
    figure11_aurc_occupancy,
    figure12_page_size,
    figure13_clustering,
    interrupt_variants,
    reliability,
    table02_events,
    table03_slowdowns,
    table04_attribution,
    table04_speedups,
)

SCALE = 0.3
FEW = ("fft", "lu", "barnes-rebuild")


def test_figure01_gap_exists():
    out = figure01_speedups.run(scale=SCALE, apps=FEW)
    assert len(out.rows) == 3
    for name in FEW:
        assert out.data[name]["achievable"] < out.data[name]["ideal"]
    assert "figure01" in out.table_str()


def test_table02_coalescing_and_lock_locality():
    out = table02_events.run(scale=SCALE, apps=["water-nsq"])
    d = out.data["water-nsq"]
    # SMP fetch coalescing: fetches <= faults once nodes have >1 CPU
    assert d[4]["page_fetches"] <= d[4]["page_faults"]
    # clustering localizes lock acquires
    assert d[8]["remote_lock_acquires"] < d[1]["remote_lock_acquires"]
    assert d[8]["local_lock_acquires"] > d[1]["local_lock_acquires"]


def test_figure03_message_ordering():
    out = figure03_messages.run(scale=SCALE, apps=["barnes-rebuild", "lu"])
    assert out.data["barnes-rebuild"][4] > out.data["lu"][4]


def test_figure04_byte_ordering():
    out = figure04_bytes.run(scale=SCALE, apps=["radix", "water-sp"])
    assert out.data["radix"][4] > out.data["water-sp"][4]


def test_figure05_host_overhead_modest():
    out = figure05_host_overhead.run(scale=SCALE, apps=["lu", "volrend"])
    for name in ("lu", "volrend"):
        series = list(out.data[name].values())
        slow = (series[0] - series[-1]) / series[0]
        assert slow < 0.30, name  # host overhead is not a major factor


def test_figure06_occupancy_smallest_effect():
    occ = figure06_ni_occupancy.run(scale=SCALE, apps=["lu"])
    intr = figure09_interrupt.run(scale=SCALE, apps=["lu"])
    occ_s = list(occ.data["lu"].values())
    intr_s = list(intr.data["lu"].values())
    occ_slow = (occ_s[0] - occ_s[-1]) / occ_s[0]
    intr_slow = (intr_s[0] - intr_s[-1]) / intr_s[0]
    assert occ_slow < intr_slow


def test_figure07_bandwidth_hurts_radix_more_than_watersp():
    out = figure07_io_bandwidth.run(scale=SCALE, apps=["radix", "water-sp"])

    def slow(name):
        s = list(out.data[name].values())
        return (s[0] - s[-1]) / s[0]

    assert slow("radix") > 2 * slow("water-sp")


def test_figure09_interrupt_knee():
    """Small interrupt costs hurt little; the extreme hurts a lot."""
    out = figure09_interrupt.run(scale=SCALE, apps=["raytrace"])
    series = list(out.data["raytrace"].values())
    s0, s_knee, s_max = series[0], series[2], series[-1]
    assert (s0 - s_knee) / s0 < 0.15  # up to 500/side: mild
    assert (s0 - s_max) / s0 > 0.25  # at 10000/side: sharp


def test_figure11_aurc_more_occupancy_sensitive_than_hlrc():
    """Multi-writer applications: fine-grain automatic updates make AURC
    far more occupancy-sensitive than HLRC."""
    aurc = figure11_aurc_occupancy.run(scale=SCALE, apps=["water-nsq"])
    hlrc = figure06_ni_occupancy.run(scale=SCALE, apps=["water-nsq"])

    def slow(out):
        s = list(out.data["water-nsq"].values())
        return (s[0] - s[-1]) / s[0]

    assert slow(aurc) > 1.5 * slow(hlrc)


def test_table03_interrupt_column_nonzero_everywhere():
    out = table03_slowdowns.run(scale=SCALE, apps=["fft", "raytrace"])
    for name in ("fft", "raytrace"):
        assert out.data[name]["interrupt_cost"] > 0.02
        # NI occupancy is the least significant of the four comm params
        assert out.data[name]["ni_occupancy"] <= out.data[name]["interrupt_cost"]


def test_table04_ordering():
    out = table04_speedups.run(scale=SCALE, apps=["water-nsq", "lu"])
    for name in ("water-nsq", "lu"):
        d = out.data[name]
        assert d["achievable"] <= d["best"] * 1.02
        assert d["best"] <= d["ideal"] * 1.05


def test_figure12_radix_prefers_big_pages():
    out = figure12_page_size.run(scale=SCALE, apps=["radix"])
    series = out.data["radix"]
    assert series["16KB"] > series["1KB"]


def test_figure13_clustering_helps_lock_apps():
    out = figure13_clustering.run(scale=SCALE, apps=["barnes-rebuild"])
    series = out.data["barnes-rebuild"]
    assert series["8/node"] > series["1/node"]


def test_correlations_positive():
    apps = ("lu", "raytrace", "barnes-rebuild", "water-sp")
    for runner in (
        correlations.run_host_vs_messages,
        correlations.run_interrupt_vs_fetches,
    ):
        out = runner(scale=SCALE, apps=apps)
        assert out.data["rank_correlation"] > 0.3


def test_interrupt_variants_run():
    uni = interrupt_variants.run_uniprocessor_nodes(scale=SCALE, apps=["fft"])
    series = list(uni.data["fft"].values())
    assert series[0] > series[-1]  # interrupt cost matters there too
    rr = interrupt_variants.run_round_robin(scale=SCALE, apps=["water-nsq"])
    assert rr.data["water-nsq"]["round_robin"][0] > 0


def test_attribution_radix_bandwidth_recovers_gap():
    out = table04_attribution.run(scale=SCALE)
    radix = out.data["radix"]
    assert radix["4x io bw"] > radix["achievable"]
    fft = out.data["fft"]
    assert fft["both"] >= max(fft["interrupts=0"], fft["io bw = membus"]) * 0.95
    barnes = out.data["barnes-rebuild"]
    assert barnes["no remote fetches"] > barnes["achievable"]


def test_reliability_degrades_with_drop_rate():
    out = reliability.run(
        scale=0.05, apps=["lu"], drops=(0.0, 0.01), timeouts=(50_000,)
    )
    cells = out.data["lu"]
    clean = cells["drop=0,timeout=50000"]
    faulty = cells["drop=0.01,timeout=50000"]
    assert clean["retransmits"] == 0 and clean["messages_lost"] == 0
    assert faulty["retransmits"] > 0 and faulty["messages_lost"] > 0
    assert faulty["speedup"] < clean["speedup"]
    assert "reliability" in out.table_str()
