"""Tests for the communication microbenchmarks and breakdowns."""

import pytest

from repro.arch import ArchParams, CommParams
from repro.experiments import breakdowns, microbench


@pytest.fixture(scope="module")
def out():
    return microbench.run()


def test_microbench_basic_ordering(out):
    # a page fetch costs more than a null RPC (it ships a page)
    assert out.data["page_fetch"] > out.data["null_rpc"]
    assert out.data["null_rpc"] > 0


def test_fetch_latency_tracks_interrupt_cost_exactly(out):
    series = out.data["fetch_vs_interrupt"]
    # each extra per-side cycle adds exactly two cycles (issue+delivery)
    base = series[0]
    assert series[10000] - base == pytest.approx(2 * 10000, rel=0.02)
    assert series[500] - base == pytest.approx(2 * 500, rel=0.2)


def test_fetch_latency_tracks_bandwidth(out):
    series = out.data["fetch_vs_bandwidth"]
    assert series[0.25] > series[0.5] > series[2.0]
    # the swing matches the page's bottleneck-crossing difference
    comm = CommParams()
    arch = ArchParams()
    wire = comm.page_size + arch.packet_header_bytes
    expected_swing = wire / 0.25 - wire / 2.0
    assert series[0.25] - series[2.0] == pytest.approx(expected_swing, rel=0.15)


def test_stream_bandwidth_near_iobus_limit(out):
    achieved = out.data["stream_bytes_per_cycle"]
    limit = CommParams().io_bytes_per_cycle
    assert 0.55 * limit < achieved <= limit * 1.01


def test_fetch_calibration_magnitude(out):
    """At the achievable set a 4KB fetch should be ~10-15K cycles
    (bottleneck crossing ~8.3K + null interrupt 1K + overheads)."""
    assert 8_000 < out.data["page_fetch"] < 18_000


def test_breakdowns_driver():
    result = breakdowns.run(scale=0.25, apps=["fft", "lu", "barnes-rebuild"])
    assert set(result.data) == {"fft", "lu", "barnes-rebuild"}
    for fractions in result.data.values():
        assert sum(fractions.values()) == pytest.approx(1.0)
    # FFT's dominant overhead is data wait; barnes-rebuild has real lock wait
    fft = result.data["fft"]
    assert fft["data_wait"] > fft["lock_wait"]
    barnes = result.data["barnes-rebuild"]
    assert barnes["lock_wait"] > 0.05
