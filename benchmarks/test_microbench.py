"""Benchmark: communication microbenchmarks + per-app time breakdowns."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import breakdowns, microbench


def test_bench_microbench(benchmark):
    out = run_once(benchmark, lambda: microbench.run())
    record(out)
    assert out.data["page_fetch"] > out.data["null_rpc"]


def test_bench_breakdowns(benchmark):
    out = run_once(benchmark, lambda: breakdowns.run(scale=BENCH_SCALE))
    record(out)
    # handler time stays small at the achievable interrupt cost
    assert all(d["handler"] < 0.10 for d in out.data.values())
