"""Benchmark: regenerate Figure 13 — clustering sweep."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import figure13_clustering


def test_bench_figure13(benchmark):
    out = run_once(benchmark, lambda: figure13_clustering.run(scale=BENCH_SCALE))
    record(out)
    # clustering helps most applications
    helped = sum(1 for d in out.data.values() if d["8/node"] > d["1/node"])
    assert helped >= 6
    # applications dominated by synchronization and fine-grain sharing
    # (task queues + stealing) gain dramatically as sharing moves into
    # hardware
    for name in ("raytrace", "volrend"):
        d = out.data[name]
        assert d["8/node"] > 1.5 * d["1/node"], name
