"""Benchmark: regenerate Figure 6 — NI occupancy sweep (HLRC)."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import figure06_ni_occupancy


def test_bench_figure06(benchmark):
    out = run_once(benchmark, lambda: figure06_ni_occupancy.run(scale=BENCH_SCALE))
    record(out)
    # most applications are insensitive to realistic occupancies
    insensitive = 0
    for series in out.data.values():
        s = list(series.values())
        if (s[0] - s[2]) / s[0] < 0.10:  # up to the achievable 500 cycles
            insensitive += 1
    assert insensitive >= 7
