"""Benchmark harness configuration.

Each benchmark regenerates one table/figure of the paper at a reduced
problem scale (BENCH_SCALE), times the full experiment once, prints the
paper-shaped table, and archives it under ``benchmarks/output/``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pathlib

import pytest

from repro.core.sweeps import clear_caches

#: problem-size multiplier for benchmark runs (1.0 = paper scale).
#: 0.5 keeps the paper's qualitative orderings intact while halving cost;
#: much smaller scales distort communication-to-computation ratios.
BENCH_SCALE = 0.5

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(autouse=True)
def fresh_caches():
    """Benchmarks time cold runs: clear the run cache around each."""
    clear_caches()
    yield
    clear_caches()


def record(output) -> None:
    """Print and archive an ExperimentOutput."""
    text = output.table_str()
    print("\n" + text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{output.experiment_id}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Time one cold execution of an experiment driver."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
