"""Benchmark: regenerate Figure 7 (+8) — I/O bandwidth sweep and its
correlation with bytes sent."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import correlations, figure07_io_bandwidth


def test_bench_figure07(benchmark):
    out = run_once(benchmark, lambda: figure07_io_bandwidth.run(scale=BENCH_SCALE))
    record(out)

    def beyond_achievable_gain(name):
        series = list(out.data[name].values())
        # speedup at 2.0 vs at the achievable 0.5 (index 2)
        return (series[0] - series[2]) / series[2]

    # the bandwidth-hungry group (FFT, Radix) benefits from bandwidth
    # beyond achievable far more than the light group
    heavy = min(beyond_achievable_gain(n) for n in ("radix", "fft"))
    light = max(beyond_achievable_gain(n) for n in ("water-sp", "barnes-space"))
    assert heavy > 0.2
    assert heavy > 2 * light


def test_bench_figure08(benchmark):
    out = run_once(benchmark, lambda: correlations.run_bandwidth_vs_bytes(scale=BENCH_SCALE))
    record(out)
    assert out.data["rank_correlation"] > 0.3
