"""Benchmark: regenerate Figure 5 (+5b) — host overhead sweep and its
correlation with messages sent."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import correlations, figure05_host_overhead


def test_bench_figure05(benchmark):
    out = run_once(benchmark, lambda: figure05_host_overhead.run(scale=BENCH_SCALE))
    record(out)
    # host overhead is not a major performance factor: median slowdown small
    slows = []
    for series in out.data.values():
        s = list(series.values())
        slows.append((s[0] - s[-1]) / s[0])
    slows.sort()
    assert slows[len(slows) // 2] < 0.35


def test_bench_figure05b(benchmark):
    out = run_once(benchmark, lambda: correlations.run_host_vs_messages(scale=BENCH_SCALE))
    record(out)
    assert out.data["rank_correlation"] > 0.3
