"""Benchmark: regenerate Table 4 — best/achievable/ideal speedups,
plus the Section 7 attribution runs."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import table04_attribution, table04_speedups


def test_bench_table04(benchmark):
    out = run_once(benchmark, lambda: table04_speedups.run(scale=BENCH_SCALE))
    record(out)
    for name, d in out.data.items():
        assert d["achievable"] <= d["best"] * 1.05, name
        assert d["best"] <= d["ideal"] * 1.10, name
    # achievable ~ best for the light-communication group
    for name in ("lu", "water-sp"):
        d = out.data[name]
        assert d["achievable"] > 0.75 * d["best"], name


def test_bench_attribution(benchmark):
    out = run_once(benchmark, lambda: table04_attribution.run(scale=BENCH_SCALE))
    record(out)
    radix = out.data["radix"]
    assert radix["4x io bw"] > 1.2 * radix["achievable"]
