"""Benchmark: regenerate Table 3 — maximum slowdown per parameter."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import table03_slowdowns


def test_bench_table03(benchmark):
    out = run_once(benchmark, lambda: table03_slowdowns.run(scale=BENCH_SCALE))
    record(out)
    data = out.data
    # interrupt cost matters broadly
    assert sum(1 for d in data.values() if d["interrupt_cost"] > 0.05) >= 8
    # NI occupancy is the least significant parameter for most apps
    milder = sum(
        1 for d in data.values() if d["ni_occupancy"] <= d["interrupt_cost"] + 0.02
    )
    assert milder >= 8
    # clustering (1 -> 8 procs/node) helps most applications (negative)
    assert sum(1 for d in data.values() if d["procs_per_node"] < 0) >= 6
