"""Benchmark: the multi-NI extension study."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import multi_ni


def test_bench_multi_ni(benchmark):
    out = run_once(benchmark, lambda: multi_ni.run(scale=BENCH_SCALE))
    record(out)
    # bandwidth-bound apps gain from a second NI at low bandwidth...
    for name in ("fft", "radix"):
        series = out.data[name]["low bw"]
        assert series[1] > 1.1 * series[0], name
    # ...latency-bound apps gain much less
    ws = out.data["water-sp"]["achievable bw"]
    assert ws[2] < 1.15 * ws[0]
