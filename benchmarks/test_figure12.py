"""Benchmark: regenerate Figure 12 — page-size sweep."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import figure12_page_size


def test_bench_figure12(benchmark):
    out = run_once(benchmark, lambda: figure12_page_size.run(scale=BENCH_SCALE))
    record(out)
    # Radix prefers the biggest page; several applications prefer small
    radix = out.data["radix"]
    assert radix["16KB"] > radix["1KB"]
    smaller_is_better = sum(
        1 for d in out.data.values() if d["1KB"] > d["16KB"]
    )
    assert smaller_is_better >= 4
