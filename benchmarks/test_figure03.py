"""Benchmark: regenerate Figure 3 (messages per processor per Mcycle)."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import figure03_messages


def test_bench_figure03(benchmark):
    out = run_once(benchmark, lambda: figure03_messages.run(scale=BENCH_SCALE))
    record(out)
    # heavy group beats light group at 4 procs/node
    assert out.data["barnes-rebuild"][4] > out.data["barnes-space"][4]
    assert out.data["radix"][4] > out.data["lu"][4]
