"""Benchmark: regenerate Table 2 (protocol event rates by clustering)."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import table02_events


def test_bench_table02(benchmark):
    out = run_once(benchmark, lambda: table02_events.run(scale=BENCH_SCALE))
    record(out)
    for name, per_ppn in out.data.items():
        # fetch coalescing on SMP nodes
        assert per_ppn[4]["page_fetches"] <= per_ppn[4]["page_faults"] + 1e-9, name
