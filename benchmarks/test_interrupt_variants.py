"""Benchmark: regenerate the Section 5 interrupt-delivery variants."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import interrupt_variants


def test_bench_uniprocessor_nodes(benchmark):
    out = run_once(
        benchmark, lambda: interrupt_variants.run_uniprocessor_nodes(scale=BENCH_SCALE)
    )
    record(out)
    for name, series in out.data.items():
        s = list(series.values())
        assert s[0] > s[-1], name  # interrupt cost matters there too


def test_bench_round_robin(benchmark):
    out = run_once(
        benchmark, lambda: interrupt_variants.run_round_robin(scale=BENCH_SCALE)
    )
    record(out)
    for name, d in out.data.items():
        # round-robin degrades with interrupt cost just like fixed delivery
        assert d["round_robin"][0] > d["round_robin"][-1], name
