"""Benchmark: regenerate Figure 11 — NI occupancy under AURC."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import figure06_ni_occupancy, figure11_aurc_occupancy


def test_bench_figure11(benchmark):
    out = run_once(benchmark, lambda: figure11_aurc_occupancy.run(scale=BENCH_SCALE))
    record(out)
    # multi-writer apps under AURC react strongly to occupancy, more so
    # than under HLRC
    hlrc = figure06_ni_occupancy.run(scale=BENCH_SCALE, apps=["water-nsq"])

    def slow(data, name):
        s = list(data[name].values())
        return (s[0] - s[-1]) / s[0]

    assert slow(out.data, "water-nsq") > slow(hlrc.data, "water-nsq")
