"""Benchmark: regenerate Figure 1 (ideal vs achievable speedups)."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import figure01_speedups


def test_bench_figure01(benchmark):
    out = run_once(benchmark, lambda: figure01_speedups.run(scale=BENCH_SCALE))
    record(out)
    # paper shape: a substantial gap for most applications
    gaps = [d["ideal"] - d["achievable"] for d in out.data.values()]
    assert sum(g > 1.0 for g in gaps) >= 7
