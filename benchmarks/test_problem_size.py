"""Benchmark: the problem-size study."""

from conftest import record, run_once

from repro.experiments import problem_size


def test_bench_problem_size(benchmark):
    out = run_once(benchmark, lambda: problem_size.run(scale=0.5))
    record(out)
    for name, speeds in out.data.items():
        scales = sorted(speeds)
        # speedup at the largest size beats the smallest
        assert speeds[scales[-1]]["speedup"] > speeds[scales[0]]["speedup"], name
        # byte intensity falls (or stays flat) as the problem grows
        assert (
            speeds[scales[-1]]["mb_per_mc"]
            <= speeds[scales[0]]["mb_per_mc"] * 1.35
        ), name
