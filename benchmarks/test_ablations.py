"""Benchmark: model ablations (DESIGN.md design-choice audit)."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import ablations


def test_bench_ablations(benchmark):
    out = run_once(benchmark, lambda: ablations.run(scale=BENCH_SCALE))
    record(out)
    for name, entry in out.data.items():
        # store-and-forward never speeds anything up
        assert entry["store-and-forward"] <= entry["base"] * 1.02, name
        assert entry["s&f @bw=0.25"] <= entry["base @bw=0.25"] * 1.02, name
        # removing the receive gate relaxes the interrupt extreme
        assert entry["no-gate @intr=10k"] >= entry["base @intr=10k"] * 0.98, name
