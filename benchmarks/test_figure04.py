"""Benchmark: regenerate Figure 4 (MBytes per processor per Mcycle)."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import figure04_bytes


def test_bench_figure04(benchmark):
    out = run_once(benchmark, lambda: figure04_bytes.run(scale=BENCH_SCALE))
    record(out)
    # Radix moves the most data at every clustering; FFT is in the heavy
    # group with uniprocessor nodes (its sub-page transpose chunks
    # coalesce within SMP nodes at reduced problem scale)
    for ppn in (1, 4, 8):
        assert max(out.data, key=lambda n: out.data[n][ppn]) == "radix"
    top4 = sorted(out.data, key=lambda n: out.data[n][1], reverse=True)[:4]
    assert "fft" in top4
