"""Benchmark: regenerate Figure 9 (+10) — interrupt cost sweep and its
correlation with interrupt-raising protocol events."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import correlations, figure09_interrupt


def test_bench_figure09(benchmark):
    out = run_once(benchmark, lambda: figure09_interrupt.run(scale=BENCH_SCALE))
    record(out)
    hurts = 0
    for name, series in out.data.items():
        s = list(series.values())
        full = (s[0] - s[-1]) / s[0]
        knee = (s[0] - s[2]) / s[0]  # up to 500/side
        if full > 0.05:
            hurts += 1
        # costs up to ~500/side hurt much less than the full range
        assert knee < full + 0.05, name
    # interrupt cost is important across the board (Ocean's anomaly may
    # exempt one application)
    assert hurts >= 8


def test_bench_figure10(benchmark):
    out = run_once(benchmark, lambda: correlations.run_interrupt_vs_fetches(scale=BENCH_SCALE))
    record(out)
    assert out.data["rank_correlation"] > 0.3
