"""Benchmark: the extension study — interrupts vs polling vs NI offload."""

from conftest import BENCH_SCALE, record, run_once

from repro.experiments import protocol_processing


def test_bench_protocol_processing(benchmark):
    out = run_once(benchmark, lambda: protocol_processing.run(scale=BENCH_SCALE))
    record(out)
    for name, entry in out.data.items():
        # interrupt-free modes are flat in interrupt cost
        for mode in ("polling-dedicated", "ni-offload"):
            series = entry[mode]
            assert abs(series[0] - series[-1]) / series[0] < 0.05, (name, mode)
        # the interrupt system degrades over the same sweep
        intr = entry["interrupt"]
        assert intr[0] > intr[-1], name
        # at the extreme, polling clearly wins
        assert entry["polling-dedicated"][-1] > intr[-1], name
