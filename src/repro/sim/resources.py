"""Contended resources: FCFS/priority servers, stores, and fluid queues.

Two families live here:

* **Event-based resources** (:class:`Resource`, :class:`PriorityResource`,
  :class:`Store`) — processes block on an acquire/get event and are woken
  in order.  Used where the *holder* does variable-length work while
  holding the resource (e.g. a CPU running an interrupt handler).

* **Fluid queues** (:class:`FluidQueue`) — an analytic FCFS single-server
  queue.  A request of ``service`` cycles arriving at time ``t`` departs at
  ``max(t, backlog_end) + service``; the caller simply sleeps for the
  returned latency.  Exact for FCFS work-conserving servers, and O(1) per
  request.  Used for buses, NI cores and links, where service time is known
  at arrival.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional, Tuple

import numpy as np

from repro.sim.primitives import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


class Resource:
    """A counted FCFS resource.

    ``yield resource.acquire()`` suspends until a slot is free; the caller
    must later call :meth:`release`.  Fairness is strict FIFO.
    """

    __slots__ = ("sim", "capacity", "_in_use", "_queue", "name", "_acquire_name")

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._acquire_name = f"{name}.acquire"
        self._in_use = 0
        self._queue: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def acquire(self) -> Event:
        """Return an event that succeeds when a slot is granted."""
        ev = Event(self.sim, name=self._acquire_name)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._queue.append(ev)
        return ev

    def release(self) -> None:
        """Free a slot, handing it to the next waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._queue:
            # Slot passes directly to the next waiter; _in_use unchanged.
            self._queue.popleft().succeed(self)
        else:
            self._in_use -= 1


class PriorityResource:
    """Like :class:`Resource` but waiters are served lowest-priority-first.

    Priorities model bus arbitration: the paper's memory bus grants, in
    decreasing priority, NI-outgoing, L2, write buffer, memory, NI-incoming.
    Ties break FIFO.
    """

    __slots__ = ("sim", "capacity", "_in_use", "_heap", "_seq", "name", "_acquire_name")

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._acquire_name = f"{name}.acquire"
        self._in_use = 0
        self._heap: List[Tuple[int, int, Event]] = []
        self._seq = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._heap)

    def acquire(self, priority: int = 0) -> Event:
        ev = Event(self.sim, name=self._acquire_name)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            heapq.heappush(self._heap, (priority, self._seq, ev))
            self._seq += 1
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._heap:
            _prio, _seq, ev = heapq.heappop(self._heap)
            ev.succeed(self)
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    Message queues and interrupt-dispatch queues are Stores: producers
    :meth:`put` items (never blocking — capacity limits are modelled by the
    NI's own back-pressure logic), consumers ``yield store.get()``.
    """

    __slots__ = ("sim", "_items", "_getters", "name", "_get_name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._get_name = f"{name}.get"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim, name=self._get_name)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev


class FluidQueue:
    """Analytic FCFS single-server queue (no events, O(1) per request).

    A request for ``service`` cycles arriving at ``sim.now`` is served
    starting at ``max(now, backlog_end)``; :meth:`latency` returns the
    total sojourn time (queueing + service) and advances the backlog.  The
    caller is expected to ``yield sim.timeout(latency)``.

    The queue also keeps utilization statistics so experiments can report
    bus/NI occupancy.

    Parameters
    ----------
    bytes_per_cycle:
        If given, :meth:`transfer` converts byte counts into service
        cycles at this bandwidth.
    """

    __slots__ = ("sim", "name", "bytes_per_cycle", "_free_at", "busy_cycles", "requests")

    def __init__(
        self,
        sim: "Simulator",
        name: str = "",
        bytes_per_cycle: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self._free_at: int = 0
        self.busy_cycles: int = 0
        self.requests: int = 0

    # ------------------------------------------------------------------ #
    def latency(self, service: float) -> int:
        """Enqueue a request of ``service`` cycles; return its sojourn time."""
        if service < 0:
            raise ValueError(f"negative service time {service!r}")
        if type(service) is int:
            service_i = service
        else:
            service_i = int(-(-service // 1))  # ceil
        now = self.sim.now
        start = now if now > self._free_at else self._free_at
        self._free_at = start + service_i
        self.busy_cycles += service_i
        self.requests += 1
        return self._free_at - now

    def latency_batch(self, services) -> np.ndarray:
        """Vectorized :meth:`latency` over a same-cycle batch of requests.

        Exactly equivalent to calling :meth:`latency` once per element in
        order (same ceil, same backlog accumulation); returns the per-
        request sojourn times as an int64 array.  Once the first request
        is enqueued the server stays backlogged for the rest of the
        batch, so the sojourns are a prefix sum of the service times
        offset by any pre-existing backlog.
        """
        svc = np.asarray(services)
        if svc.size == 0:
            return np.zeros(0, dtype=np.int64)
        if svc.min() < 0:
            raise ValueError("negative service time in batch")
        if svc.dtype.kind in "iu":
            svc = svc.astype(np.int64, copy=False)
        else:
            svc = np.ceil(svc).astype(np.int64)
        now = self.sim.now
        backlog = self._free_at - now
        if backlog < 0:
            backlog = 0
        sojourns = np.cumsum(svc) + backlog
        self._free_at = now + int(sojourns[-1])
        self.busy_cycles += int(svc.sum())
        self.requests += svc.size
        return sojourns

    def transfer(self, nbytes: int) -> int:
        """Enqueue a transfer of ``nbytes``; return its sojourn time."""
        if self.bytes_per_cycle is None:
            raise RuntimeError(f"fluid queue {self.name!r} has no bandwidth set")
        return self.latency(nbytes / self.bytes_per_cycle)

    def transfer_batch(self, nbytes) -> np.ndarray:
        """Vectorized :meth:`transfer` over a same-cycle batch of sizes."""
        if self.bytes_per_cycle is None:
            raise RuntimeError(f"fluid queue {self.name!r} has no bandwidth set")
        sizes = np.asarray(nbytes, dtype=np.float64)
        return self.latency_batch(sizes / self.bytes_per_cycle)

    def service_cycles(self, nbytes: int) -> int:
        """Pure service time for ``nbytes`` (no queueing, no state change)."""
        if self.bytes_per_cycle is None:
            raise RuntimeError(f"fluid queue {self.name!r} has no bandwidth set")
        return int(-(-nbytes / self.bytes_per_cycle // 1))

    # ------------------------------------------------------------------ #
    @property
    def backlog(self) -> int:
        """Cycles of queued work remaining as of ``sim.now``."""
        return max(0, self._free_at - self.sim.now)

    def utilization(self, elapsed: Optional[int] = None) -> float:
        """Fraction of time busy (vs ``elapsed`` or the whole run)."""
        span = elapsed if elapsed is not None else max(1, self.sim.now)
        return min(1.0, self.busy_cycles / span)

    def reset_stats(self) -> None:
        self.busy_cycles = 0
        self.requests = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FluidQueue({self.name!r}, backlog={self.backlog})"
