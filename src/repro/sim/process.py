"""Generator-coroutine processes.

A *process* wraps a Python generator.  Each ``yield`` hands the scheduler a
:class:`~repro.sim.primitives.Waitable` — or a bare non-negative ``int``,
shorthand for a timeout of that many cycles; when the waitable fires, the
generator is resumed with the waitable's value.  ``return value`` inside
the generator completes the process and triggers its :attr:`Process.done`
event with that value, so processes compose: one process can ``yield``
another to join it and collect its result.

Exceptions raised inside a process propagate out of :meth:`Simulator.run`
wrapped in :class:`ProcessCrash` — silent death of a protocol handler would
otherwise deadlock the simulated cluster in ways that are miserable to
debug.
"""

from __future__ import annotations

from heapq import heappush
from math import ceil
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.sim.primitives import Event, Timeout, Waitable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

#: shared argument tuple for plain-resume wakeups (``_step(None)``) —
#: one allocation for the whole run instead of one per suspension.
_RESUME_ARGS = (None,)


class ProcessCrash(RuntimeError):
    """An unhandled exception escaped a simulation process."""

    def __init__(self, process: "Process", exc: BaseException) -> None:
        super().__init__(f"process {process.name!r} crashed: {exc!r}")
        self.process = process
        self.exc = exc


class Process(Waitable):
    """A running simulation activity.

    Parameters
    ----------
    sim:
        The owning simulator.
    gen:
        The generator implementing the activity's behaviour.
    name:
        Optional label used in traces and crash reports.
    """

    __slots__ = ("sim", "gen", "name", "_done", "_finished", "_result", "_current", "daemon")

    def __init__(
        self, sim: "Simulator", gen: Iterator, name: str = "", daemon: bool = False
    ) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        #: daemon processes are ignored by the watchdog's deadlock check
        self.daemon = daemon
        # The completion event is materialized lazily: most processes are
        # never joined, and skipping the Event (and its f-string name)
        # for them is a measurable win at half a million spawns per sweep.
        self._done: Optional[Event] = None
        self._finished = False
        self._result: Any = None
        self._current: Optional[Waitable] = None
        sim._processes.add(self)
        # First step runs at the current time, after already-queued events.
        # _step is scheduled directly (not via the _resume wrapper), with
        # the calendar insert inlined: one call frame per resume is a
        # measurable cost at half a million spawns per sweep.
        when = sim.now
        buckets = sim._buckets
        bucket = buckets.get(when)
        if bucket is None:
            buckets[when] = [self._step, _RESUME_ARGS]
            heappush(sim._times, when)
        else:
            bucket.append(self._step)
            bucket.append(_RESUME_ARGS)
        sim._pending += 1

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> Event:
        """Event triggered with the generator's return value on completion."""
        ev = self._done
        if ev is None:
            ev = self._done = Event(self.sim, name=f"{self.name}.done")
            if self._finished:
                ev.succeed(self._result)
        return ev

    @property
    def finished(self) -> bool:
        return self._finished

    def _resume(self, value: Any) -> None:
        self._step(value=value)

    def _resume_exc(self, exc: BaseException) -> None:
        self._step(exc=exc)

    def _step(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self._current = None
            self.sim._processes.discard(self)
            self._finished = True
            self._result = stop.value
            if self._done is not None:
                self._done.succeed(stop.value)
            return
        except ProcessCrash:
            self.sim._processes.discard(self)
            raise
        except BaseException as err:
            self.sim._processes.discard(self)
            raise ProcessCrash(self, err) from err

        cls = target.__class__
        if cls is int:
            # A bare integer yield is a timeout: the hottest suspension
            # sites yield the delay itself, skipping the Timeout
            # allocation and its attribute loads entirely.  The calendar
            # insert is inlined (same bucket-append semantics as
            # Simulator.schedule) to drop the call frame and the *args
            # pack on the single hottest path in the whole simulator.
            self._current = None
            sim = self.sim
            if target < 0:
                self.sim.schedule(target, self._step, None)  # raises
            when = sim.now + target
            buckets = sim._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = [self._step, _RESUME_ARGS]
                heappush(sim._times, when)
            else:
                bucket.append(self._step)
                bucket.append(_RESUME_ARGS)
            sim._pending += 1
            return
        if cls is Timeout:
            # The hottest object yield; inlining Timeout._wait skips an
            # isinstance walk and a method dispatch per suspension.
            self._current = target
            delay = target.delay
            if delay < 0:
                self.sim.schedule(delay, self._step, None)  # raises
            if type(delay) is not int:
                delay = int(ceil(delay))
            sim = self.sim
            when = sim.now + delay
            buckets = sim._buckets
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = [self._step, _RESUME_ARGS]
                heappush(sim._times, when)
            else:
                bucket.append(self._step)
                bucket.append(_RESUME_ARGS)
            sim._pending += 1
            return
        if not isinstance(target, Waitable):
            raise ProcessCrash(
                self, TypeError(f"process yielded non-waitable {target!r}")
            )
        self._current = target
        target._wait(self)

    # Processes are themselves waitable: ``yield other_process`` joins it.
    def _wait(self, process: "Process") -> None:
        self.done._wait(process)

    def interrupt_with(self, exc: BaseException) -> None:
        """Throw ``exc`` into the process at the current time.

        Used sparingly (e.g. queue-overflow back-pressure).  The process
        must currently be suspended on a waitable; any value that waitable
        later delivers is ignored because generators can only be resumed
        once per suspension point.
        """
        if self.finished:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        self.sim.schedule_now(self._resume_exc, exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else "running"
        return f"Process({self.name!r}, {state})"
