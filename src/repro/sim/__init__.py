"""Discrete-event simulation kernel.

This package is the bottom-most substrate of the reproduction: a small,
deterministic discrete-event simulator sized for architectural simulation
in (integer) processor cycles.

Design highlights
-----------------
* **Deterministic scheduling.**  Events fire in ``(time, sequence)`` order,
  so two runs of the same configuration produce bit-identical results.
* **Generator coroutines.**  Simulated activities (processors, protocol
  handlers, NI firmware) are plain Python generators that ``yield``
  *waitables*: :class:`~repro.sim.primitives.Timeout`,
  :class:`~repro.sim.primitives.Event`, resource acquisitions, or other
  processes (join).
* **Fluid queues.**  Buses, network-interface cores and links are modelled
  with :class:`~repro.sim.resources.FluidQueue` — an *analytic* FCFS
  single-server queue that computes queueing delay in O(1) without
  generating per-byte events.  This is what makes a page-grain cluster
  simulation fast enough for full parameter sweeps in pure Python.

Quick example
-------------
>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> log = []
>>> def worker(name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker("b", 20))
>>> _ = sim.spawn(worker("a", 10))
>>> sim.run()
>>> log
[(10, 'a'), (20, 'b')]
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.primitives import AllOf, AnyOf, Event, Timeout, Waitable
from repro.sim.process import Process, ProcessCrash
from repro.sim.resources import FluidQueue, PriorityResource, Resource, Store
from repro.sim.tracing import NULL_TRACER, NullTracer, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "FluidQueue",
    "NULL_TRACER",
    "NullTracer",
    "PriorityResource",
    "Process",
    "ProcessCrash",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "Waitable",
]
