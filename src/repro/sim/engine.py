"""The event-calendar scheduler at the heart of the simulator.

The engine keeps a *bucketed calendar*: a dict mapping each pending
timestamp to a flat batch ``[fn, args, fn, args, ...]`` of callbacks
scheduled for that cycle, plus a small binary heap of the *distinct*
timestamps.  The SVM workloads schedule the overwhelming majority of
events a short, repeated set of delays ahead (handler costs, bus grants,
link hops), so many events share a cycle and insertion into an existing
bucket is a plain list append — O(1) instead of an O(log n) heap sift.
The heap only sees one entry per distinct timestamp, shrinking it by the
mean bucket occupancy; genuinely far-future events degrade gracefully to
ordinary heap behaviour.

Dispatch order is exactly the order the old ``(time, seq)`` heap
produced: within one timestamp, batch order *is* schedule order (there
is no cancellation API, and ``seq`` increased monotonically), and a
callback scheduling into the cycle currently being drained lands in a
fresh bucket that is dispatched immediately after the current batch —
precisely where the heap would have placed the higher-``seq`` entries.
Runs are therefore bit-identical to the heap engine.

Times are integer processor cycles.  Floating-point times are accepted
but rounded up, because every architectural cost in the reproduction is
expressed in whole cycles; rounding up keeps costs conservative and,
more importantly, keeps the calendar deterministic across platforms.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Set

from repro.sim.tracing import NULL_TRACER, Tracer


class SimulationError(RuntimeError):
    """Raised for scheduling misuse (negative delays, running backwards)."""


class SimulationStuckError(SimulationError):
    """The simulation can make no further progress.

    Raised by the :class:`Watchdog` in two situations:

    * **deadlock** — the event calendar drained while (non-daemon)
      processes remain blocked on waitables that can never fire;
    * **livelock** — events keep dispatching but simulated time stops
      advancing (e.g. a zero-delay self-rescheduling loop).

    ``blocked`` names the processes that were still alive, so protocol
    bugs surface as "these handlers never completed" instead of a silent
    return or an unbounded spin.
    """

    def __init__(self, message: str, blocked: tuple = ()) -> None:
        super().__init__(message)
        self.blocked = tuple(blocked)


#: default consecutive same-timestamp dispatches before livelock triggers.
#: Real bursts (barrier wakeups, interrupt cascades) are a few hundred
#: events; a million events with zero time progress is a spin.
DEFAULT_LIVELOCK_EVENTS = 1_000_000


@dataclass
class Watchdog:
    """Stuck-simulation detection policy for a :class:`Simulator`.

    ``deadlock`` checks cost nothing per event (one scan when the
    calendar drains); ``livelock_events`` adds a per-event counter, so it
    forces the general dispatch loop — enable it when the run can
    plausibly spin (fault injection, new protocol code), leave it
    ``None`` for the optimized hot path.
    """

    deadlock: bool = True
    #: consecutive events without time progress before raising, or
    #: ``None`` to disable livelock detection (keeps the fast path).
    livelock_events: Optional[int] = None


class Simulator:
    """A deterministic discrete-event scheduler.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.sim.tracing.Tracer` receiving a record per
        dispatched event.  Defaults to a no-op tracer.

    Attributes
    ----------
    now:
        Current simulation time in cycles.  Monotonically non-decreasing.
    """

    __slots__ = (
        "now",
        "_buckets",
        "_times",
        "_pending",
        "_dispatched",
        "tracer",
        "_running",
        "watchdog",
        "_processes",
    )

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        watchdog: Optional[Watchdog] = None,
    ) -> None:
        self.now: int = 0
        #: absolute time -> flat batch [fn, args, fn, args, ...]
        self._buckets: dict[int, list] = {}
        #: min-heap of the distinct times present in ``_buckets``
        self._times: list[int] = []
        self._pending: int = 0
        self._dispatched: int = 0
        self._running = False
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER
        self.watchdog: Optional[Watchdog] = watchdog
        #: live (unfinished) processes, maintained by Process itself
        self._processes: Set["Process"] = set()

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now.

        Integer delays (the overwhelmingly common case — every
        architectural cost is whole cycles) skip the ``math.ceil`` float
        round-trip; a non-negative delay also cannot schedule into the
        past, so the ``schedule_at`` range check is skipped too.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        when = self.now + (delay if type(delay) is int else int(math.ceil(delay)))
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [fn, args]
            heapq.heappush(self._times, when)
        else:
            bucket.append(fn)
            bucket.append(args)
        self._pending += 1

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``when``."""
        when_i = when if type(when) is int else int(math.ceil(when))
        if when_i < self.now:
            raise SimulationError(
                f"cannot schedule at {when_i} < now {self.now} (time runs forward)"
            )
        bucket = self._buckets.get(when_i)
        if bucket is None:
            self._buckets[when_i] = [fn, args]
            heapq.heappush(self._times, when_i)
        else:
            bucket.append(fn)
            bucket.append(args)
        self._pending += 1

    def schedule_now(self, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at the current time (after pending events)."""
        when = self.now
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [fn, args]
            heapq.heappush(self._times, when)
        else:
            bucket.append(fn)
            bucket.append(args)
        self._pending += 1

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events until the calendar drains.

        Parameters
        ----------
        until:
            Stop *before* dispatching any event later than this time; the
            clock is advanced to ``until`` if the simulation outlives it.
        max_events:
            Safety valve: raise :class:`SimulationError` after this many
            dispatches (catches accidental livelock in protocol code).

        Returns
        -------
        int
            The number of events dispatched by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        dispatched_before = self._dispatched
        trace = self.tracer
        wd = self.watchdog
        livelock_limit = wd.livelock_events if wd is not None else None

        if (
            until is None
            and max_events is None
            and not trace.enabled
            and livelock_limit is None
        ):
            # Hot path: drain-the-calendar with no deadline, no event
            # budget and tracing off (the tracer's flag is sampled here
            # once; only a callback mutating this tracer mid-run could
            # observe the difference).  Hot names are bound locally and
            # each iteration drains one whole bucket — one heap pop and
            # one dict pop per *timestamp*, then a branch-free sweep of
            # the flat [fn, args, ...] batch.
            times = self._times
            buckets = self._buckets
            pop = heapq.heappop
            dispatched = self._dispatched
            t = i = n = 0
            batch: list = []
            try:
                while times:
                    t = pop(times)
                    batch = buckets.pop(t)
                    self.now = t
                    i = 0
                    n = len(batch)
                    while i < n:
                        batch[i](*batch[i + 1])
                        i += 2
                    dispatched += n >> 1
            finally:
                self._running = False
                if i < n:
                    # A callback raised mid-batch: the failing event was
                    # consumed (popped-and-counted, heap semantics); put
                    # the rest back ahead of anything the batch scheduled
                    # into this same cycle.
                    dispatched += (i >> 1) + 1
                    rest = batch[i + 2 :]
                    if rest:
                        cur = buckets.get(t)
                        if cur is None:
                            buckets[t] = rest
                            heapq.heappush(times, t)
                        else:
                            buckets[t] = rest + cur
                self._dispatched = dispatched
                self._pending = sum(len(b) for b in buckets.values()) >> 1
            self._check_deadlock()
            return dispatched - dispatched_before

        times = self._times
        buckets = self._buckets
        stalled = 0  # consecutive dispatches without time progress
        t = i = n = 0
        batch = []
        try:
            while times:
                t = times[0]
                if until is not None and t > until:
                    self.now = int(until)
                    break
                heapq.heappop(times)
                batch = buckets.pop(t)
                i = 0
                n = len(batch)
                while i < n:
                    fn = batch[i]
                    args = batch[i + 1]
                    i += 2
                    self._pending -= 1
                    if livelock_limit is not None:
                        if t > self.now:
                            stalled = 0
                        else:
                            stalled += 1
                            if stalled > livelock_limit:
                                raise SimulationStuckError(
                                    f"livelock: {stalled} events dispatched at "
                                    f"t={self.now} without simulated-time "
                                    f"progress; live processes: "
                                    f"{self._live_process_names() or '(none)'}",
                                    blocked=self._live_process_names(),
                                )
                    self.now = t
                    self._dispatched += 1
                    if (
                        max_events is not None
                        and self._dispatched - dispatched_before > max_events
                    ):
                        raise SimulationError(f"exceeded max_events={max_events}")
                    if trace.enabled:
                        trace.record(t, "dispatch", getattr(fn, "__qualname__", repr(fn)))
                    fn(*args)
            else:
                if until is not None and until > self.now:
                    self.now = int(until)
        finally:
            self._running = False
            if i < n:
                # stopped mid-batch (max_events / livelock / callback
                # error): restore the undispatched remainder ahead of any
                # same-cycle events the batch scheduled.
                rest = batch[i:]
                cur = buckets.get(t)
                if cur is None:
                    buckets[t] = rest
                    heapq.heappush(times, t)
                else:
                    buckets[t] = rest + cur
        if until is None and not times:
            self._check_deadlock()
        return self._dispatched - dispatched_before

    # ------------------------------------------------------------------ #
    # watchdog support
    # ------------------------------------------------------------------ #
    def _live_process_names(self) -> tuple:
        return tuple(
            sorted(p.name or repr(p) for p in self._processes if not p.daemon)
        )

    def _check_deadlock(self) -> None:
        """Raise if the calendar drained while non-daemon processes remain.

        With no pending events, nothing can ever resume them — that is a
        true deadlock, not a transient.  Only runs when a watchdog with
        ``deadlock=True`` is installed, so bare simulators (tests,
        partial fixtures) keep the permissive drain-and-return contract.
        """
        wd = self.watchdog
        if wd is None or not wd.deadlock:
            return
        blocked = self._live_process_names()
        if blocked:
            raise SimulationStuckError(
                f"deadlock: event calendar drained at t={self.now} with "
                f"{len(blocked)} blocked process(es): {', '.join(blocked)}",
                blocked=blocked,
            )

    def step(self) -> bool:
        """Dispatch a single event.  Returns ``False`` if none is queued."""
        times = self._times
        if not times:
            return False
        t = times[0]
        batch = self._buckets[t]
        fn = batch[0]
        args = batch[1]
        if len(batch) > 2:
            # Later same-cycle arrivals append behind the remainder, so
            # leaving the shortened batch in place preserves order.
            del batch[:2]
        else:
            heapq.heappop(times)
            del self._buckets[t]
        self.now = t
        self._pending -= 1
        self._dispatched += 1
        fn(*args)
        return True

    def peek(self) -> Optional[int]:
        """Time of the next pending event, or ``None`` if none is queued."""
        return self._times[0] if self._times else None

    @property
    def pending(self) -> int:
        """Number of events currently queued."""
        return self._pending

    @property
    def dispatched(self) -> int:
        """Total number of events dispatched over the simulator's lifetime."""
        return self._dispatched

    # ------------------------------------------------------------------ #
    # conveniences re-exported from primitives / process
    # ------------------------------------------------------------------ #
    def timeout(self, delay: float) -> "Timeout":
        """A waitable that resumes the yielding process after ``delay``."""
        return Timeout(self, delay)

    def event(self) -> "Event":
        """A fresh one-shot :class:`~repro.sim.primitives.Event`."""
        return Event(self)

    def spawn(self, gen: Iterator, name: str = "", daemon: bool = False) -> "Process":
        """Launch ``gen`` as a simulation process at the current time.

        ``daemon`` processes are excluded from the watchdog's deadlock
        accounting (long-lived service loops that legitimately outlive
        the workload, like a dedicated protocol poller).
        """
        return Process(self, gen, name=name, daemon=daemon)


# Bound at module level (not per call) so the conveniences above resolve
# them with one global lookup on the hot path.
from repro.sim.primitives import Event, Timeout  # noqa: E402
from repro.sim.process import Process  # noqa: E402
