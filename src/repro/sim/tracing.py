"""Lightweight simulation tracing.

Tracing is off by default (a :class:`NullTracer` with ``enabled = False``)
so the hot dispatch loop pays a single attribute check.  Turn it on for
debugging protocol interleavings:

>>> from repro.sim import Simulator, Tracer
>>> tracer = Tracer(limit=1000)
>>> sim = Simulator(tracer=tracer)

Records are ``(time, kind, detail)`` tuples; higher layers (protocols,
NICs) may append their own kinds via :meth:`Tracer.record`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: when it happened, what kind, and free-form detail."""

    time: int
    kind: str
    detail: Any

    def __str__(self) -> str:
        return f"[{self.time:>12}] {self.kind:<18} {self.detail}"


class Tracer:
    """Collects :class:`TraceRecord` entries up to an optional limit."""

    __slots__ = ("enabled", "records", "limit", "kinds")

    def __init__(self, limit: Optional[int] = None, kinds: Optional[set] = None) -> None:
        self.enabled = True
        self.records: List[TraceRecord] = []
        self.limit = limit
        #: if non-None, only these kinds are recorded
        self.kinds = kinds

    def record(self, time: int, kind: str, detail: Any) -> None:
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.limit is not None and len(self.records) >= self.limit:
            self.disable()
            return
        self.records.append(TraceRecord(time, kind, detail))

    def disable(self) -> None:
        """Stop recording for good (until :meth:`clear`).

        Also drops the kinds filter, so callers that cached the tracer
        and call :meth:`record` directly fall out on the cheap
        ``enabled`` check instead of re-testing set membership per event.
        """
        self.enabled = False
        self.kinds = None

    def dump(self) -> str:
        """Human-readable rendering of the collected records."""
        return "\n".join(str(r) for r in self.records)

    def tail(self, n: int) -> List[TraceRecord]:
        """The most recent ``n`` records (context for failure artifacts)."""
        if n <= 0:
            return []
        return self.records[-n:]

    def clear(self) -> None:
        self.records.clear()
        self.enabled = True


class NullTracer(Tracer):
    """A tracer that never records anything (the default).

    Stateless, so it is a shared singleton: every ``NullTracer()`` call
    returns the same instance and bare simulators stop allocating one
    tracer (plus its empty record list) apiece.
    """

    __slots__ = ()

    _instance: Optional["NullTracer"] = None

    def __new__(cls) -> "NullTracer":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __init__(self) -> None:
        super().__init__(limit=0)
        self.enabled = False

    def record(self, time: int, kind: str, detail: Any) -> None:  # pragma: no cover
        return

    def clear(self) -> None:
        """A NullTracer never re-enables (it is shared across simulators)."""
        return


#: the process-wide shared no-op tracer
NULL_TRACER = NullTracer()
