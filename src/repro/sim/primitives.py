"""Waitable primitives: timeouts, one-shot events, and combinators.

Anything a process may ``yield`` implements the :class:`Waitable`
protocol — a single ``_wait(process)`` hook that arranges for
``process._resume(value)`` (or ``process._resume_exc(exc)``) to be called
when the condition is satisfied.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.process import Process


class Waitable:
    """Protocol base class for everything a process can ``yield``."""

    __slots__ = ()

    def _wait(self, process: "Process") -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class Timeout(Waitable):
    """Resume the waiting process after a fixed delay.

    Timeouts are single-use and single-waiter: each ``yield sim.timeout(d)``
    creates a fresh instance.
    """

    __slots__ = ("sim", "delay")

    def __init__(self, sim: "Simulator", delay: float) -> None:
        self.sim = sim
        self.delay = delay

    def _wait(self, process: "Process") -> None:
        self.sim.schedule(self.delay, process._step, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay})"


class Event(Waitable):
    """A one-shot event with a value (or an exception) and many waiters.

    Lifecycle: *pending* → ``succeed(value)`` or ``fail(exc)`` → *triggered*.
    Processes that wait on an already-triggered event resume immediately
    (at the current simulation time, in FIFO order with other pending
    callbacks).
    """

    __slots__ = ("sim", "_waiters", "_triggered", "_value", "_exc", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._waiters: List["Process"] = []
        self._triggered = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise RuntimeError(f"event {self.name!r} has no value yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event with ``value``, waking all waiters."""
        if self._triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        if waiters:
            # _step directly (not the _resume wrapper), with the calendar
            # insert inlined (same bucket-append semantics as
            # Simulator.schedule_now): saves a call frame and an *args
            # pack per wakeup on the hottest resume path.
            sim = self.sim
            when = sim.now
            args = (value,)
            bucket = sim._buckets.get(when)
            if bucket is None:
                bucket = sim._buckets[when] = []
                heappush(sim._times, when)
            for proc in waiters:
                bucket.append(proc._step)
                bucket.append(args)
            sim._pending += len(waiters)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception, thrown into all waiters."""
        if self._triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._exc = exc
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim.schedule_now(proc._resume_exc, exc)
        return self

    # -- waiting ---------------------------------------------------------
    def _wait(self, process: "Process") -> None:
        if self._triggered:
            if self._exc is not None:
                self.sim.schedule_now(process._resume_exc, self._exc)
            else:
                self.sim.schedule_now(process._step, self._value)
        else:
            self._waiters.append(process)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else f"pending({len(self._waiters)})"
        return f"Event({self.name!r}, {state})"


class AllOf(Waitable):
    """Resume when *all* of the given events have succeeded.

    The resume value is the list of the events' values in input order.
    If any constituent fails, the waiter receives that exception (once).
    """

    __slots__ = ("sim", "events")

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        self.sim = sim
        self.events = list(events)

    def _wait(self, process: "Process") -> None:
        remaining = sum(1 for e in self.events if not e.triggered)
        state = {"remaining": remaining, "failed": False}

        def finish() -> None:
            try:
                values = [e.value for e in self.events]
            except BaseException as exc:  # constituent failed
                process._resume_exc(exc)
            else:
                process._resume(values)

        if remaining == 0:
            self.sim.schedule_now(finish)
            return

        for ev in self.events:
            if ev.triggered:
                continue

            def on_done(_value: Any, _ev: Event = ev) -> None:
                if state["failed"]:
                    return
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    finish()

            def on_fail(exc: BaseException) -> None:
                if state["failed"]:
                    return
                state["failed"] = True
                process._resume_exc(exc)

            _subscribe(ev, on_done, on_fail)


class AnyOf(Waitable):
    """Resume when *any* of the given events triggers.

    The resume value is ``(index, value)`` of the first event to trigger.
    """

    __slots__ = ("sim", "events")

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        self.sim = sim
        self.events = list(events)

    def _wait(self, process: "Process") -> None:
        state = {"done": False}

        for idx, ev in enumerate(self.events):
            if ev.triggered and not state["done"]:
                state["done"] = True
                if ev._exc is not None:
                    self.sim.schedule_now(process._resume_exc, ev._exc)
                else:
                    self.sim.schedule_now(process._resume, (idx, ev._value))
                return

        for idx, ev in enumerate(self.events):

            def on_done(value: Any, _idx: int = idx) -> None:
                if state["done"]:
                    return
                state["done"] = True
                process._resume((_idx, value))

            def on_fail(exc: BaseException) -> None:
                if state["done"]:
                    return
                state["done"] = True
                process._resume_exc(exc)

            _subscribe(ev, on_done, on_fail)


class _CallbackWaiter:
    """Adapter making a pair of callbacks look like a Process to Event."""

    __slots__ = ("_on_value", "_on_exc")

    def __init__(self, on_value, on_exc) -> None:
        self._on_value = on_value
        self._on_exc = on_exc

    def _resume(self, value: Any) -> None:
        self._on_value(value)

    # Event wakeups schedule ``_step`` (the Process fast path); mirror it.
    def _step(self, value: Any = None) -> None:
        self._on_value(value)

    def _resume_exc(self, exc: BaseException) -> None:
        self._on_exc(exc)


def _subscribe(event: Event, on_value, on_exc) -> None:
    """Attach plain callbacks to an event (used by the combinators)."""
    event._wait(_CallbackWaiter(on_value, on_exc))  # type: ignore[arg-type]
