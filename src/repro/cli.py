"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available applications and experiments.
``run APP``
    Simulate one application and print the speedup and time breakdown.
``profile APP``
    Simulate with the metrics registry enabled and print per-resource
    utilization, the per-barrier-epoch cost breakdown, and the top-N
    protocol hotspots; ``--export FILE`` writes JSONL (or CSV by
    extension) via :mod:`repro.core.reporting`.
``sweep APP PARAM V1 V2 ...``
    Sweep one communication parameter for one application.
``experiment ID``
    Regenerate one of the paper's tables/figures (or an extension study).
``resume [SWEEP]``
    Continue a checkpointed sweep after a crash or Ctrl-C (bare
    ``resume`` lists every checkpoint with its progress).
``cache {stats,verify,clear}``
    Inspect, integrity-audit, or purge the persistent run cache
    (``results/.runcache/``).
``report [TARGET]``
    Query the columnar result store (:mod:`repro.core.store`,
    ``results/store.sqlite``): render a stored figure/table without
    re-simulating (``report figure01``), migrate committed outputs and
    cache records in (``report ingest``), compare model versions from
    history rows (``report diff --model-version 3 4``), show bench
    trends (``report trend``), or export tables (``report export``).
``fabric {start,worker,status,broker}``
    Distributed sweeps (:mod:`repro.core.fabric`): ``start`` shards a
    grid into leases under ``results/.fabric/<sweep>/`` and spawns
    workers, ``worker`` joins an existing sweep's claim loop, and
    ``status`` reports transport/broker/lease/worker progress.  Workers
    are crash-safe: fencing tokens keep a killed-or-paused worker from
    ever clobbering a successor's results.  ``broker`` serves the lease
    store over TCP (:mod:`repro.core.fabric_net`) so workers on *other
    machines* can join the same sweep (``--broker`` /
    ``REPRO_FABRIC_ADDR``); liveness for those workers is a
    broker-minted session id, and a vanished broker degrades the sweep
    to the local filesystem store instead of hanging it.

``sweep`` and ``experiment`` accept ``--jobs N`` to fan independent
simulation points across a process pool (0 = all cores) and
``--checkpoint [NAME]`` to journal completed points under
``results/.checkpoints/<NAME>/`` — a checkpointed run killed at any
instant resumes with ``python -m repro resume NAME`` and produces
bit-identical results; SIGINT/SIGTERM drain in-flight points and print
that resume hint instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.apps import APP_ORDER, app_names, get_app
from repro.core import ClusterConfig, run_simulation
from repro.core.reporting import format_table


def _experiment_registry() -> Dict[str, Callable]:
    from repro.experiments import (
        ablations,
        breakdowns,
        collectives,
        correlations,
        figure01_speedups,
        figure03_messages,
        figure04_bytes,
        figure05_host_overhead,
        figure06_ni_occupancy,
        figure07_io_bandwidth,
        figure09_interrupt,
        figure11_aurc_occupancy,
        figure12_page_size,
        figure13_clustering,
        interrupt_variants,
        microbench,
        multi_ni,
        problem_size,
        protocol_processing,
        rdma_regime,
        reliability,
        table02_events,
        table03_slowdowns,
        table04_attribution,
        table04_speedups,
    )

    return {
        "figure01": figure01_speedups.run,
        "table02": table02_events.run,
        "figure03": figure03_messages.run,
        "figure04": figure04_bytes.run,
        "figure05": figure05_host_overhead.run,
        "figure05b": correlations.run_host_vs_messages,
        "figure06": figure06_ni_occupancy.run,
        "figure07": figure07_io_bandwidth.run,
        "figure08": correlations.run_bandwidth_vs_bytes,
        "figure09": figure09_interrupt.run,
        "figure10": correlations.run_interrupt_vs_fetches,
        "figure11": figure11_aurc_occupancy.run,
        "table03": table03_slowdowns.run,
        "table04": table04_speedups.run,
        "figure12": figure12_page_size.run,
        "figure13": figure13_clustering.run,
        "section5-uninode": interrupt_variants.run_uniprocessor_nodes,
        "section5-roundrobin": interrupt_variants.run_round_robin,
        "section7-attribution": lambda scale=1.0, apps=None, jobs=None: (
            table04_attribution.run(scale=scale, jobs=jobs)
        ),
        "section10-processing": protocol_processing.run,
        "section10-multini": multi_ni.run,
        "problem-size": problem_size.run,
        "reliability": reliability.run,
        "rdma_regime": rdma_regime.run,
        "collectives": collectives.run,
        "ablations": ablations.run,
        "breakdowns": breakdowns.run,
        "microbench": lambda scale=1.0, apps=None, jobs=None: microbench.run(),
    }


def _jobs_type(text: str) -> int:
    """Parse ``--jobs``: a non-negative integer (0 = all cores)."""
    try:
        jobs = int(text)
        if jobs < 0:
            raise ValueError
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid --jobs value {text!r}: expected a non-negative integer "
            "(0 = all cores)"
        ) from None
    return jobs


def _probability(text: str) -> float:
    try:
        p = float(text)
        if not 0.0 <= p <= 1.0:
            raise ValueError
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid probability {text!r}: expected a number in [0, 1]"
        ) from None
    return p


def _add_jobs_option(parser: argparse.ArgumentParser, what: str) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs_type,
        default=None,
        help=f"worker processes for the {what} grid (default: REPRO_JOBS or 1; "
        "0 = all cores)",
    )


def _add_checkpoint_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint",
        nargs="?",
        const="",
        default=None,
        metavar="NAME",
        help="journal completed points for crash-safe resume "
        "(`repro resume NAME`); NAME defaults to one derived from the command",
    )


def _run_checkpointed(args: argparse.Namespace, auto_name: str, body):
    """Run ``body()`` under the sweep checkpoint requested by ``args``.

    Installs the checkpoint process-wide so every ``run_points`` grid the
    command triggers journals into it, records the original argv so
    ``repro resume`` can replay the command verbatim, and stamps the
    final status.  Without ``--checkpoint`` this is just ``body()``.
    """
    from repro.core.checkpoint import SweepCheckpoint
    from repro.core.executor import set_default_checkpoint

    if getattr(args, "checkpoint", None) is None:
        return body()
    name = args.checkpoint or auto_name
    cp = SweepCheckpoint(name)
    cp.open(
        meta={
            "argv": list(getattr(args, "_argv", [])),
            "resume_cmd": f"python -m repro resume {name}",
        }
    )
    set_default_checkpoint(cp)
    try:
        rc = body()
    except BaseException:
        set_default_checkpoint(None)
        raise
    set_default_checkpoint(None)
    cp.finalize("complete" if rc == 0 else "failed")
    return rc


def _add_fault_options(parser: argparse.ArgumentParser) -> None:
    g = parser.add_argument_group(
        "fault injection", "wire-level faults + reliable-delivery knobs"
    )
    g.add_argument("--drop-prob", type=_probability, default=0.0,
                   help="per-message drop probability")
    g.add_argument("--dup-prob", type=_probability, default=0.0,
                   help="per-message duplication probability")
    g.add_argument("--delay-spike-prob", type=_probability, default=0.0,
                   help="per-message delay-spike probability")
    g.add_argument("--fault-seed", type=int, default=7,
                   help="RNG seed for the fault injector")
    g.add_argument("--retry-timeout", type=int, default=100_000,
                   help="cycles before a missing deposit triggers retransmit")
    g.add_argument("--max-retries", type=int, default=16,
                   help="retransmit budget before the run aborts")


def _add_comm_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.5, help="problem-size multiplier")
    parser.add_argument("--protocol", choices=("hlrc", "aurc"), default="hlrc")
    parser.add_argument("--procs-per-node", type=int, default=4)
    parser.add_argument("--page-size", type=int, default=4096)
    parser.add_argument("--host-overhead", type=int, default=500)
    parser.add_argument("--io-bw", type=float, default=0.5, help="MB per MHz")
    parser.add_argument("--ni-occupancy", type=int, default=500)
    parser.add_argument("--interrupt-cost", type=int, default=500, help="per side")
    parser.add_argument(
        "--processing",
        choices=("interrupt", "polling-dedicated", "ni-offload"),
        default="interrupt",
    )
    # validated in CommParams/ClusterConfig __post_init__ so unknown
    # values get the one-line `error: unknown ...` convention
    parser.add_argument(
        "--comm-regime",
        default="baseline",
        help="communication regime: baseline | rdma",
    )
    parser.add_argument(
        "--collective",
        default="flat",
        help="inter-node barrier topology: flat | tree | dissemination",
    )
    parser.add_argument("--seed", type=int, default=42)


def _config_from(args: argparse.Namespace) -> ClusterConfig:
    from repro.net.faults import FaultParams

    faults = FaultParams(
        drop_prob=getattr(args, "drop_prob", 0.0),
        dup_prob=getattr(args, "dup_prob", 0.0),
        delay_spike_prob=getattr(args, "delay_spike_prob", 0.0),
        fault_seed=getattr(args, "fault_seed", 7),
        retry_timeout=getattr(args, "retry_timeout", 100_000),
        max_retries=getattr(args, "max_retries", 16),
    )
    return ClusterConfig(
        protocol=args.protocol,
        seed=args.seed,
        faults=faults,
        collective=getattr(args, "collective", "flat"),
    ).with_comm(
        procs_per_node=args.procs_per_node,
        page_size=args.page_size,
        host_overhead=args.host_overhead,
        io_bus_mb_per_mhz=args.io_bw,
        ni_occupancy=args.ni_occupancy,
        interrupt_cost=args.interrupt_cost,
        protocol_processing=args.processing,
        comm_regime=getattr(args, "comm_regime", "baseline"),
    )


def cmd_list(_args: argparse.Namespace) -> int:
    print("applications:")
    for name in app_names():
        print(f"  {name}")
    print("\nexperiments:")
    for name in _experiment_registry():
        print(f"  {name}")
    return 0


def _casts(caster: Callable, text: str) -> bool:
    try:
        caster(text)
        return True
    except ValueError:
        return False


def _check_app(app: str) -> Optional[str]:
    """One-line error message for an unknown application, else ``None``."""
    if app in APP_ORDER:
        return None
    return (
        f"unknown application {app!r} "
        f"(valid: {', '.join(app_names())})"
    )


def cmd_run(args: argparse.Namespace) -> int:
    err = _check_app(args.app)
    if err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    config = _config_from(args)
    if getattr(args, "verify", False):
        config = config.replace(verify=True)
    app = get_app(
        args.app, page_size=args.page_size, scale=args.scale, seed=args.seed
    )
    result = run_simulation(app, config)
    print(result.summary())
    rows = [
        [cat, cycles, f"{frac:.1%}"]
        for (cat, cycles), frac in zip(
            result.time_breakdown().items(), result.breakdown_fractions().values()
        )
        if cycles
    ]
    print()
    print(format_table(["category", "cycles", "share"], rows, title="Time breakdown"))
    if config.verify:
        print()
        print(_verify_verdict(args.app, result))
        if result.violations:
            return 1
    return 0


def _verify_verdict(label: str, result) -> str:
    """One-line oracle verdict for a verified run."""
    events = int(result.meta.get("verify.events", 0))
    n = len(result.violations)
    if not n:
        return f"verify OK: {label}: {events} protocol events checked, 0 violations"
    lines = [
        f"verify FAILED: {label}: {n} violation(s) in {events} protocol events"
    ]
    lines += [f"  - {v}" for v in result.violations[:10]]
    if n > 10:
        lines.append(f"  … and {n - 10} more")
    return "\n".join(lines)


def cmd_verify(args: argparse.Namespace) -> int:
    """Run the happens-before conformance oracle on an app or a replay."""
    if args.replay:
        from repro.verify.artifacts import (
            config_from_dict,
            load_artifact,
            trace_from_artifact,
        )

        payload = load_artifact(args.replay)
        config = config_from_dict(payload["config"]).replace(verify=True)
        app = trace_from_artifact(payload)
        label = f"replay {args.replay}"
    else:
        if not args.app:
            print("error: give an application name or --replay FILE", file=sys.stderr)
            return 2
        err = _check_app(args.app)
        if err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        config = _config_from(args).replace(verify=True)
        app = get_app(
            args.app, page_size=args.page_size, scale=args.scale, seed=args.seed
        )
        label = args.app
    result = run_simulation(app, config)
    verdict = _verify_verdict(label, result)
    if result.violations:
        print(verdict, file=sys.stderr)
        return 1
    print(verdict)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profiled run: bottleneck table, per-epoch breakdown, hotspots."""
    from repro.core import MetricsRegistry
    from repro.core.reporting import write_csv, write_jsonl

    err = _check_app(args.app)
    if err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    config = _config_from(args)
    app = get_app(
        args.app, page_size=args.page_size, scale=args.scale, seed=args.seed
    )
    registry = MetricsRegistry()
    result = run_simulation(app, config, metrics=registry)
    print(result.summary())

    util = result.utilization()
    ranked = sorted(util.items(), key=lambda kv: (-kv[1], kv[0]))
    rows = [
        [name, result.resource_busy.get(name, 0), f"{frac:.1%}"]
        for name, frac in ranked[: args.resources]
    ]
    print()
    print(
        format_table(
            ["resource", "busy cycles", "occupancy"],
            rows,
            title=f"Resource occupancy (top {min(args.resources, len(ranked))} "
            f"of {len(ranked)})",
        )
    )

    phases = result.phase_breakdown()
    if phases:
        cats = [
            cat
            for cat in result.time_breakdown()
            if any(p["cycles"].get(cat, 0) for p in phases)
        ]
        rows = [
            [p["label"], p["start"], p["end"]]
            + [f"{p['fractions'].get(cat, 0.0):.1%}" for cat in cats]
            for p in phases
        ]
        print()
        print(
            format_table(
                ["phase", "start", "end"] + cats,
                rows,
                title="Per-epoch cost breakdown (fractions of each epoch)",
            )
        )

    hotspots = result.hotspots(args.top)
    if hotspots:
        rows = [
            [name, cycles, count, f"{cycles / max(1, result.total_cycles):.2f}"]
            for name, cycles, count in hotspots
        ]
        print()
        print(
            format_table(
                ["hotspot", "cycles", "events", "cycles/run-cycle"],
                rows,
                title=f"Top {len(hotspots)} protocol hotspots",
            )
        )

    if args.export:
        writer = write_csv if args.export.endswith(".csv") else write_jsonl
        writer(args.export, [result])
        print(f"\nexported 1 record to {args.export}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.sweeps import sweep_comm_param

    err = _check_app(args.app)
    if err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    caster = float if args.param == "io_bus_mb_per_mhz" else int
    try:
        values = [caster(v) for v in args.values]
    except ValueError:
        bad = next(v for v in args.values if not _casts(caster, v))
        print(
            f"error: invalid {args.param} value {bad!r}: "
            f"expected {'a number' if caster is float else 'an integer'}",
            file=sys.stderr,
        )
        return 2
    base = _config_from(args)

    def body() -> int:
        from repro.core.executor import default_checkpoint

        results = sweep_comm_param(
            args.app, args.param, values, base=base, scale=args.scale, jobs=args.jobs
        )
        rows = [[v, round(r.speedup, 2)] for v, r in zip(values, results)]
        print(format_table([args.param, "speedup"], rows, title=f"{args.app} sweep"))
        cp = default_checkpoint()
        if cp is not None:
            print(f"\n{cp.provenance_note()}")
        return 0

    return _run_checkpointed(
        args, f"sweep-{args.app}-{args.param}-s{args.scale:g}", body
    )


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.common import attach_checkpoint_note

    registry = _experiment_registry()
    if args.id not in registry:
        print(f"unknown experiment {args.id!r}; see `repro list`", file=sys.stderr)
        return 2
    kwargs = {"scale": args.scale, "jobs": args.jobs}
    if args.apps:
        kwargs["apps"] = args.apps

    def body() -> int:
        from repro.core.store import ingest_artifact_quietly

        out = attach_checkpoint_note(registry[args.id](**kwargs))
        print(out.table_str())
        ingest_artifact_quietly(
            args.id,
            out.table_str(),
            data=out.data,
            scale=args.scale,
            title=out.title,
            source="cli",
        )
        return 0

    return _run_checkpointed(args, f"{args.id}-s{args.scale:g}", body)


def cmd_resume(args: argparse.Namespace) -> int:
    """Continue a checkpointed sweep by replaying its recorded command."""
    from repro.core.checkpoint import SweepCheckpoint, list_checkpoints
    from repro.core.executor import set_resume_annotation

    if not args.sweep:
        from repro.core.fabric import LeaseStore, sweep_status

        sweeps = list_checkpoints()
        if not sweeps:
            print("no checkpointed sweeps found")
            return 0
        rows = []
        for cp in sweeps:
            prog = cp.progress()
            # Fabric-managed sweeps get lease/owner columns; points whose
            # lease expired without an outcome are *orphaned* (reclaimable
            # work), not failed (work that ran and broke).
            leased = orphaned = "-"
            owners = "-"
            try:
                store = LeaseStore(cp.name)
            except ValueError:
                store = None
            if store is not None and store.exists:
                st = sweep_status(store)
                leased = st["leased"]
                # Broker-granted orphans (a remote worker's session went
                # quiet) are labeled apart: no local PID can explain them.
                orphaned = str(st["orphaned"])
                if st.get("broker_orphaned"):
                    orphaned += f" ({st['broker_orphaned']} broker)"
                owners = ",".join(st["owners"]) or "-"
            rows.append(
                [cp.name, prog["done"], prog["failed"], leased, orphaned,
                 owners, prog["status"]]
            )
        print(format_table(
            ["sweep", "done", "failed", "leased", "orphaned", "owners", "status"],
            rows, title="Checkpointed sweeps"))
        print("\nresume one with: python -m repro resume <sweep>")
        return 0

    try:
        cp = SweepCheckpoint(args.sweep)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not cp.exists:
        known = ", ".join(c.name for c in list_checkpoints()) or "none"
        print(
            f"error: no checkpoint named {args.sweep!r} (known: {known})",
            file=sys.stderr,
        )
        return 2
    argv = cp.meta().get("argv")
    if not isinstance(argv, list) or not argv:
        print(
            f"error: checkpoint {args.sweep!r} records no replayable command "
            "(it was created programmatically; re-run its driver instead)",
            file=sys.stderr,
        )
        return 2
    argv = [str(a) for a in argv]
    print(f"resuming sweep '{cp.name}': repro {' '.join(argv)}\n")
    replay = build_parser().parse_args(argv)
    replay._argv = argv
    if hasattr(replay, "checkpoint"):
        replay.checkpoint = cp.name  # pin, in case the name was auto-derived
    if args.jobs is not None and hasattr(replay, "jobs"):
        replay.jobs = args.jobs
    set_resume_annotation(True)
    try:
        return _dispatch(replay)
    finally:
        set_resume_annotation(False)


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.core import runcache
    from repro.core.sweeps import clear_caches

    cache = runcache.disk_cache()
    if args.action == "stats":
        if cache is None:
            print("disk cache disabled (REPRO_DISK_CACHE=0)")
            return 0
        stats = cache.stats()
        print(f"cache root:    {stats['root']}")
        print(f"entries:       {stats['entries']}")
        print(f"size:          {stats['bytes'] / (1 << 20):.2f} MiB")
        print(f"model version: {stats['model_version']}")
        print(f"in quarantine: {stats['in_quarantine']}")
        return 0
    if args.action == "verify":
        if cache is None:
            print("disk cache disabled (REPRO_DISK_CACHE=0); nothing to verify")
            return 0
        report = cache.verify()
        print(f"cache root:  {report['root']}")
        print(f"ok:          {report['ok']}")
        print(f"stale:       {report['stale']} (older model/format; left in place)")
        print(f"quarantined: {report['quarantined']}")
        for name in report["quarantined_files"]:
            print(f"  -> {report['quarantine_dir']}/{name}")
        if report["quarantined"]:
            print(
                "\ncorrupt records were moved aside and will be recomputed "
                "on their next use"
            )
        return 0
    # clear
    if cache is None:
        clear_caches()
        print("disk cache disabled; cleared in-memory caches only")
        return 0
    removed = cache.clear()
    clear_caches()
    print(f"removed {removed} cached run(s) from {cache.root}")
    return 0


#: bench-history keys worth printing per benchmark kind (mirrors the
#: gate/warn tables in scripts/bench_compare.py)
_TREND_KEYS = {
    "sweep": ("serial_cold_s", "parallel_cold_s", "parallel_warm_s"),
    "engine": ("optimized_ns_per_event", "reference_ns_per_event"),
}

#: report actions; any other target is an experiment id to render
_REPORT_ACTIONS = ("list", "stats", "ingest", "diff", "trend", "speedups", "export")


def _report_render(store, args: argparse.Namespace) -> int:
    """Serve one experiment's table from store rows — zero simulation."""
    artifact = store.artifact(args.target, scale=args.scale)
    if artifact is None:
        at = f" at scale {args.scale:g}" if args.scale is not None else ""
        print(
            f"error: no stored render of {args.target!r}{at}; generate one "
            f"with `repro experiment {args.target}` or migrate committed "
            "outputs with `repro report ingest --results results --scale 1`",
            file=sys.stderr,
        )
        return 1
    print(artifact["text"])
    return 0


def _report_ingest(store, args: argparse.Namespace) -> int:
    """Migrate committed results/*.txt|json pairs and/or the run cache."""
    if not args.results and not args.runcache:
        print(
            "error: nothing to ingest — give --results DIR and/or --runcache",
            file=sys.stderr,
        )
        return 2
    ingested = 0
    if args.results:
        import json as _json
        import pathlib

        results_dir = pathlib.Path(args.results)
        if not results_dir.is_dir():
            print(f"error: no such directory {results_dir}", file=sys.stderr)
            return 2
        known = set(_experiment_registry())
        for txt_path in sorted(results_dir.glob("*.txt")):
            exp_id = txt_path.stem
            if exp_id not in known:
                continue  # ALL.txt, stray notes...
            data = None
            json_path = txt_path.with_suffix(".json")
            if json_path.is_file():
                try:
                    data = _json.loads(json_path.read_text(encoding="utf-8"))
                except ValueError:
                    data = None
            store.ingest_artifact(
                exp_id,
                txt_path.read_text(encoding="utf-8").rstrip("\n"),
                data=data,
                scale=args.scale,
                source=f"migrated:{results_dir}",
            )
            ingested += 1
            print(f"  artifact {exp_id} <- {txt_path}")
    migrated_runs = 0
    if args.runcache:
        from repro.core import runcache

        cache = runcache.disk_cache()
        if cache is None:
            print("error: disk cache disabled (REPRO_DISK_CACHE=0)", file=sys.stderr)
            return 2
        entries = []
        for path in cache.entries():
            status, result = cache._classify(path)
            if status == "ok" and result is not None:
                entries.append((path.stem, result, args.scale))
        migrated_runs = store.ingest_results(entries, sweep="runcache-migration")
        print(
            f"  run cache: {migrated_runs} new run(s) from "
            f"{len(entries)} readable record(s) in {cache.root}"
        )
    print(
        f"ingested {ingested} artifact(s), {migrated_runs} run(s) "
        f"-> {store.path}"
    )
    return 0


def _report_diff(store, args: argparse.Namespace) -> int:
    if not args.model_version:
        print(
            "error: diff needs --model-version OLD NEW", file=sys.stderr
        )
        return 2
    old, new = args.model_version
    report = store.diff_model_versions(old, new)
    if report["golden"]:
        rows = [
            [g["tag"], g["status"], g["old_cycles"] or "-", g["new_cycles"] or "-"]
            for g in report["golden"]
        ]
        print(format_table(
            ["grid point", "digest", f"cycles v{old}", f"cycles v{new}"],
            rows, title=f"Golden digests: model v{old} vs v{new}"))
        changed = sum(1 for g in report["golden"] if g["status"] != "same")
        print(f"\n{changed} of {len(report['golden'])} digest(s) differ")
    else:
        print(f"no golden history for model versions {old}/{new}")
    if report["speedups"]:
        rows = []
        for s in report["speedups"]:
            delta = "-"
            if s["old_mean"] and s["new_mean"]:
                delta = f"{(s['new_mean'] - s['old_mean']) / s['old_mean']:+.1%}"
            rows.append([
                s["app"], s["protocol"] or "-",
                "-" if s["old_mean"] is None else round(s["old_mean"], 2),
                "-" if s["new_mean"] is None else round(s["new_mean"], 2),
                delta, s["old_points"], s["new_points"],
            ])
        print()
        print(format_table(
            ["app", "protocol", f"mean v{old}", f"mean v{new}", "delta",
             f"runs v{old}", f"runs v{new}"],
            rows, title="Mean speedups per (app, protocol)"))
    return 0


def _report_trend(store, args: argparse.Namespace) -> int:
    trend = store.bench_trend(args.kind, last=args.last)
    if not trend:
        print(f"no bench history of kind {args.kind!r} in {store.path}")
        return 0
    keys = [
        k for k in _TREND_KEYS.get(args.kind, ())
        if any(isinstance(r["payload"].get(k), (int, float)) for r in trend)
    ]
    rows = []
    for r in trend:
        import time as _time

        stamp = _time.strftime(
            "%Y-%m-%d %H:%M", _time.gmtime(r["recorded_unix"] or 0)
        )
        rows.append(
            [r["id"], stamp, r["model_version"], r["source"] or "-"]
            + [
                "-" if not isinstance(r["payload"].get(k), (int, float))
                else round(r["payload"][k], 4)
                for k in keys
            ]
        )
    print(format_table(
        ["row", "recorded (UTC)", "model", "source"] + list(keys),
        rows, title=f"Bench history: {args.kind} (last {len(trend)})"))
    return 0


def _report_speedups(store, args: argparse.Namespace) -> int:
    rows_data = store.speedups(
        app=args.app, protocol=args.protocol, scale=args.scale
    )
    if not rows_data:
        print("no matching runs in the store")
        return 0
    rows = [
        [r["app"], r["protocol"], "-" if r["scale"] is None else r["scale"],
         round(r["speedup"], 2), round(r["ideal_speedup"], 2),
         r["fidelity"], r["key"][:12]]
        for r in rows_data
    ]
    print(format_table(
        ["app", "protocol", "scale", "speedup", "ideal", "fidelity", "key"],
        rows, title=f"Stored speedups ({len(rows)} run(s))"))
    return 0


def _report_export(store, args: argparse.Namespace) -> int:
    if not args.out:
        print("error: export needs --out FILE (.csv, .jsonl or .parquet)",
              file=sys.stderr)
        return 2
    if args.out.endswith(".parquet"):
        n = store.export_parquet(args.out, table=args.table)
    elif args.out.endswith(".csv"):
        n = store.export_csv(args.out, table=args.table)
    else:
        n = store.export_jsonl(args.out, table=args.table)
    print(f"exported {n} row(s) from {args.table} to {args.out}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Query the columnar result store (figures, history, exports)."""
    from repro.core.store import result_store

    store = result_store()
    if store is None:
        print("error: result store disabled (REPRO_RESULT_STORE=0)",
              file=sys.stderr)
        return 2
    target = args.target or "list"
    try:
        if target == "list":
            artifacts = store.artifact_ids()
            if artifacts:
                rows = [
                    [exp_id, "-" if scale is None else scale, n]
                    for exp_id, scale, n in artifacts
                ]
                print(format_table(["experiment", "scale", "renders"], rows,
                                   title="Stored experiment artifacts"))
            else:
                print("no stored experiment artifacts")
            st = store.stats()
            print(
                f"\n{st['runs']} run(s), {st['bench_rows']} bench row(s), "
                f"{st['golden_rows']} golden row(s) in {st['path']} "
                f"(model versions: "
                f"{', '.join(map(str, st['model_versions'])) or 'none'})"
            )
            print("\nrender one with: python -m repro report <experiment>")
            return 0
        if target == "stats":
            for k, v in store.stats().items():
                print(f"{k:>15}: {v}")
            return 0
        if target == "ingest":
            return _report_ingest(store, args)
        if target == "diff":
            return _report_diff(store, args)
        if target == "trend":
            return _report_trend(store, args)
        if target == "speedups":
            return _report_speedups(store, args)
        if target == "export":
            return _report_export(store, args)
        return _report_render(store, args)
    except RuntimeError as exc:  # SchemaMismatchError, missing pyarrow...
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _fabric_addr(args: argparse.Namespace) -> Optional[str]:
    """Broker address from ``--broker`` > ``REPRO_FABRIC_ADDR`` > none."""
    import os

    return getattr(args, "broker", None) or os.environ.get("REPRO_FABRIC_ADDR")


def cmd_fabric(args: argparse.Namespace) -> int:
    """Distributed sweeps: lease store + fenced workers (repro.core.fabric)."""
    from repro.core.executor import Point, PointFailure
    from repro.core.fabric import (
        FabricCoordinator,
        FabricTransportError,
        FabricWorker,
        resolve_ttl,
        sweep_status,
    )
    from repro.core.fabric_net import make_lease_store

    if args.action == "broker":
        return _cmd_fabric_broker(args)

    if args.action == "worker":
        try:
            ttl_s = resolve_ttl(args.ttl)
            store = make_lease_store(args.sweep, addr=_fabric_addr(args))
            worker = FabricWorker(
                args.sweep, worker_id=args.id, ttl_s=ttl_s, store=store
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            grid_ready = worker.store.exists
        except FabricTransportError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not grid_ready:
            print(
                f"error: no fabric sweep {args.sweep!r} "
                f"(expected a grid at {worker.store.grid_path}); "
                "start one with `repro fabric start`",
                file=sys.stderr,
            )
            return 2
        stats = worker.run()
        note = " (broker lost: drained cleanly)" if stats.get("broker_lost") else ""
        print(
            f"worker {worker.worker_id}: {stats['computed']} computed, "
            f"{stats['failed']} failed, {stats['stolen']} stolen, "
            f"{stats['fenced']} fenced mid-run, "
            f"{stats['rejected']} stale write(s) rejected{note}"
        )
        return 0

    if args.action == "status":
        return _cmd_fabric_status(args)

    # start
    bad = [a for a in args.apps if _check_app(a)]
    if bad:
        print(f"error: {_check_app(bad[0])}", file=sys.stderr)
        return 2
    config = _config_from(args)
    points = [Point(app, args.scale, config) for app in args.apps]
    name = args.name or f"fabric-{'-'.join(args.apps)}-s{args.scale:g}"
    try:
        ttl_s = resolve_ttl(args.ttl)
        store = make_lease_store(name, addr=_fabric_addr(args))
        coordinator = FabricCoordinator(
            name, points, n_workers=args.workers, ttl_s=ttl_s, store=store
        )
        summary = coordinator.run()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = []
    for point, result in zip(points, summary["results"]):
        if isinstance(result, PointFailure):
            rows.append([point.app, "FAILED", result.error.splitlines()[0][:50]])
        else:
            rows.append([point.app, f"{result.speedup:.2f}", ""])
    print(format_table(["app", "speedup", "error"], rows,
                       title=f"fabric sweep '{name}' (scale {args.scale:g})"))
    try:
        st = sweep_status(coordinator.store)
    except FabricTransportError:
        print("\n(broker unreachable for the final status roll-up)")
        return 1 if summary["failures"] else 0
    transport = summary.get("transport", "fs")
    if summary.get("degraded"):
        transport = f"{transport}, degraded to {summary['degraded']}"
    print(
        f"\n{st['done']}/{st['total']} done, {st['failed']} failed; "
        f"{st['steals']} lease steal(s), {st['rejections']} stale write(s) "
        f"rejected; workers seen: {st['workers_seen']}; "
        f"transport: {transport}"
    )
    return 1 if summary["failures"] else 0


def _cmd_fabric_broker(args: argparse.Namespace) -> int:
    """``repro fabric broker``: serve leases over TCP until signalled."""
    import signal
    import threading

    from repro.core.fabric_net import FabricBroker, parse_addr

    try:
        host, port = parse_addr(args.addr)
        broker = FabricBroker(
            host, port, root=args.root, session_ttl_s=args.session_ttl
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    broker.start()
    print(
        f"fabric broker listening on {broker.addr} "
        f"(state under {broker.root}, session TTL {broker.session_ttl_s:g}s); "
        "point workers at it with REPRO_FABRIC_ADDR or --broker",
        flush=True,
    )
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        broker.stop()
    print("fabric broker stopped")
    return 0


def _cmd_fabric_status(args: argparse.Namespace) -> int:
    """``repro fabric status``: transport/broker/lease/worker roll-up."""
    import time as _time

    from repro.core.fabric import (
        FabricTransportError,
        LeaseStore,
        list_fabric_sweeps,
        sweep_status,
    )
    from repro.core.fabric_net import RemoteLeaseStore, query_broker

    addr = _fabric_addr(args)
    stores: list = []
    if addr:
        try:
            names = query_broker(addr)["sweeps"]
            stores = [
                RemoteLeaseStore(args.sweep or name, addr)
                for name in ([args.sweep] if args.sweep else names)
            ]
        except (FabricTransportError, ValueError) as exc:
            print(
                f"broker at {addr} unreachable ({exc}); "
                "showing the local filesystem view"
            )
            addr = None
    if not addr:
        stores = [LeaseStore(args.sweep)] if args.sweep else list_fabric_sweeps()
    try:
        stores = [s for s in stores if s.exists]
    except FabricTransportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not stores:
        print("no fabric sweeps found")
        return 0
    rows = []
    statuses = []
    for store in stores:
        st = sweep_status(store)
        statuses.append(st)
        if st["transport"] == "tcp":
            reach = "up" if store.reachable() else "DOWN"
            broker_col = f"{st['broker']} ({reach})"
        else:
            broker_col = "-"
        orphaned = str(st["orphaned"])
        if st["broker_orphaned"]:
            orphaned += f" ({st['broker_orphaned']} broker)"
        rows.append([
            st["sweep"], st["transport"], broker_col,
            st["total"], st["done"], st["failed"],
            st["leased"], orphaned, st["unclaimed"],
            f"{st['workers_alive']}/{st['workers_seen']}",
            st["steals"], st["rejections"],
        ])
    print(format_table(
        ["sweep", "transport", "broker", "total", "done", "failed",
         "leased", "orphaned", "unclaimed", "workers", "steals", "rejected"],
        rows, title="Fabric sweeps"))
    if args.sweep:
        now = _time.time()
        leases = stores[0].leases()
        if leases:
            lease_rows = [
                [lease.key[:12], lease.worker, lease.token, lease.status,
                 "expired" if (lease.status == "held"
                               and lease.reclaimable(now))
                 else f"{max(0.0, lease.expires_unix - now):.0f}s"]
                for lease in leases
            ]
            print()
            print(format_table(
                ["point", "owner", "token", "status", "ttl"],
                lease_rows, title="Leases"))
        workers = statuses[0]["workers"]
        if workers:
            worker_rows = []
            for rec in workers:
                beat = rec.get("beat_unix")
                age = rec.get("beat_age_s")
                if age is None and isinstance(beat, (int, float)):
                    age = max(0.0, now - float(beat))
                worker_rows.append([
                    rec.get("worker", "?"),
                    rec.get("session") or "-",
                    f"{age:.1f}s" if age is not None else "-",
                    "yes" if rec.get("alive") else "no",
                    rec.get("phase", "-"),
                ])
            print()
            print(format_table(
                ["worker", "session", "last beat", "alive", "phase"],
                worker_rows, title="Workers"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SVM cluster simulator (Bilas & Singh SC'97 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list applications and experiments")

    p_run = sub.add_parser("run", help="simulate one application")
    p_run.add_argument("app")
    p_run.add_argument(
        "--verify",
        action="store_true",
        help="run the happens-before conformance oracle (exit 1 on violations)",
    )
    _add_comm_options(p_run)
    _add_fault_options(p_run)

    p_verify = sub.add_parser(
        "verify",
        help="run the conformance oracle on an app or replay a violation artifact",
    )
    p_verify.add_argument("app", nargs="?", default=None)
    p_verify.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="replay a results/violations/ artifact instead of a named app",
    )
    _add_comm_options(p_verify)
    _add_fault_options(p_verify)

    p_prof = sub.add_parser(
        "profile",
        help="profiled run: resource occupancy, per-epoch breakdown, hotspots",
    )
    p_prof.add_argument("app")
    p_prof.add_argument(
        "--top", type=int, default=10, help="protocol hotspots to show"
    )
    p_prof.add_argument(
        "--resources", type=int, default=20, help="resource rows to show"
    )
    p_prof.add_argument(
        "--export",
        default=None,
        metavar="FILE",
        help="write the full record to FILE (.csv for CSV, else JSONL)",
    )
    _add_comm_options(p_prof)
    _add_fault_options(p_prof)

    p_sweep = sub.add_parser("sweep", help="sweep one communication parameter")
    _add_jobs_option(p_sweep, "sweep")
    _add_checkpoint_option(p_sweep)
    p_sweep.add_argument("app")
    p_sweep.add_argument(
        "param",
        choices=(
            "host_overhead",
            "io_bus_mb_per_mhz",
            "ni_occupancy",
            "interrupt_cost",
            "page_size",
            "procs_per_node",
        ),
    )
    p_sweep.add_argument("values", nargs="+")
    _add_comm_options(p_sweep)
    _add_fault_options(p_sweep)

    p_exp = sub.add_parser("experiment", help="regenerate a table/figure")
    p_exp.add_argument("id")
    p_exp.add_argument("--scale", type=float, default=0.5)
    p_exp.add_argument("--apps", nargs="*", default=None)
    _add_jobs_option(p_exp, "experiment")
    _add_checkpoint_option(p_exp)

    p_res = sub.add_parser(
        "resume", help="continue a checkpointed sweep (bare: list checkpoints)"
    )
    p_res.add_argument(
        "sweep", nargs="?", default=None, help="sweep name under results/.checkpoints/"
    )
    _add_jobs_option(p_res, "resumed")

    p_cache = sub.add_parser(
        "cache", help="inspect, integrity-audit, or purge the persistent run cache"
    )
    p_cache.add_argument("action", choices=("stats", "verify", "clear"))

    p_rep = sub.add_parser(
        "report",
        help="query the columnar result store: render stored figures, "
        "diff model versions, bench trends, exports (no simulation)",
    )
    p_rep.add_argument(
        "target",
        nargs="?",
        default=None,
        help="experiment id to render from store rows (e.g. figure01), or "
        f"an action: {', '.join(_REPORT_ACTIONS)} (default: list)",
    )
    p_rep.add_argument(
        "--scale", type=float, default=None,
        help="problem scale to select / tag (render, ingest, speedups)",
    )
    p_rep.add_argument(
        "--results", default=None, metavar="DIR",
        help="ingest: directory of committed <experiment>.txt/.json outputs",
    )
    p_rep.add_argument(
        "--runcache", action="store_true",
        help="ingest: migrate readable run-cache records into the store",
    )
    p_rep.add_argument(
        "--model-version", nargs=2, type=int, default=None,
        metavar=("OLD", "NEW"), help="diff: the two model versions to compare",
    )
    p_rep.add_argument(
        "--kind", choices=sorted(_TREND_KEYS), default="sweep",
        help="trend: bench history kind (default: sweep)",
    )
    p_rep.add_argument(
        "--last", type=int, default=10, help="trend: rows to show (default 10)"
    )
    p_rep.add_argument("--app", default=None, help="speedups: filter by app")
    p_rep.add_argument(
        "--protocol", choices=("hlrc", "aurc"), default=None,
        help="speedups: filter by protocol",
    )
    p_rep.add_argument(
        "--out", default=None, metavar="FILE",
        help="export: output file (.csv, .jsonl, or .parquet with pyarrow)",
    )
    p_rep.add_argument(
        "--table", default="runs",
        help="export: store table to export (default: runs)",
    )

    p_fab = sub.add_parser(
        "fabric",
        help="distributed sweeps: leased work queue with fencing tokens",
    )
    fab_sub = p_fab.add_subparsers(dest="action", required=True)

    def _add_broker_option(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--broker", default=None, metavar="HOST:PORT",
            help="lease broker address for multi-machine sweeps (default: "
            "$REPRO_FABRIC_ADDR, else the local filesystem store)",
        )

    p_fab_start = fab_sub.add_parser(
        "start",
        help="shard a grid into leases, spawn workers, run to completion",
    )
    p_fab_start.add_argument("apps", nargs="+", help="applications to sweep")
    p_fab_start.add_argument(
        "--name", default=None,
        help="fabric sweep name (default: derived from apps and scale)",
    )
    p_fab_start.add_argument(
        "--workers", type=int, default=2,
        help="worker subprocesses to spawn (the coordinator also works inline, "
        "so 0 degrades to a serial sweep)",
    )
    p_fab_start.add_argument(
        "--ttl", type=float, default=None,
        help="lease TTL in seconds before an unrenewed point is stolen "
        "(default: $REPRO_FABRIC_TTL_S, else 30)",
    )
    _add_broker_option(p_fab_start)
    _add_comm_options(p_fab_start)
    _add_fault_options(p_fab_start)

    p_fab_worker = fab_sub.add_parser(
        "worker", help="join an existing fabric sweep's claim loop"
    )
    p_fab_worker.add_argument("sweep", help="sweep name under results/.fabric/")
    p_fab_worker.add_argument(
        "--ttl", type=float, default=None,
        help="lease TTL in seconds (default: $REPRO_FABRIC_TTL_S, else 30)",
    )
    p_fab_worker.add_argument("--id", default=None,
                              help="worker id (default: derived from the PID)")
    _add_broker_option(p_fab_worker)

    p_fab_status = fab_sub.add_parser(
        "status", help="lease/worker progress for fabric sweeps"
    )
    p_fab_status.add_argument("sweep", nargs="?", default=None)
    _add_broker_option(p_fab_status)

    p_fab_broker = fab_sub.add_parser(
        "broker",
        help="serve leases/fencing tokens over TCP for multi-machine sweeps",
    )
    p_fab_broker.add_argument(
        "--addr", default="127.0.0.1:7341", metavar="HOST:PORT",
        help="listen address (port 0 picks a free port; default "
        "127.0.0.1:7341 — use 0.0.0.0:PORT to serve other machines)",
    )
    p_fab_broker.add_argument(
        "--root", default=None, metavar="DIR",
        help="fabric state directory (default: $REPRO_FABRIC_DIR, "
        "else results/.fabric)",
    )
    p_fab_broker.add_argument(
        "--session-ttl", type=float, default=None,
        help="seconds of silence before a client session counts as dead "
        "(default: $REPRO_FABRIC_SESSION_TTL_S, else 15)",
    )

    return parser


def _dispatch(args: argparse.Namespace) -> int:
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "verify": cmd_verify,
        "profile": cmd_profile,
        "sweep": cmd_sweep,
        "experiment": cmd_experiment,
        "resume": cmd_resume,
        "cache": cmd_cache,
        "report": cmd_report,
        "fabric": cmd_fabric,
    }
    return handlers[args.command](args)


def main(argv: Optional[List[str]] = None) -> int:
    from repro.core.checkpoint import SweepInterrupted

    argv_list = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv_list)
    args._argv = argv_list
    try:
        return _dispatch(args)
    except ValueError as exc:
        # Bad parameter combinations (config validation, sweep values…)
        # are user errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SweepInterrupted as exc:
        # Graceful shutdown: in-flight points were drained and journaled.
        print(
            f"\ninterrupted: {exc.done}/{exc.total} points journaled — "
            f"resume with: {exc.hint}",
            file=sys.stderr,
        )
        return 130
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
