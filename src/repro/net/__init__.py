"""Communication substrate: messages, NI, I/O bus, links, fast messaging.

Implements the paper's communication architecture (Figure 2, right half):
a programmable network interface on each node's I/O bus, connected by a
contention-free system-area network, driven through a fast-messages
library with asynchronous sends and RPC-style synchronous requests.
"""

from repro.net.iobus import IOBus
from repro.net.link import Network
from repro.net.message import Message, MessageKind
from repro.net.messaging import MessagingLayer
from repro.net.nic import NetworkInterface, NICGroup

__all__ = [
    "IOBus",
    "Message",
    "MessageKind",
    "MessagingLayer",
    "NICGroup",
    "Network",
    "NetworkInterface",
]
