"""Deterministic wire-level fault injection.

The paper assumes a perfectly reliable Myrinet-style fabric; real SVM
clusters lose, duplicate, and delay messages.  This module perturbs the
NI/link pipeline — *below* the protocol layer, which stays untouched —
so that end-performance sensitivity to imperfect communication can be
measured the same way the paper measures sensitivity to host overhead or
interrupt cost.

Two pieces:

* :class:`FaultParams` — a frozen, hashable configuration block carried
  on :class:`~repro.core.config.ClusterConfig`.  The default (all
  probabilities zero) disables the whole layer: no injector is built, no
  RNG is drawn, no retransmit timers are armed, and results are
  bit-identical to a build without this module.
* :class:`FaultInjector` — the seeded fault source shared by every NI of
  a cluster.  All randomness comes from one ``random.Random(fault_seed)``
  stream, and the simulation dispatches events in a deterministic order,
  so the same seed yields bit-identical runs.

Recovery from injected faults lives in
:class:`~repro.net.messaging.MessagingLayer` (sequence numbers,
ack/timeout retransmission, duplicate suppression); an exhausted retry
budget raises :class:`RetryExhaustedError` — a structured
:class:`~repro.sim.engine.SimulationStuckError` — rather than hanging.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from repro.sim.engine import SimulationStuckError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.message import Message

_PROB_FIELDS = ("drop_prob", "dup_prob", "delay_spike_prob", "stall_prob")


@dataclass(frozen=True)
class FaultParams:
    """Fault-injection and recovery knobs (all off by default).

    Probabilities apply per message as it leaves the sending NI; cycle
    values are 200 MHz processor cycles like every other cost.
    """

    #: probability the fabric silently loses a message
    drop_prob: float = 0.0
    #: probability the fabric delivers a message twice
    dup_prob: float = 0.0
    #: probability of an extra in-fabric delay spike on a message
    delay_spike_prob: float = 0.0
    #: mean of the (exponential) delay-spike distribution, in cycles
    delay_spike_cycles: int = 20_000
    #: fractional bandwidth loss on every link (0.25 = links run at 75%)
    link_degradation: float = 0.0
    #: per-link overrides: (src_node, dst_node, degradation) triples,
    #: taking precedence over the global ``link_degradation``
    degraded_links: Tuple[Tuple[int, int, float], ...] = ()
    #: probability a send hits a NIC firmware stall window
    stall_prob: float = 0.0
    #: maximum length of one NIC stall window, in cycles
    stall_cycles: int = 10_000
    #: seed of the fault stream (independent of the workload seed, so the
    #: same trace can be replayed under different fault realizations)
    fault_seed: int = 7
    # -- protocol recovery (repro.net.messaging) -----------------------
    #: cycles before the first retransmission of an undeposited message
    retry_timeout: int = 100_000
    #: retransmissions per message before the run is declared stuck
    max_retries: int = 16
    #: multiplicative backoff applied to the timeout after each retry
    retry_backoff: float = 2.0
    #: decorrelation weight for retransmit backoff in [0, 1]: 0 keeps the
    #: purely deterministic exponential ladder (every sender that lost a
    #: message in the same drop burst retries in lock-step — a retry
    #: storm); 1 is fully decorrelated jitter drawn between the base
    #: timeout and 3x the previous one.  The jitter stream is seeded from
    #: ``fault_seed`` (independently of the injector's draw stream), so
    #: runs stay bit-identical per seed.
    retry_jitter: float = 0.5

    def __post_init__(self) -> None:
        for name in _PROB_FIELDS:
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"FaultParams.{name} must be in [0, 1], got {v!r}")
        if not 0.0 <= self.link_degradation < 1.0:
            raise ValueError(
                f"FaultParams.link_degradation must be in [0, 1), got "
                f"{self.link_degradation!r}"
            )
        for entry in self.degraded_links:
            if len(entry) != 3 or not 0.0 <= entry[2] < 1.0:
                raise ValueError(
                    f"FaultParams.degraded_links entries must be "
                    f"(src, dst, degradation in [0, 1)) triples, got {entry!r}"
                )
        for name in ("delay_spike_cycles", "stall_cycles"):
            if getattr(self, name) < 0:
                raise ValueError(f"FaultParams.{name} must be >= 0")
        if self.retry_timeout < 1:
            raise ValueError("FaultParams.retry_timeout must be >= 1 cycle")
        if self.max_retries < 0:
            raise ValueError("FaultParams.max_retries must be >= 0")
        if self.retry_backoff < 1.0:
            raise ValueError("FaultParams.retry_backoff must be >= 1.0")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError(
                f"FaultParams.retry_jitter must be in [0, 1], got "
                f"{self.retry_jitter!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any fault source is active.

        When ``False`` (the default), the cluster builds no injector and
        arms no retransmit machinery — the reliability layer is provably
        zero-cost.
        """
        return bool(
            self.drop_prob
            or self.dup_prob
            or self.delay_spike_prob
            or self.stall_prob
            or self.link_degradation
            or self.degraded_links
        )

    def replace(self, **kw) -> "FaultParams":
        """Functional update (sugar over :func:`dataclasses.replace`)."""
        import dataclasses

        return dataclasses.replace(self, **kw)


class RetryExhaustedError(SimulationStuckError):
    """A message exhausted its retransmit budget and was never deposited.

    Subclasses :class:`SimulationStuckError` so callers can treat "the
    retry budget gave up" and "the simulation deadlocked" uniformly: the
    run surfaces a structured error instead of hanging.
    """

    def __init__(self, msg: "Message", attempts: int) -> None:
        super().__init__(
            f"retry budget exhausted: {msg.kind.value} {msg.tag!r} "
            f"node {msg.src_node}->{msg.dst_node} ({msg.size_bytes} B, "
            f"seq {msg.seq}) not deposited after {attempts} retransmission(s)"
        )
        self.attempts = attempts
        self.tag = msg.tag
        self.src_node = msg.src_node
        self.dst_node = msg.dst_node


class FaultInjector:
    """Seeded fault source shared by all NIs of one cluster.

    Draw order per send is fixed (stall, spike, drop, duplicate) and each
    probability only consumes randomness when nonzero, so a run's fault
    realization depends only on ``fault_seed`` and the (deterministic)
    order in which messages reach the wire.
    """

    def __init__(self, params: FaultParams) -> None:
        self.params = params
        self.rng = random.Random(params.fault_seed)
        self._degraded: Dict[Tuple[int, int], float] = {
            (src, dst): deg for src, dst, deg in params.degraded_links
        }
        # realization counters (surfaced in RunResult.meta)
        self.drops = 0
        self.duplicates = 0
        self.delay_spikes = 0
        self.stalls = 0

    # -- per-send draws, in pipeline order ------------------------------
    def draw_stall(self) -> int:
        """NIC stall window in cycles (0 = no stall this send)."""
        p = self.params
        if p.stall_prob and self.rng.random() < p.stall_prob:
            self.stalls += 1
            return 1 + (self.rng.randrange(p.stall_cycles) if p.stall_cycles else 0)
        return 0

    def link_factor(self, src_node: int, dst_node: int) -> float:
        """Remaining bandwidth fraction on the src→dst link (0, 1]."""
        deg = self._degraded.get((src_node, dst_node), self.params.link_degradation)
        return 1.0 - deg

    def draw_spike(self) -> int:
        """Extra in-fabric delay in cycles (0 = no spike this message)."""
        p = self.params
        if p.delay_spike_prob and self.rng.random() < p.delay_spike_prob:
            self.delay_spikes += 1
            if p.delay_spike_cycles:
                return 1 + int(self.rng.expovariate(1.0 / p.delay_spike_cycles))
            return 1
        return 0

    def draw_drop(self) -> bool:
        p = self.params
        if p.drop_prob and self.rng.random() < p.drop_prob:
            self.drops += 1
            return True
        return False

    def draw_duplicate(self) -> bool:
        p = self.params
        if p.dup_prob and self.rng.random() < p.dup_prob:
            self.duplicates += 1
            return True
        return False

    def stats(self) -> Dict[str, int]:
        return {
            "faults_dropped": self.drops,
            "faults_duplicated": self.duplicates,
            "faults_delay_spikes": self.delay_spikes,
            "faults_stalls": self.stalls,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(drops={self.drops}, dups={self.duplicates}, "
            f"spikes={self.delay_spikes}, stalls={self.stalls})"
        )
