"""I/O-bus model.

In the simulated node (paper Figure 2) the network interface sits on an
I/O bus; in contemporary systems this bus — not the links or the memory
bus — limits node-to-network bandwidth, which is why the paper sweeps
*I/O bus bandwidth* as the bandwidth parameter.

The bus carries DMA traffic in both directions and is a single FCFS
resource, modelled with an analytic fluid queue.  Bandwidth is expressed
in MB per processor-clock MHz, numerically equal to bytes per processor
cycle (see :class:`repro.arch.params.CommParams.io_bytes_per_cycle`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.resources import FluidQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator


class IOBus:
    """One node's I/O bus."""

    def __init__(self, sim: "Simulator", bytes_per_cycle: float, name: str = "iobus") -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("I/O bus bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.queue = FluidQueue(sim, name, bytes_per_cycle=bytes_per_cycle)
        #: optional metrics registry (None = disabled, single check per DMA)
        self.metrics = None

    def dma_latency(self, nbytes: int) -> int:
        """Enqueue a DMA of ``nbytes``; return its total latency in cycles."""
        if nbytes < 0:
            raise ValueError("negative DMA size")
        if nbytes == 0:
            return 0
        metrics = self.metrics
        if metrics is not None:
            metrics.bump(f"{self.name}.dmas")
            metrics.bump(f"{self.name}.dma_bytes", nbytes)
            metrics.sample_queue(f"{self.name}.backlog", self.queue.backlog)
        return self.queue.transfer(nbytes)

    @property
    def backlog_bytes(self) -> float:
        """Bytes of DMA work currently queued (drives NI back-pressure)."""
        return self.queue.backlog * self.bytes_per_cycle

    def utilization(self) -> float:
        return self.queue.utilization()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IOBus({self.name!r}, {self.bytes_per_cycle} B/cyc)"
