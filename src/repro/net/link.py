"""Network links and switch fabric.

The paper models contention *everywhere except* the network links and
switches themselves ("Contention is modeled at all levels except in the
network links and switches"), and does not vary link latency because it is
a small, constant part of the end-to-end latency in a system-area network.

Accordingly :class:`Network` is a contention-free fabric: a message
experiences its serialization time at link bandwidth plus a constant
latency, with no queueing against other messages.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.message import Message
    from repro.sim.engine import Simulator


class Network:
    """Contention-free system-area interconnect (Myrinet-like).

    Parameters
    ----------
    bytes_per_cycle:
        Link bandwidth (links run at processor speed, 16 bits wide →
        2 bytes per processor cycle).
    latency_cycles:
        Constant per-message link+switch latency.
    """

    def __init__(
        self,
        sim: "Simulator",
        bytes_per_cycle: float,
        latency_cycles: int,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        if latency_cycles < 0:
            raise ValueError("negative link latency")
        self.sim = sim
        self.bytes_per_cycle = bytes_per_cycle
        self.latency_cycles = latency_cycles
        #: destination-node id -> callback invoked when bytes arrive
        self._receivers: Dict[int, Callable[["Message", int], None]] = {}
        #: destination-node id -> NI object (for pipelined reservations)
        self._endpoints: Dict[int, object] = {}
        self.messages_carried = 0
        self.bytes_carried = 0
        #: optional metrics registry (None = disabled, single check per message)
        self.metrics = None

    def _count(self, msg: "Message", wire_bytes: int) -> None:
        self.messages_carried += 1
        self.bytes_carried += wire_bytes
        metrics = self.metrics
        if metrics is not None:
            kind = msg.kind.name.lower()
            metrics.bump(f"link.msgs.{kind}")
            metrics.bump(f"link.bytes.{kind}", wire_bytes)

    def attach(self, node_id: int, on_arrival: Callable[["Message", int], None]) -> None:
        """Register the receive hook for a node's NI."""
        if node_id in self._receivers:
            raise ValueError(f"node {node_id} already attached")
        self._receivers[node_id] = on_arrival

    def register_endpoint(self, node_id: int, nic) -> None:
        """Expose the NI object itself so the sending side can reserve the
        receiver's resources for the pipelined (cut-through) path model."""
        self._endpoints[node_id] = nic

    def endpoint(self, node_id: int):
        try:
            return self._endpoints[node_id]
        except KeyError:
            raise ValueError(f"no NI endpoint for node {node_id}") from None

    def deliver(self, msg: "Message", wire_bytes: int) -> None:
        """Deliver after the constant link latency only — used by the
        pipelined path model, where serialization time is already folded
        into the endpoints' bottleneck-stage computation."""
        try:
            receiver = self._receivers[msg.dst_node]
        except KeyError:
            raise ValueError(f"no NI attached for node {msg.dst_node}") from None
        self._count(msg, wire_bytes)
        self.sim.schedule(self.latency_cycles, receiver, msg, wire_bytes)

    def transit_cycles(self, wire_bytes: int) -> int:
        """Serialization + constant latency for a message of this size."""
        return self.latency_cycles + int(math.ceil(wire_bytes / self.bytes_per_cycle))

    def carry(self, msg: "Message", wire_bytes: int) -> None:
        """Launch ``msg`` into the fabric; it arrives after transit."""
        try:
            receiver = self._receivers[msg.dst_node]
        except KeyError:
            raise ValueError(f"no NI attached for node {msg.dst_node}") from None
        self._count(msg, wire_bytes)
        self.sim.schedule(self.transit_cycles(wire_bytes), receiver, msg, wire_bytes)

    @property
    def attached_nodes(self) -> Tuple[int, ...]:
        return tuple(sorted(self._receivers))
