"""Message and packet types for the fast-messaging substrate.

Three message kinds, mirroring the protocol's use of the messaging layer
(paper Sections 2-3):

* ``REQUEST`` — a remote protocol request (page fetch, remote lock
  acquire, diff delivery).  Its arrival **interrupts** a processor at the
  destination node; the interrupt cost is the paper's headline parameter.
* ``REPLY`` — the response to a request.  Requests are synchronous
  (RPC-like) precisely so that replies are *expected*: the reply is
  deposited directly into host memory and wakes the blocked requester
  **without an interrupt**.
* ``SYNC`` — a synchronous point-to-point message some process at the
  destination is already waiting for (barrier legs).  Also interrupt-free.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.primitives import Event

_msg_ids = itertools.count()


class MessageKind(enum.Enum):
    REQUEST = "request"
    REPLY = "reply"
    SYNC = "sync"
    #: pure data deposit (AURC automatic updates): lands in destination
    #: memory with no interrupt and no waiting receiver
    DATA = "data"
    #: RDMA remote read (the "rdma" comm regime): the destination *NI*
    #: serves ``read_bytes`` back as a REPLY with no interrupt and no
    #: host involvement at the target
    READ = "read"


@dataclass
class Message:
    """One message travelling between nodes.

    ``size_bytes`` is the payload; the wire adds a per-packet header.
    ``tag`` selects the handler for REQUESTs or the rendezvous for SYNCs;
    ``reply_to`` carries the event a REPLY must trigger.
    """

    src_node: int
    dst_node: int
    kind: MessageKind
    size_bytes: int
    tag: str = ""
    payload: Any = None
    reply_to: Optional["Event"] = None
    #: optional event triggered when the message has been deposited into
    #: destination host memory (set by the sending NI)
    on_deposit: Optional["Event"] = None
    #: minimum packet count regardless of size — AURC's automatic-update
    #: hardware emits one packet per spatially/temporally disjoint write
    #: run, so fine-grain updates cannot coalesce below this
    min_packets: int = 1
    #: receive-side NI chosen by the sender's pipelined reservation
    #: (multi-NI nodes; see repro.net.nic.NICGroup)
    rx_nic: Any = None
    #: per-source sequence number assigned by the messaging layer when
    #: reliable delivery is on; retransmissions keep the original seq so
    #: the receiver can suppress duplicates.  ``None`` = unsequenced.
    seq: Optional[int] = None
    #: for READ: how many payload bytes the target NI streams back
    read_bytes: int = 0
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    #: memoized (mtu, packets) — the MTU is fixed for a run and the count
    #: is recomputed on every charge/transmit/retransmit of the message
    _packets: Optional[tuple] = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("message size must be non-negative")
        if self.src_node == self.dst_node:
            raise ValueError("intra-node traffic never reaches the NI")
        if self.kind is MessageKind.REPLY and self.reply_to is None:
            raise ValueError("REPLY without reply_to event")
        if self.kind is MessageKind.READ and self.reply_to is None:
            raise ValueError("READ without reply_to event")

    def packet_count(self, mtu: int) -> int:
        """Packets needed at the given MTU (at least one, even if empty)."""
        cached = self._packets
        if cached is not None and cached[0] == mtu:
            return cached[1]
        if mtu <= 0:
            raise ValueError("mtu must be positive")
        count = max(1, self.min_packets, math.ceil(self.size_bytes / mtu))
        self._packets = (mtu, count)
        return count

    def wire_bytes(self, mtu: int, header_bytes: int) -> int:
        """Payload plus per-packet header overhead."""
        return self.size_bytes + self.packet_count(mtu) * header_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(#{self.msg_id} {self.kind.value} {self.tag!r} "
            f"{self.src_node}->{self.dst_node} {self.size_bytes}B)"
        )
