"""Fast-messages layer: asynchronous sends, synchronous RPC, sync legs.

This is the "basic communication library" of the paper (a fast messaging
system in the style of FM/AM/VMMC).  It centralizes the cost structure of
every protocol communication:

* the sender pays the **host overhead** (swept parameter) on its CPU;
* the NI pipeline (occupancy, DMA, link; see :mod:`repro.net.nic`) moves
  the data;
* ``REQUEST``s interrupt the destination; ``REPLY``/``SYNC`` do not.

The protocol layer talks to remote nodes exclusively through
:meth:`MessagingLayer.rpc` (synchronous request/reply, the page-fetch and
remote-lock path) and :meth:`MessagingLayer.send_async` /
:meth:`MessagingLayer.send_sync` (one-way traffic such as AURC updates and
barrier legs).

Accounting conventions
----------------------
Host overhead is charged to the CPU's ``overhead`` category when sent from
application context, but as plain time when sent from *inside an interrupt
handler* (the handler bracket already charges the whole duration to
``handler``; charging again would double count).  Message/byte counters go
to the sending CPU's stats either way, which is how Figures 3-4 count
traffic per processor.

Reliable delivery
-----------------
When the cluster runs with fault injection
(:class:`~repro.net.faults.FaultParams` enabled), every send is
*sequence-numbered* and watched: if the message has not been deposited in
the destination's memory within ``retry_timeout`` cycles, the NI
retransmits it (same sequence number), backing off exponentially with
seeded decorrelated jitter (see ``FaultParams.retry_jitter``), up to
``max_retries`` times — then raises
:class:`~repro.net.faults.RetryExhaustedError` instead of hanging.  The
deposit event doubles as the acknowledgement (a zero-cost piggybacked
ack); receivers suppress duplicates by sequence number, so spurious
retransmissions are harmless.  Retransmissions are NI-driven: they pay
the full wire pipeline again but no host overhead, and they are tallied
in :attr:`retransmits` / :attr:`retransmitted_bytes`, which flow into
``RunResult.meta`` for the traffic breakdowns.
"""

from __future__ import annotations

import itertools
import random
from typing import TYPE_CHECKING, Any, Dict, Generator, Optional

from repro.net.faults import FaultParams, RetryExhaustedError
from repro.net.message import Message, MessageKind
from repro.sim.primitives import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.params import ArchParams, CommParams
    from repro.arch.processor import Processor
    from repro.net.nic import NetworkInterface
    from repro.sim.engine import Simulator


class MessagingLayer:
    """Cluster-wide messaging facade over the per-node NIs."""

    def __init__(
        self,
        sim: "Simulator",
        arch: "ArchParams",
        comm: "CommParams",
        nics: Dict[int, "NetworkInterface"],
        faults: Optional[FaultParams] = None,
    ) -> None:
        self.sim = sim
        self.arch = arch
        self.comm = comm
        self.nics = nics
        #: reliable-delivery knobs; ``None`` = perfect fabric, no timers
        self.faults = faults if faults is not None and faults.enabled else None
        #: dedicated jitter stream for retransmit backoff — decoupled from
        #: the injector's draw stream so enabling jitter does not shift
        #: which messages get dropped, and seeded so runs stay
        #: bit-identical per fault_seed
        self._backoff_rng = (
            random.Random(self.faults.fault_seed ^ 0x9E3779B9)
            if self.faults is not None
            else None
        )
        self._seq_counters: Dict[int, "itertools.count"] = {}
        #: host cycles per posted send under the active regime (baseline:
        #: host_overhead; rdma: the descriptor-post cost)
        self._send_overhead = comm.send_post_cycles
        #: number of NI-driven retransmissions across the cluster
        self.retransmits = 0
        #: wire bytes consumed by retransmissions
        self.retransmitted_bytes = 0
        # RDMA remote reads are served NI-side: wire the serve hook into
        # every node's NI (harmless in the baseline regime — no READ
        # messages are ever sent there)
        for nic in nics.values():
            nic.on_read = self._serve_remote_read

    # ------------------------------------------------------------------ #
    # reliable transmission
    # ------------------------------------------------------------------ #
    def _transmit(self, msg: Message) -> Event:
        """Hand ``msg`` to its source NI; arm the retransmit watch when
        reliable delivery is on.  Returns the deposit event."""
        nic = self._nic(msg.src_node)
        if self.faults is None:
            return nic.send(msg)
        counter = self._seq_counters.get(msg.src_node)
        if counter is None:
            counter = self._seq_counters[msg.src_node] = itertools.count()
        msg.seq = next(counter)
        deposit = nic.send(msg)
        self.sim.schedule(
            self.faults.retry_timeout,
            self._check_delivery,
            msg,
            deposit,
            0,
            self.faults.retry_timeout,
        )
        return deposit

    def _check_delivery(
        self, msg: Message, deposit: Event, retries: int, timeout: int
    ) -> None:
        """Retransmit timer: fires ``timeout`` cycles after the (re)send.

        Raising from here propagates straight out of ``Simulator.run`` —
        an exhausted budget can never turn into a silent hang, even for
        fire-and-forget messages nobody is waiting on.
        """
        if deposit.triggered:
            return
        f = self.faults
        if retries >= f.max_retries:
            raise RetryExhaustedError(msg, retries)
        self.retransmits += 1
        self.retransmitted_bytes += msg.wire_bytes(
            self.arch.packet_mtu, self.arch.packet_header_bytes
        )
        self._nic(msg.src_node).send(msg)
        next_timeout = self._next_timeout(timeout)
        self.sim.schedule(
            next_timeout, self._check_delivery, msg, deposit, retries + 1, next_timeout
        )

    def _next_timeout(self, timeout: int) -> int:
        """Grow the retransmit timeout: exponential backoff, decorrelated.

        With ``retry_jitter`` 0 this is the legacy deterministic ladder
        (``timeout * retry_backoff``).  Otherwise the deterministic value
        is blended with a decorrelated draw uniform over
        ``[retry_timeout, 3 * timeout]`` (Exponential Backoff And Jitter,
        "decorrelated jitter" variant), so senders that lost messages in
        the same drop burst do not retry in synchronized waves.  Draws
        come from the dedicated seeded stream: per-seed bit-identical.
        """
        f = self.faults
        deterministic = max(1, int(timeout * f.retry_backoff))
        if not f.retry_jitter or self._backoff_rng is None:
            return deterministic
        decorrelated = self._backoff_rng.randint(
            f.retry_timeout, max(f.retry_timeout, 3 * timeout)
        )
        blended = (1.0 - f.retry_jitter) * deterministic + f.retry_jitter * decorrelated
        return max(1, int(blended))

    # ------------------------------------------------------------------ #
    # cost/accounting helpers
    # ------------------------------------------------------------------ #
    def _charge_send(
        self,
        cpu: "Processor",
        msg: Message,
        in_handler: bool,
    ) -> Generator:
        """Pay host overhead and count the message on the sending CPU."""
        wire = msg.wire_bytes(self.arch.packet_mtu, self.arch.packet_header_bytes)
        cpu.stats.count("messages_sent")
        cpu.stats.count("bytes_sent", wire)
        overhead = self._send_overhead
        if overhead:
            if in_handler:
                # Handler bracket charges this time to 'handler'.
                yield overhead
            else:
                yield from cpu.busy(overhead, "overhead")

    def _nic(self, node_id: int) -> "NetworkInterface":
        try:
            return self.nics[node_id]
        except KeyError:
            raise ValueError(f"no NI for node {node_id}") from None

    # ------------------------------------------------------------------ #
    # public send operations (all are generators to be `yield from`-ed)
    # ------------------------------------------------------------------ #
    def rpc(
        self,
        cpu: "Processor",
        src_node: int,
        dst_node: int,
        tag: str,
        size_bytes: int,
        payload: Any = None,
        wait_category: str = "data_wait",
        in_handler: bool = False,
    ) -> Generator:
        """Synchronous request: send, block until the reply arrives.

        Returns the reply payload.  The elapsed blocking time is charged to
        ``wait_category`` (``data_wait`` for page fetches, ``lock_wait``
        for lock acquires, ...).
        """
        reply_ev = Event(self.sim, name=f"rpc.{tag}")
        msg = Message(
            src_node=src_node,
            dst_node=dst_node,
            kind=MessageKind.REQUEST,
            size_bytes=size_bytes,
            tag=tag,
            payload=payload,
            reply_to=reply_ev,
        )
        yield from self._charge_send(cpu, msg, in_handler)
        self._transmit(msg)
        if in_handler:
            value = yield reply_ev
        else:
            value = yield from cpu.wait_for(reply_ev, wait_category)
        return value

    def remote_read(
        self,
        cpu: "Processor",
        src_node: int,
        dst_node: int,
        tag: str,
        size_bytes: int,
        read_bytes: int,
        payload: Any = None,
        wait_category: str = "data_wait",
    ) -> Generator:
        """RDMA remote read: post a READ descriptor, block until the
        target *NI* has streamed ``read_bytes`` back.

        No processor at ``dst_node`` is involved and no interrupt is
        raised — the only host cost is the requester's descriptor post.
        Both legs travel the full wire pipeline and are retransmitted
        under reliable delivery exactly like RPC traffic.  Returns the
        reply payload.
        """
        reply_ev = Event(self.sim, name=f"read.{tag}")
        msg = Message(
            src_node=src_node,
            dst_node=dst_node,
            kind=MessageKind.READ,
            size_bytes=size_bytes,
            tag=tag,
            payload=payload,
            reply_to=reply_ev,
            read_bytes=read_bytes,
        )
        yield from self._charge_send(cpu, msg, in_handler=False)
        self._transmit(msg)
        value = yield from cpu.wait_for(reply_ev, wait_category)
        return value

    def _serve_remote_read(self, msg: Message) -> None:
        """NI-side READ service: stream the data back as a REPLY.

        Runs at the target NI with zero host cycles — the reply pays the
        normal NI/bus/link pipeline (and its own retransmit watch) but no
        send-posting overhead and no handler.
        """
        reply = Message(
            src_node=msg.dst_node,
            dst_node=msg.src_node,
            kind=MessageKind.REPLY,
            size_bytes=msg.read_bytes,
            tag=msg.tag + ".reply",
            payload=msg.payload,
            reply_to=msg.reply_to,
        )
        self._transmit(reply)

    def send_reply(
        self,
        cpu: "Processor",
        request: Message,
        size_bytes: int,
        payload: Any = None,
    ) -> Generator:
        """Send the reply to ``request`` (from inside its handler).

        Replies never interrupt the requester: the NI deposits the data and
        triggers the RPC's reply event directly.
        """
        if request.reply_to is None:
            raise ValueError("request carries no reply_to event")
        msg = Message(
            src_node=request.dst_node,
            dst_node=request.src_node,
            kind=MessageKind.REPLY,
            size_bytes=size_bytes,
            tag=request.tag + ".reply",
            payload=payload,
            reply_to=request.reply_to,
        )
        yield from self._charge_send(cpu, msg, in_handler=True)
        self._transmit(msg)

    def send_async(
        self,
        cpu: "Processor",
        src_node: int,
        dst_node: int,
        tag: str,
        size_bytes: int,
        payload: Any = None,
        in_handler: bool = False,
    ) -> Generator:
        """One-way REQUEST (interrupts the destination); returns the
        deposit event so callers may later wait for delivery."""
        msg = Message(
            src_node=src_node,
            dst_node=dst_node,
            kind=MessageKind.REQUEST,
            size_bytes=size_bytes,
            tag=tag,
            payload=payload,
            reply_to=Event(self.sim, name=f"async.{tag}"),
        )
        yield from self._charge_send(cpu, msg, in_handler)
        self._transmit(msg)
        return msg.reply_to

    def send_sync(
        self,
        cpu: "Processor",
        src_node: int,
        dst_node: int,
        tag: str,
        size_bytes: int,
        payload: Any = None,
        in_handler: bool = False,
        min_packets: int = 1,
        free_send: bool = False,
    ) -> Generator:
        """One-way SYNC message: the destination is (or will be) waiting at
        the matching rendezvous; no interrupt is raised.

        ``min_packets`` forces a packet count floor (AURC fine-grain
        updates).  ``free_send`` suppresses the host overhead — used for
        traffic the *hardware* emits autonomously (AURC's automatic-update
        snooper), which costs the host nothing.

        Returns the deposit event (succeeds when the data lands in the
        destination's memory).
        """
        msg = Message(
            src_node=src_node,
            dst_node=dst_node,
            kind=MessageKind.SYNC,
            size_bytes=size_bytes,
            tag=tag,
            payload=payload,
            min_packets=min_packets,
        )
        if free_send:
            wire = msg.wire_bytes(self.arch.packet_mtu, self.arch.packet_header_bytes)
            cpu.stats.count("messages_sent")
            cpu.stats.count("bytes_sent", wire)
        else:
            yield from self._charge_send(cpu, msg, in_handler)
        return self._transmit(msg)

    def send_data(
        self,
        cpu: "Processor",
        src_node: int,
        dst_node: int,
        size_bytes: int,
        min_packets: int = 1,
        tag: str = "data",
    ) -> Generator:
        """Hardware-emitted data deposit (AURC automatic update): no host
        overhead, no interrupt, no receiver rendezvous.  Returns the
        deposit event so releases can wait for updates to drain."""
        msg = Message(
            src_node=src_node,
            dst_node=dst_node,
            kind=MessageKind.DATA,
            size_bytes=size_bytes,
            tag=tag,
            min_packets=min_packets,
        )
        wire = msg.wire_bytes(self.arch.packet_mtu, self.arch.packet_header_bytes)
        cpu.stats.count("messages_sent")
        cpu.stats.count("bytes_sent", wire)
        return self._transmit(msg)
        yield  # pragma: no cover — marks this function as a generator

    def receive_sync(self, node_id: int, tag: str) -> Event:
        """Event-like handle for the next SYNC message with ``tag`` at
        ``node_id`` (yield it to block until arrival)."""
        return self._nic(node_id).sync_store(tag).get()
