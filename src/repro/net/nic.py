"""Programmable network interface (Myrinet-like).

The NI model follows the paper's abstraction of the communication
subsystem (Section 3):

* an **asynchronous send** frees the host after the (swept) host
  overhead; the NI core then *prepares packets*, paying the swept
  **occupancy per packet** on the NI core — a single server shared by the
  send and receive paths, since the programmable assist is one processor;
* packet data is DMA'd from host memory across the **memory bus** and the
  **I/O bus** (the latter is the swept bandwidth parameter);
* packets transit the contention-free fabric and are processed by the
  receiving NI (occupancy again), then **deposited directly into host
  memory** across the receiver's I/O and memory buses **without an
  interrupt**;
* only ``REQUEST`` messages then raise an interrupt, via a hook the
  cluster wires to the node's interrupt controller;
* each NI has two 1 MB packet queues; if the outgoing queue fills, the NI
  interrupts the main processor and delays the sender until the queue
  drains (modelled as back-pressure plus an overflow-interrupt count).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Set, Tuple

from repro.net.message import Message, MessageKind
from repro.sim.primitives import Event
from repro.sim.resources import FluidQueue, Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.membus import MemoryBus
    from repro.arch.params import ArchParams, CommParams
    from repro.net.faults import FaultInjector
    from repro.net.iobus import IOBus
    from repro.net.link import Network
    from repro.sim.engine import Simulator


class NetworkInterface:
    """One node's NI: send/receive pipelines and delivery hooks."""

    def __init__(
        self,
        sim: "Simulator",
        node_id: int,
        arch: "ArchParams",
        comm: "CommParams",
        membus: "MemoryBus",
        iobus: "IOBus",
        network: "Network",
        register: bool = True,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.arch = arch
        self.comm = comm
        self.membus = membus
        self.iobus = iobus
        self.network = network
        #: shared wire-level fault source, or ``None`` for a perfect fabric
        self.faults = faults
        #: the NI's programmable core: one server, occupancy per packet
        self.core = FluidQueue(sim, f"ni{node_id}.core")
        #: serial receive dispatch: the single-threaded NI core stalls all
        #: incoming processing while it signals a host interrupt, so
        #: request-heavy nodes delay even the replies their own
        #: processors are waiting for (the interrupt-cost knee)
        self.rx_gate = FluidQueue(sim, f"ni{node_id}.rx_gate")
        #: hook invoked for REQUEST arrivals (wired to the interrupt path)
        self.on_request: Optional[Callable[[Message], None]] = None
        #: hook invoked for READ arrivals (RDMA regime: the NI serves the
        #: remote read itself, no host, no interrupt)
        self.on_read: Optional[Callable[[Message], None]] = None
        #: cycles a REQUEST holds the serial receive gate (precomputed:
        #: interrupt signalling time, or zero when the regime/processing
        #: mode raises no interrupts)
        self._rx_gate_hold_cycles = (
            comm.null_interrupt_cycles
            if (
                arch.model_rx_gate
                and comm.effective_interrupt_cost
                and comm.protocol_processing == "interrupt"
            )
            else 0
        )
        #: hook invoked when the outgoing queue overflows
        self.on_queue_overflow: Optional[Callable[[], None]] = None
        self._sync_stores: Dict[str, Store] = {}
        self._tx_name = f"ni{node_id}.tx"
        #: (src_node, seq) pairs already delivered — duplicate suppression
        #: for sequenced (reliable) traffic; shared across a NICGroup
        self._delivered: Set[Tuple[int, int]] = set()
        # statistics
        self.messages_sent = 0
        self.messages_received = 0
        self.wire_bytes_sent = 0
        self.packets_sent = 0
        self.overflow_interrupts = 0
        self.messages_dropped = 0
        self.duplicates_suppressed = 0
        #: optional metrics registry (None = disabled, single check per message)
        self.metrics = None

        if register:
            network.attach(node_id, self._on_arrival)
            network.register_endpoint(node_id, self)

    # ------------------------------------------------------------------ #
    # send path
    # ------------------------------------------------------------------ #
    def send(self, msg: Message) -> Event:
        """Post ``msg`` for transmission (asynchronous).

        Returns an event that succeeds when the message has been deposited
        into the destination node's memory (used by tests and by
        synchronous senders; most callers ignore it).
        """
        if msg.src_node != self.node_id:
            raise ValueError(f"message source {msg.src_node} != NI node {self.node_id}")
        if msg.on_deposit is None:
            msg.on_deposit = Event(self.sim, name=f"msg{msg.msg_id}.deposited")
        self.sim.spawn(self._send_pipeline(msg), name=self._tx_name)
        return msg.on_deposit

    def _send_pipeline(self, msg: Message):
        """The full source-to-destination path, *cut-through pipelined*.

        Packets stream through the stages (sender DMA, link, receiver
        DMA) concurrently, so the end-to-end time is governed by the
        *bottleneck* stage, not the sum of stages.  Every traversed
        resource is still reserved for its full service time — contention
        is preserved — but the message's latency is
        ``max(stage sojourns) + link latency``.
        """
        a, c = self.arch, self.comm
        faults = self.faults
        packets = msg.packet_count(a.packet_mtu)
        wire = msg.wire_bytes(a.packet_mtu, a.packet_header_bytes)

        # Injected NIC firmware stall: the send sits in the outgoing
        # queue while the programmable core is wedged.
        if faults is not None:
            stall = faults.draw_stall()
            if stall:
                yield self.sim.timeout(stall)

        # Back-pressure: outgoing queue full -> interrupt main CPU, wait.
        while self.iobus.backlog_bytes > a.ni_queue_bytes:
            self.overflow_interrupts += 1
            if self.on_queue_overflow is not None:
                self.on_queue_overflow()
            yield self.sim.timeout(max(1, self.iobus.queue.backlog // 2))

        peer = self.network.endpoint(msg.dst_node).pick_rx()
        msg.rx_nic = peer
        link_bpc = self.network.bytes_per_cycle
        if faults is not None:
            # degraded link: serialization runs at a fraction of nominal
            link_bpc *= faults.link_factor(self.node_id, msg.dst_node)
        stages = [
            self.membus.transfer_latency(wire, "ni_out"),
            self.iobus.dma_latency(wire),
            int(wire / link_bpc),  # link serialization
            peer.iobus.dma_latency(wire),
            peer.membus.transfer_latency(wire, "ni_in"),
        ]
        if c.ni_occupancy:
            stages.append(self.core.latency(packets * c.ni_occupancy))
            stages.append(peer.core.latency(packets * c.ni_occupancy))
        if a.model_cut_through:
            yield max(stages)
        else:
            # ablation: store-and-forward — pay every stage in sequence
            yield sum(stages)

        self.messages_sent += 1
        self.packets_sent += packets
        self.wire_bytes_sent += wire
        metrics = self.metrics
        if metrics is not None:
            kind = msg.kind.name.lower()
            metrics.bump(f"ni{self.node_id}.sent.{kind}")
            metrics.bump(f"ni{self.node_id}.sent_bytes.{kind}", wire)
            metrics.sample_queue(f"{self.iobus.name}.tx_backlog_bytes", self.iobus.backlog_bytes)
        if faults is None:
            self.network.deliver(msg, wire)
            return
        spike = faults.draw_spike()
        if spike:
            yield self.sim.timeout(spike)
        if faults.draw_drop():
            # the fabric ate it: bytes left the NI but nothing arrives;
            # recovery (if armed) is the messaging layer's retransmit
            self.messages_dropped += 1
            return
        self.network.deliver(msg, wire)
        if faults.draw_duplicate():
            # a second copy lands too; the receiver's sequence-number
            # dedup keeps it from re-triggering protocol events
            self.network.deliver(msg, wire)

    # ------------------------------------------------------------------ #
    # receive path (stage timing already accounted by the sender side)
    # ------------------------------------------------------------------ #
    def _on_arrival(self, msg: Message, wire_bytes: int) -> None:
        # All arrivals pass the serial receive gate: a REQUEST holds it
        # for the interrupt-issue time (the single-threaded NI core
        # busy-signals the host), and everything behind it — including
        # replies this node's own processors are blocked on — waits.
        # The request's *own* issue latency is charged by the interrupt
        # controller, so here it only delays followers.
        delay = self.rx_gate.backlog if self.arch.model_rx_gate else 0
        if self._rx_gate_hold_cycles and msg.kind is MessageKind.REQUEST:
            # The gate is held for issue + delivery: the single-threaded
            # assist cannot free the receive slot until the host has
            # taken the message.  Polling, NI-offload and the RDMA regime
            # raise no interrupts, so the gate never blocks there.
            self.rx_gate.latency(self._rx_gate_hold_cycles)
        if delay > 0:
            self.sim.schedule(delay, self._dispatch_arrival, msg)
        else:
            self._dispatch_arrival(msg)

    def _dispatch_arrival(self, msg: Message) -> None:
        if msg.seq is not None:
            # Sequenced (reliable) traffic: deliver-once semantics.  Both
            # fabric duplicates and spurious retransmissions of an
            # already-deposited message are absorbed here, so one-shot
            # events (RPC replies, deposit notifications) never re-fire.
            key = (msg.src_node, msg.seq)
            if key in self._delivered:
                self.duplicates_suppressed += 1
                return
            self._delivered.add(key)
        self.messages_received += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.bump(f"ni{self.node_id}.recv.{msg.kind.name.lower()}")
            metrics.sample_queue(
                f"ni{self.node_id}.rx_gate.backlog", self.rx_gate.backlog
            )
        if msg.on_deposit is not None:
            msg.on_deposit.succeed(msg)
        if msg.kind is MessageKind.REQUEST:
            if self.on_request is None:
                raise RuntimeError(f"node {self.node_id}: REQUEST arrived with no handler hook")
            self.on_request(msg)
        elif msg.kind is MessageKind.REPLY:
            msg.reply_to.succeed(msg.payload)
        elif msg.kind is MessageKind.SYNC:
            # a process is (or will be) waiting at the rendezvous
            self.sync_store(msg.tag).put(msg.payload)
        elif msg.kind is MessageKind.READ:
            # RDMA remote read: this NI streams the data back itself
            if self.on_read is None:
                raise RuntimeError(
                    f"node {self.node_id}: READ arrived with no serve hook"
                )
            self.on_read(msg)
        # MessageKind.DATA: nothing further — the deposit event above is all

    # ------------------------------------------------------------------ #
    # sync rendezvous
    # ------------------------------------------------------------------ #
    def sync_store(self, tag: str) -> Store:
        """FIFO rendezvous for SYNC messages with the given tag."""
        store = self._sync_stores.get(tag)
        if store is None:
            store = self._sync_stores[tag] = Store(self.sim, name=f"ni{self.node_id}.{tag}")
        return store

    def pick_rx(self) -> "NetworkInterface":
        """Receive-side endpoint selection (trivial for a single NI)."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkInterface(node={self.node_id})"


class NICGroup:
    """Several NIs on one node, each with its own I/O bus.

    The paper's discussion proposes multiple network interfaces per node
    to raise node-to-network bandwidth.  Sends round-robin across the
    members; the sending side also round-robins the *receiver's* members
    when reserving the pipelined path, so both directions scale.  SYNC
    rendezvous stores are shared across members (a waiting receiver does
    not care which physical NI the message landed on), and the protocol's
    request/overflow hooks fan out to every member.
    """

    def __init__(self, nics) -> None:
        if not nics:
            raise ValueError("a NIC group needs at least one NI")
        self.nics = list(nics)
        first = self.nics[0]
        self.sim = first.sim
        self.node_id = first.node_id
        self.network = first.network
        self._tx = 0
        self._rx = 0
        # share one rendezvous table and one dedup table across members
        # (a retransmission may land on a different member than the
        # original, so deliver-once state must be per node)
        shared = first._sync_stores
        shared_delivered = first._delivered
        for nic in self.nics[1:]:
            if nic.node_id != self.node_id:
                raise ValueError("NIC group members must share a node")
            nic._sync_stores = shared
            nic._delivered = shared_delivered
        self.network.attach(self.node_id, self._on_arrival)
        self.network.register_endpoint(self.node_id, self)

    # -- send/receive ------------------------------------------------------
    def send(self, msg: Message) -> Event:
        nic = self.nics[self._tx % len(self.nics)]
        self._tx += 1
        return nic.send(msg)

    def pick_rx(self) -> NetworkInterface:
        nic = self.nics[self._rx % len(self.nics)]
        self._rx += 1
        return nic

    def _on_arrival(self, msg: Message, wire_bytes: int) -> None:
        nic = msg.rx_nic if msg.rx_nic is not None else self.nics[0]
        nic._on_arrival(msg, wire_bytes)

    def sync_store(self, tag: str) -> Store:
        return self.nics[0].sync_store(tag)

    # -- protocol hooks fan out to every member ----------------------------
    @property
    def on_request(self):
        return self.nics[0].on_request

    @on_request.setter
    def on_request(self, hook) -> None:
        for nic in self.nics:
            nic.on_request = hook

    @property
    def on_read(self):
        return self.nics[0].on_read

    @on_read.setter
    def on_read(self, hook) -> None:
        for nic in self.nics:
            nic.on_read = hook

    @property
    def on_queue_overflow(self):
        return self.nics[0].on_queue_overflow

    @on_queue_overflow.setter
    def on_queue_overflow(self, hook) -> None:
        for nic in self.nics:
            nic.on_queue_overflow = hook

    # -- aggregated statistics ---------------------------------------------
    @property
    def messages_sent(self) -> int:
        return sum(n.messages_sent for n in self.nics)

    @property
    def messages_received(self) -> int:
        return sum(n.messages_received for n in self.nics)

    @property
    def packets_sent(self) -> int:
        return sum(n.packets_sent for n in self.nics)

    @property
    def wire_bytes_sent(self) -> int:
        return sum(n.wire_bytes_sent for n in self.nics)

    @property
    def overflow_interrupts(self) -> int:
        return sum(n.overflow_interrupts for n in self.nics)

    @property
    def messages_dropped(self) -> int:
        return sum(n.messages_dropped for n in self.nics)

    @property
    def duplicates_suppressed(self) -> int:
        return sum(n.duplicates_suppressed for n in self.nics)

    @property
    def core(self):
        """Primary member's core (single-NI compatibility accessor)."""
        return self.nics[0].core

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NICGroup(node={self.node_id}, nis={len(self.nics)})"
