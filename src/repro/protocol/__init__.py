"""SVM protocols: HLRC and AURC over the simulated cluster.

This package is the paper's subject proper: home-based lazy release
consistency in two variants (software diffs vs hardware automatic
update), with the SMP-node optimizations the paper's protocol uses
(node-level page caching with fetch coalescing, token-cached distributed
locks, hierarchical interrupt-free barriers).
"""

from repro.protocol.aurc import AURCProtocol
from repro.protocol.barriers import BarrierManager
from repro.protocol.base import (
    ACK_BYTES,
    GRANT_BASE_BYTES,
    REQUEST_HEADER_BYTES,
    TAG_DIFF_APPLY,
    TAG_LOCK_ACQUIRE,
    TAG_LOCK_RECALL,
    TAG_PAGE_FETCH,
    TAG_TOKEN_RETURN,
    NodeMemoryState,
    ProtocolContext,
    ProtocolCounters,
)
from repro.protocol.diffs import (
    Diff,
    apply_diff,
    compute_diff,
    diff_apply_cost,
    diff_create_cost,
    diff_wire_bytes,
    page_words,
    twin_cost,
)
from repro.protocol.hlrc import HLRCProtocol
from repro.protocol.locks import LockManager, LockState
from repro.protocol.timestamps import (
    WRITE_NOTICE_BYTES,
    IntervalLog,
    VectorClock,
    notices_wire_bytes,
)

PROTOCOLS = {"hlrc": HLRCProtocol, "aurc": AURCProtocol}

__all__ = [
    "ACK_BYTES",
    "AURCProtocol",
    "BarrierManager",
    "Diff",
    "GRANT_BASE_BYTES",
    "HLRCProtocol",
    "IntervalLog",
    "LockManager",
    "LockState",
    "NodeMemoryState",
    "PROTOCOLS",
    "ProtocolContext",
    "ProtocolCounters",
    "REQUEST_HEADER_BYTES",
    "TAG_DIFF_APPLY",
    "TAG_LOCK_ACQUIRE",
    "TAG_LOCK_RECALL",
    "TAG_PAGE_FETCH",
    "TAG_TOKEN_RETURN",
    "VectorClock",
    "WRITE_NOTICE_BYTES",
    "apply_diff",
    "compute_diff",
    "diff_apply_cost",
    "diff_create_cost",
    "diff_wire_bytes",
    "notices_wire_bytes",
    "page_words",
    "twin_cost",
]
