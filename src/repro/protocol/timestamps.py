"""Lazy-release-consistency timestamp machinery.

LRC divides each processor's execution into *intervals* delimited by
release operations.  Vector clocks order intervals; *write notices* record
which pages were modified in each interval.  At an acquire, the acquirer
learns (via the lock grant or barrier release) the releaser's vector
clock, and must invalidate every page with a write notice in an interval
it has not yet seen.

The classes here are pure data structures — no simulation time — which
makes them easy to property-test: :class:`VectorClock` forms a join
semilattice under :meth:`VectorClock.merge`, and
:meth:`IntervalLog.notices_between` is monotone in its clock arguments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple


class VectorClock:
    """A fixed-width vector clock over processor indices."""

    __slots__ = ("v",)

    def __init__(self, n_procs: int, values: Sequence[int] | None = None) -> None:
        if values is not None:
            if len(values) != n_procs:
                raise ValueError("values length mismatch")
            if any(x < 0 for x in values):
                raise ValueError("negative clock component")
            self.v = list(values)
        else:
            self.v = [0] * n_procs

    # -- basic ops --------------------------------------------------------
    def increment(self, proc: int) -> int:
        """Advance ``proc``'s component; returns the new interval number."""
        self.v[proc] += 1
        return self.v[proc]

    def merge(self, other: "VectorClock") -> None:
        """In-place join (component-wise max)."""
        if len(other.v) != len(self.v):
            raise ValueError("clock width mismatch")
        self.v = [a if a >= b else b for a, b in zip(self.v, other.v)]

    def copy(self) -> "VectorClock":
        return VectorClock(len(self.v), self.v)

    def snapshot(self) -> Tuple[int, ...]:
        """Immutable value for shipping inside messages."""
        return tuple(self.v)

    @classmethod
    def from_snapshot(cls, snap: Sequence[int]) -> "VectorClock":
        return cls(len(snap), snap)

    # -- ordering ---------------------------------------------------------
    def dominates(self, other: "VectorClock") -> bool:
        """True if self >= other component-wise (self has seen other)."""
        return all(a >= b for a, b in zip(self.v, other.v))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self.v == other.v

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(tuple(self.v))

    def __getitem__(self, proc: int) -> int:
        return self.v[proc]

    def __len__(self) -> int:
        return len(self.v)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VC{self.v}"


class IntervalLog:
    """Global record of every processor's intervals and their dirty pages.

    The simulated protocol ships only clocks and (size-accounted) write
    notices over the wire; the log itself is the simulator's omniscient
    bookkeeping used to resolve *which* pages a clock delta refers to.
    ``intervals[p][k]`` holds the pages dirtied in processor ``p``'s
    interval ``k+1`` (interval numbers are 1-based, matching
    :meth:`VectorClock.increment`).
    """

    def __init__(self, n_procs: int) -> None:
        self.n_procs = n_procs
        self.intervals: List[List[Tuple[int, ...]]] = [[] for _ in range(n_procs)]
        #: per-proc prefix sums of notice counts: ``_count_prefix[p][k]``
        #: is the total number of write notices in intervals 1..k, so a
        #: clock-delta count is two lookups instead of a scan
        self._count_prefix: List[List[int]] = [[0] for _ in range(n_procs)]

    def append(self, proc: int, pages: Iterable[int]) -> int:
        """Record a new interval for ``proc``; returns its number."""
        pages_t = tuple(pages)
        self.intervals[proc].append(pages_t)
        prefix = self._count_prefix[proc]
        prefix.append(prefix[-1] + len(pages_t))
        return len(self.intervals[proc])

    def interval_count(self, proc: int) -> int:
        return len(self.intervals[proc])

    def pages_of(self, proc: int, interval: int) -> Tuple[int, ...]:
        """Pages dirtied in ``proc``'s 1-based ``interval``."""
        return self.intervals[proc][interval - 1]

    def notices_between(
        self,
        old: VectorClock,
        new: VectorClock,
    ) -> Set[int]:
        """Pages with write notices in intervals covered by ``new`` but not
        by ``old`` — exactly what an acquirer must invalidate."""
        pages: Set[int] = set()
        update = pages.update
        for proc in range(self.n_procs):
            lo, hi = old[proc], new[proc]
            if hi > lo:
                log = self.intervals[proc]
                if hi > len(log):
                    hi = len(log)
                update(*log[lo:hi])
        return pages

    def notice_count_between(self, old: VectorClock, new: VectorClock) -> int:
        """Number of write notices in the delta (sizes the grant message)."""
        count = 0
        for proc in range(self.n_procs):
            prefix = self._count_prefix[proc]
            lo, hi = old[proc], new[proc]
            last = len(prefix) - 1
            if hi > last:
                hi = last
            if hi > lo:
                count += prefix[hi] - prefix[lo]
        return count


#: wire size of one write notice (page number + interval id)
WRITE_NOTICE_BYTES = 8


def notices_wire_bytes(n_notices: int) -> int:
    """Bytes a batch of write notices occupies in a grant/release message."""
    return n_notices * WRITE_NOTICE_BYTES
