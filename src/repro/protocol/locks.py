"""Distributed locks with node-level caching (token protocol).

The paper's SMP protocol serves lock acquires locally whenever it can:
Table 2 separates **local** lock acquires (the lock was last held within
the requester's node — served through hardware shared memory, no
messages) from **remote** acquires (messages + interrupts).  Clustering
converts remote acquires into local ones, which is one of the reasons
more processors per node help lock-heavy applications (Figure 13).

We implement this as a *token* protocol, a faithful small-scale model of
lock caching in home-based SVM systems:

* every lock has a **home node** (``lock_id % n_nodes``) that arbitrates;
* the **token** (the right to grant the lock locally) lives at exactly one
  node; acquires at the token node are local (``smp_sync_cycles``, no
  traffic);
* an acquire elsewhere RPCs the home (**interrupt**); if the token is at
  some third node the home sends a **recall**; the holder returns the
  token at its next release; the home then grants the queued requester;
* the grant reply and token returns carry the last releaser's vector
  clock plus its write notices — the consistency payload of LRC.

Mutual exclusion is real in the simulation (property-tested): ``held_by``
/ ``granted_to`` guard against the grant-in-flight race.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro.protocol.base import (
    ACK_BYTES,
    GRANT_BASE_BYTES,
    REQUEST_HEADER_BYTES,
    TAG_LOCK_ACQUIRE,
    TAG_LOCK_RECALL,
    TAG_TOKEN_RETURN,
    ProtocolContext,
    ProtocolCounters,
)
from repro.sim.primitives import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.processor import Processor
    from repro.net.message import Message


class LockState:
    """All state of one distributed lock (simulator-omniscient view; the
    wire traffic below is what the real protocol would exchange)."""

    __slots__ = (
        "lock_id",
        "home_node",
        "token_node",
        "held_by",
        "granted_to",
        "recall_pending",
        "recall_sent",
        "home_queue",
        "local_waiters",
        "vc_snapshot",
    )

    def __init__(self, lock_id: int, home_node: int) -> None:
        self.lock_id = lock_id
        self.home_node = home_node
        #: node currently holding the token; None while in transit
        self.token_node: Optional[int] = home_node
        #: processor currently holding the lock
        self.held_by: Optional[int] = None
        #: processor a grant is in flight to (counts as held for recalls)
        self.granted_to: Optional[int] = None
        #: token node must return the token at the next release
        self.recall_pending = False
        #: home has an outstanding recall message
        self.recall_sent = False
        #: remote acquire requests queued at the home
        self.home_queue: Deque["Message"] = deque()
        #: local waiters at the token node
        self.local_waiters: List[Event] = []
        #: vector-clock snapshot of the last release (consistency payload)
        self.vc_snapshot: Optional[Tuple[int, ...]] = None


class _LocalRequest:
    """An acquire request made *at the home node itself* while the token is
    elsewhere.  It queues like a remote request but is granted through a
    local event instead of a reply message (no NI traffic to oneself)."""

    __slots__ = ("payload", "reply_to")

    def __init__(self, payload, reply_to: Event) -> None:
        self.payload = payload
        self.reply_to = reply_to


class LockManager:
    """Cluster-wide lock service (engine-owned)."""

    def __init__(
        self,
        ctx: ProtocolContext,
        counters: ProtocolCounters,
        grant_size_fn: Optional[Callable[[int, Optional[Tuple[int, ...]]], int]] = None,
    ) -> None:
        self.ctx = ctx
        self.counters = counters
        #: computes the grant-message size including piggybacked notices
        self.grant_size_fn = grant_size_fn or (lambda proc, snap: GRANT_BASE_BYTES)
        self._locks: Dict[int, LockState] = {}

    # ------------------------------------------------------------------ #
    def state(self, lock_id: int) -> LockState:
        st = self._locks.get(lock_id)
        if st is None:
            st = self._locks[lock_id] = LockState(lock_id, lock_id % self.ctx.n_nodes)
        return st

    def _wake_local(self, st: LockState) -> None:
        waiters, st.local_waiters = st.local_waiters, []
        for ev in waiters:
            ev.succeed()

    # ------------------------------------------------------------------ #
    # application-side operations (generators run in the app process)
    # ------------------------------------------------------------------ #
    def acquire(self, cpu: "Processor", lock_id: int):
        """Acquire ``lock_id``; returns the previous releaser's VC snapshot
        (or None) so the engine can apply LRC invalidations."""
        ctx = self.ctx
        st = self.state(lock_id)
        node_id = ctx.node_id_of_cpu(cpu)
        while True:
            if st.token_node == node_id and st.granted_to is None and not st.recall_pending:
                if st.held_by is None:
                    st.held_by = cpu.global_id
                    self.counters.bump("local_lock_acquires")
                    cpu.stats.count("local_lock_acquires")
                    yield from cpu.busy(ctx.arch.smp_sync_cycles, "protocol")
                    return st.vc_snapshot
                # held by another processor of this node: wait locally
                ev = Event(ctx.sim, name=f"lock{lock_id}.local")
                st.local_waiters.append(ev)
                yield from cpu.wait_for(ev, "lock_wait")
                continue
            # remote path (the token is not here)
            self.counters.bump("remote_lock_acquires")
            cpu.stats.count("remote_lock_acquires")
            if st.home_node == node_id:
                # we *are* the home: arbitrate locally, recall the token
                ev = Event(ctx.sim, name=f"lock{lock_id}.homereq")
                st.home_queue.append(
                    _LocalRequest((lock_id, node_id, cpu.global_id), ev)
                )
                if (
                    st.token_node is not None
                    and st.token_node != st.home_node
                    and not st.recall_sent
                ):
                    st.recall_sent = True
                    yield from ctx.msg.send_async(
                        cpu,
                        st.home_node,
                        st.token_node,
                        TAG_LOCK_RECALL,
                        ACK_BYTES,
                        payload=lock_id,
                    )
                snap = yield from cpu.wait_for(ev, "lock_wait")
            else:
                snap = yield from ctx.msg.rpc(
                    cpu,
                    node_id,
                    st.home_node,
                    TAG_LOCK_ACQUIRE,
                    REQUEST_HEADER_BYTES,
                    payload=(lock_id, node_id, cpu.global_id),
                    wait_category="lock_wait",
                )
            # grant: home already moved the token to us and reserved the
            # lock for this processor
            assert st.granted_to == cpu.global_id
            st.held_by = cpu.global_id
            st.granted_to = None
            return snap

    def release(self, cpu: "Processor", lock_id: int, vc_snapshot: Tuple[int, ...]):
        """Release ``lock_id``; ``vc_snapshot`` is the releaser's clock
        after its flush (piggybacked to the next acquirer)."""
        ctx = self.ctx
        st = self.state(lock_id)
        if st.held_by != cpu.global_id:
            raise RuntimeError(
                f"processor {cpu.global_id} releasing lock {lock_id} "
                f"held by {st.held_by}"
            )
        node_id = ctx.node_id_of_cpu(cpu)
        st.vc_snapshot = vc_snapshot
        st.held_by = None
        yield from cpu.busy(ctx.arch.smp_sync_cycles, "protocol")
        if st.recall_pending:
            st.recall_pending = False
            st.token_node = None
            self._wake_local(st)  # local waiters must retry remotely
            yield from ctx.msg.send_async(
                cpu,
                node_id,
                st.home_node,
                TAG_TOKEN_RETURN,
                ACK_BYTES + 4 * len(vc_snapshot),
                payload=(lock_id, vc_snapshot),
            )
            return
        if (
            node_id == st.home_node
            and st.home_queue
            and st.held_by is None
            and st.granted_to is None
        ):
            # Releasing at the home with remote requesters queued.  The
            # held/granted re-check matters: a local processor may have
            # legitimately claimed the lock during the smp_sync yield
            # above, in which case *its* release will pump the queue.
            yield from self._grant_next(cpu, st, in_handler=False)
            return
        self._wake_local(st)

    # ------------------------------------------------------------------ #
    # home / token-node handlers (run in interrupt context)
    # ------------------------------------------------------------------ #
    def handle_acquire(self, cpu: "Processor", msg: "Message"):
        ctx = self.ctx
        lock_id, _req_node, _req_proc = msg.payload
        st = self.state(lock_id)
        yield ctx.arch.handler_base_cycles
        free_at_home = (
            st.token_node == st.home_node
            and st.held_by is None
            and st.granted_to is None
            and not st.home_queue
        )
        if free_at_home:
            yield from self._grant(cpu, st, msg, in_handler=True)
            return
        st.home_queue.append(msg)
        if (
            st.token_node is not None
            and st.token_node != st.home_node
            and not st.recall_sent
        ):
            st.recall_sent = True
            yield from ctx.msg.send_async(
                cpu,
                st.home_node,
                st.token_node,
                TAG_LOCK_RECALL,
                ACK_BYTES,
                payload=lock_id,
                in_handler=True,
            )

    def handle_recall(self, cpu: "Processor", msg: "Message"):
        ctx = self.ctx
        lock_id = msg.payload
        st = self.state(lock_id)
        node_id = ctx.node_id_of_cpu(cpu)
        yield ctx.arch.handler_base_cycles
        if st.token_node == node_id and st.held_by is None and st.granted_to is None:
            st.token_node = None
            self._wake_local(st)
            snap = st.vc_snapshot or ()
            yield from ctx.msg.send_async(
                cpu,
                node_id,
                st.home_node,
                TAG_TOKEN_RETURN,
                ACK_BYTES + 4 * len(snap),
                payload=(lock_id, st.vc_snapshot),
                in_handler=True,
            )
        else:
            st.recall_pending = True

    def handle_token_return(self, cpu: "Processor", msg: "Message"):
        ctx = self.ctx
        lock_id, vc_snapshot = msg.payload
        st = self.state(lock_id)
        yield ctx.arch.handler_base_cycles
        st.token_node = st.home_node
        st.recall_sent = False
        if vc_snapshot is not None:
            st.vc_snapshot = vc_snapshot
        if st.home_queue:
            yield from self._grant_next(cpu, st, in_handler=True)

    # ------------------------------------------------------------------ #
    def _grant_next(self, cpu: "Processor", st: LockState, in_handler: bool):
        msg = st.home_queue.popleft()
        yield from self._grant(cpu, st, msg, in_handler)
        # if more requesters wait and the token just left home, recall it
        if st.home_queue and st.token_node != st.home_node and not st.recall_sent:
            st.recall_sent = True
            yield from self.ctx.msg.send_async(
                cpu,
                st.home_node,
                st.token_node,
                TAG_LOCK_RECALL,
                ACK_BYTES,
                payload=st.lock_id,
                in_handler=in_handler,
            )

    def _grant(self, cpu: "Processor", st: LockState, msg, in_handler: bool):
        _lock_id, req_node, req_proc = msg.payload
        st.token_node = req_node
        st.granted_to = req_proc
        if isinstance(msg, _LocalRequest):
            # home-local requester: hand over through shared memory
            yield self.ctx.arch.smp_sync_cycles
            msg.reply_to.succeed(st.vc_snapshot)
            return
        size = self.grant_size_fn(req_proc, st.vc_snapshot)
        yield from self.ctx.msg.send_reply(cpu, msg, size, payload=st.vc_snapshot)
