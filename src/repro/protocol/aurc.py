"""Automatic Update Release Consistency (AURC).

AURC replaces HLRC's software diffs with *hardware write propagation*: a
snooping device on the memory bus forwards writes to shared, remotely
homed pages directly to the home node through the NI (SHRIMP-style
automatic update).  Consequences, all modelled here:

* **no twins, no diffs** — first writes are cheap, releases do no word
  comparison;
* **update traffic flows during computation** — every write run becomes
  wire traffic immediately (``send_data``: no host overhead, no interrupt
  at the home, deposited straight into the home's memory);
* **fine-grain packets** — updates that are apart in space or time do
  not coalesce, so a write event of ``runs`` disjoint runs emits at
  least ``runs`` packets.  This is why AURC is much more sensitive to NI
  occupancy than HLRC (paper Figure 11);
* **releases wait for outstanding updates to drain** (the home must be
  up to date before the lock can pass), then advance the clock and log
  write notices exactly as in HLRC;
* fetches, locks, barriers, and invalidations are inherited unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.protocol.diffs import page_words
from repro.protocol.hlrc import HLRCProtocol
from repro.sim.primitives import AllOf, Event
from repro.verify.events import EV_INTERVAL, EV_WRITE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.processor import Processor


class AURCProtocol(HLRCProtocol):
    """HLRC with hardware automatic-update write propagation."""

    name = "aurc"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: per-processor outstanding update deposit events
        self._outstanding: List[List[Event]] = [[] for _ in range(self.ctx.n_procs)]

    # ------------------------------------------------------------------ #
    def write_immediate(self, cpu: "Processor", page: int, words: int = 1, runs: int = 1) -> bool:
        """AURC home-page writes raise no update traffic and cost nothing."""
        ctx = self.ctx
        node_id = ctx.node_id_of_cpu(cpu)
        home = ctx.directory.home(page, node_id)
        if home != node_id:
            return False  # remote home: the automatic update must ship
        pw = page_words(ctx.arch, ctx.comm.page_size)
        if words > pw:
            words = pw
        d = self.dirty[cpu.global_id]
        cur = d.get(page, 0) + words
        d[page] = cur if cur < pw else pw
        if ctx.verify is not None:
            ctx.verify.record(
                ctx.sim.now, EV_WRITE, (cpu.global_id, node_id, page, home, words)
            )
        return True

    def write(self, cpu: "Processor", page: int, words: int = 1, runs: int = 1):
        ctx = self.ctx
        yield from self.read(cpu, page)  # write fault still fetches
        node_id = ctx.node_id_of_cpu(cpu)
        home = ctx.directory.home(page, node_id)
        words = min(words, page_words(ctx.arch, ctx.comm.page_size))
        d = self.dirty[cpu.global_id]
        d[page] = min(page_words(ctx.arch, ctx.comm.page_size), d.get(page, 0) + words)
        if ctx.verify is not None:
            ctx.verify.record(
                ctx.sim.now, EV_WRITE, (cpu.global_id, node_id, page, home, words)
            )
        if home == node_id:
            return
        # hardware forwards the written words to the home as it happens
        self.counters.bump("updates_sent")
        self.counters.bump("update_words", words)
        cpu.stats.count("updates_sent")
        deposit = yield from ctx.msg.send_data(
            cpu,
            node_id,
            home,
            size_bytes=words * ctx.arch.word_bytes,
            min_packets=max(1, runs),
            tag="aurc_update",
        )
        pending = self._outstanding[cpu.global_id]
        pending.append(deposit)
        # bound bookkeeping: drop already-delivered updates
        if len(pending) > 64:
            self._outstanding[cpu.global_id] = [e for e in pending if not e.triggered]

    # ------------------------------------------------------------------ #
    def flush(self, cpu: "Processor", category: str = "lock_wait"):
        """AURC release: wait for update traffic to drain; no diffs."""
        ctx = self.ctx
        proc = cpu.global_id
        pending = [e for e in self._outstanding[proc] if not e.triggered]
        self._outstanding[proc] = []
        if pending:
            metrics = ctx.metrics
            if metrics is None:
                yield from cpu.wait_for(AllOf(ctx.sim, pending), category)
            else:
                t0 = ctx.sim.now
                yield from cpu.wait_for(AllOf(ctx.sim, pending), category)
                metrics.bump("protocol.update_drain.count")
                metrics.add_cycles("protocol.update_drain", ctx.sim.now - t0)
        d = self.dirty[proc]
        if not d:
            return
        pages = tuple(d)
        self.vc[proc].increment(proc)
        self.log.append(proc, pages)
        if ctx.verify is not None:
            ctx.verify.record(
                ctx.sim.now,
                EV_INTERVAL,
                (proc, self.vc[proc][proc], pages, self.vc[proc].snapshot()),
            )
        self.counters.bump("write_notices", len(pages))
        mem = self.mem[ctx.node_id_of(proc)]
        for page in pages:
            mem.twins.discard(page)
        d.clear()
