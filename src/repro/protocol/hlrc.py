"""Home-based Lazy Release Consistency (HLRC) — the paper's base protocol.

Each shared page has a *home* node holding the master copy.  The protocol
actions, and where their costs land:

=================  ====================================================
event              what happens
=================  ====================================================
read/write fault   trap + TLB (``protocol`` time on the faulting CPU);
                   one page fetch **per node** (SMP fetch coalescing):
                   RPC to the home — *interrupt* there, handler sends
                   the page back, requester blocks in ``data_wait``
first write        twin creation (page copy) on the writing CPU, unless
                   the page is home-local (no twin needed — the paper's
                   single-writer observation)
release            for every dirty non-home page: compute diff (word
                   compare + include costs), ship diffs to each home in
                   one batched RPC per home (interrupt + apply + ack);
                   then advance the vector clock and log write notices
acquire            token-based lock acquire (local or remote, see
                   :mod:`repro.protocol.locks`); the grant carries the
                   last releaser's clock — invalidate all pages with
                   unseen write notices (never pages homed locally)
barrier            flush (release semantics), hierarchical barrier,
                   then invalidate against the merged clock
=================  ====================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.protocol.barriers import BarrierManager
from repro.protocol.base import (
    ACK_BYTES,
    GRANT_BASE_BYTES,
    REQUEST_HEADER_BYTES,
    TAG_DIFF_APPLY,
    TAG_LOCK_ACQUIRE,
    TAG_LOCK_RECALL,
    TAG_PAGE_FETCH,
    TAG_TOKEN_RETURN,
    NodeMemoryState,
    ProtocolContext,
    ProtocolCounters,
)
from repro.protocol.diffs import (
    diff_apply_cost,
    diff_create_cost,
    diff_wire_bytes,
    page_words,
    twin_cost,
)
from repro.protocol.locks import LockManager
from repro.protocol.timestamps import IntervalLog, VectorClock, notices_wire_bytes
from repro.sim.primitives import Event
from repro.verify.events import (
    EV_ACQUIRE,
    EV_APPLY,
    EV_BARRIER,
    EV_DIFF_APPLY,
    EV_DIFF_SEND,
    EV_FETCH,
    EV_INTERVAL,
    EV_READ,
    EV_RELEASE,
    EV_TWIN,
    EV_TWIN_DROP,
    EV_WRITE,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.processor import Processor
    from repro.net.message import Message


class HLRCProtocol:
    """The all-software home-based LRC engine."""

    name = "hlrc"

    def __init__(self, ctx: ProtocolContext, counters: Optional[ProtocolCounters] = None):
        self.ctx = ctx
        self.counters = counters if counters is not None else ProtocolCounters()
        n = ctx.n_procs
        self.mem: Dict[int, NodeMemoryState] = {
            node.node_id: NodeMemoryState() for node in ctx.nodes
        }
        self.vc: List[VectorClock] = [VectorClock(n) for _ in range(n)]
        self.log = IntervalLog(n)
        #: per-processor dirty map: page -> words written this interval
        self.dirty: List[Dict[int, int]] = [dict() for _ in range(n)]
        self.locks = LockManager(ctx, self.counters, grant_size_fn=self._grant_bytes)
        self.barriers = BarrierManager(
            ctx,
            self.counters,
            merge_fn=self._merged_snapshot,
            notice_bytes_fn=self._barrier_notice_bytes,
        )
        self.install()

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def install(self) -> None:
        """Wire every node's NI request hook to this engine's dispatch."""
        for node in self.ctx.nodes:
            node.nic.on_request = self._make_on_request(node)
            node.nic.on_queue_overflow = node.irq.null_interrupt

    def _make_on_request(self, node):
        dispatch = getattr(node, "dispatch_request", None)
        if dispatch is None:
            # bare test nodes: fall back to plain interrupt delivery
            def on_request(msg: "Message") -> None:
                node.irq.raise_interrupt(
                    lambda cpu: self._dispatch(cpu, msg), name=f"irq.{msg.tag}"
                )

        else:

            def on_request(msg: "Message") -> None:
                dispatch(lambda cpu: self._dispatch(cpu, msg), name=f"req.{msg.tag}")

        return on_request

    def _dispatch(self, cpu: "Processor", msg: "Message"):
        metrics = self.ctx.metrics
        if metrics is None:
            yield from self._dispatch_body(cpu, msg)
            return
        # Hotspot accounting: cycles and invocations per handler tag
        # (the profile CLI's "top-N protocol hotspots" table).
        t0 = self.ctx.sim.now
        yield from self._dispatch_body(cpu, msg)
        metrics.bump(f"handler.{msg.tag}.count")
        metrics.add_cycles(f"handler.{msg.tag}", self.ctx.sim.now - t0)

    def _dispatch_body(self, cpu: "Processor", msg: "Message"):
        tag = msg.tag
        if tag == TAG_PAGE_FETCH:
            yield from self._h_page_fetch(cpu, msg)
        elif tag == TAG_DIFF_APPLY:
            yield from self._h_diff_apply(cpu, msg)
        elif tag == TAG_LOCK_ACQUIRE:
            yield from self.locks.handle_acquire(cpu, msg)
        elif tag == TAG_LOCK_RECALL:
            yield from self.locks.handle_recall(cpu, msg)
        elif tag == TAG_TOKEN_RETURN:
            yield from self.locks.handle_token_return(cpu, msg)
        else:
            raise RuntimeError(f"unknown request tag {tag!r}")

    # ------------------------------------------------------------------ #
    # trace operations (run in the application process)
    # ------------------------------------------------------------------ #
    def first_touch_now(self, cpu: "Processor", page: int) -> None:
        """Initialization-time touch establishing first-touch placement.

        Touches never cost simulated time, so this is a plain call the
        executor can make without spinning up a generator.
        """
        self.ctx.directory.home(page, self.ctx.node_id_of_cpu(cpu))

    def first_touch(self, cpu: "Processor", page: int):
        """Generator form of :meth:`first_touch_now` (API uniformity)."""
        self.first_touch_now(cpu, page)
        return
        yield  # pragma: no cover — generator marker for API uniformity

    def read_immediate(self, cpu: "Processor", page: int) -> bool:
        """Complete a read that needs no simulated time; ``True`` if done.

        Home copies, already-valid copies, and attribution-mode free
        fetches involve no events, so the executor can skip the
        generator machinery entirely.  A ``False`` return leaves all
        protocol state untouched — the caller falls back to :meth:`read`.
        """
        ctx = self.ctx
        node_id = ctx.node_id_of_cpu(cpu)
        home = ctx.directory.home(page, node_id)
        if home == node_id:
            return True  # the home copy is always valid at the home
        mem = self.mem[node_id]
        vlog = ctx.verify
        if page in mem.valid:
            if vlog is not None:
                vlog.record(ctx.sim.now, EV_READ, (cpu.global_id, node_id, page, home))
            return True
        if ctx.free_page_fetches:
            # Section 7 attribution mode: faults appear local and free.
            mem.valid.add(page)
            if vlog is not None:
                vlog.record(ctx.sim.now, EV_FETCH, (cpu.global_id, node_id, page, home))
                vlog.record(ctx.sim.now, EV_READ, (cpu.global_id, node_id, page, home))
            return True
        return False

    def read(self, cpu: "Processor", page: int):
        """Shared read at page granularity; faults and fetches as needed."""
        if self.read_immediate(cpu, page):
            return
        ctx = self.ctx
        node_id = ctx.node_id_of_cpu(cpu)
        home = ctx.directory.home(page, node_id)
        mem = self.mem[node_id]
        vlog = ctx.verify
        # --- page fault ---
        self.counters.bump("page_faults")
        cpu.stats.count("page_faults")
        yield from cpu.busy(
            ctx.arch.tlb_kernel_cycles + ctx.arch.handler_base_cycles, "protocol"
        )
        inflight = mem.fetches.get(page)
        if inflight is not None:
            # another processor of this node already fetches it
            yield from cpu.wait_for(inflight, "data_wait")
            if vlog is not None:
                # The waiter shares the fetched copy: record fetch+read so
                # the oracle's copy tracking matches what it observed.
                vlog.record(ctx.sim.now, EV_FETCH, (cpu.global_id, node_id, page, home))
                vlog.record(ctx.sim.now, EV_READ, (cpu.global_id, node_id, page, home))
            return
        ev = Event(ctx.sim, name=f"fetch.p{page}")
        mem.fetches[page] = ev
        self.counters.bump("page_fetches")
        cpu.stats.count("page_fetches")
        if ctx.comm.is_rdma:
            # RDMA regime: the home's NI serves the page as a remote
            # read — no handler, no interrupt, no home host cycles.
            yield from ctx.msg.remote_read(
                cpu,
                node_id,
                home,
                TAG_PAGE_FETCH,
                REQUEST_HEADER_BYTES,
                ctx.comm.page_size,
                payload=page,
                wait_category="data_wait",
            )
            self.mem[home].faults_served += 1
        else:
            yield from ctx.msg.rpc(
                cpu,
                node_id,
                home,
                TAG_PAGE_FETCH,
                REQUEST_HEADER_BYTES,
                payload=page,
                wait_category="data_wait",
            )
        mem.valid.add(page)
        del mem.fetches[page]
        if vlog is not None:
            vlog.record(ctx.sim.now, EV_FETCH, (cpu.global_id, node_id, page, home))
            vlog.record(ctx.sim.now, EV_READ, (cpu.global_id, node_id, page, home))
        ev.succeed()

    def write_immediate(self, cpu: "Processor", page: int, words: int = 1, runs: int = 1) -> bool:
        """Complete a write that needs no simulated time; ``True`` if done.

        Immediate iff the read side is immediate and no twin must be
        created (home page, or twin already present this interval).  A
        ``False`` return leaves all protocol state untouched.
        """
        ctx = self.ctx
        node_id = ctx.node_id_of_cpu(cpu)
        home = ctx.directory.home(page, node_id)
        if home != node_id and page not in self.mem[node_id].twins:
            return False  # twin creation costs simulated time
        if not self.read_immediate(cpu, page):
            return False
        pw = page_words(ctx.arch, ctx.comm.page_size)
        if words > pw:
            words = pw
        d = self.dirty[cpu.global_id]
        cur = d.get(page, 0) + words
        d[page] = cur if cur < pw else pw
        if ctx.verify is not None:
            ctx.verify.record(
                ctx.sim.now, EV_WRITE, (cpu.global_id, node_id, page, home, words)
            )
        return True

    def write(self, cpu: "Processor", page: int, words: int = 1, runs: int = 1):
        """Shared write: fetch if needed, twin on first write, track dirt."""
        ctx = self.ctx
        yield from self.read(cpu, page)  # write faults fetch too
        node_id = ctx.node_id_of_cpu(cpu)
        home = ctx.directory.home(page, node_id)
        words = min(words, page_words(ctx.arch, ctx.comm.page_size))
        if home != node_id:
            mem = self.mem[node_id]
            if page not in mem.twins:
                mem.twins.add(page)
                if ctx.verify is not None:
                    ctx.verify.record(ctx.sim.now, EV_TWIN, (node_id, page))
                yield from cpu.busy(twin_cost(ctx.arch, ctx.comm.page_size), "protocol")
        d = self.dirty[cpu.global_id]
        d[page] = min(
            page_words(ctx.arch, ctx.comm.page_size), d.get(page, 0) + words
        )
        if ctx.verify is not None:
            ctx.verify.record(
                ctx.sim.now, EV_WRITE, (cpu.global_id, node_id, page, home, words)
            )

    def acquire(self, cpu: "Processor", lock_id: int):
        snap = yield from self.locks.acquire(cpu, lock_id)
        ctx = self.ctx
        if ctx.verify is not None:
            ctx.verify.record(
                ctx.sim.now,
                EV_ACQUIRE,
                (
                    cpu.global_id,
                    ctx.node_id_of_cpu(cpu),
                    lock_id,
                    None if snap is None else tuple(snap),
                ),
            )
        yield from self._apply_incoming(cpu, snap)

    def release(self, cpu: "Processor", lock_id: int):
        yield from self.flush(cpu, category="lock_wait")
        snap = self.vc[cpu.global_id].snapshot()
        ctx = self.ctx
        if ctx.verify is not None:
            ctx.verify.record(ctx.sim.now, EV_RELEASE, (cpu.global_id, lock_id, snap))
        yield from self.locks.release(cpu, lock_id, snap)

    def barrier(self, cpu: "Processor", barrier_id: int):
        yield from self.flush(cpu, category="barrier_wait")
        merged = yield from self.barriers.barrier(cpu, barrier_id)
        ctx = self.ctx
        if ctx.verify is not None:
            ctx.verify.record(
                ctx.sim.now,
                EV_BARRIER,
                (
                    cpu.global_id,
                    ctx.node_id_of_cpu(cpu),
                    barrier_id,
                    None if merged is None else tuple(merged),
                ),
            )
        yield from self._apply_incoming(cpu, merged)

    # ------------------------------------------------------------------ #
    # release-side machinery
    # ------------------------------------------------------------------ #
    def flush(self, cpu: "Processor", category: str = "lock_wait"):
        """Propagate this processor's writes to the homes (diffs) and open
        a new interval with write notices."""
        ctx = self.ctx
        proc = cpu.global_id
        d = self.dirty[proc]
        if not d:
            return
        node_id = ctx.node_id_of(proc)
        pages = tuple(d)
        by_home: Dict[int, List[Tuple[int, int]]] = {}
        for page, words in d.items():
            home = ctx.directory.home(page, node_id)
            if home != node_id:
                by_home.setdefault(home, []).append((page, words))
        metrics = ctx.metrics
        vlog = ctx.verify
        for home, entries in sorted(by_home.items()):
            create = sum(
                diff_create_cost(ctx.arch, ctx.comm.page_size, w) for _, w in entries
            )
            if metrics is not None:
                metrics.bump("protocol.diff_create.count", len(entries))
                metrics.add_cycles("protocol.diff_create", create)
            yield from cpu.busy(create, "protocol")
            total_words = sum(w for _, w in entries)
            self.counters.bump("diffs_created", len(entries))
            self.counters.bump("diff_words", total_words)
            cpu.stats.count("diffs_created", len(entries))
            size = sum(diff_wire_bytes(ctx.arch, w) for _, w in entries)
            if vlog is not None:
                vlog.record(
                    ctx.sim.now,
                    EV_DIFF_SEND,
                    (proc, node_id, home, tuple((p, w) for p, w in entries)),
                )
            yield from ctx.msg.rpc(
                cpu,
                node_id,
                home,
                TAG_DIFF_APPLY,
                size,
                payload=[(p, w) for p, w in entries],
                wait_category=category,
            )
        # open a new interval carrying this flush's write notices
        self.vc[proc].increment(proc)
        self.log.append(proc, pages)
        if vlog is not None:
            vlog.record(
                ctx.sim.now,
                EV_INTERVAL,
                (proc, self.vc[proc][proc], pages, self.vc[proc].snapshot()),
            )
        self.counters.bump("write_notices", len(pages))
        mem = self.mem[node_id]
        for page in pages:
            if vlog is not None and page in mem.twins:
                vlog.record(ctx.sim.now, EV_TWIN_DROP, (node_id, page))
            mem.twins.discard(page)
        d.clear()

    def _apply_incoming(self, cpu: "Processor", snapshot: Optional[Tuple[int, ...]]):
        """Merge an incoming clock and invalidate unseen-notice pages."""
        if not snapshot:
            return
        ctx = self.ctx
        proc = cpu.global_id
        incoming = VectorClock.from_snapshot(snapshot)
        mine = self.vc[proc]
        if mine.dominates(incoming):
            return
        pages = self.log.notices_between(mine, incoming)
        mine.merge(incoming)
        node_id = ctx.node_id_of(proc)
        to_invalidate = [
            p for p in pages if ctx.directory.peek_home(p) != node_id
        ]
        if to_invalidate:
            self.mem[node_id].invalidate(to_invalidate)
        # Record at the instant invalidations take effect (before the busy
        # time is charged) so a node-mate's concurrent refetch cannot be
        # reordered ahead of the invalidation in the verify stream.
        if ctx.verify is not None:
            ctx.verify.record(
                ctx.sim.now,
                EV_APPLY,
                (proc, node_id, tuple(snapshot), mine.snapshot(), tuple(to_invalidate)),
            )
        if to_invalidate:
            yield from cpu.busy(
                len(to_invalidate) * ctx.arch.page_invalidate_cycles, "protocol"
            )

    # ------------------------------------------------------------------ #
    # interrupt handlers (home side)
    # ------------------------------------------------------------------ #
    def _h_page_fetch(self, cpu: "Processor", msg: "Message"):
        ctx = self.ctx
        yield ctx.arch.handler_base_cycles + ctx.arch.tlb_kernel_cycles
        node_id = ctx.node_id_of_cpu(cpu)
        self.mem[node_id].faults_served += 1
        yield from ctx.msg.send_reply(cpu, msg, ctx.comm.page_size)

    def _h_diff_apply(self, cpu: "Processor", msg: "Message"):
        ctx = self.ctx
        entries = msg.payload
        apply_cost = sum(diff_apply_cost(ctx.arch, w) for _, w in entries)
        yield ctx.arch.handler_base_cycles + apply_cost
        if ctx.verify is not None:
            self._emit_diff_apply(cpu, msg)
        yield from ctx.msg.send_reply(cpu, msg, ACK_BYTES)

    def _emit_diff_apply(self, cpu: "Processor", msg: "Message") -> None:
        """Record a diff landing on the home copy (verify runs only)."""
        ctx = self.ctx
        ctx.verify.record(
            ctx.sim.now,
            EV_DIFF_APPLY,
            (
                ctx.node_id_of_cpu(cpu),
                msg.src_node,
                tuple((p, w) for p, w in msg.payload),
            ),
        )

    # ------------------------------------------------------------------ #
    # consistency-payload sizing helpers
    # ------------------------------------------------------------------ #
    def _grant_bytes(self, req_proc: int, snapshot: Optional[Tuple[int, ...]]) -> int:
        if not snapshot:
            return GRANT_BASE_BYTES
        incoming = VectorClock.from_snapshot(snapshot)
        count = self.log.notice_count_between(self.vc[req_proc], incoming)
        return GRANT_BASE_BYTES + notices_wire_bytes(count)

    def _merged_snapshot(self) -> Tuple[int, ...]:
        merged = VectorClock(self.ctx.n_procs)
        for clock in self.vc:
            merged.merge(clock)
        return merged.snapshot()

    def _barrier_notice_bytes(self) -> int:
        merged = VectorClock.from_snapshot(self._merged_snapshot())
        counts = [
            self.log.notice_count_between(self.vc[p], merged)
            for p in range(self.ctx.n_procs)
        ]
        avg = sum(counts) // max(1, len(counts))
        return notices_wire_bytes(avg)
