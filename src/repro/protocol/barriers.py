"""Hierarchical barriers for SMP-node clusters.

The paper's protocol implements barriers "with synchronous messages and
no interrupts", hierarchically:

1. **Intra-node leg** — arrivals synchronize through node shared memory
   (``smp_sync_cycles`` each).  The *last* processor to arrive becomes
   the node's representative.
2. **Inter-node leg** — each representative sends a SYNC arrival message
   to the barrier master (node 0).  The master's representative is
   already *waiting* for these messages, so no interrupts are raised.
3. **Release** — the master merges the consistency information (vector
   clocks; write notices piggyback on the release messages) and sends a
   SYNC release to every other representative, which releases its node's
   processors through shared memory.

Barrier episodes are identified per (barrier id, per-processor visit
count), so back-to-back barriers on the same id cannot alias.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.protocol.base import GRANT_BASE_BYTES, ProtocolContext, ProtocolCounters
from repro.sim.primitives import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.processor import Processor


class _Episode:
    """State of one global barrier episode."""

    __slots__ = ("arrived", "release_events", "merged_vc")

    def __init__(self, ctx: ProtocolContext) -> None:
        #: per-node arrival counts
        self.arrived: Dict[int, int] = {}
        #: per-node local release events
        self.release_events: Dict[int, Event] = {}
        self.merged_vc: Optional[Tuple[int, ...]] = None

    def node_release(self, ctx: ProtocolContext, node_id: int) -> Event:
        ev = self.release_events.get(node_id)
        if ev is None:
            ev = self.release_events[node_id] = Event(ctx.sim, name=f"bar.node{node_id}")
        return ev


class BarrierManager:
    """Cluster-wide hierarchical barrier service."""

    def __init__(
        self,
        ctx: ProtocolContext,
        counters: ProtocolCounters,
        merge_fn: Optional[Callable[[], Tuple[int, ...]]] = None,
        notice_bytes_fn: Optional[Callable[[], int]] = None,
        master_node: int = 0,
    ) -> None:
        self.ctx = ctx
        self.counters = counters
        #: produces the merged vector-clock snapshot at barrier completion
        self.merge_fn = merge_fn or (lambda: ())
        #: sizes the piggybacked write notices on release messages
        self.notice_bytes_fn = notice_bytes_fn or (lambda: 0)
        self.master_node = master_node
        self._episodes: Dict[Tuple[int, int], _Episode] = {}
        self._visits: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------ #
    def _episode_for(self, cpu: "Processor", barrier_id: int) -> Tuple[_Episode, int]:
        key = (cpu.global_id, barrier_id)
        visit = self._visits.get(key, 0)
        self._visits[key] = visit + 1
        ep_key = (barrier_id, visit)
        ep = self._episodes.get(ep_key)
        if ep is None:
            ep = self._episodes[ep_key] = _Episode(self.ctx)
        return ep, visit

    def participants_at(self, node_id: int) -> int:
        """Processors of ``node_id`` participating (all of them)."""
        return self.ctx.comm.procs_per_node

    def _mark_phase(self, barrier_id: int, visit: int) -> None:
        """Record a phase boundary (one per global barrier episode).

        Runs where the merged clock is computed, i.e. exactly once per
        episode; the cumulative cluster-wide breakdown snapshot lets
        consumers difference adjacent marks into per-epoch costs.
        """
        metrics = self.ctx.metrics
        if metrics is not None:
            metrics.phase_mark(
                self.ctx.sim.now,
                f"barrier.{barrier_id}.{visit}",
                self.ctx.aggregate_time(),
            )

    # ------------------------------------------------------------------ #
    def barrier(self, cpu: "Processor", barrier_id: int):
        """Run one barrier arrival for ``cpu``.

        Returns the merged vector-clock snapshot so the engine can apply
        post-barrier invalidations.  The engine flushes (release
        semantics) *before* calling this.
        """
        ctx = self.ctx
        node_id = ctx.node_id_of_cpu(cpu)
        ep, visit = self._episode_for(cpu, barrier_id)
        self.counters.bump("barriers")
        cpu.stats.count("barriers")

        # intra-node leg
        yield from cpu.busy(ctx.arch.smp_sync_cycles, "protocol")
        ep.arrived[node_id] = ep.arrived.get(node_id, 0) + 1
        if ep.arrived[node_id] < self.participants_at(node_id):
            yield from cpu.wait_for(ep.node_release(ctx, node_id), "barrier_wait")
            return ep.merged_vc

        # this processor is the node's representative
        if ctx.n_nodes == 1:
            ep.merged_vc = self.merge_fn()
            self._mark_phase(barrier_id, visit)
            ep.node_release(ctx, node_id).succeed()
            return ep.merged_vc

        arrive_tag = f"bar.{barrier_id}.{visit}.arrive"
        release_tag = f"bar.{barrier_id}.{visit}.release"

        if node_id == self.master_node:
            for _ in range(ctx.n_nodes - 1):
                yield from cpu.wait_for(
                    ctx.msg.receive_sync(node_id, arrive_tag), "barrier_wait"
                )
            ep.merged_vc = self.merge_fn()
            self._mark_phase(barrier_id, visit)
            size = GRANT_BASE_BYTES + self.notice_bytes_fn()
            for other in range(ctx.n_nodes):
                if other == node_id:
                    continue
                yield from ctx.msg.send_sync(
                    cpu, node_id, other, release_tag, size, payload=ep.merged_vc
                )
            ep.node_release(ctx, node_id).succeed()
            return ep.merged_vc

        yield from ctx.msg.send_sync(
            cpu, node_id, self.master_node, arrive_tag, GRANT_BASE_BYTES
        )
        merged = yield from cpu.wait_for(
            ctx.msg.receive_sync(node_id, release_tag), "barrier_wait"
        )
        ep.merged_vc = merged
        ep.node_release(ctx, node_id).succeed()
        return merged
