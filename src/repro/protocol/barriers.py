"""Hierarchical barriers for SMP-node clusters.

The paper's protocol implements barriers "with synchronous messages and
no interrupts", hierarchically:

1. **Intra-node leg** — arrivals synchronize through node shared memory
   (``smp_sync_cycles`` each).  The *last* processor to arrive becomes
   the node's representative.
2. **Inter-node leg** — the representatives synchronize through one of
   the pluggable collectives in :mod:`repro.protocol.collectives`
   (flat master gather/broadcast — the paper's scheme and the default —
   binomial tree, or dissemination).  The representatives are already
   *waiting* for these messages, so no interrupts are raised.
3. **Release** — the merged consistency information (vector clocks;
   write notices piggyback on the release messages) reaches every
   representative, which releases its node's processors through shared
   memory.

Barrier episodes are identified per (barrier id, per-processor visit
count), so back-to-back barriers on the same id cannot alias.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.protocol.base import ProtocolContext, ProtocolCounters
from repro.protocol.collectives import make_collective
from repro.sim.primitives import Event
from repro.verify.events import EV_BARRIER_ARRIVE, EV_BARRIER_RELEASE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.processor import Processor


class _Episode:
    """State of one global barrier episode."""

    __slots__ = ("arrived", "release_events", "merged_vc", "reps_done")

    def __init__(self, ctx: ProtocolContext) -> None:
        #: per-node arrival counts
        self.arrived: Dict[int, int] = {}
        #: per-node local release events
        self.release_events: Dict[int, Event] = {}
        self.merged_vc: Optional[Tuple[int, ...]] = None
        #: representatives that completed the inter-node leg (non-flat
        #: collectives mark the phase boundary when the last one does)
        self.reps_done: int = 0

    def node_release(self, ctx: ProtocolContext, node_id: int) -> Event:
        ev = self.release_events.get(node_id)
        if ev is None:
            ev = self.release_events[node_id] = Event(ctx.sim, name=f"bar.node{node_id}")
        return ev


class BarrierManager:
    """Cluster-wide hierarchical barrier service."""

    def __init__(
        self,
        ctx: ProtocolContext,
        counters: ProtocolCounters,
        merge_fn: Optional[Callable[[], Tuple[int, ...]]] = None,
        notice_bytes_fn: Optional[Callable[[], int]] = None,
        master_node: int = 0,
    ) -> None:
        self.ctx = ctx
        self.counters = counters
        #: produces the merged vector-clock snapshot at barrier completion
        self.merge_fn = merge_fn or (lambda: ())
        #: sizes the piggybacked write notices on release messages
        self.notice_bytes_fn = notice_bytes_fn or (lambda: 0)
        self.master_node = master_node
        self.collective = make_collective(ctx.collective, self)
        self._episodes: Dict[Tuple[int, int], _Episode] = {}
        self._visits: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------ #
    def _episode_for(self, cpu: "Processor", barrier_id: int) -> Tuple[_Episode, int]:
        key = (cpu.global_id, barrier_id)
        visit = self._visits.get(key, 0)
        self._visits[key] = visit + 1
        ep_key = (barrier_id, visit)
        ep = self._episodes.get(ep_key)
        if ep is None:
            ep = self._episodes[ep_key] = _Episode(self.ctx)
        return ep, visit

    def participants_at(self, node_id: int) -> int:
        """Processors of ``node_id`` participating (all of them)."""
        return self.ctx.comm.procs_per_node

    def _mark_phase(self, barrier_id: int, visit: int) -> None:
        """Record a phase boundary (one per global barrier episode).

        Runs where the merged clock is computed (flat: at the master) or
        when the last representative completes (tree/dissemination), i.e.
        exactly once per episode; the cumulative cluster-wide breakdown
        snapshot lets consumers difference adjacent marks into per-epoch
        costs.
        """
        metrics = self.ctx.metrics
        if metrics is not None:
            metrics.phase_mark(
                self.ctx.sim.now,
                f"barrier.{barrier_id}.{visit}",
                self.ctx.aggregate_time(),
            )

    def _complete(self, ep: _Episode, barrier_id: int, visit: int) -> None:
        """One representative finished the inter-node leg.

        Non-flat collectives have no single point where the episode is
        globally known complete, so the phase boundary is marked when the
        *last* representative finishes — inter-stage hop waits land
        inside the barrier phase, not the next compute epoch.
        """
        ep.reps_done += 1
        if ep.reps_done == self.ctx.n_nodes:
            self._mark_phase(barrier_id, visit)

    # ------------------------------------------------------------------ #
    def barrier(self, cpu: "Processor", barrier_id: int):
        """Run one barrier arrival for ``cpu``.

        Returns the merged vector-clock snapshot so the engine can apply
        post-barrier invalidations.  The engine flushes (release
        semantics) *before* calling this.
        """
        ctx = self.ctx
        node_id = ctx.node_id_of_cpu(cpu)
        ep, visit = self._episode_for(cpu, barrier_id)
        self.counters.bump("barriers")
        cpu.stats.count("barriers")
        vlog = ctx.verify
        if vlog is not None:
            vlog.record(
                ctx.sim.now,
                EV_BARRIER_ARRIVE,
                (cpu.global_id, node_id, barrier_id, visit, self.collective.name),
            )

        # intra-node leg
        yield from cpu.busy(ctx.arch.smp_sync_cycles, "protocol")
        ep.arrived[node_id] = ep.arrived.get(node_id, 0) + 1
        if ep.arrived[node_id] < self.participants_at(node_id):
            yield from cpu.wait_for(ep.node_release(ctx, node_id), "barrier_wait")
            merged = ep.merged_vc
        elif ctx.n_nodes == 1:
            # this processor is the node's (and cluster's) representative
            ep.merged_vc = self.merge_fn()
            self._mark_phase(barrier_id, visit)
            ep.node_release(ctx, node_id).succeed()
            merged = ep.merged_vc
        else:
            merged = yield from self.collective.inter_node(
                cpu, node_id, ep, barrier_id, visit
            )

        if vlog is not None:
            vlog.record(
                ctx.sim.now,
                EV_BARRIER_RELEASE,
                (cpu.global_id, node_id, barrier_id, visit, self.collective.name),
            )
        return merged
