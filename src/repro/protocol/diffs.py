"""Twin/diff machinery for HLRC.

HLRC propagates updates as *diffs*: on the first write to a non-home page
in an interval, the writer copies the page (the *twin*); at a release it
word-compares twin against current contents and ships only the changed
words to the home, which applies them to the master copy.

Two layers live here:

* a **functional** implementation over numpy arrays (:func:`compute_diff`,
  :func:`apply_diff`) used by correctness/property tests — the invariant
  ``apply_diff(twin, compute_diff(twin, cur)) == cur`` is what makes
  diff-based propagation sound;
* the **cost model** the timing simulation charges (paper Section 2): a
  fixed cost per word *compared* plus a cost per word actually *included*
  in the diff, and a copy cost per word for twin creation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.params import ArchParams


@dataclass(frozen=True)
class Diff:
    """Changed words of a page: positions and new values."""

    indices: np.ndarray  # int32 word offsets within the page
    values: np.ndarray  # uint32 new word values

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.values):
            raise ValueError("indices/values length mismatch")

    @property
    def word_count(self) -> int:
        return int(len(self.indices))

    def wire_bytes(self, word_bytes: int = 4) -> int:
        """Bytes on the wire: per-word (offset, value) pairs."""
        return self.word_count * (4 + word_bytes)


def compute_diff(twin: np.ndarray, current: np.ndarray) -> Diff:
    """Word-compare ``current`` against ``twin`` and extract the changes."""
    if twin.shape != current.shape:
        raise ValueError("twin and current page differ in size")
    changed = np.flatnonzero(twin != current)
    return Diff(indices=changed.astype(np.int32), values=current[changed].copy())


def apply_diff(base: np.ndarray, diff: Diff) -> None:
    """Apply ``diff`` to ``base`` in place (the home's master copy)."""
    if diff.word_count and int(diff.indices.max()) >= len(base):
        raise ValueError("diff index beyond page bounds")
    base[diff.indices] = diff.values


# --------------------------------------------------------------------- #
# cost model
# --------------------------------------------------------------------- #
def page_words(arch: "ArchParams", page_size: int) -> int:
    return page_size // arch.word_bytes


def twin_cost(arch: "ArchParams", page_size: int) -> int:
    """Cycles to create a twin (copy the whole page)."""
    return page_words(arch, page_size) * arch.twin_copy_cycles_per_word


def diff_create_cost(arch: "ArchParams", page_size: int, words_changed: int) -> int:
    """Cycles to *create* a diff: compare every word, include the changed."""
    compared = page_words(arch, page_size)
    included = min(words_changed, compared)
    return (
        compared * arch.diff_compare_cycles_per_word
        + included * arch.diff_include_cycles_per_word
    )


def diff_apply_cost(arch: "ArchParams", words_changed: int) -> int:
    """Cycles for the home to apply a diff (touch each included word)."""
    return words_changed * arch.diff_include_cycles_per_word


def diff_wire_bytes(arch: "ArchParams", words_changed: int) -> int:
    """Wire size of a diff: (offset, value) per word plus a small header."""
    return 16 + words_changed * (4 + arch.word_bytes)
