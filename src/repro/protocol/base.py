"""Shared protocol plumbing: context, node memory state, handler dispatch.

The protocol engines (:class:`~repro.protocol.hlrc.HLRCProtocol`,
:class:`~repro.protocol.aurc.AURCProtocol`) operate on a
:class:`ProtocolContext` — the assembled cluster — and keep all SVM state
here-defined structures:

* :class:`NodeMemoryState` — per-node page caching state.  SMP nodes
  share pages in hardware, so validity, twins, and in-flight fetches are
  tracked **per node**, not per processor (the paper's SMP protocol);
* per-processor dirty-word tracking for diff/write-notice generation
  (inside the engines).

Every remote request arrives as an interrupt whose handler is found by
``tag`` in the engine's dispatch table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set

from repro.sim.primitives import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.params import ArchParams, CommParams
    from repro.arch.processor import Processor
    from repro.net.messaging import MessagingLayer
    from repro.osys.vm import PageDirectory
    from repro.sim.engine import Simulator

#: handler tags used on the wire
TAG_PAGE_FETCH = "page_fetch"
TAG_DIFF_APPLY = "diff_apply"
TAG_LOCK_ACQUIRE = "lock_acquire"
TAG_LOCK_RECALL = "lock_recall"
TAG_TOKEN_RETURN = "token_return"

#: small fixed wire sizes (bytes)
REQUEST_HEADER_BYTES = 64
ACK_BYTES = 16
GRANT_BASE_BYTES = 64


@dataclass
class ProtocolContext:
    """Everything a protocol engine needs from the assembled cluster."""

    sim: "Simulator"
    arch: "ArchParams"
    comm: "CommParams"
    msg: "MessagingLayer"
    directory: "PageDirectory"
    #: node objects (duck-typed: node_id, cpus, irq, nic, membus)
    nodes: List[Any]
    #: all processors, indexed by global id
    procs: List["Processor"]
    #: diagnostic: remote page fetches are free (Section 7 attribution)
    free_page_fetches: bool = False
    #: optional metrics registry (profiling runs only; ``None`` keeps the
    #: protocol hot paths at a single attribute check)
    metrics: Optional[Any] = None
    #: optional conformance-oracle event log (``repro.verify``; ``None``
    #: keeps the protocol hot paths at a single attribute check)
    verify: Optional[Any] = None
    #: inter-node barrier collective topology ("flat" | "tree" |
    #: "dissemination"); see :mod:`repro.protocol.collectives`
    collective: str = "flat"

    @property
    def n_procs(self) -> int:
        return len(self.procs)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node_of(self, proc_id: int) -> Any:
        return self.nodes[proc_id // self.comm.procs_per_node]

    def node_id_of(self, proc_id: int) -> int:
        return proc_id // self.comm.procs_per_node

    def node_id_of_cpu(self, cpu: Any) -> int:
        """Node id for any executor — application CPUs *and* the
        dedicated service/assist processors (whose global ids sit outside
        the application id space)."""
        node = getattr(cpu, "node", None)
        if node is not None:
            return node.node_id
        return self.node_id_of(cpu.global_id)

    def aggregate_time(self) -> Dict[str, int]:
        """Cluster-wide per-category cycle totals so far (phase snapshots)."""
        from repro.arch.processor import TIME_CATEGORIES

        total = {cat: 0 for cat in TIME_CATEGORIES}
        for cpu in self.procs:
            time = cpu.stats.time
            for cat in TIME_CATEGORIES:
                total[cat] += time[cat]
        return total


class NodeMemoryState:
    """Per-node SVM page state (shared by the node's processors)."""

    __slots__ = ("valid", "twins", "fetches", "invalidations", "faults_served")

    def __init__(self) -> None:
        #: pages with a valid local copy (home pages are implicitly valid)
        self.valid: Set[int] = set()
        #: non-home pages with a twin created this interval
        self.twins: Set[int] = set()
        #: in-flight page fetches: page -> completion event (fetch
        #: coalescing: the SMP protocol issues one fetch per node)
        self.fetches: Dict[int, Event] = {}
        #: number of pages invalidated at acquires (diagnostics)
        self.invalidations: int = 0
        #: remote fetch requests this node served as home (diagnostics)
        self.faults_served: int = 0

    def invalidate(self, pages) -> int:
        """Drop validity (and twins) for ``pages``; returns how many were
        actually resident."""
        dropped = 0
        for page in pages:
            if page in self.valid:
                self.valid.discard(page)
                dropped += 1
            self.twins.discard(page)
        self.invalidations += dropped
        return dropped


@dataclass
class ProtocolCounters:
    """Cluster-wide protocol event counters (beyond per-CPU stats)."""

    page_faults: int = 0
    page_fetches: int = 0
    local_lock_acquires: int = 0
    remote_lock_acquires: int = 0
    barriers: int = 0
    diffs_created: int = 0
    diff_words: int = 0
    updates_sent: int = 0
    update_words: int = 0
    write_notices: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, n: int = 1) -> None:
        if hasattr(self, name) and name != "extra":
            setattr(self, name, getattr(self, name) + n)
        else:
            self.extra[name] = self.extra.get(name, 0) + n
