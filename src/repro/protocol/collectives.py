"""Pluggable inter-node barrier collectives.

The paper's protocol synchronizes representatives through a *flat*
(centralized) barrier: every representative sends its arrival to a
single master, which merges the consistency information and broadcasts
the release.  That is the right shape at 4 nodes, but the
Barchet-Estefanel & Mounié intra-cluster collectives work (PAPERS.md)
shows topology choice dominates synchronization cost at exactly the
cluster sizes the paper sweeps.  This module makes the inter-node leg a
strategy object so the barrier manager can run any of three topologies:

``flat`` (default)
    The existing behavior, moved here verbatim — ``2*(n-1)`` messages
    over 2 serial hops (gather to master, broadcast release).  The
    default path is **bit-identical** to the pre-collectives code: same
    message tags, sizes, ordering and phase marks, so the committed
    golden digests never move.

``tree``
    Binomial-tree gather and broadcast rooted at the master —
    ``2*(n-1)`` messages over ``2*ceil(log2 n)`` serial hops, but each
    non-leaf parent overlaps its subtree's arrivals.  The merged vector
    clock is computed once at the root, after all arrivals; releases
    carry it (plus piggybacked write notices) down the same tree.

``dissemination``
    The classic dissemination barrier — ``ceil(log2 n)`` rounds, every
    node sends to ``(i + 2^k) mod n`` and waits for the symmetric
    arrival.  ``n*ceil(log2 n)`` messages but only ``ceil(log2 n)``
    serial hops and no root bottleneck.  Completion of the final round
    transitively implies every node arrived, at which point the *first*
    completing representative computes the merged clock (all application
    processors are blocked in the barrier, so the clocks are stable) and
    every representative releases its own node with it.

Cost model: every inter-node hop is a real :class:`~repro.net.message
.Message` through the full wire pipeline — host send posting, NI
occupancy, I/O bus, link, receive deposit — with reliable-delivery
retransmission under fault injection, exactly like the flat path.  Each
non-flat hop also bumps the ``collective_hops`` protocol counter, and
waits for hop arrivals are tallied as ``barrier_wait`` so the phase
breakdown attributes inter-stage time to the barrier phase (not
compute).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.protocol.base import GRANT_BASE_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.processor import Processor
    from repro.protocol.barriers import BarrierManager, _Episode

#: valid values for ``ClusterConfig.collective``
COLLECTIVES = ("flat", "tree", "dissemination")


def make_collective(name: str, mgr: "BarrierManager") -> "_Collective":
    """Instantiate the collective strategy ``name`` for ``mgr``."""
    try:
        cls = _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown collective {name!r} (valid: {', '.join(COLLECTIVES)})"
        ) from None
    return cls(mgr)


class _Collective:
    """Inter-node leg of a barrier episode, run by node representatives.

    ``inter_node`` is a simulation generator invoked by exactly one
    processor per node (the last to arrive locally).  It must merge the
    vector clocks exactly once per episode, release every node's local
    processors, and return the merged clock.
    """

    name = "abstract"

    def __init__(self, mgr: "BarrierManager") -> None:
        self.mgr = mgr

    def inter_node(
        self,
        cpu: "Processor",
        node_id: int,
        ep: "_Episode",
        barrier_id: int,
        visit: int,
    ):  # pragma: no cover - interface
        raise NotImplementedError


class FlatCollective(_Collective):
    """Centralized gather + broadcast through the master (the paper's
    barrier; the pre-collectives code path, byte-for-byte)."""

    name = "flat"

    def inter_node(self, cpu, node_id, ep, barrier_id, visit):
        mgr = self.mgr
        ctx = mgr.ctx
        arrive_tag = f"bar.{barrier_id}.{visit}.arrive"
        release_tag = f"bar.{barrier_id}.{visit}.release"

        if node_id == mgr.master_node:
            for _ in range(ctx.n_nodes - 1):
                yield from cpu.wait_for(
                    ctx.msg.receive_sync(node_id, arrive_tag), "barrier_wait"
                )
            ep.merged_vc = mgr.merge_fn()
            mgr._mark_phase(barrier_id, visit)
            size = GRANT_BASE_BYTES + mgr.notice_bytes_fn()
            for other in range(ctx.n_nodes):
                if other == node_id:
                    continue
                yield from ctx.msg.send_sync(
                    cpu, node_id, other, release_tag, size, payload=ep.merged_vc
                )
            ep.node_release(ctx, node_id).succeed()
            return ep.merged_vc

        yield from ctx.msg.send_sync(
            cpu, node_id, mgr.master_node, arrive_tag, GRANT_BASE_BYTES
        )
        merged = yield from cpu.wait_for(
            ctx.msg.receive_sync(node_id, release_tag), "barrier_wait"
        )
        ep.merged_vc = merged
        ep.node_release(ctx, node_id).succeed()
        return merged


class TreeCollective(_Collective):
    """Binomial-tree gather/broadcast rooted at the master node."""

    name = "tree"

    def _children(self, rel: int, n: int) -> List[int]:
        """Relative ranks of ``rel``'s children in the binomial tree."""
        children = []
        mask = 1
        while not (rel & mask):
            child = rel + mask
            if child >= n:
                break
            children.append(child)
            mask <<= 1
        return children

    def inter_node(self, cpu, node_id, ep, barrier_id, visit):
        mgr = self.mgr
        ctx = mgr.ctx
        n = ctx.n_nodes
        master = mgr.master_node
        rel = (node_id - master) % n
        children = self._children(rel, n)
        up_tag = f"bar.{barrier_id}.{visit}.up"
        down_tag = f"bar.{barrier_id}.{visit}.down"

        # gather: wait for every child subtree, then report to the parent
        for _ in children:
            yield from cpu.wait_for(
                ctx.msg.receive_sync(node_id, up_tag), "barrier_wait"
            )
        if rel:
            low = rel & -rel
            parent = (rel - low + master) % n
            mgr.counters.bump("collective_hops")
            yield from ctx.msg.send_sync(
                cpu, node_id, parent, up_tag, GRANT_BASE_BYTES
            )
            merged = yield from cpu.wait_for(
                ctx.msg.receive_sync(node_id, down_tag), "barrier_wait"
            )
            ep.merged_vc = merged
        else:
            ep.merged_vc = mgr.merge_fn()

        # broadcast: release children deepest-subtree-first
        size = GRANT_BASE_BYTES + mgr.notice_bytes_fn()
        for child in reversed(children):
            mgr.counters.bump("collective_hops")
            yield from ctx.msg.send_sync(
                cpu,
                node_id,
                (child + master) % n,
                down_tag,
                size,
                payload=ep.merged_vc,
            )

        mgr._complete(ep, barrier_id, visit)
        ep.node_release(ctx, node_id).succeed()
        return ep.merged_vc


class DisseminationCollective(_Collective):
    """Symmetric dissemination barrier: ``ceil(log2 n)`` all-to-partner
    rounds; completion transitively implies global arrival."""

    name = "dissemination"

    def inter_node(self, cpu, node_id, ep, barrier_id, visit):
        mgr = self.mgr
        ctx = mgr.ctx
        n = ctx.n_nodes
        size = GRANT_BASE_BYTES + mgr.notice_bytes_fn()

        k = 0
        dist = 1
        while dist < n:
            tag = f"bar.{barrier_id}.{visit}.dis{k}"
            mgr.counters.bump("collective_hops")
            yield from ctx.msg.send_sync(
                cpu, node_id, (node_id + dist) % n, tag, size
            )
            yield from cpu.wait_for(
                ctx.msg.receive_sync(node_id, tag), "barrier_wait"
            )
            k += 1
            dist <<= 1

        # First representative through the final round merges; every
        # application processor is blocked in the barrier here, so the
        # clocks are stable and all reps observe the same snapshot.
        if ep.merged_vc is None:
            ep.merged_vc = mgr.merge_fn()
        mgr._complete(ep, barrier_id, visit)
        ep.node_release(ctx, node_id).succeed()
        return ep.merged_vc


_BY_NAME = {
    "flat": FlatCollective,
    "tree": TreeCollective,
    "dissemination": DisseminationCollective,
}
