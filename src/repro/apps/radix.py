"""Radix — parallel radix sort (SPLASH-2 kernel, unmodified semantics).

Per digit pass: a local histogram over the processor's own keys, a small
tree-structured prefix computation (locks + barrier), then the
*permutation*: every key is written to its rank position in the
destination array — positions that are scattered across all processors'
partitions.

This makes Radix the paper's stress case: highly scattered **writes to
remotely allocated data** (write faults fetch the page, twins, diffs),
a high inherent communication-to-computation ratio, and heavy contention
at the NI and I/O bus (data-wait imbalance).  It is also the one
application that *prefers large pages* (Figure 12): the permutation's
writes are dense over the whole destination array, so larger pages mean
proportionally fewer faults/fetches for the same number of bytes moved.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import (
    ACQUIRE,
    BARRIER,
    RELEASE,
    WRITE,
    AddressSpace,
    AppGenerator,
    AppTrace,
    GenParams,
)
from repro.arch.cache import CacheModel

KEY_BYTES = 4
HIST_CYCLES_PER_KEY = 4.0
PERMUTE_CYCLES_PER_KEY = 6.0
PASSES = 2


class RadixGenerator(AppGenerator):
    name = "radix"
    description = "radix sort; scattered remote writes, bandwidth-bound"

    def __init__(self, n_keys: int = 1 << 18):
        self.n_keys = n_keys

    def generate(self, params: GenParams) -> AppTrace:
        P = params.n_procs
        n = max(P * 1024, int(self.n_keys * params.scale))
        n -= n % P
        per_proc = n // P
        cache = CacheModel(params.arch)
        space = AddressSpace(params.page_size)
        rng = params.rng(salt=1)

        src = space.alloc(n * KEY_BYTES, "src")
        dst = space.alloc(n * KEY_BYTES, "dst")
        part_bytes = per_proc * KEY_BYTES
        pages_per_part = max(1, part_bytes // params.page_size)
        l1_mr, l2_mr = cache.miss_rates_for_working_set(2 * part_bytes)
        words_per_page = params.page_size // params.arch.word_bytes

        events = [[] for _ in range(P)]
        for p in range(P):
            for base in (src, dst):
                events[p].extend(
                    self.touch_events(space, base + p * part_bytes, part_bytes)
                )
            events[p].append((BARRIER, 0))

        bar = 1
        # destination-partition page numbers, materialized once per array
        # (numpy int64 matches what rng.choice builds from a list of ints,
        # so the sampled pages — and the rng stream — are unchanged)
        part_pages = {
            base: {
                q: np.arange(
                    (base + q * part_bytes) // params.page_size,
                    (base + (q + 1) * part_bytes - 1) // params.page_size + 1,
                )
                for q in range(P)
            }
            for base in (src, dst)
        }
        for pass_idx in range(PASSES):
            a, b = (src, dst) if pass_idx % 2 == 0 else (dst, src)
            for p in range(P):
                evs = events[p]
                # 1) local histogram over own keys
                evs.append(
                    self.compute_block(
                        cache,
                        int(per_proc * HIST_CYCLES_PER_KEY),
                        reads=per_proc,
                        writes=per_proc // 4,
                        l1_mr=l1_mr,
                        l2_mr=l2_mr,
                    )
                )
                evs.append((BARRIER, bar))
                # 2) global prefix: short tree of lock-protected updates
                for step in range(3):
                    lock_id = 512 + (p >> step) % P
                    evs.append((ACQUIRE, lock_id))
                    evs.append((RELEASE, lock_id))
                evs.append((BARRIER, bar + 1))
                # 3) permutation: keys scatter over every partition of b,
                # visited in staggered order starting at p+1.  A uniform
                # scatter of k keys over m pages touches
                # m * (1 - (1 - 1/m)^k) pages in expectation — for dense
                # radix traffic that is essentially *all* pages at any page
                # size, which is why larger pages amortize the per-fault
                # fixed costs over the same byte volume (Figure 12).
                keys_per_dst = per_proc // P
                m = pages_per_part
                expected = m * (1.0 - (1.0 - 1.0 / m) ** keys_per_dst)
                touched = max(1, min(m, round(expected)))
                words_each = max(1, keys_per_dst // touched)
                w = min(words_per_page, words_each)
                r = max(1, min(32, words_each // 2))
                for step in range(P):
                    q = (p + 1 + step) % P
                    pages = rng.choice(part_pages[b][q], size=touched, replace=False)
                    evs.extend(
                        [(WRITE, page, w, r) for page in np.sort(pages).tolist()]
                    )
                evs.append(
                    self.compute_block(
                        cache,
                        int(per_proc * PERMUTE_CYCLES_PER_KEY),
                        reads=per_proc * 2,
                        writes=per_proc,
                        l1_mr=l1_mr,
                        l2_mr=max(l2_mr, 0.4),  # scattered stores miss hard
                    )
                )
                evs.append((BARRIER, bar + 2))
            bar += 3

        serial = AppGenerator.serial_from_blocks(events, serial_stall_factor=1.4)
        return AppTrace(
            name=self.name,
            n_procs=P,
            events=events,
            serial_cycles=serial,
            shared_bytes=space.used_bytes,
            problem=f"{n} keys, {PASSES} passes",
        )
