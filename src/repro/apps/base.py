"""Workload model: page-grain traces generated from real data layouts.

The original study ran the SPLASH-2 binaries under execution-driven
simulation.  At repro band 2 we substitute *trace generators*: for each
application we lay out its real shared data structures at byte
granularity, partition them exactly the way the SPLASH-2 code does, and
derive the per-processor sequence of protocol-relevant events:

``("c", work, stall, bus_bytes)``
    a compute block: pure work cycles, uncontended local-stall cycles
    (from the analytic cache model), and the block's memory-bus traffic;
``("r", page)`` / ``("w", page, words, runs)``
    shared accesses at page granularity (``words`` written feeds the
    diff/update cost models; ``runs`` counts disjoint spatial runs, which
    AURC cannot coalesce below);
``("a", lock_id)`` / ("l", lock_id)``
    lock acquire / release;
``("b", barrier_id)``
    global barrier;
``("t", page)``
    a zero-cost initialization touch that establishes first-touch page
    placement (the real programs' careful data placement).

Because page numbers are computed from actual byte layouts, page-size
effects (false sharing, fragmentation, transfer granularity) and
clustering effects (which neighbours share a node) emerge from the same
arithmetic the real programs induce, rather than being hard-coded.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.arch.cache import BlockAccessProfile, CacheModel
from repro.arch.params import ArchParams

#: event-kind tags
COMPUTE = "c"
READ = "r"
WRITE = "w"
ACQUIRE = "a"
RELEASE = "l"
BARRIER = "b"
TOUCH = "t"

Event = Tuple  # compact tuples; first element is the kind tag


@dataclass(frozen=True)
class GenParams:
    """Inputs to trace generation."""

    n_procs: int = 16
    page_size: int = 4096
    arch: ArchParams = field(default_factory=ArchParams)
    #: problem-size multiplier vs the app's default (benches use < 1)
    scale: float = 1.0
    seed: int = 42

    def rng(self, salt: int = 0) -> np.random.Generator:
        return np.random.default_rng(self.seed * 1_000_003 + salt)


@dataclass
class AppTrace:
    """A generated workload: per-processor event lists plus metadata."""

    name: str
    n_procs: int
    events: List[List[Event]]
    #: uniprocessor execution time (cycles) for speedup computation
    serial_cycles: int
    #: total shared-data footprint in bytes (diagnostics)
    shared_bytes: int
    problem: str = ""

    def busy_cycles(self, proc: int) -> int:
        """Uncontended compute + local-stall cycles of one processor."""
        return sum(ev[1] + ev[2] for ev in self.events[proc] if ev[0] == COMPUTE)

    @property
    def max_busy_cycles(self) -> int:
        return max(self.busy_cycles(p) for p in range(self.n_procs))

    @property
    def ideal_speedup(self) -> float:
        """Speedup with all communication/synchronization free (the
        paper's 'ideal': compute + local stall only)."""
        return self.serial_cycles / max(1, self.max_busy_cycles)

    def event_count(self) -> int:
        return sum(len(evs) for evs in self.events)

    def validate(self) -> None:
        """Sanity-check event structure (used by tests)."""
        if len(self.events) != self.n_procs:
            raise ValueError("event list count != n_procs")
        for evs in self.events:
            depth: Dict[int, int] = {}
            for ev in evs:
                kind = ev[0]
                if kind == ACQUIRE:
                    depth[ev[1]] = depth.get(ev[1], 0) + 1
                elif kind == RELEASE:
                    depth[ev[1]] = depth.get(ev[1], 0) - 1
                    if depth[ev[1]] < 0:
                        raise ValueError(f"release without acquire: lock {ev[1]}")
                elif kind == COMPUTE:
                    if ev[1] < 0 or ev[2] < 0 or ev[3] < 0:
                        raise ValueError(f"negative compute fields: {ev}")
                elif kind == WRITE:
                    if ev[2] < 1:
                        raise ValueError(f"write of zero words: {ev}")
            if any(v != 0 for v in depth.values()):
                raise ValueError("unbalanced acquire/release")


class AddressSpace:
    """Page-aligned bump allocator over the shared virtual address space."""

    def __init__(self, page_size: int) -> None:
        self.page_size = page_size
        self._next = 0

    def alloc(self, nbytes: int, label: str = "") -> int:
        """Allocate a page-aligned region; returns its base address."""
        if nbytes <= 0:
            raise ValueError("allocation must be positive")
        base = self._next
        pages = -(-nbytes // self.page_size)
        self._next += pages * self.page_size
        return base

    @property
    def used_bytes(self) -> int:
        return self._next

    def page_of(self, addr: int) -> int:
        return addr // self.page_size

    def pages_of(self, addr: int, nbytes: int) -> range:
        if nbytes <= 0:
            return range(0)
        first = addr // self.page_size
        last = (addr + nbytes - 1) // self.page_size
        return range(first, last + 1)


class AppGenerator(abc.ABC):
    """Base class for the ten application generators."""

    #: registry key, e.g. "fft"
    name: str = ""
    #: one-line description
    description: str = ""

    @abc.abstractmethod
    def generate(self, params: GenParams) -> AppTrace:
        """Produce the workload trace for the given machine parameters."""

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def compute_block(
        cache: CacheModel,
        work_cycles: int,
        reads: int,
        writes: int,
        l1_mr: float,
        l2_mr: float,
    ) -> Event:
        """Build a COMPUTE event from an access profile via the cache model."""
        costs = cache.block_costs(
            BlockAccessProfile(
                reads=reads, writes=writes, l1_miss_rate=l1_mr, l2_miss_rate=l2_mr
            )
        )
        return (COMPUTE, int(work_cycles), costs.stall_cycles, costs.bus_bytes)

    @staticmethod
    def touch_events(space: AddressSpace, base: int, nbytes: int) -> List[Event]:
        """First-touch events for a region (placement initialization)."""
        r = space.pages_of(base, nbytes)
        return [(TOUCH, p) for p in np.arange(r.start, r.stop).tolist()]

    @staticmethod
    def read_pages(pages: Sequence[int]) -> List[Event]:
        return [(READ, p) for p in np.asarray(pages, dtype=np.int64).tolist()]

    @staticmethod
    def read_region(space: AddressSpace, addr: int, nbytes: int) -> List[Event]:
        """READ events for every page of a byte region, batched."""
        r = space.pages_of(addr, nbytes)
        return [(READ, p) for p in np.arange(r.start, r.stop).tolist()]

    @staticmethod
    def write_region(
        space: AddressSpace, addr: int, nbytes: int, words: int, runs: int = 1
    ) -> List[Event]:
        """WRITE events (same words/runs) for every page of a region."""
        r = space.pages_of(addr, nbytes)
        return [(WRITE, p, words, runs) for p in np.arange(r.start, r.stop).tolist()]

    @staticmethod
    def serial_from_blocks(events: List[List[Event]], serial_stall_factor: float = 1.0) -> int:
        """Uniprocessor time as the sum of all compute blocks, with the
        stall component scaled by ``serial_stall_factor`` (serial runs see
        worse cache behaviour when the full working set exceeds the cache
        — the paper's Ocean caveat).

        The per-block arithmetic is batched through numpy; truncation of
        the scaled stall matches ``int(stall * factor)`` exactly because
        both truncate the same float64 product toward zero.
        """
        blocks = [ev for evs in events for ev in evs if ev[0] == COMPUTE]
        if not blocks:
            return 0
        work = np.fromiter((ev[1] for ev in blocks), dtype=np.int64, count=len(blocks))
        stall = np.fromiter((ev[2] for ev in blocks), dtype=np.int64, count=len(blocks))
        scaled = (stall * serial_stall_factor).astype(np.int64)
        return int(work.sum() + scaled.sum())
