"""Ocean (contiguous) — regular-grid iterative ocean simulation (SPLASH-2).

Several ``n x n`` grids of doubles, row-block partitioned with the
contiguous (4-D array) layout so each processor's sub-grid occupies its
own pages.  Per solver phase every processor sweeps its own rows
(compute + heavy *local* cache traffic) and reads only the boundary rows
of its two neighbours — largely nearest-neighbour, iterative
communication.

Two Ocean-specific effects from the paper are embedded:

* its per-processor working set fits in cache in the parallel run but
  not serially, so the serial stall factor is large (speedups look
  artificially high — the paper's caveat on Table 4);
* the sweeps miss hard in L2, generating lots of memory-bus traffic:
  with more than ~4 processors per node the node bus saturates, giving
  Ocean its clustering optimum at 4 (Figure 13).
"""

from __future__ import annotations

from repro.apps.base import (
    BARRIER,
    WRITE,
    AddressSpace,
    AppGenerator,
    AppTrace,
    GenParams,
)
from repro.arch.cache import CacheModel

ELEM_BYTES = 8
#: cycles of work per grid point per sweep
POINT_CYCLES = 30.0
#: number of grid arrays alive per phase
ARRAYS = 4
#: solver phases per iteration and iterations to run
PHASES = 5
ITERATIONS = 4


class OceanGenerator(AppGenerator):
    name = "ocean"
    description = "regular grids, nearest-neighbour; bus-hungry locally"

    def __init__(self, n: int = 258):
        self.n = n

    def generate(self, params: GenParams) -> AppTrace:
        P = params.n_procs
        # floor the grid so reduced scales don't degenerate into a
        # communication-only workload (boundary rows must stay small
        # relative to each processor's interior)
        n = max(8 * P, int(self.n * params.scale))
        rows_per_proc = max(1, n // P)
        n = rows_per_proc * P
        row_bytes = n * ELEM_BYTES
        cache = CacheModel(params.arch)
        space = AddressSpace(params.page_size)

        # each grid: processors' row blocks are contiguous regions
        grids = []
        for g in range(ARRAYS):
            base = space.alloc(n * row_bytes, f"grid{g}")
            grids.append(base)

        part_bytes = rows_per_proc * row_bytes
        # per-processor working set: its row blocks of all arrays
        ws = ARRAYS * part_bytes
        l1_mr, l2_mr = cache.miss_rates_for_working_set(ws)
        # Ocean sweeps stream through the grids: force substantial L2
        # missing even when the heuristic says the set fits.
        l2_mr = max(l2_mr, 0.30)
        points = rows_per_proc * n
        words_per_page = params.page_size // params.arch.word_bytes

        events = [[] for _ in range(P)]
        for p in range(P):
            for base in grids:
                events[p].extend(
                    self.touch_events(space, base + p * part_bytes, part_bytes)
                )
            events[p].append((BARRIER, 0))

        def boundary_reads(grid_base: int, p: int, side: int):
            """READ events for the neighbour row adjacent to partition ``p``."""
            if side < 0:  # last row of the previous partition
                addr = grid_base + p * part_bytes - row_bytes
            else:  # first row of the next partition
                addr = grid_base + (p + 1) * part_bytes
            return self.read_region(space, addr, row_bytes)

        bar = 1
        for _it in range(ITERATIONS):
            for phase in range(PHASES):
                g_read = grids[phase % ARRAYS]
                g_write = grids[(phase + 1) % ARRAYS]
                for p in range(P):
                    evs = events[p]
                    if p > 0:
                        evs.extend(boundary_reads(g_read, p, -1))
                    if p < P - 1:
                        evs.extend(boundary_reads(g_read, p, +1))
                    evs.append(
                        self.compute_block(
                            cache,
                            int(points * POINT_CYCLES),
                            reads=5 * points,
                            writes=points,
                            l1_mr=l1_mr,
                            l2_mr=l2_mr,
                        )
                    )
                    # only boundary rows are consumed remotely: emit writes
                    # for the first and last row's pages of the written grid
                    own = g_write + p * part_bytes
                    evs.extend(self.write_region(space, own, row_bytes, words_per_page))
                    last_row = own + part_bytes - row_bytes
                    evs.extend(
                        self.write_region(space, last_row, row_bytes, words_per_page)
                    )
                    evs.append((BARRIER, bar))
                bar += 1

        # serial working set = the full grids: misses hard (paper caveat)
        serial = AppGenerator.serial_from_blocks(events, serial_stall_factor=2.4)
        return AppTrace(
            name=self.name,
            n_procs=P,
            events=events,
            serial_cycles=serial,
            shared_bytes=space.used_bytes,
            problem=f"{n}x{n} grid, {ARRAYS} arrays",
        )
