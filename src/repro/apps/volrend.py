"""Volrend — volume rendering with task stealing (SVM-tuned variant).

The paper's version improves the *initial assignment* of tasks to
processes before any stealing happens, which improves SVM performance
greatly.  Protocol behaviour:

* a read-only **volume + octree** (faults once per node, then cached);
* coarse image-tile tasks with cost variance; a modest number of steals
  through per-queue locks (fewer than Raytrace thanks to the better
  initial assignment);
* writes go to the processor's own image tiles (local pages).

Inherent communication is small; what keeps Volrend's *best* speedup
well below ideal is computation imbalance from the task-stealing
machinery itself and lock waits when a fault lands inside a critical
section (paper Section 7).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import (
    ACQUIRE,
    BARRIER,
    READ,
    RELEASE,
    WRITE,
    AddressSpace,
    AppGenerator,
    AppTrace,
    GenParams,
)
from repro.arch.cache import CacheModel

TASK_CYCLES = 40_000
VOLUME_BYTES = 1 << 21
TASKS_PER_PROC = 48
STEAL_FRACTION = 0.10
QUEUE_LOCK_BASE = 300


class VolrendGenerator(AppGenerator):
    name = "volrend"
    description = "volume rendering; few steals, read-only volume"

    def __init__(self, tasks_per_proc: int = TASKS_PER_PROC):
        self.tasks_per_proc = tasks_per_proc

    def generate(self, params: GenParams) -> AppTrace:
        P = params.n_procs
        tasks = max(4, int(self.tasks_per_proc * params.scale))
        cache = CacheModel(params.arch)
        space = AddressSpace(params.page_size)
        rng = params.rng(salt=3)

        volume = space.alloc(VOLUME_BYTES, "volume")
        volume_range = space.pages_of(volume, VOLUME_BYTES)
        volume_pages = np.arange(volume_range.start, volume_range.stop)

        def region_pages(p: int):
            """Volume pages processor ``p``'s rays traverse: its image
            tiles map to a slab of the volume plus the shared octree top."""
            n_pages = len(volume_pages)
            slab = max(1, n_pages // P)
            lo = p * slab
            local = volume_pages[lo : lo + 2 * slab]
            shared_top = volume_pages[: max(1, n_pages // 12)]
            return np.concatenate([local, shared_top])
        queues = space.alloc(P * params.page_size, "queues")
        image = space.alloc(P * params.page_size * 2, "image")
        l1_mr, l2_mr = cache.miss_rates_for_working_set(VOLUME_BYTES // 8)

        events = [[] for _ in range(P)]
        for p in range(P):
            evs = events[p]
            if p == 0:
                evs.extend(self.touch_events(space, volume, VOLUME_BYTES))
            evs.extend(
                self.touch_events(space, queues + p * params.page_size, params.page_size)
            )
            evs.extend(
                self.touch_events(
                    space, image + p * params.page_size * 2, params.page_size * 2
                )
            )
            evs.append((BARRIER, 0))

        for p in range(P):
            evs = events[p]
            own_lock = QUEUE_LOCK_BASE + p
            own_queue_page = space.page_of(queues + p * params.page_size)
            own_image_page = space.page_of(image + p * params.page_size * 2)
            my_region = region_pages(p)
            warm = rng.choice(my_region, size=max(1, len(my_region) // 16), replace=False)
            evs.extend([(READ, page) for page in np.sort(warm).tolist()])

            n_steals = int(tasks * STEAL_FRACTION)
            n_own = tasks - n_steals
            costs = rng.lognormal(mean=0.0, sigma=1.1, size=tasks) * TASK_CYCLES

            for t in range(tasks):
                if t >= n_own:
                    victim = int(rng.integers(0, P - 1))
                    victim = victim if victim < p else victim + 1
                    v_lock = QUEUE_LOCK_BASE + victim
                    v_page = space.page_of(queues + victim * params.page_size)
                    evs.append((ACQUIRE, v_lock))
                    evs.append((READ, v_page))
                    evs.append((WRITE, v_page, 4, 1))
                    evs.append((RELEASE, v_lock))
                else:
                    evs.append((ACQUIRE, own_lock))
                    evs.append((WRITE, own_queue_page, 4, 1))
                    evs.append((RELEASE, own_lock))
                evs.extend(
                    [
                        (READ, page)
                        for page in rng.choice(my_region, size=3, replace=False).tolist()
                    ]
                )
                evs.append(
                    self.compute_block(
                        cache,
                        int(costs[t]),
                        reads=int(costs[t]) // 6,
                        writes=int(costs[t]) // 60,
                        l1_mr=l1_mr,
                        l2_mr=l2_mr,
                    )
                )
                evs.append((WRITE, own_image_page, 64, 4))
            evs.append((BARRIER, 1))

        serial = AppGenerator.serial_from_blocks(events, serial_stall_factor=1.15)
        return AppTrace(
            name=self.name,
            n_procs=P,
            events=events,
            serial_cycles=serial,
            shared_bytes=space.used_bytes,
            problem=f"{tasks} tasks/proc, {VOLUME_BYTES >> 20} MB volume",
        )
