"""SPLASH-2-like workload generators (the paper's application suite).

Ten applications, trace-generated from their real data layouts and
sharing patterns — see :mod:`repro.apps.base` for the substitution
rationale and the event model.
"""

from repro.apps.barnes import BarnesRebuildGenerator, BarnesSpaceGenerator
from repro.apps.base import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    READ,
    RELEASE,
    TOUCH,
    WRITE,
    AddressSpace,
    AppGenerator,
    AppTrace,
    GenParams,
)
from repro.apps.fft import FFTGenerator
from repro.apps.lu import LUGenerator
from repro.apps.ocean import OceanGenerator
from repro.apps.radix import RadixGenerator
from repro.apps.raytrace import RaytraceGenerator
from repro.apps.registry import (
    APP_ORDER,
    IRREGULAR_APPS,
    REGULAR_APPS,
    app_names,
    get_app,
    make_generator,
)
from repro.apps.volrend import VolrendGenerator
from repro.apps.water import WaterNsquaredGenerator, WaterSpatialGenerator

__all__ = [
    "ACQUIRE",
    "APP_ORDER",
    "AddressSpace",
    "AppGenerator",
    "AppTrace",
    "BARRIER",
    "BarnesRebuildGenerator",
    "BarnesSpaceGenerator",
    "COMPUTE",
    "FFTGenerator",
    "GenParams",
    "IRREGULAR_APPS",
    "LUGenerator",
    "OceanGenerator",
    "READ",
    "REGULAR_APPS",
    "RELEASE",
    "RadixGenerator",
    "RaytraceGenerator",
    "TOUCH",
    "VolrendGenerator",
    "WRITE",
    "WaterNsquaredGenerator",
    "WaterSpatialGenerator",
    "app_names",
    "get_app",
    "make_generator",
]
