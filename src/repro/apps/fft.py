"""FFT — radix-sqrt(n) six-step FFT (SPLASH-2 kernel).

The data set is an array of ``n`` complex doubles (16 B each) viewed as a
sqrt(n) x sqrt(n) matrix, row-block partitioned, plus an equally sized
target matrix and a read-only roots-of-unity array.

Communication is the paper's canonical *all-to-all, read-based* pattern:
each of the three transpose steps makes every processor read an
(n/P x n/P) sub-block from every other processor's partition and write it
into its own (local, first-touch-placed) partition.  Writes are local, so
HLRC computes no diffs; the written pages generate write notices at the
phase barrier, invalidating the copies other processors cached during the
previous transpose — which is what makes every transpose fetch fresh
pages and gives FFT its high inherent communication-to-computation ratio
(bandwidth- and interrupt-sensitive, Figures 7 and 9).
"""

from __future__ import annotations

import math

from repro.apps.base import (
    BARRIER,
    COMPUTE,
    WRITE,
    AddressSpace,
    AppGenerator,
    AppTrace,
    GenParams,
)
from repro.arch.cache import CacheModel

#: complex double
ELEM_BYTES = 16
#: cycles per element in a 1D FFT butterfly stage
FFT_CYCLES_PER_ELEM = 14.0
#: cycles per element copied during a transpose
COPY_CYCLES_PER_ELEM = 6.0


class FFTGenerator(AppGenerator):
    name = "fft"
    description = "radix-sqrt(n) FFT; all-to-all read-based transposes"

    def __init__(self, n_points: int = 1 << 16):
        self.n_points = n_points

    def generate(self, params: GenParams) -> AppTrace:
        n = max(params.n_procs * params.n_procs, int(self.n_points * params.scale))
        # keep n a power of two with an integer square root
        n = 1 << (max(4, n.bit_length() - 1) & ~1)
        P = params.n_procs
        per_proc = n // P
        cache = CacheModel(params.arch)
        space = AddressSpace(params.page_size)

        src = space.alloc(n * ELEM_BYTES, "src")
        dst = space.alloc(n * ELEM_BYTES, "dst")
        roots = space.alloc(n * ELEM_BYTES, "roots")

        part_bytes = per_proc * ELEM_BYTES
        chunk_bytes = max(ELEM_BYTES, part_bytes // P)  # n/P^2 elements

        log_n = max(1, int(math.log2(n)))
        l1_mr, l2_mr = cache.miss_rates_for_working_set(2 * part_bytes)

        events = [[] for _ in range(P)]
        for p in range(P):
            evs = events[p]
            # placement: each processor owns its slices of all arrays
            for base in (src, dst, roots):
                evs.extend(
                    self.touch_events(space, base + p * part_bytes, part_bytes)
                )
            evs.append((BARRIER, 0))

        def transpose(bar_id: int, read_base: int, write_base: int) -> None:
            copy_chunk = self.compute_block(
                cache,
                max(1, int(per_proc * COPY_CYCLES_PER_ELEM / P)),
                reads=per_proc // P,
                writes=per_proc // P,
                l1_mr=l1_mr,
                l2_mr=l2_mr,
            )
            for p in range(P):
                evs = events[p]
                # read an n/P^2-element sub-block from every other
                # partition, *staggered* starting at p+1 (as the SPLASH-2
                # code does, to avoid hot-spotting one home), interleaved
                # with the per-chunk copy work
                for step in range(1, P):
                    q = (p + step) % P
                    off = read_base + q * part_bytes + p * chunk_bytes
                    evs.extend(self.read_region(space, off, chunk_bytes))
                    evs.append(copy_chunk)
                # write own partition of the destination (local pages)
                words_per_page = params.page_size // params.arch.word_bytes
                evs.extend(
                    self.write_region(
                        space, write_base + p * part_bytes, part_bytes, words_per_page
                    )
                )
                evs.append((BARRIER, bar_id))

        def fft_phase(bar_id: int) -> None:
            for p in range(P):
                events[p].append(
                    self.compute_block(
                        cache,
                        int(per_proc * log_n * FFT_CYCLES_PER_ELEM),
                        reads=per_proc * log_n // 2,
                        writes=per_proc,
                        l1_mr=l1_mr,
                        l2_mr=l2_mr,
                    )
                )
                events[p].append((BARRIER, bar_id))

        # six-step algorithm: transpose, FFT, transpose, FFT, transpose
        transpose(1, src, dst)
        fft_phase(2)
        transpose(3, dst, src)
        fft_phase(4)
        transpose(5, src, dst)

        # serial run: working set 2n*16 bytes far exceeds the caches
        serial = AppGenerator.serial_from_blocks(events, serial_stall_factor=1.15)
        return AppTrace(
            name=self.name,
            n_procs=P,
            events=events,
            serial_cycles=serial,
            shared_bytes=space.used_bytes,
            problem=f"{n} complex points",
        )
