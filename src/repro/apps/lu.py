"""LU (contiguous) — blocked dense LU factorization (SPLASH-2 kernel).

An ``n x n`` matrix of doubles, factored in ``b x b`` blocks.  The
*contiguous* version allocates each block contiguously so a block's data
touches only pages assigned to its owner — given large enough pages the
application is single-writer at page granularity and writes are almost
all local (the paper's motivating example of a restructured application).

Blocks are owner-assigned in a 2D scatter over a sqrt(P) x sqrt(P)
processor grid.  Communication per outer step ``k``: owners of perimeter
blocks read the diagonal block; owners of interior blocks read the
corresponding perimeter blocks.  The communication-to-computation ratio
is inherently low, but the computation is *imbalanced*: as the
factorization shrinks, fewer blocks remain active — which is why LU's
ideal speedup sits well below P and its achievable speedup almost equals
its best (Table 4: communication is not LU's problem).
"""

from __future__ import annotations

import math

from repro.apps.base import (
    BARRIER,
    WRITE,
    AddressSpace,
    AppGenerator,
    AppTrace,
    GenParams,
)
from repro.arch.cache import CacheModel

ELEM_BYTES = 8
#: cycles per multiply-add in the blocked kernels
FLOP_CYCLES = 2.0


class LUGenerator(AppGenerator):
    name = "lu"
    description = "blocked contiguous LU; low communication, imbalanced"

    def __init__(self, n: int = 1024, block: int = 64):
        self.n = n
        self.block = block

    def generate(self, params: GenParams) -> AppTrace:
        P = params.n_procs
        n = max(self.block * int(math.isqrt(P)) * 2, int(self.n * params.scale))
        b = self.block
        n -= n % b
        nb = n // b  # blocks per dimension
        grid = max(1, int(math.isqrt(P)))
        cache = CacheModel(params.arch)
        space = AddressSpace(params.page_size)

        block_bytes = b * b * ELEM_BYTES

        def owner(bi: int, bj: int) -> int:
            # 2D scatter over a sqrt(P) x sqrt(P) grid (modulo for odd P)
            return ((bi % grid) * grid + (bj % grid)) % P

        # contiguous allocation: all blocks of one owner are adjacent
        block_addr = {}
        by_owner: dict[int, list] = {p: [] for p in range(P)}
        for bi in range(nb):
            for bj in range(nb):
                by_owner[owner(bi, bj)].append((bi, bj))
        for p in range(P):
            for bi, bj in by_owner[p]:
                block_addr[(bi, bj)] = space.alloc(block_bytes, f"blk{bi},{bj}")

        words_per_block = block_bytes // params.arch.word_bytes
        l1_mr, l2_mr = cache.miss_rates_for_working_set(
            len(by_owner[0]) * block_bytes
        )

        events = [[] for _ in range(P)]
        for p in range(P):
            for bi, bj in by_owner[p]:
                addr = block_addr[(bi, bj)]
                events[p].extend(self.touch_events(space, addr, block_bytes))
            events[p].append((BARRIER, 0))

        def read_block(p: int, bi: int, bj: int) -> None:
            if owner(bi, bj) == p:
                return
            addr = block_addr[(bi, bj)]
            events[p].extend(self.read_region(space, addr, block_bytes))

        def write_block(p: int, bi: int, bj: int, words: int) -> None:
            addr = block_addr[(bi, bj)]
            events[p].extend(self.write_region(space, addr, block_bytes, words))

        bar = 1
        for k in range(nb):
            # 1) factor the diagonal block, then perimeter updates (the
            # SPLASH-2 code separates these with a barrier; we fold them
            # into one phase — a documented timing approximation that
            # halves barrier count without changing traffic)
            p = owner(k, k)
            events[p].append(
                self.compute_block(
                    cache,
                    int(b * b * b * FLOP_CYCLES / 3),
                    reads=b * b,
                    writes=b * b,
                    l1_mr=l1_mr,
                    l2_mr=l2_mr,
                )
            )
            write_block(p, k, k, words_per_block)
            for idx in range(k + 1, nb):
                for bi, bj in ((k, idx), (idx, k)):
                    q = owner(bi, bj)
                    read_block(q, k, k)
                    events[q].append(
                        self.compute_block(
                            cache,
                            int(b * b * b * FLOP_CYCLES / 2),
                            reads=2 * b * b,
                            writes=b * b,
                            l1_mr=l1_mr,
                            l2_mr=l2_mr,
                        )
                    )
                    write_block(q, bi, bj, words_per_block)
            for q in range(P):
                events[q].append((BARRIER, bar))
            bar += 1

            # 2) interior updates read their perimeter row/column blocks
            for bi in range(k + 1, nb):
                for bj in range(k + 1, nb):
                    q = owner(bi, bj)
                    read_block(q, bi, k)
                    read_block(q, k, bj)
                    events[q].append(
                        self.compute_block(
                            cache,
                            int(2 * b * b * b * FLOP_CYCLES),
                            reads=3 * b * b,
                            writes=b * b,
                            l1_mr=l1_mr,
                            l2_mr=l2_mr,
                        )
                    )
                    write_block(q, bi, bj, words_per_block)
            for q in range(P):
                events[q].append((BARRIER, bar))
            bar += 1

        serial = AppGenerator.serial_from_blocks(events, serial_stall_factor=1.3)
        return AppTrace(
            name=self.name,
            n_procs=P,
            events=events,
            serial_cycles=serial,
            shared_bytes=space.used_bytes,
            problem=f"{n}x{n} matrix, {b}x{b} blocks",
        )
