"""Application registry: name -> generator, plus the paper's canonical
display order and grouping."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.barnes import BarnesRebuildGenerator, BarnesSpaceGenerator
from repro.apps.base import AppGenerator, AppTrace, GenParams
from repro.apps.fft import FFTGenerator
from repro.apps.lu import LUGenerator
from repro.apps.ocean import OceanGenerator
from repro.apps.radix import RadixGenerator
from repro.apps.raytrace import RaytraceGenerator
from repro.apps.volrend import VolrendGenerator
from repro.apps.water import WaterNsquaredGenerator, WaterSpatialGenerator

#: the paper's ten applications, in Figure 1 display order
APP_ORDER = (
    "fft",
    "lu",
    "ocean",
    "water-nsq",
    "water-sp",
    "radix",
    "raytrace",
    "volrend",
    "barnes-rebuild",
    "barnes-space",
)

#: regular vs irregular, per the paper's Section 4 classification
REGULAR_APPS = ("fft", "lu", "ocean")
IRREGULAR_APPS = tuple(a for a in APP_ORDER if a not in REGULAR_APPS)

_GENERATORS: Dict[str, type] = {
    g.name: g
    for g in (
        FFTGenerator,
        LUGenerator,
        OceanGenerator,
        WaterNsquaredGenerator,
        WaterSpatialGenerator,
        RadixGenerator,
        RaytraceGenerator,
        VolrendGenerator,
        BarnesRebuildGenerator,
        BarnesSpaceGenerator,
    )
}


def app_names() -> List[str]:
    return list(APP_ORDER)


def make_generator(name: str, **kwargs) -> AppGenerator:
    """Instantiate a generator by registry name."""
    try:
        cls = _GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; available: {sorted(_GENERATORS)}"
        ) from None
    return cls(**kwargs)


def get_app(
    name: str,
    n_procs: int = 16,
    page_size: int = 4096,
    scale: float = 1.0,
    seed: int = 42,
    params: Optional[GenParams] = None,
    **generator_kwargs,
) -> AppTrace:
    """One-call workload construction (the main user entry point)."""
    gen = make_generator(name, **generator_kwargs)
    if params is None:
        params = GenParams(
            n_procs=n_procs, page_size=page_size, scale=scale, seed=seed
        )
    return gen.generate(params)
