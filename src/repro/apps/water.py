"""Water — molecular dynamics, both SPLASH-2 variants.

**Water-nsquared** computes O(n^2/2) molecule pair interactions: each
processor reads the molecules of the *following* n/2 in the wraparound
order (touching roughly half the molecule array) and accumulates force
updates locally, applying them to the shared per-molecule records once
per iteration under per-molecule locks.  Moderate communication, modest
lock traffic — the paper classes it as essentially regular.

**Water-spatial** imposes a uniform cell grid: interactions only reach
neighbouring cells, so each processor reads only the boundary cells of
its spatial region and takes a handful of boundary-cell locks.  Very low
communication; its achievable speedup is near its best.
"""

from __future__ import annotations

from repro.apps.base import (
    ACQUIRE,
    BARRIER,
    RELEASE,
    WRITE,
    AddressSpace,
    AppGenerator,
    AppTrace,
    GenParams,
)
from repro.arch.cache import CacheModel

#: bytes of one molecule record (positions, velocities, forces, ...)
MOL_BYTES = 680
#: cycles per pair interaction (inter-molecular potentials are expensive)
PAIR_CYCLES = 800.0
#: cycles of intra-molecule work per molecule per iteration
INTRA_CYCLES = 600.0
ITERATIONS = 3
#: force-field words updated per molecule
FORCE_WORDS = 6


class WaterNsquaredGenerator(AppGenerator):
    name = "water-nsq"
    description = "O(n^2) pairwise molecular dynamics with per-molecule locks"

    def __init__(self, n_mols: int = 512):
        self.n_mols = n_mols

    def generate(self, params: GenParams) -> AppTrace:
        P = params.n_procs
        n = max(2 * P, int(self.n_mols * params.scale))
        n -= n % P
        per_proc = n // P
        cache = CacheModel(params.arch)
        space = AddressSpace(params.page_size)
        mols = space.alloc(n * MOL_BYTES, "molecules")
        part_bytes = per_proc * MOL_BYTES
        l1_mr, l2_mr = cache.miss_rates_for_working_set(n * MOL_BYTES // 2)
        mols_per_page = max(1, params.page_size // MOL_BYTES)

        events = [[] for _ in range(P)]
        for p in range(P):
            events[p].extend(
                self.touch_events(space, mols + p * part_bytes, part_bytes)
            )
            events[p].append((BARRIER, 0))

        bar = 1
        for _it in range(ITERATIONS):
            for p in range(P):
                evs = events[p]
                # intra-molecule computation (local)
                evs.append(
                    self.compute_block(
                        cache,
                        int(per_proc * INTRA_CYCLES),
                        reads=per_proc * 40,
                        writes=per_proc * 20,
                        l1_mr=l1_mr,
                        l2_mr=l2_mr,
                    )
                )
                evs.append((BARRIER, bar))

            for p in range(P):
                evs = events[p]
                # pair phase: read the following n/2 molecules (wraparound)
                start = p * per_proc
                span_bytes = (n // 2) * MOL_BYTES
                addr = mols + start * MOL_BYTES
                wrap = max(0, (addr - mols) + span_bytes - n * MOL_BYTES)
                evs.extend(self.read_region(space, addr, span_bytes - wrap))
                if wrap:
                    evs.extend(self.read_region(space, mols, wrap))
                evs.append(
                    self.compute_block(
                        cache,
                        int(per_proc * (n // 2) * PAIR_CYCLES / 2),
                        reads=per_proc * (n // 2) * 3,
                        writes=per_proc * 8,
                        l1_mr=l1_mr,
                        l2_mr=l2_mr,
                    )
                )
                # apply the locally accumulated force updates once per
                # iteration, batched per victim partition under its lock
                # (the updates-accumulated-locally structure the paper
                # describes)
                victims = [(p + 1 + k) % P for k in range(P // 2)]
                for q in victims:
                    if q == p:
                        continue
                    evs.append((ACQUIRE, q))
                    v_addr = mols + q * part_bytes
                    evs.extend(
                        self.write_region(
                            space,
                            v_addr,
                            part_bytes,
                            mols_per_page * FORCE_WORDS,
                            mols_per_page,
                        )
                    )
                    evs.append((RELEASE, q))
                evs.append((BARRIER, bar + 1))
            bar += 2

        serial = AppGenerator.serial_from_blocks(events, serial_stall_factor=1.2)
        return AppTrace(
            name=self.name,
            n_procs=P,
            events=events,
            serial_cycles=serial,
            shared_bytes=space.used_bytes,
            problem=f"{n} molecules",
        )


class WaterSpatialGenerator(AppGenerator):
    name = "water-sp"
    description = "cell-list molecular dynamics; boundary-only sharing"

    def __init__(self, n_mols: int = 512):
        self.n_mols = n_mols

    def generate(self, params: GenParams) -> AppTrace:
        P = params.n_procs
        n = max(2 * P, int(self.n_mols * params.scale))
        n -= n % P
        per_proc = n // P
        cache = CacheModel(params.arch)
        space = AddressSpace(params.page_size)
        mols = space.alloc(n * MOL_BYTES, "molecules")
        part_bytes = per_proc * MOL_BYTES
        l1_mr, l2_mr = cache.miss_rates_for_working_set(2 * part_bytes)
        mols_per_page = max(1, params.page_size // MOL_BYTES)
        #: boundary molecules shared with each spatial neighbour
        boundary_bytes = min(part_bytes, 2 * params.page_size)

        events = [[] for _ in range(P)]
        for p in range(P):
            events[p].extend(
                self.touch_events(space, mols + p * part_bytes, part_bytes)
            )
            events[p].append((BARRIER, 0))

        bar = 1
        for _it in range(ITERATIONS):
            for p in range(P):
                evs = events[p]
                # read boundary cells of the two spatial neighbours
                for q in ((p - 1) % P, (p + 1) % P):
                    addr = mols + q * part_bytes
                    if q == (p - 1) % P:
                        addr += part_bytes - boundary_bytes
                    evs.extend(self.read_region(space, addr, boundary_bytes))
                # same physics per molecule, but only neighbour-cell pairs
                evs.append(
                    self.compute_block(
                        cache,
                        int(per_proc * (INTRA_CYCLES + 40 * PAIR_CYCLES)),
                        reads=per_proc * 120,
                        writes=per_proc * 30,
                        l1_mr=l1_mr,
                        l2_mr=l2_mr,
                    )
                )
                # update own boundary molecules (consumed by neighbours)
                own_boundary = mols + p * part_bytes
                for page in space.pages_of(own_boundary, boundary_bytes):
                    lock_id = int(page) % 64
                    evs.append((ACQUIRE, lock_id))
                    evs.append(
                        (WRITE, int(page), mols_per_page * FORCE_WORDS, mols_per_page)
                    )
                    evs.append((RELEASE, lock_id))
                evs.append((BARRIER, bar))
            bar += 1

        serial = AppGenerator.serial_from_blocks(events, serial_stall_factor=1.2)
        return AppTrace(
            name=self.name,
            n_procs=P,
            events=events,
            serial_cycles=serial,
            shared_bytes=space.used_bytes,
            problem=f"{n} molecules (spatial)",
        )
