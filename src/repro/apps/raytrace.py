"""Raytrace — ray tracing with distributed task queues (SVM-tuned variant).

The version the paper uses removes an unnecessary global lock and
restructures the task queues for SVM/SMP.  What remains protocol-wise:

* a large **read-only scene** (BSP tree + primitives): pages fault once
  per node on first use and stay valid — cheap steady-state;
* a **task queue per processor**, each living on its own page, protected
  by a lock: dequeuing your own tasks is a mostly-local lock; *stealing*
  from a loaded victim takes a remote lock **and reads/writes the
  victim's queue page inside the critical section** — the
  page-fault-in-critical-section serialization the paper identifies as
  Raytrace's limiter;
* per-task compute with high variance (rays differ wildly in cost),
  which is what makes stealing necessary at all.

Message count is high (many small lock transfers); byte volume is
moderate — Raytrace sits in the host-overhead- and interrupt-sensitive
group, not the bandwidth-bound one.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import (
    ACQUIRE,
    BARRIER,
    READ,
    RELEASE,
    WRITE,
    AddressSpace,
    AppGenerator,
    AppTrace,
    GenParams,
)
from repro.arch.cache import CacheModel

#: base cycles per ray-bundle task
TASK_CYCLES = 22_000
#: scene footprint in bytes
SCENE_BYTES = 1 << 21
#: tasks initially assigned per processor
TASKS_PER_PROC = 160
#: fraction of tasks that end up stolen (after the improved assignment)
STEAL_FRACTION = 0.18
QUEUE_LOCK_BASE = 100


class RaytraceGenerator(AppGenerator):
    name = "raytrace"
    description = "task queues + stealing; faults inside critical sections"

    def __init__(self, tasks_per_proc: int = TASKS_PER_PROC):
        self.tasks_per_proc = tasks_per_proc

    def generate(self, params: GenParams) -> AppTrace:
        P = params.n_procs
        tasks = max(8, int(self.tasks_per_proc * params.scale))
        cache = CacheModel(params.arch)
        space = AddressSpace(params.page_size)
        rng = params.rng(salt=2)

        scene = space.alloc(SCENE_BYTES, "scene")
        scene_range = space.pages_of(scene, SCENE_BYTES)
        scene_pages = np.arange(scene_range.start, scene_range.stop)

        def region_pages(p: int):
            """Scene pages processor ``p``'s rays actually traverse: its
            image tile maps to a slab of the scene plus the globally
            shared top of the BSP tree (rays have spatial locality — a
            processor does not touch the whole scene)."""
            n_pages = len(scene_pages)
            slab = max(1, n_pages // P)
            lo = p * slab
            local = scene_pages[lo : lo + 2 * slab]
            shared_top = scene_pages[: max(1, n_pages // 10)]
            return np.concatenate([local, shared_top])
        queues = space.alloc(P * params.page_size, "queues")
        frame = space.alloc(P * params.page_size * 4, "framebuffer")
        l1_mr, l2_mr = cache.miss_rates_for_working_set(SCENE_BYTES // 4)

        events = [[] for _ in range(P)]
        for p in range(P):
            evs = events[p]
            # scene is initialized by processor 0 (it homes everywhere it
            # first touches; a realistic master-initialized scene)
            if p == 0:
                evs.extend(self.touch_events(space, scene, SCENE_BYTES))
            evs.extend(
                self.touch_events(
                    space, queues + p * params.page_size, params.page_size
                )
            )
            evs.extend(
                self.touch_events(
                    space, frame + p * params.page_size * 4, params.page_size * 4
                )
            )
            evs.append((BARRIER, 0))

        for p in range(P):
            evs = events[p]
            own_queue_page = space.page_of(queues + p * params.page_size)
            own_lock = QUEUE_LOCK_BASE + p
            # touch a small initial slice of this processor's scene region;
            # the rest faults in on demand during tracing
            my_region = region_pages(p)
            warm = rng.choice(my_region, size=max(1, len(my_region) // 16), replace=False)
            evs.extend([(READ, page) for page in np.sort(warm).tolist()])

            n_steals = int(tasks * STEAL_FRACTION)
            n_own = tasks - n_steals
            # high-variance task costs (rays through complex geometry)
            costs = rng.lognormal(mean=0.0, sigma=0.9, size=tasks) * TASK_CYCLES

            for t in range(tasks):
                stealing = t >= n_own
                if stealing:
                    victim = int(rng.integers(0, P - 1))
                    victim = victim if victim < p else victim + 1
                    v_lock = QUEUE_LOCK_BASE + victim
                    v_page = space.page_of(queues + victim * params.page_size)
                    evs.append((ACQUIRE, v_lock))
                    evs.append((READ, v_page))  # fault inside the CS
                    evs.append((WRITE, v_page, 4, 1))
                    evs.append((RELEASE, v_lock))
                else:
                    evs.append((ACQUIRE, own_lock))
                    evs.append((WRITE, own_queue_page, 4, 1))
                    evs.append((RELEASE, own_lock))
                # trace the rays: reads a couple of pages of this
                # processor's scene region (cached after first fault)
                evs.extend(
                    [
                        (READ, page)
                        for page in rng.choice(my_region, size=2, replace=False).tolist()
                    ]
                )
                evs.append(
                    self.compute_block(
                        cache,
                        int(costs[t]),
                        reads=int(costs[t]) // 8,
                        writes=int(costs[t]) // 40,
                        l1_mr=l1_mr,
                        l2_mr=l2_mr,
                    )
                )
            evs.append((BARRIER, 1))

        serial = AppGenerator.serial_from_blocks(events, serial_stall_factor=1.15)
        return AppTrace(
            name=self.name,
            n_procs=P,
            events=events,
            serial_cycles=serial,
            shared_bytes=space.used_bytes,
            problem=f"{tasks} tasks/proc, {SCENE_BYTES >> 20} MB scene",
        )
