"""Barnes-Hut N-body simulation, both tree-building variants.

Shared data: a body array (block-partitioned) and the shared octree
(cells).  Per timestep: build the tree, compute forces (each processor
traverses most of the tree, which was rewritten during the build, so its
cached tree pages are invalid and re-fetch), and update own bodies.

**Barnes-rebuild** (the SPLASH-2 original): processors load their bodies
directly into the *shared* tree, locking cells as they descend —
fine-grained, irregular, and lock-heavy.  Every insertion takes a cell
lock and reads/writes a tree page *inside the critical section*; cells
contend across nodes.  This makes Barnes-rebuild the paper's most
communication-intensive application (highest message count, most remote
lock acquires, worst achievable speedup).

**Barnes-space** (the SVM-optimized variant): disjoint *subspaces* that
match tree cells are assigned to processors; each builds a private
partial tree (pure local computation) and the partial trees are merged
into the global tree *without locking* — only the merge writes touch
shared pages.  Same force phase, a tiny fraction of the synchronization.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.base import (
    ACQUIRE,
    BARRIER,
    READ,
    RELEASE,
    WRITE,
    AddressSpace,
    AppGenerator,
    AppTrace,
    GenParams,
)
from repro.arch.cache import CacheModel

BODY_BYTES = 120
CELL_BYTES = 96
#: cycles to insert one body into the tree
INSERT_CYCLES = 250
#: cycles of force computation per body
FORCE_CYCLES = 6_000
TIMESTEPS = 2
CELL_LOCKS = 256
CELL_LOCK_BASE = 1000


class _BarnesBase(AppGenerator):
    def __init__(self, n_bodies: int = 4096):
        self.n_bodies = n_bodies

    # subclasses fill in the build phase
    def _build_phase(self, evs: List, p: int, params, ctxt) -> None:
        raise NotImplementedError

    def generate(self, params: GenParams) -> AppTrace:
        P = params.n_procs
        n = max(8 * P, int(self.n_bodies * params.scale))
        n -= n % P
        per_proc = n // P
        cache = CacheModel(params.arch)
        space = AddressSpace(params.page_size)
        rng = params.rng(salt=4)

        bodies = space.alloc(n * BODY_BYTES, "bodies")
        n_cells = max(P, n // 4)
        tree = space.alloc(n_cells * CELL_BYTES, "tree")
        tree_range = space.pages_of(tree, n_cells * CELL_BYTES)
        tree_pages = np.arange(tree_range.start, tree_range.stop)
        part_bytes = per_proc * BODY_BYTES
        l1_mr, l2_mr = cache.miss_rates_for_working_set(
            part_bytes + len(tree_pages) * params.page_size // 2
        )
        ctxt = dict(
            rng=rng,
            space=space,
            tree=tree,
            tree_pages=tree_pages,
            per_proc=per_proc,
            cache=cache,
            l1_mr=l1_mr,
            l2_mr=l2_mr,
        )

        events = [[] for _ in range(P)]
        for p in range(P):
            evs = events[p]
            evs.extend(self.touch_events(space, bodies + p * part_bytes, part_bytes))
            # tree cells are spread over processors (subspace ownership)
            share = len(tree_pages) // P
            evs.extend(
                [("t", page) for page in tree_pages[p * share : (p + 1) * share].tolist()]
            )
            evs.append((BARRIER, 0))

        bar = 1
        for _step in range(TIMESTEPS):
            # 1) tree build (variant-specific)
            for p in range(P):
                self._build_phase(events[p], p, params, ctxt)
                events[p].append((BARRIER, bar))
            bar += 1
            # 2) force computation: a traversal touches its own subspace's
            # cells plus the upper tree levels — about a third of the tree
            # (rebuilt this step, so these pages re-fetch)
            for p in range(P):
                evs = events[p]
                touched = rng.choice(
                    tree_pages, size=max(1, int(len(tree_pages) * 0.35)), replace=False
                )
                evs.extend([(READ, page) for page in np.sort(touched).tolist()])
                evs.append(
                    self.compute_block(
                        cache,
                        int(per_proc * FORCE_CYCLES),
                        reads=per_proc * 600,
                        writes=per_proc * 30,
                        l1_mr=l1_mr,
                        l2_mr=l2_mr,
                    )
                )
                evs.append((BARRIER, bar))
            bar += 1
            # 3) update own bodies (local pages)
            words_per_page = params.page_size // params.arch.word_bytes
            for p in range(P):
                evs = events[p]
                evs.extend(
                    self.write_region(
                        space, bodies + p * part_bytes, part_bytes, words_per_page // 2, 4
                    )
                )
                evs.append(
                    self.compute_block(
                        cache,
                        per_proc * 60,
                        reads=per_proc * 10,
                        writes=per_proc * 10,
                        l1_mr=l1_mr,
                        l2_mr=l2_mr,
                    )
                )
                evs.append((BARRIER, bar))
            bar += 1

        serial = AppGenerator.serial_from_blocks(events, serial_stall_factor=1.25)
        return AppTrace(
            name=self.name,
            n_procs=P,
            events=events,
            serial_cycles=serial,
            shared_bytes=space.used_bytes,
            problem=f"{n} bodies",
        )


class BarnesRebuildGenerator(_BarnesBase):
    name = "barnes-rebuild"
    description = "shared-tree build with cell locking (SPLASH-2 original)"

    def _build_phase(self, evs: List, p: int, params: GenParams, ctxt) -> None:
        rng = ctxt["rng"]
        tree_pages = ctxt["tree_pages"]
        per_proc = ctxt["per_proc"]
        # every ~4th body insertion descends into a contended region:
        # lock the cell, read+write its page inside the critical section
        insertions = max(1, per_proc // 4)
        pages = rng.choice(tree_pages, size=insertions, replace=True).tolist()
        locks = (CELL_LOCK_BASE + rng.integers(0, CELL_LOCKS, size=insertions)).tolist()
        for page, lock_id in zip(pages, locks):
            evs.append((ACQUIRE, lock_id))
            evs.append((READ, page))
            evs.append((WRITE, page, 8, 2))
            evs.append((RELEASE, lock_id))
        evs.append(
            self.compute_block(
                ctxt["cache"],
                per_proc * INSERT_CYCLES,
                reads=per_proc * 30,
                writes=per_proc * 10,
                l1_mr=ctxt["l1_mr"],
                l2_mr=ctxt["l2_mr"],
            )
        )


class BarnesSpaceGenerator(_BarnesBase):
    name = "barnes-space"
    description = "private partial trees merged without locking (SVM-tuned)"

    def _build_phase(self, evs: List, p: int, params: GenParams, ctxt) -> None:
        space = ctxt["space"]
        tree_pages = ctxt["tree_pages"]
        per_proc = ctxt["per_proc"]
        # build a private partial tree: pure local computation
        evs.append(
            self.compute_block(
                ctxt["cache"],
                per_proc * INSERT_CYCLES,
                reads=per_proc * 30,
                writes=per_proc * 10,
                l1_mr=ctxt["l1_mr"],
                l2_mr=ctxt["l2_mr"],
            )
        )
        # merge: write only this processor's subspace cells (its own pages
        # by first touch), lock-free
        P = params.n_procs
        share = len(tree_pages) // P
        words_per_page = params.page_size // params.arch.word_bytes
        w = words_per_page // 2
        evs.extend(
            [(WRITE, page, w, 2) for page in tree_pages[p * share : (p + 1) * share].tolist()]
        )
