"""Node-architecture substrate: parameters, caches, buses, processors.

This package models the paper's simulated node (Figure 2): a bus-based SMP
with a write-through L1, an L2, a write buffer, a split-transaction memory
bus, and a network interface hanging off an I/O bus (the NI itself lives in
:mod:`repro.net`).

The swept communication parameters (Table 1) live in
:class:`~repro.arch.params.CommParams`; the fixed machine in
:class:`~repro.arch.params.ArchParams`.
"""

from repro.arch.cache import BlockAccessProfile, BlockCosts, CacheModel
from repro.arch.membus import BUS_CLASSES, MemoryBus
from repro.arch.params import (
    ACHIEVABLE,
    BEST,
    COMM_REGIMES,
    HOST_OVERHEAD_SWEEP,
    INTERRUPT_COST_SWEEP,
    IO_BANDWIDTH_SWEEP,
    NI_OCCUPANCY_SWEEP,
    PAGE_SIZE_SWEEP,
    PARAMETER_RANGES,
    PROCS_PER_NODE_SWEEP,
    TABLE2_CLUSTERINGS,
    TOTAL_PROCESSORS,
    ArchParams,
    CommParams,
    CommRegime,
)
from repro.arch.processor import TIME_CATEGORIES, Processor, ProcessorStats
from repro.arch.write_buffer import WriteBufferModel, WriteBurst

__all__ = [
    "ACHIEVABLE",
    "BEST",
    "BUS_CLASSES",
    "ArchParams",
    "BlockAccessProfile",
    "BlockCosts",
    "COMM_REGIMES",
    "CacheModel",
    "CommParams",
    "CommRegime",
    "HOST_OVERHEAD_SWEEP",
    "INTERRUPT_COST_SWEEP",
    "IO_BANDWIDTH_SWEEP",
    "MemoryBus",
    "NI_OCCUPANCY_SWEEP",
    "PAGE_SIZE_SWEEP",
    "PARAMETER_RANGES",
    "PROCS_PER_NODE_SWEEP",
    "Processor",
    "ProcessorStats",
    "TABLE2_CLUSTERINGS",
    "TIME_CATEGORIES",
    "TOTAL_PROCESSORS",
    "WriteBufferModel",
    "WriteBurst",
]
