"""Write-buffer occupancy model.

The simulated node (paper Figure 2) places a write buffer between the
write-through L1 and the L2/memory bus, with a *retire-at-N* policy: the
buffer starts draining entries once N of its slots fill, and the processor
stalls only when all slots are full.

This module provides a small analytic model of that behaviour used both by
:class:`repro.arch.cache.CacheModel` (default constant pressure) and
directly by tests/experiments that want the occupancy dynamics: given a
block's write rate and the drain rate implied by L2/bus service, it
computes the expected full-buffer stall cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import ArchParams


@dataclass(frozen=True)
class WriteBurst:
    """A burst of ``writes`` stores issued over ``duration`` cycles."""

    writes: int
    duration: int

    def __post_init__(self) -> None:
        if self.writes < 0 or self.duration <= 0:
            raise ValueError("writes >= 0 and duration > 0 required")

    @property
    def rate(self) -> float:
        """Writes per cycle."""
        return self.writes / self.duration


class WriteBufferModel:
    """Analytic retire-at-N write buffer.

    The buffer drains one entry per ``drain_cycles`` once occupancy
    reaches ``retire_at``.  For a burst at ``rate`` writes/cycle:

    * if ``rate <= drain_rate`` the buffer never fills beyond the retire
      threshold — zero stalls;
    * otherwise the excess writes accumulate; once the remaining
      ``entries - retire_at`` slots fill, every further write stalls for
      the drain interval.
    """

    def __init__(self, arch: ArchParams, drain_cycles: int | None = None) -> None:
        self.arch = arch
        #: cycles to retire one entry (L2 write takes the L2 hit time)
        self.drain_cycles = drain_cycles if drain_cycles is not None else arch.l2_hit_cycles

    @property
    def drain_rate(self) -> float:
        """Entries retired per cycle once draining."""
        return 1.0 / self.drain_cycles

    def headroom(self) -> int:
        """Slots available beyond the retire threshold."""
        return self.arch.wb_entries - self.arch.wb_retire_at

    def stall_cycles(self, burst: WriteBurst) -> int:
        """Expected processor stall cycles for the burst."""
        excess_rate = burst.rate - self.drain_rate
        if excess_rate <= 0:
            return 0
        # Writes that cannot drain during the burst:
        backlog = excess_rate * burst.duration
        # The first `headroom` of them sit in free slots without stalling.
        stalled_writes = max(0.0, backlog - self.headroom())
        return int(stalled_writes * self.drain_cycles)

    def stall_fraction(self, burst: WriteBurst) -> float:
        """Stall cycles as a fraction of the burst duration (clamped)."""
        return min(1.0, self.stall_cycles(burst) / burst.duration)
