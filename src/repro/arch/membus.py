"""Split-transaction memory-bus model with contention.

Each SMP node has one memory bus shared by its processors' cache misses,
the write buffer, memory, and the network interface's DMA engines.  The
paper models contention here explicitly; so do we, with two mechanisms
sized for a page-grain simulation:

* **Discrete transfers** (page DMA in/out, diff application, NI deposits)
  go through an analytic FCFS :class:`~repro.sim.resources.FluidQueue`.
  Each transfer pays arbitration + service at the bus bandwidth, with the
  service rate degraded by the background load present when it starts.
  Arbitration priorities (NI-out > L2 > WB > memory > NI-in, per the
  paper) are reflected as small per-class arbitration surcharges —
  with a fluid queue the *ordering* effect of priorities is second-order,
  but the cost asymmetry (an NI-in transfer yields to everyone and so
  waits longer under load) is retained.

* **Background load** from compute blocks: processors register their
  block's average bus demand (bytes/cycle) for the block's duration.
  Blocks see a queueing-style stall inflation ``1/(1 - rho)`` where
  ``rho`` is total bus utilization (background from other processors plus
  the fraction of the block window the fluid queue is already busy).
  This is what makes the memory bus saturate beyond ~4 processors/node
  for bus-hungry applications (Ocean), reproducing Figure 13's peak.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.sim.resources import FluidQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.params import ArchParams
    from repro.sim.engine import Simulator

#: arbitration priority classes, lower wins (paper Section 2)
BUS_CLASSES = ("ni_out", "l2", "wb", "mem", "ni_in")

#: extra arbitration bus-cycles charged per class (cost asymmetry of the
#: priority order under a fluid-queue approximation)
_CLASS_ARB_EXTRA = {"ni_out": 0, "l2": 0, "wb": 1, "mem": 1, "ni_in": 2}

#: utilization cap so the analytic inflation factor stays finite
_RHO_CAP = 0.95


class MemoryBus:
    """One node's split-transaction memory bus."""

    def __init__(self, sim: "Simulator", arch: "ArchParams", name: str = "membus") -> None:
        self.sim = sim
        self.arch = arch
        self.name = name
        self.queue = FluidQueue(sim, name, bytes_per_cycle=arch.membus_bytes_per_cycle)
        #: per-class arbitration cost, precomputed once per bus
        self._arb = {
            kind: arch.membus_arb_cycles * (1 + extra)
            for kind, extra in _CLASS_ARB_EXTRA.items()
        }
        self._bpc = arch.membus_bytes_per_cycle
        #: summed background demand currently registered (bytes/cycle)
        self._bg_rate = 0.0
        #: statistics
        self.transfer_count = 0
        self.transfer_bytes = 0
        self.background_bytes = 0
        #: optional metrics registry (None = disabled, single check per transfer)
        self.metrics = None

    # ------------------------------------------------------------------ #
    # discrete transfers
    # ------------------------------------------------------------------ #
    def transfer_latency(self, nbytes: int, kind: str = "mem") -> int:
        """Enqueue a bus transfer; return total latency in cycles.

        The caller should ``yield sim.timeout(latency)``.
        """
        try:
            arb = self._arb[kind]
        except KeyError:
            raise ValueError(
                f"unknown bus class {kind!r}; one of {BUS_CLASSES}"
            ) from None
        if nbytes < 0:
            raise ValueError("negative transfer size")
        bpc = self._bpc
        bg = self._bg_rate
        if bg == 0.0:
            # Idle-bus fast path: residual bandwidth is exactly 1.0.
            service = arb + nbytes / bpc
        else:
            # Background load eats into the bandwidth a burst transfer sees.
            residual = max(0.05, 1.0 - min(_RHO_CAP, bg / bpc))
            service = arb + nbytes / (bpc * residual)
        self.transfer_count += 1
        self.transfer_bytes += nbytes
        metrics = self.metrics
        if metrics is not None:
            metrics.bump(f"{self.name}.{kind}.transfers")
            metrics.bump(f"{self.name}.{kind}.bytes", nbytes)
            metrics.sample_queue(f"{self.name}.backlog", self.queue.backlog)
        return self.queue.latency(service)

    def transfer_latency_batch(self, nbytes, kind: str = "mem"):
        """Vectorized :meth:`transfer_latency` for a same-cycle batch.

        Equivalent to calling :meth:`transfer_latency` element-by-element
        (identical service arithmetic and backlog accumulation); returns
        an int64 array of per-transfer latencies.  Used by the analytic
        fast model to price whole epochs of bus traffic at once.
        """
        try:
            arb = self._arb[kind]
        except KeyError:
            raise ValueError(
                f"unknown bus class {kind!r}; one of {BUS_CLASSES}"
            ) from None
        sizes = np.asarray(nbytes, dtype=np.float64)
        if sizes.size and sizes.min() < 0:
            raise ValueError("negative transfer size")
        bpc = self._bpc
        bg = self._bg_rate
        if bg == 0.0:
            services = arb + sizes / bpc
        else:
            residual = max(0.05, 1.0 - min(_RHO_CAP, bg / bpc))
            services = arb + sizes / (bpc * residual)
        self.transfer_count += sizes.size
        total = int(sizes.sum())
        self.transfer_bytes += total
        metrics = self.metrics
        if metrics is not None:
            metrics.bump(f"{self.name}.{kind}.transfers", sizes.size)
            metrics.bump(f"{self.name}.{kind}.bytes", total)
            metrics.sample_queue(f"{self.name}.backlog", self.queue.backlog)
        return self.queue.latency_batch(services)

    # ------------------------------------------------------------------ #
    # background (compute-block) load
    # ------------------------------------------------------------------ #
    def register_background(self, bytes_per_cycle: float) -> None:
        """A processor starts a compute block demanding this bus rate."""
        if bytes_per_cycle < 0:
            raise ValueError("negative background rate")
        self._bg_rate += bytes_per_cycle

    def unregister_background(self, bytes_per_cycle: float) -> None:
        self._bg_rate -= bytes_per_cycle
        if self._bg_rate < -1e-9:
            raise RuntimeError(f"background rate underflow on {self.name}")
        if self._bg_rate < 0:
            self._bg_rate = 0.0
        self.background_bytes += 0  # bookkeeping hook; bytes counted on register

    def utilization_for_block(self, own_rate: float, block_cycles: int) -> float:
        """Bus utilization a block of the given length would observe,
        excluding its own demand."""
        a = self.arch
        other_bg = max(0.0, self._bg_rate - own_rate)
        rho = other_bg / a.membus_bytes_per_cycle
        if block_cycles > 0:
            # foreground bursts currently queued overlap the block window
            overlap = min(self.queue.backlog, block_cycles)
            rho += overlap / block_cycles
        return min(_RHO_CAP, rho)

    def stall_multiplier(self, own_rate: float, block_cycles: int) -> float:
        """Inflation factor (>= 1) for a block's memory-stall component.

        Classic single-server queueing inflation ``1 / (1 - rho)`` against
        the utilization the block observes from everyone else.
        """
        rho = self.utilization_for_block(own_rate, block_cycles)
        return 1.0 / (1.0 - rho)

    # ------------------------------------------------------------------ #
    @property
    def background_rate(self) -> float:
        """Currently registered background demand (bytes/cycle)."""
        return self._bg_rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryBus({self.name!r}, bg={self._bg_rate:.3f} B/cyc)"
