"""Processor model with interrupt-aware time accounting.

Each simulated processor runs one application thread (its trace) and may
additionally be the target of protocol interrupts.  Interrupt handlers
*steal* the CPU: while a handler runs, the application thread makes no
progress.  The paper's central result — interrupt cost dominates SVM
performance — falls out of exactly this interaction, so it is modelled
carefully:

* Handlers on one CPU are serialized (:attr:`Processor._handler_lock`).
* The application thread's occupancy loop measures the integral of
  handler-busy time over its own window and extends itself by exactly
  that amount (see :meth:`Processor._occupied`) — an exact model of
  preemption without event-level context switching.

Every cycle a processor spends is charged to one category of
:class:`ProcessorStats` (compute, local stall, data wait, lock wait,
barrier wait, handler, host overhead), giving the paper's per-application
cost breakdowns (Section 7).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, Iterator, Optional

from repro.sim.primitives import Event
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.membus import MemoryBus
    from repro.sim.engine import Simulator

#: time-accounting categories (mirrors the paper's breakdowns);
#: "protocol" is on-CPU protocol work in application context (twin
#: creation, diff computation at releases), as opposed to "handler"
#: (interrupt-driven protocol work stealing the CPU)
TIME_CATEGORIES = (
    "compute",
    "local_stall",
    "data_wait",
    "lock_wait",
    "barrier_wait",
    "handler",
    "overhead",
    "protocol",
)


class ProcessorStats:
    """Per-processor time breakdown plus protocol event counters."""

    __slots__ = ("time", "counters")

    def __init__(self) -> None:
        self.time: Dict[str, int] = {cat: 0 for cat in TIME_CATEGORIES}
        self.counters: Dict[str, int] = {}

    def __eq__(self, other: object) -> bool:
        # value equality, so RunResults compare by content (the parallel
        # executor's determinism guarantee and the disk cache's round-trip
        # both rely on it)
        if not isinstance(other, ProcessorStats):
            return NotImplemented
        return self.time == other.time and self.counters == other.counters

    def __repr__(self) -> str:
        busy = {k: v for k, v in self.time.items() if v}
        return f"ProcessorStats(time={busy}, counters={self.counters})"

    def add(self, category: str, cycles: int) -> None:
        if category not in self.time:
            raise KeyError(f"unknown time category {category!r}")
        if cycles < 0:
            raise ValueError(f"negative time {cycles} for {category!r}")
        self.time[category] += cycles

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def get_count(self, name: str) -> int:
        return self.counters.get(name, 0)

    @property
    def busy_cycles(self) -> int:
        return sum(self.time.values())

    def merged_with(self, other: "ProcessorStats") -> "ProcessorStats":
        out = ProcessorStats()
        for cat in TIME_CATEGORIES:
            out.time[cat] = self.time[cat] + other.time[cat]
        for name in set(self.counters) | set(other.counters):
            out.counters[name] = self.get_count(name) + other.get_count(name)
        return out


class Processor:
    """One CPU of an SMP node.

    Parameters
    ----------
    sim:
        The simulator.
    global_id:
        Processor index across the whole cluster (0..P-1).
    cpu_index:
        Index within the owning node (0..procs_per_node-1).
    bus:
        The node's :class:`~repro.arch.membus.MemoryBus` (may be attached
        after construction via :attr:`bus`).
    """

    def __init__(
        self,
        sim: "Simulator",
        global_id: int,
        cpu_index: int = 0,
        bus: Optional["MemoryBus"] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.global_id = global_id
        self.cpu_index = cpu_index
        self.bus = bus
        self.name = name or f"cpu{global_id}"
        self.stats = ProcessorStats()
        self.node: Any = None  # back-reference set by the cluster builder
        #: optional metrics registry (set by the cluster when profiling);
        #: None keeps the handler path at a single attribute check
        self.metrics: Any = None

        self._handler_lock = Resource(sim, capacity=1, name=f"{self.name}.irq")
        self._irq_end_name = f"{self.name}.irq_end"
        self._handler_busy_completed = 0
        self._active_start: Optional[int] = None
        self._active_end: Optional[Event] = None
        #: wall-clock time at which this CPU's application thread finished
        self.finish_time: Optional[int] = None

    # ------------------------------------------------------------------ #
    # handler-time bookkeeping
    # ------------------------------------------------------------------ #
    def handler_busy_now(self) -> int:
        """Cumulative handler-busy cycles on this CPU as of now."""
        busy = self._handler_busy_completed
        if self._active_start is not None:
            busy += self.sim.now - self._active_start
        return busy

    @property
    def handler_active(self) -> bool:
        return self._active_start is not None

    def run_handler(self, body: Iterator) -> Generator:
        """Run ``body`` as an interrupt handler on this CPU.

        Yieldable generator: handlers on the same CPU serialize; the
        handler's full duration (including any bus waits inside the body)
        is charged to this CPU's ``handler`` time and steals cycles from
        the application thread.  Returns the body's return value.
        """
        yield self._handler_lock.acquire()
        self._active_start = self.sim.now
        self._active_end = Event(self.sim, name=self._irq_end_name)
        metrics = self.metrics
        if metrics is not None:
            # node-level union tracker: "some CPU of this node is inside a
            # protocol handler" (simultaneous handlers on sibling CPUs
            # count once), plus a per-CPU invocation tally
            key = f"n{self.node.node_id}.handler" if self.node is not None else f"{self.name}.handler"
            metrics.begin_busy(key, self.sim.now)
            metrics.bump(f"{self.name}.handlers")
        try:
            result = yield from body
        finally:
            duration = self.sim.now - self._active_start
            self._handler_busy_completed += duration
            self.stats.add("handler", duration)
            self._active_start = None
            end_event, self._active_end = self._active_end, None
            if metrics is not None:
                metrics.end_busy(key, self.sim.now)
            end_event.succeed()
            self._handler_lock.release()
        return result

    # ------------------------------------------------------------------ #
    # application-thread occupancy
    # ------------------------------------------------------------------ #
    def _occupied(self, cycles: int) -> Generator:
        """Occupy the CPU for ``cycles`` of *application* time.

        Extends itself by exactly the handler-busy time that overlaps it,
        so the application thread loses one cycle per stolen cycle.
        """
        remaining = int(cycles)
        while True:
            while self._active_end is not None:
                yield self._active_end
            if remaining <= 0:
                break
            busy_before = self.handler_busy_now()
            yield remaining
            remaining = self.handler_busy_now() - busy_before

    def busy(self, cycles: int, category: str) -> Generator:
        """Occupy the CPU and charge the time to ``category``."""
        self.stats.add(category, int(cycles))
        yield from self._occupied(int(cycles))

    def run_block(
        self,
        work_cycles: int,
        stall_cycles: int = 0,
        bus_bytes: int = 0,
    ) -> Generator:
        """Execute one compute block: work + local stall + bus demand.

        The block's local-miss traffic is registered as background load on
        the node's memory bus for the block's duration; the stall
        component is inflated by the contention multiplier the bus
        reports (see :class:`~repro.arch.membus.MemoryBus`).
        """
        work = int(work_cycles)
        stall = int(stall_cycles)
        base = work + stall
        if base <= 0:
            return
        rate = (bus_bytes / base) if bus_bytes else 0.0
        stall_eff = stall
        if self.bus is not None and base > 0:
            if rate:
                self.bus.register_background(rate)
            try:
                if stall:
                    stall_eff = int(stall * self.bus.stall_multiplier(rate, base))
                self.stats.add("compute", work)
                self.stats.add("local_stall", stall_eff)
                yield from self._occupied(work + stall_eff)
            finally:
                if rate:
                    self.bus.unregister_background(rate)
        else:
            self.stats.add("compute", work)
            if stall:
                self.stats.add("local_stall", stall)
            yield from self._occupied(work + stall)

    # ------------------------------------------------------------------ #
    # blocked-time accounting
    # ------------------------------------------------------------------ #
    def wait_for(self, waitable, category: str):
        """Wait on ``waitable`` charging the elapsed time to ``category``."""
        t0 = self.sim.now
        value = yield waitable
        self.stats.add(category, self.sim.now - t0)
        return value

    def wait_cycles(self, cycles: int, category: str) -> Generator:
        """Sleep (not occupying the CPU) charging time to ``category``."""
        self.stats.add(category, int(cycles))
        yield int(cycles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Processor({self.name})"
