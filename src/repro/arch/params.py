"""Architecture and communication parameters.

Two parameter families, mirroring the paper's methodology (Section 3):

* :class:`ArchParams` — the *fixed* node architecture (Section 2 of the
  paper): processor, cache hierarchy, write buffer, memory bus, network
  links, NI queues, protocol handler cost constants.  These never vary
  during the study.
* :class:`CommParams` — the communication-architecture parameters under
  study (Table 1): host overhead, I/O-bus bandwidth, NI occupancy,
  interrupt cost, plus the two granularity parameters (page size and
  processors per node).

The module also exports the paper's three named points in the parameter
space (:data:`ACHIEVABLE`, :data:`BEST`; *ideal* is a property of the
metrics, not of a configuration) and the sweep points for each figure.

All cycle values are 200 MHz processor cycles (5 ns each).  The original
text's numerals were stripped by OCR; the values below are reconstructions
documented in DESIGN.md and are trivially overridable via
``dataclasses.replace``.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass


class CommRegime(str, enum.Enum):
    """How the host reaches the network (paper's base system vs. modern).

    * ``BASELINE`` — the paper's architecture: sends cost
      ``host_overhead`` cycles of host occupancy, incoming protocol
      requests are delivered by interrupting a host processor.
    * ``RDMA`` — a user-level/RDMA-class network (PAPERS.md,
      "User-level DSM System for Modern High-Performance Interconnection
      Networks"): page fetches become remote reads served by the remote
      NI with no host involvement, sends post a descriptor for
      ``rdma_post_cycles``, and no interrupts are ever raised.
    """

    BASELINE = "baseline"
    RDMA = "rdma"


#: valid values for :attr:`CommParams.comm_regime`
COMM_REGIMES = tuple(r.value for r in CommRegime)


@dataclass(frozen=True)
class ArchParams:
    """Fixed node-architecture parameters (paper Section 2, Figure 2)."""

    # -- processor ------------------------------------------------------
    cpu_mhz: int = 200
    #: sustained instructions per cycle of the P6-like core
    ipc: float = 1.0

    # -- cache hierarchy --------------------------------------------------
    l1_bytes: int = 16 * 1024
    l1_assoc: int = 1  # direct mapped, write-through
    l2_bytes: int = 512 * 1024
    l2_assoc: int = 2
    line_bytes: int = 64
    #: read hit cost if satisfied in write buffer / L1 (cycles)
    l1_hit_cycles: int = 1
    #: read cost if satisfied in L2 (cycles)
    l2_hit_cycles: int = 10
    #: memory access latency beyond L2 (cycles); memory is fully pipelined
    mem_latency_cycles: int = 60

    # -- write buffer -----------------------------------------------------
    wb_entries: int = 8
    wb_retire_at: int = 4
    #: average stall cycles charged per write that finds the buffer full
    wb_full_stall_cycles: int = 4

    # -- memory bus -------------------------------------------------------
    #: split-transaction 64-bit bus at cpu/4 clock: 8 B x 50 MHz = 400 MB/s
    #: => 2 bytes per 200 MHz processor cycle
    membus_bytes_per_cycle: float = 2.0
    #: arbitration takes one bus cycle = 4 processor cycles
    membus_arb_cycles: int = 4

    # -- network ----------------------------------------------------------
    #: links run at processor speed, 16 bits wide => 2 bytes/cycle
    link_bytes_per_cycle: float = 2.0
    #: constant SAN link+switch latency (small; the paper does not vary it)
    link_latency_cycles: int = 200
    #: each NI has two 1 MB queues (incoming / outgoing)
    ni_queue_bytes: int = 1 << 20
    #: maximum packet payload; a 4 KB page travels as one packet
    packet_mtu: int = 4096
    packet_header_bytes: int = 64

    # -- OS / protocol handler cost constants ------------------------------
    #: TLB access from a kernel-mode handler
    tlb_kernel_cycles: int = 50
    #: fixed instruction cost of a protocol handler's code sequence
    handler_base_cycles: int = 200
    #: diff creation/application: per word compared ...
    diff_compare_cycles_per_word: int = 6
    #: ... plus per word actually included in the diff
    diff_include_cycles_per_word: int = 6
    word_bytes: int = 4
    #: twin creation: copy cost per word (page copy on first write)
    twin_copy_cycles_per_word: int = 1
    #: intra-SMP shared-memory synchronization op (hierarchical barrier leg)
    smp_sync_cycles: int = 100
    #: per-page cost of dropping a mapping at an acquire (TLB shootdown)
    page_invalidate_cycles: int = 20

    # -- model ablation switches (see DESIGN.md / bench_ablations) ---------
    #: cut-through transfer pipelining: end-to-end latency is the
    #: bottleneck stage, not the sum of stages.  False = store-and-forward.
    model_cut_through: bool = True
    #: serial NI receive gate: a request holds the NI's receive dispatch
    #: for the interrupt-signalling time, delaying later arrivals
    model_rx_gate: bool = True

    #: fields that must be strictly positive for the machine to make sense
    _POSITIVE_FIELDS = (
        "cpu_mhz",
        "ipc",
        "l1_bytes",
        "l1_assoc",
        "l2_bytes",
        "l2_assoc",
        "line_bytes",
        "wb_entries",
        "membus_bytes_per_cycle",
        "link_bytes_per_cycle",
        "ni_queue_bytes",
        "packet_mtu",
        "word_bytes",
    )
    #: cycle/count fields that may be zero but never negative
    _NON_NEGATIVE_FIELDS = (
        "l1_hit_cycles",
        "l2_hit_cycles",
        "mem_latency_cycles",
        "wb_retire_at",
        "wb_full_stall_cycles",
        "membus_arb_cycles",
        "link_latency_cycles",
        "packet_header_bytes",
        "tlb_kernel_cycles",
        "handler_base_cycles",
        "diff_compare_cycles_per_word",
        "diff_include_cycles_per_word",
        "twin_copy_cycles_per_word",
        "smp_sync_cycles",
        "page_invalidate_cycles",
    )

    def __post_init__(self) -> None:
        for name in self._POSITIVE_FIELDS:
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"ArchParams.{name} must be > 0, got {value!r}")
        for name in self._NON_NEGATIVE_FIELDS:
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"ArchParams.{name} must be >= 0, got {value!r}")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError(
                f"ArchParams.line_bytes must be a power of two, got {self.line_bytes}"
            )
        if self.wb_retire_at > self.wb_entries:
            raise ValueError(
                f"ArchParams.wb_retire_at ({self.wb_retire_at}) cannot exceed "
                f"wb_entries ({self.wb_entries})"
            )

    @property
    def page_copy_cycles(self) -> int:  # pragma: no cover - convenience
        """Deprecated convenience; prefer explicit page-size math."""
        return self.twin_copy_cycles_per_word

    def cycles_per_us(self) -> float:
        """Processor cycles per microsecond (200 at 200 MHz)."""
        return self.cpu_mhz


@dataclass(frozen=True)
class CommParams:
    """The communication parameters under study (paper Table 1).

    Defaults are the paper's **achievable** set: what an aggressive
    current/near-future system with well-optimized OS support provides.
    """

    #: cycles the host processor is busy posting an (asynchronous) send
    host_overhead: int = 500
    #: node-to-network bandwidth in MB per processor-clock-MHz.
    #: Numerically equal to bytes per processor cycle.
    io_bus_mb_per_mhz: float = 0.5
    #: NI core cycles spent preparing each packet
    ni_occupancy: int = 500
    #: cycles per *side* of an interrupt (issue, and delivery); a null
    #: interrupt therefore costs twice this
    interrupt_cost: int = 500
    #: coherence/transfer granularity
    page_size: int = 4096
    #: degree of clustering (SMP node size); total processors stays fixed
    procs_per_node: int = 4
    #: interrupt delivery scheme within an SMP node
    interrupt_scheme: str = "fixed"  # "fixed" | "round_robin"
    #: how incoming protocol requests reach a handler (the paper's
    #: Discussion section proposes the two interrupt-free alternatives):
    #: - "interrupt": interrupt a host processor (the base system)
    #: - "polling-dedicated": a reserved per-node protocol processor
    #:   polls the NI — no interrupts, but one CPU does no application
    #:   work (account for it by running the application on fewer procs)
    #: - "ni-offload": the programmable NI core runs the handlers itself
    #:   — no interrupts and no host CPU stolen, but the assist is slow
    protocol_processing: str = "interrupt"
    #: expected delay until a dedicated poller notices a request
    poll_latency: int = 250
    #: extra cycles per request when handlers run on the (slow) NI core
    assist_overhead: int = 1500
    #: network interfaces per node, each with its own I/O bus — the
    #: paper's suggested route to more node-to-network bandwidth
    #: ("Multiple network interfaces per node ... can increase the
    #: available bandwidth"); sends round-robin across them
    nis_per_node: int = 1
    #: communication regime: "baseline" (the paper's interrupt-driven
    #: architecture) or "rdma" (user-level remote reads, no interrupts)
    comm_regime: str = "baseline"
    #: host cycles to post an RDMA descriptor (replaces host_overhead on
    #: the send path when the regime is "rdma")
    rdma_post_cycles: int = 50

    def __post_init__(self) -> None:
        for name in ("host_overhead", "ni_occupancy", "interrupt_cost"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"CommParams.{name} must be >= 0, got {value!r}")
        if self.io_bus_mb_per_mhz <= 0:
            raise ValueError(
                f"CommParams.io_bus_mb_per_mhz must be > 0, got "
                f"{self.io_bus_mb_per_mhz!r}"
            )
        if self.page_size < 512 or self.page_size & (self.page_size - 1):
            raise ValueError(
                f"CommParams.page_size must be a power of two >= 512, got "
                f"{self.page_size!r}"
            )
        if self.procs_per_node < 1:
            raise ValueError(
                f"CommParams.procs_per_node must be >= 1, got {self.procs_per_node!r}"
            )
        if self.interrupt_scheme not in ("fixed", "round_robin"):
            raise ValueError(f"unknown interrupt scheme {self.interrupt_scheme!r}")
        if self.protocol_processing not in (
            "interrupt",
            "polling-dedicated",
            "ni-offload",
        ):
            raise ValueError(
                f"unknown protocol processing mode {self.protocol_processing!r}"
            )
        if self.poll_latency < 0 or self.assist_overhead < 0:
            raise ValueError("poll latency and assist overhead must be >= 0")
        if self.nis_per_node < 1:
            raise ValueError("nis_per_node must be >= 1")
        if isinstance(self.comm_regime, CommRegime):
            object.__setattr__(self, "comm_regime", self.comm_regime.value)
        if self.comm_regime not in COMM_REGIMES:
            raise ValueError(
                f"unknown comm_regime {self.comm_regime!r} "
                f"(valid: {', '.join(COMM_REGIMES)})"
            )
        if self.rdma_post_cycles < 0:
            raise ValueError(
                f"CommParams.rdma_post_cycles must be >= 0, got "
                f"{self.rdma_post_cycles!r}"
            )

    @property
    def io_bytes_per_cycle(self) -> float:
        """I/O-bus bandwidth in bytes per processor cycle.

        ``X`` MB/MHz at an ``F`` MHz clock is ``X*F`` MB/s over ``F`` M
        cycles/s — i.e. exactly ``X`` bytes per cycle, independent of the
        clock.  This is why the paper expresses bandwidth relative to
        processor speed.
        """
        return self.io_bus_mb_per_mhz

    @property
    def null_interrupt_cycles(self) -> int:
        """Cost of a null interrupt (issue + delivery)."""
        return 2 * self.interrupt_cost

    @property
    def is_rdma(self) -> bool:
        """True when the user-level/RDMA regime is selected."""
        return self.comm_regime == CommRegime.RDMA.value

    @property
    def send_post_cycles(self) -> int:
        """Host cycles charged to post one send under the active regime."""
        return self.rdma_post_cycles if self.is_rdma else self.host_overhead

    @property
    def effective_interrupt_cost(self) -> int:
        """Per-side interrupt cost under the active regime (RDMA: none)."""
        return 0 if self.is_rdma else self.interrupt_cost

    def replace(self, **kw) -> "CommParams":
        """Functional update (sugar over :func:`dataclasses.replace`)."""
        return dataclasses.replace(self, **kw)


# --------------------------------------------------------------------- #
# The paper's named parameter-space points (Table 1)
# --------------------------------------------------------------------- #

#: aggressive current/near-future values; the baseline for every sweep
ACHIEVABLE = CommParams()

#: best value of every parameter within the studied ranges: free host
#: overhead, I/O bus as fast as the memory bus, free NI occupancy, free
#: interrupts.  Contention is still modelled.
BEST = CommParams(
    host_overhead=0,
    io_bus_mb_per_mhz=2.0,
    ni_occupancy=0,
    interrupt_cost=0,
)

# --------------------------------------------------------------------- #
# Sweep points per figure (paper Section 3 / figure captions)
# --------------------------------------------------------------------- #

#: Figure 5 — host overhead, five points, 0 to 6000 cycles (~30 us)
HOST_OVERHEAD_SWEEP = (0, 500, 1000, 3000, 6000)

#: Figure 6 / Figure 11 — NI occupancy per packet, six points (~0-20 us)
NI_OCCUPANCY_SWEEP = (0, 200, 500, 1000, 2000, 4000)

#: Figure 7 — I/O bus bandwidth in MB/MHz (400/200/100/50 MB/s @200 MHz)
IO_BANDWIDTH_SWEEP = (2.0, 1.0, 0.5, 0.25)

#: Figure 9 — interrupt cost per side, seven bars, 0 to 10000 cycles
INTERRUPT_COST_SWEEP = (0, 200, 500, 1000, 2000, 5000, 10000)

#: Figure 12 — page size, 1 KB to 16 KB
PAGE_SIZE_SWEEP = (1024, 2048, 4096, 8192, 16384)

#: Figure 13 — degree of clustering at 16 processors total
PROCS_PER_NODE_SWEEP = (1, 2, 4, 8)

#: Table 2 reports protocol events for these clusterings
TABLE2_CLUSTERINGS = (1, 4, 8)

#: total processors in every configuration of the study
TOTAL_PROCESSORS = 16

PARAMETER_RANGES = {
    "host_overhead": (0, 6000),
    "io_bus_mb_per_mhz": (0.25, 2.0),
    "ni_occupancy": (0, 4000),
    "interrupt_cost": (0, 10000),
    "page_size": (1024, 16384),
    "procs_per_node": (1, 8),
}
