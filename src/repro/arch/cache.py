"""Analytic cache-hierarchy cost model.

The original study simulated every load and store through an L1/L2/write
buffer hierarchy.  At repro band 2 we replace that with an *analytic* model
evaluated once per compute block: application generators describe each
block's memory behaviour (reference counts and miss ratios, derived from
the real data-structure sizes), and this model converts the description
into

* **local stall cycles** — time the processor is stalled on its own cache
  hierarchy, which the paper's *ideal* speedup retains, and
* **memory-bus bytes** — the block's local traffic on the node's shared
  bus, which drives the bus-contention model (and hence the Ocean
  clustering result: beyond four processors per node the shared bus
  saturates on capacity/conflict misses).

Only aggregates enter the paper's results, so this preserves the reported
effects at a tiny fraction of the simulation cost (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import ArchParams


@dataclass(frozen=True)
class BlockAccessProfile:
    """Memory behaviour of one compute block on one processor.

    Attributes
    ----------
    reads, writes:
        Data reference counts issued by the block.
    l1_miss_rate:
        Fraction of references missing the first-level cache.
    l2_miss_rate:
        Fraction of *L1 misses* that also miss the second-level cache
        (i.e. go to local memory over the bus).
    """

    reads: int
    writes: int
    l1_miss_rate: float
    l2_miss_rate: float

    def __post_init__(self) -> None:
        if self.reads < 0 or self.writes < 0:
            raise ValueError("reference counts must be non-negative")
        for rate in (self.l1_miss_rate, self.l2_miss_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"miss rate {rate!r} outside [0, 1]")

    @property
    def refs(self) -> int:
        return self.reads + self.writes


@dataclass(frozen=True)
class BlockCosts:
    """What a compute block costs beyond its pure work cycles."""

    #: uncontended processor stall cycles on the local hierarchy
    stall_cycles: int
    #: bytes the block moves across the node's memory bus
    bus_bytes: int
    #: memory-bus transactions (cache-line fills + writebacks)
    bus_transactions: int


class CacheModel:
    """Converts :class:`BlockAccessProfile` into :class:`BlockCosts`.

    Parameters
    ----------
    arch:
        The fixed architecture parameters.
    writeback_fraction:
        Fraction of L2 fills that evict a dirty line (adds writeback
        traffic on the bus).
    wb_stall_fraction:
        Fraction of writes that find the write buffer at its retire
        threshold and stall the processor (the write buffer has
        ``wb_entries`` entries and a retire-at-``wb_retire_at`` policy;
        under the 1-IPC core a small constant fraction stalls).
    """

    def __init__(
        self,
        arch: ArchParams,
        writeback_fraction: float = 0.25,
        wb_stall_fraction: float = 0.05,
    ) -> None:
        if not 0.0 <= writeback_fraction <= 1.0:
            raise ValueError("writeback_fraction outside [0, 1]")
        if not 0.0 <= wb_stall_fraction <= 1.0:
            raise ValueError("wb_stall_fraction outside [0, 1]")
        self.arch = arch
        self.writeback_fraction = writeback_fraction
        self.wb_stall_fraction = wb_stall_fraction

    # ------------------------------------------------------------------ #
    def line_fill_cycles(self) -> int:
        """Uncontended cycles to fill one cache line from local memory."""
        a = self.arch
        transfer = a.line_bytes / a.membus_bytes_per_cycle
        return int(a.mem_latency_cycles + a.membus_arb_cycles + transfer)

    def block_costs(self, profile: BlockAccessProfile) -> BlockCosts:
        """Evaluate the analytic model for one block."""
        a = self.arch
        l1_misses = profile.refs * profile.l1_miss_rate
        l2_misses = l1_misses * profile.l2_miss_rate
        l2_hits = l1_misses - l2_misses

        stall = 0.0
        # L2 hits: the extra latency beyond the 1-cycle L1 hit already
        # folded into the 1-IPC execution model.
        stall += l2_hits * (a.l2_hit_cycles - a.l1_hit_cycles)
        # L2 misses: full memory latency (reads stall the 1-IPC core).
        stall += l2_misses * self.line_fill_cycles()
        # Write-buffer pressure: write-through L1 sends every write to the
        # buffer; a fraction stalls at the retire threshold.
        stall += profile.writes * self.wb_stall_fraction * a.wb_full_stall_cycles

        fills = l2_misses
        writebacks = fills * self.writeback_fraction
        transactions = fills + writebacks
        bus_bytes = transactions * a.line_bytes

        return BlockCosts(
            stall_cycles=int(stall),
            bus_bytes=int(bus_bytes),
            bus_transactions=int(transactions),
        )

    # ------------------------------------------------------------------ #
    def miss_rates_for_working_set(self, working_set_bytes: int) -> tuple[float, float]:
        """Heuristic (l1, l2) miss-rate pair for a block touching a working
        set of the given size with moderate locality.

        Used by application generators to make miss rates respond to
        problem size and to the serial-vs-parallel working-set effect the
        paper calls out for Ocean (the per-processor working set fits in
        cache in parallel but not serially).
        """
        a = self.arch
        if working_set_bytes <= a.l1_bytes:
            l1 = 0.01
        elif working_set_bytes <= 4 * a.l1_bytes:
            l1 = 0.05
        else:
            l1 = 0.12
        if working_set_bytes <= a.l2_bytes:
            l2 = 0.05
        elif working_set_bytes <= 2 * a.l2_bytes:
            l2 = 0.35
        else:
            l2 = 0.75
        return l1, l2
