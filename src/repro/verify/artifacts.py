"""Replayable failure artifacts for oracle violations.

When a verified run breaks an invariant, the run's workload trace and
full configuration are dumped as one JSON file under
``results/violations/`` (override with ``REPRO_VIOLATION_DIR``; set it to
``0``/``off`` to disable dumping).  The file is self-contained: a single
``repro verify --replay <file>`` rebuilds the exact config and trace and
re-runs the oracle — which is what makes Hypothesis-shrunk failures
actionable long after the generating seed is gone.

Filenames are content-hashed, so re-running the same failure overwrites
the same artifact instead of littering the directory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.apps.base import AppTrace

#: environment override for the artifact directory ("0"/"off" disables)
VIOLATION_DIR_ENV = "REPRO_VIOLATION_DIR"
DEFAULT_VIOLATION_DIR = os.path.join("results", "violations")
#: artifacts above this many trace events drop the inline trace (the
#: config + violation summary is still written; replay needs the app)
MAX_INLINE_EVENTS = 250_000
#: verify-event records kept as context around the failure
CONTEXT_TAIL = 200

ARTIFACT_SCHEMA = 1


def violations_dir() -> Optional[Path]:
    """Resolved artifact directory, or ``None`` when dumping is disabled."""
    raw = os.environ.get(VIOLATION_DIR_ENV)
    if raw is None:
        return Path(DEFAULT_VIOLATION_DIR)
    raw = raw.strip()
    if raw.lower() in ("", "0", "off", "none", "disabled"):
        return None
    return Path(raw)


def _jsonify(value: Any) -> Any:
    """Tuples -> lists, recursively (JSON round-trip normalization)."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return value


def replay_command(path: "Path | str") -> str:
    """The one-liner that re-runs an artifact through the oracle."""
    return f"PYTHONPATH=src python -m repro verify --replay {path}"


def dump_violation_artifact(
    app: AppTrace,
    config: Any,
    violations: Sequence[Any],
    log: Any,
    out_dir: Optional[Path] = None,
) -> Optional[Path]:
    """Write a replayable JSON repro for a violated run.

    Returns the artifact path, or ``None`` when dumping is disabled via
    ``REPRO_VIOLATION_DIR=0``.
    """
    target = out_dir if out_dir is not None else violations_dir()
    if target is None:
        return None
    n_events = sum(len(evs) for evs in app.events)
    payload: Dict[str, Any] = {
        "schema": ARTIFACT_SCHEMA,
        "app": {
            "name": app.name,
            "problem": app.problem,
            "n_procs": app.n_procs,
            "serial_cycles": app.serial_cycles,
            "shared_bytes": app.shared_bytes,
        },
        "config": _jsonify(dataclasses.asdict(config)),
        "violations": [_jsonify(v.to_dict()) for v in violations],
        "verify_event_tail": [
            [rec.time, rec.kind, _jsonify(rec.detail)]
            for rec in log.tail(CONTEXT_TAIL)
        ],
    }
    if n_events <= MAX_INLINE_EVENTS:
        payload["events"] = [_jsonify(evs) for evs in app.events]
    else:
        payload["events_omitted"] = n_events
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()[:12]
    payload["replay"] = None  # placeholder, filled below with the path
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"{app.name or 'trace'}-{config.protocol}-{digest}.json"
    payload["replay"] = replay_command(path)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path


# --------------------------------------------------------------------- #
# loading / replay
# --------------------------------------------------------------------- #
def load_artifact(path: "Path | str") -> Dict[str, Any]:
    p = Path(path)
    try:
        payload = json.loads(p.read_text())
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read violation artifact {p}: {exc}") from exc
    if not isinstance(payload, dict) or "config" not in payload:
        raise ValueError(f"{p} is not a violation artifact (no config)")
    return payload


def config_from_dict(d: Dict[str, Any]) -> Any:
    """Rebuild a :class:`ClusterConfig` from its ``dataclasses.asdict``."""
    from repro.arch.params import ArchParams, CommParams
    from repro.core.config import ClusterConfig
    from repro.net.faults import FaultParams

    d = dict(d)
    arch = ArchParams(**d.pop("arch"))
    comm = CommParams(**d.pop("comm"))
    faults_d = dict(d.pop("faults"))
    faults_d["degraded_links"] = tuple(
        tuple(link) for link in faults_d.get("degraded_links", ())
    )
    faults = FaultParams(**faults_d)
    return ClusterConfig(arch=arch, comm=comm, faults=faults, **d)


def trace_from_artifact(payload: Dict[str, Any]) -> AppTrace:
    """Rebuild the workload trace inlined in an artifact."""
    if "events" not in payload:
        n = payload.get("events_omitted", "?")
        raise ValueError(
            f"artifact has no inline trace ({n} events were above the "
            f"{MAX_INLINE_EVENTS}-event cap); re-run the named app with "
            "--verify instead"
        )
    app_meta = payload.get("app", {})
    events: List[List[tuple]] = [
        [tuple(ev) for ev in proc_events] for proc_events in payload["events"]
    ]
    return AppTrace(
        name=app_meta.get("name", "replay"),
        n_procs=app_meta.get("n_procs", len(events)),
        events=events,
        serial_cycles=app_meta.get("serial_cycles", 0),
        shared_bytes=app_meta.get("shared_bytes", 0),
        problem=app_meta.get("problem", ""),
    )
