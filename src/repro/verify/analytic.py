"""Closed-form analytic fast model (LogP-style) of an SVM run.

The DES engine prices every protocol event through queues, interrupts
and handler occupancy.  This module prices the same trace with a
closed-form cost model instead: a timing-free, protocol-aware walk of
the trace counts *what happens* (page fetches, twins, diffs, automatic
updates, lock transfers, invalidations, wire bytes), and a LogP-style
cost vector built from :class:`~repro.arch.params.CommParams` /
:class:`~repro.arch.params.ArchParams` prices *what it costs*.  The
final combination is a handful of numpy matrix operations over
(epoch x processor) count matrices, so sweeping a communication
parameter re-prices cached counts in microseconds instead of
re-simulating.

Fidelity contract
-----------------
The model is **trend-faithful, level-approximate**: every cost in the
closed form is linear in the swept parameters (host overhead, NI
occupancy, interrupt cost, inverse bandwidth), and the event counts
respond to page size and clustering exactly as the DES protocol does
(same first-touch homes, same node mapping, same flush semantics) — so
the paper-figure *trends* are reproduced by construction.  Absolute
levels ignore queueing-delay variance and lock contention, which is why
``fidelity="auto"`` (see :mod:`repro.core.executor`) calibrates the
model against a small DES subset and reports a fitted error band
alongside every fast-model point.

Two stages:

* :func:`trace_summary` — walk the trace once, per protocol; counts
  depend only on (trace, protocol, clustering, home policy), *not* on
  the cost parameters, and are cached in-process;
* :func:`analytic_run` — combine a cached summary with the config's
  cost vector; returns a regular :class:`~repro.core.metrics.RunResult`
  whose ``meta["fidelity"]`` is ``"analytic"``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.apps.base import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    READ,
    RELEASE,
    TOUCH,
    WRITE,
    AppTrace,
)
from repro.arch.params import ArchParams, CommParams
from repro.arch.processor import ProcessorStats
from repro.core.config import ClusterConfig
from repro.core.metrics import RunResult
from repro.osys.vm import PageDirectory
from repro.protocol.base import (
    ACK_BYTES,
    GRANT_BASE_BYTES,
    REQUEST_HEADER_BYTES,
    ProtocolCounters,
)

__all__ = ["analytic_run", "trace_summary", "clear_summary_cache"]


@dataclass
class TraceSummary:
    """Cost-independent event counts of one trace walk.

    All matrices are ``(n_epochs, n_procs)`` except the ``node_*`` ones,
    which are ``(n_epochs, n_nodes)``.  An *epoch* is a barrier-delimited
    slice of the run (every processor crosses the same barrier sequence).
    """

    n_procs: int
    n_nodes: int
    work: np.ndarray
    stall: np.ndarray
    fetches: np.ndarray
    twins: np.ndarray
    diff_pages: np.ndarray
    diff_words: np.ndarray
    flushes: np.ndarray
    update_pkts: np.ndarray
    update_words: np.ndarray
    local_acq: np.ndarray
    remote_acq: np.ndarray
    #: payload bytes crossing each node's NI (both directions)
    node_wire_bytes: np.ndarray
    #: packets through each node's NI (prices NI occupancy serialization)
    node_pkts: np.ndarray
    #: pages invalidated per node at the epoch-closing barrier
    node_invalidations: np.ndarray


#: (trace identity, protocol, clustering, policy) -> TraceSummary
_SUMMARY_CACHE: Dict[Tuple, TraceSummary] = {}


def clear_summary_cache() -> None:
    _SUMMARY_CACHE.clear()


def _summary_key(trace: AppTrace, config: ClusterConfig) -> Tuple:
    return (
        trace.name,
        trace.problem,
        trace.n_procs,
        id(trace),
        config.protocol,
        config.comm.procs_per_node,
        config.comm.page_size,
        config.home_policy,
    )


def trace_summary(trace: AppTrace, config: ClusterConfig) -> TraceSummary:
    """Protocol-aware, timing-free walk of ``trace`` (cached)."""
    key = _summary_key(trace, config)
    cached = _SUMMARY_CACHE.get(key)
    if cached is not None:
        return cached

    P = trace.n_procs
    ppn = config.comm.procs_per_node
    n_nodes = max(1, P // ppn)
    aurc = config.protocol == "aurc"
    page_words = max(1, config.comm.page_size // config.arch.word_bytes)
    word_bytes = config.arch.word_bytes
    directory = PageDirectory(
        page_size=config.comm.page_size, n_nodes=n_nodes, policy=config.home_policy
    )

    n_barriers = sum(1 for ev in trace.events[0] if ev[0] == BARRIER)
    n_epochs = n_barriers + 1

    shape = (n_epochs, P)
    mats = {
        name: np.zeros(shape, dtype=np.int64)
        for name in (
            "work",
            "stall",
            "fetches",
            "twins",
            "diff_pages",
            "diff_words",
            "flushes",
            "update_pkts",
            "update_words",
            "local_acq",
            "remote_acq",
        )
    }
    node_shape = (n_epochs, n_nodes)
    node_wire = np.zeros(node_shape, dtype=np.int64)
    node_pkts = np.zeros(node_shape, dtype=np.int64)
    node_inval = np.zeros(node_shape, dtype=np.int64)

    #: per-node set of valid (readable) non-home pages
    valid: List[set] = [set() for _ in range(n_nodes)]
    #: per-proc dirty words per page in the current interval
    dirty: List[Dict[int, int]] = [{} for _ in range(P)]
    last_lock_owner: Dict[int, int] = {}

    # home assignment: replay first-touch in proc order (the DES assigns
    # homes at t=0 in spawn order, which this matches for the disjoint
    # per-proc TOUCH prologues every generator emits)
    for proc, events in enumerate(trace.events):
        node = proc // ppn
        for ev in events:
            if ev[0] == TOUCH:
                directory.home(ev[1], node)

    page_bytes = config.comm.page_size
    hdr = REQUEST_HEADER_BYTES

    def wire(epoch: int, a: int, b: int, nbytes: int, pkts: int) -> None:
        if a != b:
            node_wire[epoch, a] += nbytes
            node_wire[epoch, b] += nbytes
            node_pkts[epoch, a] += pkts
            node_pkts[epoch, b] += pkts

    for proc, events in enumerate(trace.events):
        node = proc // ppn
        epoch = 0
        d = dirty[proc]
        vset = valid[node]

        def flush(epoch: int) -> None:
            """Close the current interval (HLRC diffs / AURC drain)."""
            if not d:
                return
            mats["flushes"][epoch, proc] += 1
            if not aurc:
                pages = len(d)
                words = sum(d.values())
                mats["diff_pages"][epoch, proc] += pages
                mats["diff_words"][epoch, proc] += words
                # one diff message per page to its home
                for page, w in d.items():
                    home = directory.home(page, node)
                    wire(epoch, node, home, w * word_bytes + hdr, 1)
            d.clear()

        for ev in events:
            kind = ev[0]
            if kind == COMPUTE:
                mats["work"][epoch, proc] += ev[1]
                mats["stall"][epoch, proc] += ev[2]
            elif kind == READ or kind == WRITE:
                page = ev[1]
                home = directory.home(page, node)
                if home != node and page not in vset:
                    mats["fetches"][epoch, proc] += 1
                    vset.add(page)
                    wire(epoch, node, home, hdr + page_bytes + hdr, 2)
                if kind == WRITE:
                    words = ev[2]
                    if words > page_words:
                        words = page_words
                    if aurc and home != node:
                        # hardware ships the write run immediately
                        runs = ev[3] if len(ev) > 3 else 1
                        mats["update_pkts"][epoch, proc] += runs
                        mats["update_words"][epoch, proc] += words
                        wire(epoch, node, home, words * word_bytes, runs)
                        cur = d.get(page, 0) + words
                        d[page] = cur if cur < page_words else page_words
                    else:
                        if page not in d and home != node:
                            mats["twins"][epoch, proc] += 1
                        cur = d.get(page, 0) + words
                        d[page] = cur if cur < page_words else page_words
            elif kind == ACQUIRE:
                lock = ev[1]
                owner = last_lock_owner.get(lock)
                if owner is None:
                    local = (lock % n_nodes) == node
                else:
                    local = (owner // ppn) == node
                if local:
                    mats["local_acq"][epoch, proc] += 1
                else:
                    mats["remote_acq"][epoch, proc] += 1
                    holder = lock % n_nodes if owner is None else owner // ppn
                    wire(epoch, node, holder, hdr + GRANT_BASE_BYTES, 2)
                last_lock_owner[lock] = proc
            elif kind == RELEASE:
                flush(epoch)
            elif kind == BARRIER:
                flush(epoch)
                epoch += 1
            elif kind == TOUCH:
                pass
            else:  # pragma: no cover - generator contract
                raise ValueError(f"unknown trace event kind {kind!r}")
        flush(min(epoch, n_epochs - 1))

    # barrier invalidations: write notices shipped with an epoch's
    # intervals drop mappings at every other node.  HLRC notices are
    # counted per diffed page; AURC ships notices per flushed interval
    # (one per dirtied page there too, tracked via its dirty sets) —
    # approximate each node's share as an even split of the epoch's
    # remotely-created notices.
    total_notices = mats["diff_pages"] if not aurc else mats["flushes"]
    notices_per_epoch = total_notices.sum(axis=1)
    node_inval[:] = (notices_per_epoch // max(1, n_nodes))[:, None]

    summary = TraceSummary(
        n_procs=P,
        n_nodes=n_nodes,
        work=mats["work"],
        stall=mats["stall"],
        fetches=mats["fetches"],
        twins=mats["twins"],
        diff_pages=mats["diff_pages"],
        diff_words=mats["diff_words"],
        flushes=mats["flushes"],
        update_pkts=mats["update_pkts"],
        update_words=mats["update_words"],
        local_acq=mats["local_acq"],
        remote_acq=mats["remote_acq"],
        node_wire_bytes=node_wire,
        node_pkts=node_pkts,
        node_invalidations=node_inval,
    )
    _SUMMARY_CACHE[key] = summary
    return summary


# --------------------------------------------------------------------- #
# cost vector
# --------------------------------------------------------------------- #
def _delivery_cycles(comm: CommParams) -> float:
    """Cycles to get an incoming request into a running handler."""
    if comm.is_rdma:
        return 0.0  # user-level upcall: no interrupt, no poll loop
    if comm.protocol_processing == "interrupt":
        return float(comm.null_interrupt_cycles)
    if comm.protocol_processing == "polling-dedicated":
        return float(comm.poll_latency)
    return float(comm.assist_overhead)  # ni-offload


def _costs(arch: ArchParams, comm: CommParams, free_fetches: bool) -> Dict[str, float]:
    """LogP-style per-event costs in processor cycles."""
    io_bpc = comm.io_bytes_per_cycle
    link_bpc = arch.link_bytes_per_cycle
    page = comm.page_size
    mtu = arch.packet_mtu
    page_pkts = max(1, math.ceil(page / mtu))

    def xfer(nbytes: int, pkts: int) -> float:
        """One-way message time: post, NI occupancy, wire, delivery."""
        wire_bytes = nbytes + pkts * arch.packet_header_bytes
        stages = (wire_bytes / io_bpc, wire_bytes / link_bpc)
        if arch.model_cut_through:
            t = max(stages)
        else:
            t = sum(stages)
        return (
            comm.send_post_cycles + comm.ni_occupancy * pkts + t + arch.link_latency_cycles
        )

    trap = arch.tlb_kernel_cycles + arch.handler_base_cycles
    rpc_small = (
        trap
        + xfer(REQUEST_HEADER_BYTES, 1)
        + _delivery_cycles(comm)
        + arch.handler_base_cycles
        + xfer(ACK_BYTES, 1)
    )
    fetch = (
        trap
        + xfer(REQUEST_HEADER_BYTES, 1)
        + _delivery_cycles(comm)
        + arch.handler_base_cycles
        + xfer(page, page_pkts)
        + 2 * (page / arch.membus_bytes_per_cycle)  # copy out + copy in
    )
    if free_fetches:
        fetch = 0.0
    word = arch.word_bytes
    page_words = max(1, page // word)
    return {
        "fetch": fetch,
        "twin": float(page_words * arch.twin_copy_cycles_per_word),
        "diff_page": float(
            page_words * arch.diff_compare_cycles_per_word
            + arch.handler_base_cycles
        ),
        "diff_word": float(2 * arch.diff_include_cycles_per_word + word / io_bpc),
        "flush": float(comm.send_post_cycles + comm.ni_occupancy),
        "update_pkt": float(comm.ni_occupancy),
        "update_word": float(word / io_bpc),
        "local_acq": float(2 * arch.smp_sync_cycles),
        "remote_acq": float(rpc_small),
        "barrier": float(
            2 * arch.smp_sync_cycles + rpc_small + 2 * comm.effective_interrupt_cost
        ),
        "invalidate": float(arch.page_invalidate_cycles),
        "io_bpc": io_bpc * comm.nis_per_node,
        "ni_occ": float(comm.ni_occupancy),
    }


# --------------------------------------------------------------------- #
# model evaluation
# --------------------------------------------------------------------- #
def analytic_run(trace: AppTrace, config: ClusterConfig) -> RunResult:
    """Price ``trace`` under ``config`` with the closed-form model.

    Returns a :class:`RunResult` shaped like a DES result (speedups,
    counters and a coarse per-category time breakdown all work), with
    ``meta["fidelity"] = "analytic"``.  Analytic results are never
    written to the DES disk cache.
    """
    s = trace_summary(trace, config)
    c = _costs(config.arch, config.comm, config.free_page_fetches)

    busy = s.work + s.stall
    comm_t = (
        s.fetches * c["fetch"]
        + s.twins * c["twin"]
        + s.diff_pages * c["diff_page"]
        + s.diff_words * c["diff_word"]
        + s.flushes * c["flush"]
        + s.update_pkts * c["update_pkt"]
        + s.update_words * c["update_word"]
    )
    lock_t = s.local_acq * c["local_acq"] + s.remote_acq * c["remote_acq"]
    t_proc = busy + comm_t + lock_t  # (epochs, P) float64

    # fluid serialization bounds: a node's NI/I/O bus must stream every
    # wire byte, and its NI core must spend its occupancy per packet —
    # an epoch cannot end before its busiest server drains
    node_bw = s.node_wire_bytes / c["io_bpc"] + s.node_pkts * c["ni_occ"]
    inval_t = s.node_invalidations * c["invalidate"]

    per_epoch = np.maximum(t_proc.max(axis=1), (node_bw + inval_t).max(axis=1))
    n_barriers = max(0, per_epoch.shape[0] - 1)
    total = float(per_epoch.sum()) + n_barriers * c["barrier"]
    total_cycles = int(total)

    # coarse per-proc breakdown (sums over epochs)
    proc_stats: List[ProcessorStats] = []
    slack = per_epoch[:, None] - t_proc  # time waiting at each barrier
    for p in range(s.n_procs):
        st = ProcessorStats()
        st.time["compute"] = int(s.work[:, p].sum())
        st.time["local_stall"] = int(s.stall[:, p].sum())
        st.time["data_wait"] = int((s.fetches[:, p] * c["fetch"]).sum())
        st.time["lock_wait"] = int(lock_t[:, p].sum())
        st.time["barrier_wait"] = int(slack[:, p].sum()) + int(
            n_barriers * c["barrier"]
        )
        st.time["protocol"] = int(
            (comm_t[:, p] - s.fetches[:, p] * c["fetch"]).sum()
        )
        proc_stats.append(st)

    counters = ProtocolCounters(
        page_faults=int(s.fetches.sum() + s.twins.sum()),
        page_fetches=int(s.fetches.sum()),
        local_lock_acquires=int(s.local_acq.sum()),
        remote_lock_acquires=int(s.remote_acq.sum()),
        barriers=n_barriers,
        diffs_created=int(s.diff_pages.sum()),
        diff_words=int(s.diff_words.sum()),
        updates_sent=int(s.update_pkts.sum()),
        update_words=int(s.update_words.sum()),
        write_notices=int(s.diff_pages.sum()),
    )
    meta = {
        "fidelity": "analytic",
        "analytic.epochs": float(per_epoch.shape[0]),
        "network_bytes": float(s.node_wire_bytes.sum() / 2),
    }
    return RunResult(
        app_name=trace.name,
        problem=trace.problem,
        config=config,
        total_cycles=max(1, total_cycles),
        serial_cycles=trace.serial_cycles,
        proc_stats=proc_stats,
        counters=counters,
        uncontended_busy_max=trace.max_busy_cycles,
        meta=meta,
    )
