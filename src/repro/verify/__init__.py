"""Independent happens-before conformance oracle for the SVM protocols.

The protocol engines in :mod:`repro.protocol` are the *system under test*;
this package is the referee.  When a run is started with
``ClusterConfig(verify=True)`` (or ``repro run --verify`` /
``REPRO_VERIFY=1``) the protocols emit a passive event stream into a
:class:`~repro.verify.events.VerifyLog`, and after the simulation finishes
:func:`~repro.verify.oracle.check_log` replays the stream against a simple,
obviously-correct memory model — shadow vector clocks and per-page writer
histories kept in plain Python lists, deliberately sharing *no* code with
the protocol's own :mod:`~repro.protocol.timestamps` machinery so a bug
there cannot blind the checker.

Violations come back as structured
:class:`~repro.verify.oracle.ConsistencyViolation` records (page,
processors, epochs, offending event index) surfaced on
``RunResult.violations`` and in ``RunResult.meta``; the CLI exits non-zero
and a replayable JSON artifact is dropped under ``results/violations/``.

See ``docs/verification.md`` for the happens-before model and the full
list of invariants.
"""

from repro.verify.events import VerifyLog
from repro.verify.oracle import ConsistencyViolation, check_log

__all__ = ["ConsistencyViolation", "VerifyLog", "check_log"]
