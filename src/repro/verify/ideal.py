"""Zero-cost "ideal" memory-model backend for differential testing.

Under LRC, the *set* of page versions a run produces — which (proc,
interval) pairs wrote each page — is determined entirely by each
processor's program order: a flush (release or barrier) closes the
current interval iff the processor dirtied anything since the last
flush.  It does not depend on timing, lock-grant order, home placement,
or the protocol variant.  That makes it computable directly from the
workload trace with no simulation at all, and therefore an independent
third opinion against both protocol engines:

    ideal_interval_sets(trace)
        == interval_sets_from_log(hlrc verify log)
        == interval_sets_from_log(aurc verify log)

Interval numbers also pin the *final contents* of every page: the last
write each processor contributed is its highest-numbered interval
touching the page, so equal interval sets imply equal final memory.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Tuple

from repro.apps.base import BARRIER, RELEASE, WRITE, AppTrace
from repro.sim.tracing import TraceRecord
from repro.verify.events import EV_INTERVAL

#: page -> set of (proc, interval_number) versions
VersionSets = Dict[int, FrozenSet[Tuple[int, int]]]


def ideal_interval_sets(trace: AppTrace) -> VersionSets:
    """Per-page version sets under a zero-cost ideal execution."""
    versions: Dict[int, set] = {}
    for proc, events in enumerate(trace.events):
        dirty: set = set()
        interval = 0
        for ev in events:
            kind = ev[0]
            if kind == WRITE:
                dirty.add(ev[1])
            elif kind in (RELEASE, BARRIER):
                # mirrors HLRCProtocol.flush: an empty dirty set opens
                # no interval
                if dirty:
                    interval += 1
                    for page in dirty:
                        versions.setdefault(page, set()).add((proc, interval))
                    dirty.clear()
    return {page: frozenset(s) for page, s in versions.items()}


def interval_sets_from_log(records: Iterable[TraceRecord]) -> VersionSets:
    """Per-page version sets observed in a run's verify-event stream."""
    versions: Dict[int, set] = {}
    for rec in records:
        if rec.kind != EV_INTERVAL:
            continue
        proc, interval_no, pages, _snapshot = rec.detail
        for page in pages:
            versions.setdefault(page, set()).add((proc, interval_no))
    return {page: frozenset(s) for page, s in versions.items()}


def final_versions(sets: VersionSets) -> Dict[int, Dict[int, int]]:
    """page -> {proc: last interval writing it} (final-contents digest)."""
    out: Dict[int, Dict[int, int]] = {}
    for page, versions in sets.items():
        last: Dict[int, int] = {}
        for proc, interval in versions:
            if interval > last.get(proc, 0):
                last[proc] = interval
        out[page] = last
    return out
