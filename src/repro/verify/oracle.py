"""Happens-before reference checker for the LRC protocol event stream.

:func:`check_log` replays a :class:`~repro.verify.events.VerifyLog` against
an independent model of home-based lazy release consistency.  The model is
deliberately primitive — shadow clocks are plain ``list[int]``, write
notices are plain lists of page tuples — and shares no code with
:mod:`repro.protocol.timestamps`, so a bug in the protocol's vector-clock
or interval-log machinery corrupts the *subject*, never the *referee*.

Invariants checked
------------------

``stale-read``
    A read of a cached non-home page must not be able to observe a write
    that happens-before it (a covered writer interval newer than the
    cached copy) — the copy should have been invalidated first.
``read-invalid``
    A read of a non-home page completed with no copy on the node (the
    protocol claimed a valid hit the model says was invalidated).
``missing-invalidation`` / ``spurious-invalidation``
    At a clock apply, every resident non-home page with a write notice in
    the clock delta must be invalidated, and nothing outside the delta
    may be.
``diff-double-apply`` / ``diff-lost`` / ``diff-mismatch``
    Diffs sent and diffs applied must match as a multiset keyed by
    (source node, home node, entries): each send applied exactly once.
``twin-double-create`` / ``twin-missing-drop`` / ``twin-leak``
    A twin is created at most once per (node, page) between flushes and
    discarded exactly once.
``vc-regression`` / ``vc-mismatch``
    A proc's own interval numbers advance by exactly one per flush, and
    the clock snapshots the protocol reports must equal the shadow model.
``stale-lock-timestamp``
    A lock grant must carry exactly the clock snapshot of the latest
    release of that lock (None only before the first release).
``barrier-mismatch`` / ``barrier-regression`` / ``barrier-missing``
    All participants of a barrier episode must observe the same merged
    clock; it must dominate each participant's pre-barrier clock and not
    exceed any proc's logged interval count; every episode must release
    exactly ``n_procs`` participants.
``collective-early-release`` / ``collective-release-count`` /
``collective-epoch-regression``
    The collective event stream (``EV_BARRIER_ARRIVE`` /
    ``EV_BARRIER_RELEASE``, emitted by every topology): no processor is
    released from an episode before all ``n_procs`` arrivals were
    recorded; each arriving processor is released exactly once; a
    processor's episode numbers per barrier id advance by exactly one
    per visit.

Soundness notes (why concurrent interleavings cannot produce false
positives) are spelled out in ``docs/verification.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.tracing import TraceRecord
from repro.verify.events import (
    EV_ACQUIRE,
    EV_APPLY,
    EV_BARRIER,
    EV_BARRIER_ARRIVE,
    EV_BARRIER_RELEASE,
    EV_DIFF_APPLY,
    EV_DIFF_SEND,
    EV_FETCH,
    EV_INTERVAL,
    EV_READ,
    EV_RELEASE,
    EV_TWIN,
    EV_TWIN_DROP,
    EV_WRITE,
)

#: default cap on recorded violations — a badly broken protocol (or an
#: injected mutant) floods every later event; the first few are the story.
MAX_VIOLATIONS = 200


@dataclass(frozen=True)
class ConsistencyViolation:
    """One broken invariant, with enough context to point at the culprit."""

    kind: str
    message: str
    time: int = 0
    event_index: int = -1
    page: Optional[int] = None
    procs: Tuple[int, ...] = ()
    epochs: Tuple[int, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "message": self.message,
            "time": self.time,
            "event_index": self.event_index,
            "page": self.page,
            "procs": list(self.procs),
            "epochs": list(self.epochs),
        }

    def __str__(self) -> str:
        where = f"@{self.time}" if self.time else "@end"
        extra = []
        if self.page is not None:
            extra.append(f"page={self.page}")
        if self.procs:
            extra.append(f"procs={list(self.procs)}")
        if self.epochs:
            extra.append(f"epochs={list(self.epochs)}")
        tail = f" [{', '.join(extra)}]" if extra else ""
        return f"{self.kind} {where}: {self.message}{tail}"


class _Checker:
    """Single pass over the event stream; accumulates violations."""

    def __init__(
        self,
        n_procs: int,
        procs_per_node: int,
        homes: Dict[int, int],
        max_violations: int,
    ) -> None:
        self.n_procs = n_procs
        self.ppn = procs_per_node
        self.homes = dict(homes)
        self.max_violations = max_violations
        self.violations: List[ConsistencyViolation] = []
        # shadow model --------------------------------------------------
        #: per-proc shadow vector clock (plain lists; never protocol code)
        self.shadow: List[List[int]] = [[0] * n_procs for _ in range(n_procs)]
        #: notices[p][k] = pages dirtied in p's interval k+1
        self.notices: List[List[Tuple[int, ...]]] = [[] for _ in range(n_procs)]
        #: per-page ordered writer history: (proc, interval) in log order
        self.writers: Dict[int, List[Tuple[int, int]]] = {}
        #: (node, page) -> index into writers[page] the copy is current to
        self.copy_prefix: Dict[Tuple[int, int], int] = {}
        #: live twins per (node, page)
        self.twins: Set[Tuple[int, int]] = set()
        #: (src_node, home_node, entries) -> outstanding send count
        self.diffs_outstanding: Dict[Tuple[int, int, Tuple], int] = {}
        #: lock_id -> (snapshot, event_index) of the latest release
        self.last_release: Dict[int, Tuple[Tuple[int, ...], int]] = {}
        #: (proc, barrier_id) -> completed visit count (mirrors BarrierManager)
        self.visits: Dict[Tuple[int, int], int] = {}
        #: (barrier_id, visit) -> {"merged": snap, "procs": set, "index": int}
        self.episodes: Dict[Tuple[int, int], Dict[str, Any]] = {}
        #: (barrier_id, epoch) -> {"arrivals": set, "releases": {proc: n}}
        #: from the collective arrive/release event stream
        self.coll: Dict[Tuple[int, int], Dict[str, Any]] = {}
        #: (proc, barrier_id) -> next expected collective epoch number
        self.arrive_epochs: Dict[Tuple[int, int], int] = {}

    # -- helpers ----------------------------------------------------------
    def _flag(self, kind: str, message: str, rec: Optional[TraceRecord], index: int,
              page: Optional[int] = None, procs: Sequence[int] = (),
              epochs: Sequence[int] = ()) -> None:
        if len(self.violations) >= self.max_violations:
            return
        self.violations.append(
            ConsistencyViolation(
                kind=kind,
                message=message,
                time=rec.time if rec is not None else 0,
                event_index=index,
                page=page,
                procs=tuple(procs),
                epochs=tuple(epochs),
            )
        )

    def _node_of(self, proc: int) -> int:
        return proc // self.ppn

    def _home(self, page: int) -> Optional[int]:
        return self.homes.get(page)

    def _delta_pages(self, old: Sequence[int], new: Sequence[int]) -> Set[int]:
        """Pages with write notices in intervals covered by new but not old."""
        pages: Set[int] = set()
        for p in range(self.n_procs):
            lo, hi = old[p], min(new[p], len(self.notices[p]))
            for k in range(lo, hi):
                pages.update(self.notices[p][k])
        return pages

    # -- event handlers ----------------------------------------------------
    def on_fetch(self, rec: TraceRecord, i: int) -> None:
        proc, node, page, home = rec.detail
        # The flush that produced any applied diff completes before its
        # interval event, so len(writers) at fetch time is a sound lower
        # bound on what the fetched master copy contains.
        self.copy_prefix[(node, page)] = len(self.writers.get(page, ()))

    def on_read(self, rec: TraceRecord, i: int) -> None:
        proc, node, page, home = rec.detail
        if home == node:
            return
        key = (node, page)
        prefix = self.copy_prefix.get(key)
        if prefix is None:
            self._flag(
                "read-invalid",
                f"proc {proc} read page {page} on node {node} but the model "
                "says the node holds no copy (it was invalidated or never "
                "fetched)",
                rec, i, page=page, procs=(proc,),
            )
            return
        hist = self.writers.get(page, ())
        clock = self.shadow[proc]
        for j in range(prefix, len(hist)):
            w_proc, w_int = hist[j]
            if self._node_of(w_proc) == node:
                # node-mates share the physical copy (SMP node): their
                # writes are visible locally without a new fetch.
                continue
            if clock[w_proc] >= w_int:
                self._flag(
                    "stale-read",
                    f"proc {proc} read page {page} from a copy current to "
                    f"writer-index {prefix} but proc {w_proc}'s interval "
                    f"{w_int} (index {j}) happens-before the read",
                    rec, i, page=page, procs=(proc, w_proc), epochs=(w_int,),
                )
                return

    def on_write(self, rec: TraceRecord, i: int) -> None:
        # Writes enter the model via interval events (write notices);
        # nothing to check here — the event exists for artifact context.
        return

    def on_twin(self, rec: TraceRecord, i: int) -> None:
        node, page = rec.detail
        key = (node, page)
        if key in self.twins:
            self._flag(
                "twin-double-create",
                f"node {node} created a second twin for page {page} without "
                "discarding the first",
                rec, i, page=page,
            )
        self.twins.add(key)

    def on_twin_drop(self, rec: TraceRecord, i: int) -> None:
        node, page = rec.detail
        key = (node, page)
        if key not in self.twins:
            self._flag(
                "twin-missing-drop",
                f"node {node} discarded a twin for page {page} that the "
                "model never saw created",
                rec, i, page=page,
            )
        self.twins.discard(key)

    def on_diff_send(self, rec: TraceRecord, i: int) -> None:
        proc, src_node, home_node, entries = rec.detail
        for page, _words in entries:
            if self._home(page) is not None and self._home(page) != home_node:
                self._flag(
                    "diff-mismatch",
                    f"proc {proc} sent a diff for page {page} to node "
                    f"{home_node} but the page's home is {self._home(page)}",
                    rec, i, page=page, procs=(proc,),
                )
        key = (src_node, home_node, tuple(entries))
        self.diffs_outstanding[key] = self.diffs_outstanding.get(key, 0) + 1

    def on_diff_apply(self, rec: TraceRecord, i: int) -> None:
        home_node, src_node, entries = rec.detail
        key = (src_node, home_node, tuple(entries))
        outstanding = self.diffs_outstanding.get(key, 0)
        if outstanding <= 0:
            self._flag(
                "diff-double-apply",
                f"node {home_node} applied a diff from node {src_node} "
                f"({len(entries)} page(s), first="
                f"{entries[0][0] if entries else '-'}) that was never sent "
                "or was already applied",
                rec, i,
                page=entries[0][0] if entries else None,
            )
            return
        self.diffs_outstanding[key] = outstanding - 1

    def on_interval(self, rec: TraceRecord, i: int) -> None:
        proc, interval_no, pages, snapshot = rec.detail
        expected = len(self.notices[proc]) + 1
        if interval_no != expected:
            self._flag(
                "vc-regression",
                f"proc {proc} closed interval {interval_no} but the model "
                f"expected interval {expected} (own clock component did not "
                "advance by exactly one)",
                rec, i, procs=(proc,), epochs=(interval_no, expected),
            )
        self.notices[proc].append(tuple(pages))
        clock = self.shadow[proc]
        clock[proc] = len(self.notices[proc])
        for page in pages:
            self.writers.setdefault(page, []).append((proc, len(self.notices[proc])))
            # The writer's own node copy now reflects its write.
            node = self._node_of(proc)
            if (node, page) in self.copy_prefix:
                self.copy_prefix[(node, page)] = len(self.writers[page])
        if tuple(clock) != tuple(snapshot):
            self._flag(
                "vc-mismatch",
                f"proc {proc}'s clock after interval {interval_no} is "
                f"{tuple(snapshot)} but the shadow model says {tuple(clock)}",
                rec, i, procs=(proc,), epochs=(interval_no,),
            )
            # Trust the protocol's value from here on to avoid cascades.
            self.shadow[proc] = list(snapshot)

    def on_acquire(self, rec: TraceRecord, i: int) -> None:
        proc, node, lock_id, incoming = rec.detail
        last = self.last_release.get(lock_id)
        if last is None:
            if incoming is not None:
                self._flag(
                    "stale-lock-timestamp",
                    f"proc {proc} acquired lock {lock_id} with snapshot "
                    f"{tuple(incoming)} before any release of that lock",
                    rec, i, procs=(proc,),
                )
            return
        snap, rel_index = last
        if incoming is None or tuple(incoming) != tuple(snap):
            self._flag(
                "stale-lock-timestamp",
                f"proc {proc} acquired lock {lock_id} with snapshot "
                f"{None if incoming is None else tuple(incoming)} but the "
                f"latest release (event {rel_index}) shipped {tuple(snap)}",
                rec, i, procs=(proc,),
            )

    def on_release(self, rec: TraceRecord, i: int) -> None:
        proc, lock_id, snapshot = rec.detail
        self.last_release[lock_id] = (tuple(snapshot), i)

    def on_barrier(self, rec: TraceRecord, i: int) -> None:
        proc, node, barrier_id, merged = rec.detail
        visit = self.visits.get((proc, barrier_id), 0)
        self.visits[(proc, barrier_id)] = visit + 1
        ep_key = (barrier_id, visit)
        merged_t = None if merged is None else tuple(merged)
        if merged_t is None:
            self._flag(
                "barrier-mismatch",
                f"proc {proc} left barrier {barrier_id} (episode {visit}) "
                "with no merged clock",
                rec, i, procs=(proc,), epochs=(visit,),
            )
            return
        ep = self.episodes.get(ep_key)
        if ep is None:
            ep = {"merged": merged_t, "procs": set(), "index": i}
            self.episodes[ep_key] = ep
        elif ep["merged"] != merged_t:
            self._flag(
                "barrier-mismatch",
                f"proc {proc} left barrier {barrier_id} (episode {visit}) "
                f"with merged clock {merged_t} but an earlier participant "
                f"(event {ep['index']}) saw {ep['merged']}",
                rec, i, procs=(proc,), epochs=(visit,),
            )
        ep["procs"].add(proc)
        pre = self.shadow[proc]
        if any(merged_t[p] < pre[p] for p in range(self.n_procs)):
            self._flag(
                "barrier-regression",
                f"barrier {barrier_id} (episode {visit}) released proc "
                f"{proc} with merged clock {merged_t} that does not dominate "
                f"its pre-barrier clock {tuple(pre)}",
                rec, i, procs=(proc,), epochs=(visit,),
            )
        for p in range(self.n_procs):
            if merged_t[p] > len(self.notices[p]):
                self._flag(
                    "barrier-mismatch",
                    f"barrier {barrier_id} (episode {visit}) merged clock "
                    f"claims proc {p} reached interval {merged_t[p]} but "
                    f"only {len(self.notices[p])} intervals were logged",
                    rec, i, procs=(proc, p), epochs=(visit,),
                )

    def on_barrier_arrive(self, rec: TraceRecord, i: int) -> None:
        proc, node, barrier_id, epoch, topology = rec.detail
        expected = self.arrive_epochs.get((proc, barrier_id), 0)
        if epoch != expected:
            self._flag(
                "collective-epoch-regression",
                f"proc {proc} arrived at barrier {barrier_id} episode "
                f"{epoch} but its previous arrivals imply episode {expected}",
                rec, i, procs=(proc,), epochs=(epoch, expected),
            )
        self.arrive_epochs[(proc, barrier_id)] = epoch + 1
        ep = self.coll.setdefault(
            (barrier_id, epoch), {"arrivals": set(), "releases": {}}
        )
        ep["arrivals"].add(proc)

    def on_barrier_release(self, rec: TraceRecord, i: int) -> None:
        proc, node, barrier_id, epoch, topology = rec.detail
        ep = self.coll.get((barrier_id, epoch))
        if ep is None or proc not in ep["arrivals"]:
            self._flag(
                "collective-release-count",
                f"{topology} barrier {barrier_id} episode {epoch} released "
                f"proc {proc} which never arrived at that episode",
                rec, i, procs=(proc,), epochs=(epoch,),
            )
            return
        if len(ep["arrivals"]) < self.n_procs:
            self._flag(
                "collective-early-release",
                f"{topology} barrier {barrier_id} episode {epoch} released "
                f"proc {proc} after only {len(ep['arrivals'])} of "
                f"{self.n_procs} arrivals",
                rec, i, procs=(proc,), epochs=(epoch,),
            )
        releases = ep["releases"]
        releases[proc] = releases.get(proc, 0) + 1
        if releases[proc] > 1:
            self._flag(
                "collective-release-count",
                f"{topology} barrier {barrier_id} episode {epoch} released "
                f"proc {proc} {releases[proc]} times",
                rec, i, procs=(proc,), epochs=(epoch,),
            )

    def on_apply(self, rec: TraceRecord, i: int) -> None:
        proc, node, incoming, post, invalidated = rec.detail
        clock = self.shadow[proc]
        incoming_t = tuple(incoming)
        delta = self._delta_pages(clock, incoming_t)
        # Advance the shadow clock: component-wise max.
        merged = [max(a, b) for a, b in zip(clock, incoming_t)]
        self.shadow[proc] = merged
        if tuple(post) != tuple(merged):
            self._flag(
                "vc-mismatch",
                f"proc {proc}'s clock after applying {incoming_t} is "
                f"{tuple(post)} but the shadow model says {tuple(merged)}",
                rec, i, procs=(proc,),
            )
            self.shadow[proc] = list(post)
        invalidated_set = set(invalidated)
        for page in invalidated_set:
            if page not in delta:
                self._flag(
                    "spurious-invalidation",
                    f"proc {proc} (node {node}) invalidated page {page} "
                    "which has no write notice in the applied clock delta",
                    rec, i, page=page, procs=(proc,),
                )
            if self._home(page) == node:
                self._flag(
                    "spurious-invalidation",
                    f"node {node} invalidated page {page} it is home for",
                    rec, i, page=page, procs=(proc,),
                )
            self.copy_prefix.pop((node, page), None)
            self.twins.discard((node, page))
        for page in delta:
            if self._home(page) == node:
                continue
            if page in invalidated_set:
                continue
            if (node, page) in self.copy_prefix:
                self._flag(
                    "missing-invalidation",
                    f"proc {proc} (node {node}) applied a clock delta "
                    f"carrying a write notice for resident page {page} but "
                    "did not invalidate it",
                    rec, i, page=page, procs=(proc,),
                )
                # Mirror what a correct protocol would have done so one
                # miss does not cascade into stale-read noise downstream.
                self.copy_prefix.pop((node, page), None)

    # -- end-of-run checks -------------------------------------------------
    def finish(self, n_events: int) -> None:
        for (src, dst, entries), count in sorted(self.diffs_outstanding.items()):
            if count > 0:
                self._flag(
                    "diff-lost",
                    f"{count} diff(s) from node {src} to node {dst} "
                    f"({len(entries)} page(s), first="
                    f"{entries[0][0] if entries else '-'}) were sent but "
                    "never applied",
                    None, n_events,
                    page=entries[0][0] if entries else None,
                )
        for (barrier_id, visit), ep in sorted(self.episodes.items()):
            if len(ep["procs"]) != self.n_procs:
                self._flag(
                    "barrier-missing",
                    f"barrier {barrier_id} (episode {visit}) released "
                    f"{len(ep['procs'])} of {self.n_procs} procs",
                    None, n_events,
                    procs=tuple(sorted(ep["procs"])), epochs=(visit,),
                )
        for (barrier_id, epoch), ep in sorted(self.coll.items()):
            unreleased = [
                p for p in sorted(ep["arrivals"]) if ep["releases"].get(p, 0) != 1
            ]
            if unreleased:
                self._flag(
                    "collective-release-count",
                    f"barrier {barrier_id} episode {epoch}: procs "
                    f"{unreleased} arrived but were not released exactly "
                    "once",
                    None, n_events,
                    procs=tuple(unreleased), epochs=(epoch,),
                )
        for node, page in sorted(self.twins):
            self._flag(
                "twin-leak",
                f"node {node} still holds a twin for page {page} at end of "
                "run (created but never discarded at a flush)",
                None, n_events, page=page,
            )


_HANDLERS = {
    EV_READ: _Checker.on_read,
    EV_FETCH: _Checker.on_fetch,
    EV_WRITE: _Checker.on_write,
    EV_TWIN: _Checker.on_twin,
    EV_TWIN_DROP: _Checker.on_twin_drop,
    EV_DIFF_SEND: _Checker.on_diff_send,
    EV_DIFF_APPLY: _Checker.on_diff_apply,
    EV_INTERVAL: _Checker.on_interval,
    EV_ACQUIRE: _Checker.on_acquire,
    EV_RELEASE: _Checker.on_release,
    EV_BARRIER: _Checker.on_barrier,
    EV_APPLY: _Checker.on_apply,
    EV_BARRIER_ARRIVE: _Checker.on_barrier_arrive,
    EV_BARRIER_RELEASE: _Checker.on_barrier_release,
}


def check_log(
    records: Sequence[TraceRecord],
    *,
    n_procs: int,
    procs_per_node: int,
    homes: Dict[int, int],
    max_violations: int = MAX_VIOLATIONS,
) -> List[ConsistencyViolation]:
    """Replay a verify-event stream and return every violated invariant.

    ``homes`` maps page number -> home node id (the directory's final
    assignment; homes are assigned once and never move).  An empty return
    value means every checked invariant held.
    """
    checker = _Checker(n_procs, procs_per_node, homes, max_violations)
    for i, rec in enumerate(records):
        handler = _HANDLERS.get(rec.kind)
        if handler is not None:
            handler(checker, rec, i)
        if len(checker.violations) >= max_violations:
            break
    checker.finish(len(records))
    return checker.violations
