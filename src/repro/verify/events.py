"""Verify-event vocabulary and the log the protocols emit into.

Each event is a :class:`~repro.sim.tracing.TraceRecord` whose ``kind`` is
one of the ``EV_*`` constants below and whose ``detail`` tuple follows the
schema documented next to each constant.  Emission sites live in
:mod:`repro.protocol.hlrc` / :mod:`repro.protocol.aurc` behind a single
``ctx.verify is not None`` attribute check — the exact pattern used by
:mod:`repro.core.stats` — so disabled runs pay one pointer compare per
protocol operation and enabled runs stay bit-identical in simulated time
(events are pure list appends; no simulation yields).

Ordering guarantees the oracle relies on (all enforced by emission-site
placement, not by timestamps):

* ``EV_FETCH`` is recorded before the fetch's coalesced waiters can record
  their ``EV_READ``.
* ``EV_DIFF_SEND`` is recorded before the home's ``EV_DIFF_APPLY``.
* ``EV_INTERVAL`` is recorded only after every diff of that flush has been
  applied at its home (the flush RPCs complete first).
* ``EV_APPLY`` is recorded at the instant invalidations take effect —
  before the post-invalidation busy time is charged — so a node-mate
  refetching the page cannot be reordered ahead of the invalidation.
"""

from repro.sim.tracing import Tracer

#: (proc, node, page, home) — a completed read of a *non-home* page.
EV_READ = "read"
#: (proc, node, page, home) — a page copy arrived (fault service or free fetch).
EV_FETCH = "fetch"
#: (proc, node, page, home, words) — a write landed in the dirty set.
EV_WRITE = "write"
#: (node, page) — a twin was created for a non-home page.
EV_TWIN = "twin"
#: (node, page) — a twin was discarded at flush.
EV_TWIN_DROP = "twin_drop"
#: (proc, src_node, home_node, entries) — a diff left for its home;
#: ``entries`` is a tuple of (page, words).
EV_DIFF_SEND = "diff_send"
#: (home_node, src_node, entries) — a diff was applied to the home copy.
EV_DIFF_APPLY = "diff_apply"
#: (proc, interval_no, pages, snapshot) — a flush closed an interval and
#: logged its write notices; ``snapshot`` is the proc's clock afterwards.
EV_INTERVAL = "interval"
#: (proc, node, lock_id, incoming) — a lock grant arrived; ``incoming`` is
#: the releaser's clock snapshot carried by the grant (None before the
#: first release).
EV_ACQUIRE = "acquire"
#: (proc, lock_id, snapshot) — a release shipped ``snapshot`` to the lock.
EV_RELEASE = "release"
#: (proc, node, barrier_id, merged) — a barrier released this proc with the
#: episode's merged clock.
EV_BARRIER = "barrier"
#: (proc, node, incoming, post, invalidated) — an incoming clock was merged
#: and ``invalidated`` resident pages were dropped.
EV_APPLY = "apply"
#: (proc, node, barrier_id, epoch, topology) — a processor arrived at a
#: barrier episode (before the intra-node leg).
EV_BARRIER_ARRIVE = "barrier_arrive"
#: (proc, node, barrier_id, epoch, topology) — a processor left a barrier
#: episode (after the collective released it).
EV_BARRIER_RELEASE = "barrier_release"

ALL_KINDS = (
    EV_READ,
    EV_FETCH,
    EV_WRITE,
    EV_TWIN,
    EV_TWIN_DROP,
    EV_DIFF_SEND,
    EV_DIFF_APPLY,
    EV_INTERVAL,
    EV_ACQUIRE,
    EV_RELEASE,
    EV_BARRIER,
    EV_APPLY,
    EV_BARRIER_ARRIVE,
    EV_BARRIER_RELEASE,
)


class VerifyLog(Tracer):
    """Unbounded tracer dedicated to protocol conformance events.

    A separate class (rather than reusing the cluster's debug tracer) so
    the oracle's event stream can never be truncated by a user-set record
    limit or filtered by a ``kinds`` whitelist.
    """

    def __init__(self) -> None:
        super().__init__(limit=None, kinds=None)
