"""svm-cluster-sim — reproduction of Bilas & Singh, SC'97.

A page-grain shared-virtual-memory cluster simulator: home-based lazy
release consistency protocols (HLRC/AURC) over a Myrinet-like
communication substrate, driven by SPLASH-2-like workload traces, built
to study how communication-architecture parameters (host overhead, I/O
bandwidth, NI occupancy, interrupt cost) shape end performance.

Top-level convenience imports::

    from repro import ClusterConfig, get_app, run_simulation

    result = run_simulation(get_app("fft", scale=0.5), ClusterConfig())
    print(result.summary())
"""

from repro.apps import APP_ORDER, AppTrace, GenParams, app_names, get_app
from repro.arch import ACHIEVABLE, BEST, ArchParams, CommParams
from repro.core import Cluster, ClusterConfig, RunResult, run_simulation

__version__ = "1.0.0"

__all__ = [
    "ACHIEVABLE",
    "APP_ORDER",
    "AppTrace",
    "ArchParams",
    "BEST",
    "Cluster",
    "ClusterConfig",
    "CommParams",
    "GenParams",
    "RunResult",
    "__version__",
    "app_names",
    "get_app",
    "run_simulation",
]
