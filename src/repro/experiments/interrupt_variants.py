"""Section 5 variants of the interrupt study.

The paper supplements Figure 9 with two variants:

* **uniprocessor nodes** — 16 one-processor nodes: interrupt cost is
  important there too, just slightly less sensitive in the mid range;
* **round-robin interrupt delivery** — spreading interrupts over a
  node's processors instead of always hitting processor 0: overall
  performance improves slightly, but degrades just as quickly as the
  interrupt cost grows.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.params import INTERRUPT_COST_SWEEP
from repro.core.config import ClusterConfig
from repro.core.executor import prefetch
from repro.core.sweeps import cached_run
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput, pick_apps

#: a representative subset keeps this variant study affordable
DEFAULT_VARIANT_APPS = ("fft", "water-nsq", "raytrace", "barnes-rebuild")


def run_uniprocessor_nodes(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    rows = []
    data = {}
    names = list(apps) if apps is not None else list(DEFAULT_VARIANT_APPS)
    prefetch(
        [
            (name, scale, ClusterConfig().with_comm(procs_per_node=1, interrupt_cost=cost))
            for name in names
            for cost in INTERRUPT_COST_SWEEP
        ],
        jobs=jobs,
    )
    for name in names:
        speedups = []
        for cost in INTERRUPT_COST_SWEEP:
            cfg = ClusterConfig().with_comm(procs_per_node=1, interrupt_cost=cost)
            speedups.append(cached_run(name, scale, cfg).speedup)
        data[name] = dict(zip(INTERRUPT_COST_SWEEP, speedups))
        slow = (speedups[0] - speedups[-1]) / speedups[0]
        rows.append([name] + [round(s, 2) for s in speedups] + [f"{slow*100:+.1f}%"])
    return ExperimentOutput(
        experiment_id="section5-uninode",
        title="Interrupt-cost sweep with uniprocessor nodes (16 nodes)",
        headers=["application"] + [str(c) for c in INTERRUPT_COST_SWEEP] + ["max slowdown"],
        rows=rows,
        data=data,
        notes=(
            "Paper shape: interrupt cost is important for uniprocessor nodes "
            "too; the system is only a little less sensitive in the mid range, "
            "then degrades quickly as in the SMP configuration."
        ),
    )


def run_round_robin(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    rows = []
    data = {}
    names = list(apps) if apps is not None else list(DEFAULT_VARIANT_APPS)
    prefetch(
        [
            (name, scale, cfg)
            for name in names
            for cost in INTERRUPT_COST_SWEEP
            for cfg in (
                ClusterConfig().with_comm(interrupt_cost=cost),
                ClusterConfig().with_comm(
                    interrupt_cost=cost, interrupt_scheme="round_robin"
                ),
            )
        ],
        jobs=jobs,
    )
    for name in names:
        fixed, rr = [], []
        for cost in INTERRUPT_COST_SWEEP:
            base = ClusterConfig().with_comm(interrupt_cost=cost)
            fixed.append(cached_run(name, scale, base).speedup)
            rr_cfg = base.with_comm(interrupt_scheme="round_robin")
            rr.append(cached_run(name, scale, rr_cfg).speedup)
        data[name] = {"fixed": fixed, "round_robin": rr}
        rows.append(
            [name]
            + [f"{f:.2f}/{r:.2f}" for f, r in zip(fixed, rr)]
        )
    return ExperimentOutput(
        experiment_id="section5-roundrobin",
        title="Fixed vs round-robin interrupt delivery (speedups fixed/rr)",
        headers=["application"] + [str(c) for c in INTERRUPT_COST_SWEEP],
        rows=rows,
        data=data,
        notes=(
            "Paper shape: round-robin delivery looks similar to the static "
            "scheme — overall performance slightly better, but it degrades "
            "just as quickly with interrupt cost."
        ),
    )
