"""Extension study — avoiding interrupts altogether (paper Section 10).

The paper's discussion proposes two ways around the dominant interrupt
cost: *polling* (possibly reserving one processor per SMP node for
protocol processing) and *moving protocol processing onto the
programmable network interface*.  This experiment implements both and
sweeps interrupt cost:

* ``interrupt`` — the base system; degrades with interrupt cost;
* ``polling-dedicated`` — a reserved per-node protocol processor polls
  the NI: immune to interrupt cost, but one CPU per node does no
  application work.  We report both the optimistic variant (16
  application processors plus pollers) and the *equal-CPU-budget*
  variant (12 application processors on 4-way nodes, one CPU of each
  node reserved);
* ``ni-offload`` — handlers run on the (slow) NI assist: immune to
  interrupt cost and steals no host CPU, but pays the assist overhead
  per request.

The literature of the time disagreed on polling vs interrupts (the paper
cites studies both ways); the crossover this experiment exposes —
interrupts win when they are cheap, polling/offload win when they are
not — is exactly why.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.apps import get_app
from repro.core.config import ClusterConfig
from repro.core.executor import prefetch
from repro.core.run import run_simulation
from repro.core.sweeps import cached_run
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput

SWEEP = (0, 500, 2000, 10000)
DEFAULT_APPS = ("fft", "water-nsq", "barnes-rebuild")


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    names = list(apps) if apps is not None else list(DEFAULT_APPS)
    prefetch(
        [
            (name, scale, ClusterConfig().with_comm(protocol_processing=mode, interrupt_cost=cost))
            for name in names
            for mode in ("interrupt", "polling-dedicated", "ni-offload")
            for cost in SWEEP
        ],
        jobs=jobs,
    )
    rows = []
    data = {}
    for name in names:
        entry = {}
        for mode in ("interrupt", "polling-dedicated", "ni-offload"):
            speedups = []
            for cost in SWEEP:
                cfg = ClusterConfig().with_comm(
                    protocol_processing=mode, interrupt_cost=cost
                )
                speedups.append(cached_run(name, scale, cfg).speedup)
            entry[mode] = speedups
            rows.append([name, mode] + [round(s, 2) for s in speedups])
        # equal-CPU-budget polling: 12 application processors on 4 nodes
        budget = []
        app12 = get_app(name, n_procs=12, scale=scale)
        for cost in SWEEP:
            cfg = ClusterConfig(
                total_procs=12,
            ).with_comm(
                procs_per_node=3, protocol_processing="polling-dedicated",
                interrupt_cost=cost,
            )
            budget.append(run_simulation(app12, cfg).speedup)
        entry["polling-equal-budget"] = budget
        rows.append([name, "polling-equal-budget"] + [round(s, 2) for s in budget])
        data[name] = entry
    return ExperimentOutput(
        experiment_id="section10-processing",
        title="Interrupts vs polling vs NI offload (speedup by interrupt cost)",
        headers=["application", "mode"] + [f"intr={c}" for c in SWEEP],
        rows=rows,
        data=data,
        notes=(
            "Extension of the paper's discussion: polling and NI offload are "
            "flat in interrupt cost; the interrupt system crosses below them "
            "once interrupts exceed roughly the achievable value. The "
            "equal-budget rows show polling's true price: one fewer "
            "application processor per node."
        ),
    )
