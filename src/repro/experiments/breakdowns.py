"""Execution-time breakdowns per application (paper Section 7's lens).

For each application under the achievable configuration, the share of
aggregate processor time spent in each cost category — the quantities
the paper's per-application analysis reasons about (data wait for FFT,
barrier imbalance for LU, lock wait plus faults-in-critical-sections for
Barnes-rebuild/Raytrace, contention-inflated data wait for Radix, ...).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.processor import TIME_CATEGORIES
from repro.core.config import ClusterConfig
from repro.core.executor import prefetch
from repro.core.sweeps import cached_run
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput, pick_apps


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    config = ClusterConfig()
    names = pick_apps(apps)
    prefetch([(name, scale, config) for name in names], jobs=jobs)
    rows = []
    data = {}
    for name in names:
        r = cached_run(name, scale, config)
        fractions = r.breakdown_fractions()
        data[name] = fractions
        rows.append(
            [name] + [f"{fractions[cat] * 100:.1f}%" for cat in TIME_CATEGORIES]
        )
    return ExperimentOutput(
        experiment_id="breakdowns",
        title="Time-breakdown shares per application (achievable set)",
        headers=["application"] + list(TIME_CATEGORIES),
        rows=rows,
        data=data,
        notes=(
            "Paper shape: data wait dominates FFT and Radix; barrier time "
            "(imbalance) dominates LU and Ocean; lock wait is significant "
            "only for the lock-heavy applications; handler time stays small "
            "at the achievable interrupt cost."
        ),
    )
