"""Figure 3 — messages sent per processor per million compute cycles,
for 1, 4 and 8 processors per node."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.params import TABLE2_CLUSTERINGS
from repro.core.config import ClusterConfig
from repro.core.executor import prefetch
from repro.core.sweeps import cached_run
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput, pick_apps


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    names = pick_apps(apps)
    prefetch(
        [
            (name, scale, ClusterConfig().with_comm(procs_per_node=ppn))
            for name in names
            for ppn in TABLE2_CLUSTERINGS
        ],
        jobs=jobs,
    )
    rows = []
    data = {}
    for name in names:
        series = {}
        for ppn in TABLE2_CLUSTERINGS:
            r = cached_run(name, scale, ClusterConfig().with_comm(procs_per_node=ppn))
            series[ppn] = r.messages_per_proc_per_mcycle
        data[name] = series
        rows.append([name] + [round(series[p], 1) for p in TABLE2_CLUSTERINGS])
    return ExperimentOutput(
        experiment_id="figure03",
        title="Messages sent per processor per 1M compute cycles",
        headers=["application"] + [f"{p} procs/node" for p in TABLE2_CLUSTERINGS],
        rows=rows,
        data=data,
        notes=(
            "Paper shape: Barnes-rebuild/Radix(/FFT) send the most messages; "
            "LU/Ocean/Water-spatial/Barnes-space the fewest; clustering "
            "reduces per-processor message counts."
        ),
    )
