"""Figure 5 — speedup vs host overhead (0..6000 cycles per message)."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.params import HOST_OVERHEAD_SWEEP
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput
from repro.experiments.param_sweeps import sweep_figure


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    return sweep_figure(
        "figure05",
        "Speedup vs host overhead (cycles per message send)",
        "host_overhead",
        HOST_OVERHEAD_SWEEP,
        scale=scale,
        apps=apps,
        jobs=jobs,
        notes=(
            "Paper shape: slowdown is generally low for realistic asynchronous-"
            "send overheads, and tracks the number of messages sent (Fig 5b); "
            "host overhead is not a major factor for page-grain SVM."
        ),
    )
