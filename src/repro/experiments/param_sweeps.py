"""Shared machinery for the parameter-sweep figures (5, 6, 7, 9, 11).

Each figure plots per-application speedup against one communication
parameter, all other parameters held at their achievable values.  The
whole (app x value) grid is fanned out through the parallel executor
before the table is assembled."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.config import ClusterConfig
from repro.core.executor import run_points
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput, pick_apps


def sweep_figure(
    experiment_id: str,
    title: str,
    param: str,
    values: Sequence,
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    protocol: str = "hlrc",
    notes: str = "",
    value_labels: Optional[List[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    base = ClusterConfig(protocol=protocol)
    labels = value_labels or [str(v) for v in values]
    names = pick_apps(apps)
    grid = [
        (name, scale, base.with_comm(**{param: v})) for name in names for v in values
    ]
    results = iter(run_points(grid, jobs=jobs))
    rows = []
    data = {}
    for name in names:
        speedups = [next(results).speedup for _ in values]
        data[name] = dict(zip(labels, speedups))
        slowdown = (speedups[0] - speedups[-1]) / speedups[0]
        rows.append([name] + [round(s, 2) for s in speedups] + [f"{slowdown * 100:+.1f}%"])
    return ExperimentOutput(
        experiment_id=experiment_id,
        title=title,
        headers=["application"] + labels + ["max slowdown"],
        rows=rows,
        data=data,
        notes=notes,
    )
