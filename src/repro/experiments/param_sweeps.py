"""Shared machinery for the parameter-sweep figures (5, 6, 7, 9, 11).

Each figure plots per-application speedup against one communication
parameter, all other parameters held at their achievable values."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.config import ClusterConfig
from repro.core.sweeps import cached_run
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput, pick_apps


def sweep_figure(
    experiment_id: str,
    title: str,
    param: str,
    values: Sequence,
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    protocol: str = "hlrc",
    notes: str = "",
    value_labels: Optional[List[str]] = None,
) -> ExperimentOutput:
    base = ClusterConfig(protocol=protocol)
    labels = value_labels or [str(v) for v in values]
    rows = []
    data = {}
    for name in pick_apps(apps):
        speedups = []
        for v in values:
            r = cached_run(name, scale, base.with_comm(**{param: v}))
            speedups.append(r.speedup)
        data[name] = dict(zip(labels, speedups))
        slowdown = (speedups[0] - speedups[-1]) / speedups[0]
        rows.append([name] + [round(s, 2) for s in speedups] + [f"{slowdown * 100:+.1f}%"])
    return ExperimentOutput(
        experiment_id=experiment_id,
        title=title,
        headers=["application"] + labels + ["max slowdown"],
        rows=rows,
        data=data,
        notes=notes,
    )
