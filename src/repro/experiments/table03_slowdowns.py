"""Table 3 — maximum slowdown per application per parameter.

For each communication parameter (plus page size and clustering), the
fractional slowdown between the best and worst value in the studied
range, all other parameters held at their achievable values.  Negative
entries mean the nominally "worst" value actually helped (the paper sees
this for Radix's page size and for clustering)."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.params import (
    HOST_OVERHEAD_SWEEP,
    INTERRUPT_COST_SWEEP,
    IO_BANDWIDTH_SWEEP,
    NI_OCCUPANCY_SWEEP,
    PAGE_SIZE_SWEEP,
    PROCS_PER_NODE_SWEEP,
)
from repro.core.config import ClusterConfig
from repro.core.executor import prefetch
from repro.core.reporting import format_percent
from repro.core.sweeps import cached_run
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput, pick_apps

#: parameter -> (best-end value, worst-end value)
PARAM_ENDPOINTS = {
    "host_overhead": (HOST_OVERHEAD_SWEEP[0], HOST_OVERHEAD_SWEEP[-1]),
    "ni_occupancy": (NI_OCCUPANCY_SWEEP[0], NI_OCCUPANCY_SWEEP[-1]),
    "io_bus_mb_per_mhz": (IO_BANDWIDTH_SWEEP[0], IO_BANDWIDTH_SWEEP[-1]),
    "interrupt_cost": (INTERRUPT_COST_SWEEP[0], INTERRUPT_COST_SWEEP[-1]),
    "page_size": (PAGE_SIZE_SWEEP[1], PAGE_SIZE_SWEEP[-1]),
    "procs_per_node": (PROCS_PER_NODE_SWEEP[0], PROCS_PER_NODE_SWEEP[-1]),
}

COLUMNS = [
    ("host_overhead", "host overhead"),
    ("ni_occupancy", "NI occupancy"),
    ("io_bus_mb_per_mhz", "I/O bandwidth"),
    ("interrupt_cost", "interrupt cost"),
    ("page_size", "page size"),
    ("procs_per_node", "procs/node"),
]


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    base = ClusterConfig()
    names = pick_apps(apps)
    prefetch(
        [
            (name, scale, base.with_comm(**{param: v}))
            for name in names
            for param, _label in COLUMNS
            for v in PARAM_ENDPOINTS[param]
        ],
        jobs=jobs,
    )
    rows = []
    data = {}
    for name in names:
        entry = {}
        row = [name]
        for param, _label in COLUMNS:
            lo, hi = PARAM_ENDPOINTS[param]
            r_lo = cached_run(name, scale, base.with_comm(**{param: lo}))
            r_hi = cached_run(name, scale, base.with_comm(**{param: hi}))
            slow = (r_lo.speedup - r_hi.speedup) / r_lo.speedup
            entry[param] = slow
            row.append(format_percent(slow))
        data[name] = entry
        rows.append(row)
    return ExperimentOutput(
        experiment_id="table03",
        title="Maximum slowdowns over each parameter's range",
        headers=["application"] + [label for _p, label in COLUMNS],
        rows=rows,
        data=data,
        notes=(
            "Paper shape: interrupt cost matters for every application; I/O "
            "bandwidth for the data-hungry few; host overhead and NI "
            "occupancy are minor; negative values are speedups (e.g. Radix "
            "prefers the large page size, and most applications prefer more "
            "processors per node)."
        ),
    )
