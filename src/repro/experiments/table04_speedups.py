"""Table 4 — best, achievable and ideal speedups per application.

*Best* sets every communication parameter to its best value in the
studied range (contention still modelled); *achievable* is the Table 1
achievable set; *ideal* zeroes all communication and synchronization."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.params import BEST
from repro.core.config import ClusterConfig
from repro.core.executor import prefetch
from repro.core.sweeps import cached_run
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput, pick_apps


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    achievable_cfg = ClusterConfig()
    best_cfg = ClusterConfig(comm=BEST)
    names = pick_apps(apps)
    prefetch(
        [(name, scale, cfg) for name in names for cfg in (achievable_cfg, best_cfg)],
        jobs=jobs,
    )
    rows = []
    data = {}
    for name in names:
        r_ach = cached_run(name, scale, achievable_cfg)
        r_best = cached_run(name, scale, best_cfg)
        data[name] = {
            "best": r_best.speedup,
            "achievable": r_ach.speedup,
            "ideal": r_ach.ideal_speedup,
        }
        rows.append(
            [
                name,
                round(r_best.speedup, 2),
                round(r_ach.speedup, 2),
                round(r_ach.ideal_speedup, 2),
            ]
        )
    return ExperimentOutput(
        experiment_id="table04",
        title="Best / achievable / ideal speedups (16 processors)",
        headers=["application", "best", "achievable", "ideal"],
        rows=rows,
        data=data,
        notes=(
            "Paper shape: achievable is close to best for the low-"
            "communication applications (LU, Ocean, Water-spatial, Volrend); "
            "a gap remains for FFT, Radix and Barnes; best itself sits well "
            "below ideal for applications with faults inside critical "
            "sections or contention."
        ),
    )
