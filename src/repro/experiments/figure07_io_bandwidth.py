"""Figure 7 — speedup vs I/O-bus bandwidth (2.0 down to 0.25 MB/MHz)."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.params import IO_BANDWIDTH_SWEEP
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput
from repro.experiments.param_sweeps import sweep_figure


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    return sweep_figure(
        "figure07",
        "Speedup vs I/O-bus bandwidth (MB per processor-clock MHz)",
        "io_bus_mb_per_mhz",
        IO_BANDWIDTH_SWEEP,
        scale=scale,
        apps=apps,
        jobs=jobs,
        value_labels=[f"{v} MB/MHz" for v in IO_BANDWIDTH_SWEEP],
        notes=(
            "Paper shape: reducing bandwidth hurts substantially, but only "
            "FFT, Radix and Barnes-rebuild benefit much from raising it "
            "beyond the achievable 0.5 MB/MHz; slowdown tracks bytes sent "
            "(Fig 8)."
        ),
    )
