"""Figures 5b, 8 and 10 — slowdown-vs-traffic correlations.

The paper pairs each parameter sweep with a normalized bar chart showing
that the per-application slowdown is predicted by a traffic statistic:

* host-overhead slowdown  <-> messages sent       (its Figure 5b)
* I/O-bandwidth slowdown  <-> bytes sent          (Figure 8)
* interrupt-cost slowdown <-> page fetches + remote lock acquires (Figure 10)

Each ``run_*`` returns both normalized series (largest value = 1.0) and
their rank correlation, which should be strongly positive.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.config import ClusterConfig
from repro.core.executor import prefetch
from repro.core.sweeps import cached_run
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput, pick_apps


def _normalized(values: Dict[str, float]) -> Dict[str, float]:
    top = max(values.values()) or 1.0
    return {k: v / top for k, v in values.items()}


def _rank_correlation(a: Dict[str, float], b: Dict[str, float]) -> float:
    """Spearman rank correlation of two same-keyed series."""
    keys = sorted(a)
    n = len(keys)
    if n < 2:
        return 1.0

    def ranks(series: Dict[str, float]) -> Dict[str, float]:
        ordered = sorted(keys, key=lambda k: series[k])
        return {k: i for i, k in enumerate(ordered)}

    ra, rb = ranks(a), ranks(b)
    d2 = sum((ra[k] - rb[k]) ** 2 for k in keys)
    return 1 - 6 * d2 / (n * (n * n - 1))


def _correlation_experiment(
    experiment_id: str,
    title: str,
    param: str,
    lo,
    hi,
    metric_fn,
    metric_name: str,
    scale: float,
    apps: Optional[Iterable[str]],
    notes: str,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    base = ClusterConfig()
    names = pick_apps(apps)
    prefetch(
        [
            (name, scale, cfg)
            for name in names
            for cfg in (
                base.with_comm(**{param: lo}),
                base.with_comm(**{param: hi}),
                base,
            )
        ],
        jobs=jobs,
    )
    slowdowns: Dict[str, float] = {}
    metrics: Dict[str, float] = {}
    for name in names:
        fast = cached_run(name, scale, base.with_comm(**{param: lo}))
        slow = cached_run(name, scale, base.with_comm(**{param: hi}))
        baseline = cached_run(name, scale, base)
        slowdowns[name] = max(0.0, (fast.speedup - slow.speedup) / fast.speedup)
        metrics[name] = metric_fn(baseline)
    norm_slow = _normalized(slowdowns)
    norm_metric = _normalized(metrics)
    rho = _rank_correlation(slowdowns, metrics)
    rows: List[List] = [
        [name, round(norm_slow[name], 3), round(norm_metric[name], 3)]
        for name in sorted(norm_slow, key=norm_slow.get, reverse=True)
    ]
    return ExperimentOutput(
        experiment_id=experiment_id,
        title=title,
        headers=["application", "slowdown (normalized)", f"{metric_name} (normalized)"],
        rows=rows,
        data={
            "slowdown": slowdowns,
            "metric": metrics,
            "rank_correlation": rho,
        },
        notes=notes + f"\nSpearman rank correlation: {rho:+.2f}",
    )


def run_host_vs_messages(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    """Figure 5b: host-overhead slowdown tracks messages sent."""
    return _correlation_experiment(
        "figure05b",
        "Host-overhead slowdown vs messages sent",
        "host_overhead",
        0,
        6000,
        lambda r: r.messages_per_proc_per_mcycle,
        "messages/proc/Mcycle",
        scale,
        apps,
        "Paper shape: applications that send more messages depend more on "
        "host overhead.",
        jobs=jobs,
    )


def run_bandwidth_vs_bytes(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    """Figure 8: I/O-bandwidth slowdown tracks bytes sent."""
    return _correlation_experiment(
        "figure08",
        "I/O-bandwidth slowdown vs bytes sent",
        "io_bus_mb_per_mhz",
        2.0,
        0.25,
        lambda r: r.mbytes_per_proc_per_mcycle,
        "MB/proc/Mcycle",
        scale,
        apps,
        "Paper shape: applications that exchange a lot of data — not "
        "necessarily many messages — need higher bandwidth.",
        jobs=jobs,
    )


def run_interrupt_vs_fetches(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    """Figure 10: interrupt-cost slowdown tracks page fetches + remote
    lock acquires (the interrupt-raising events)."""
    return _correlation_experiment(
        "figure10",
        "Interrupt-cost slowdown vs page fetches + remote lock acquires",
        "interrupt_cost",
        0,
        10000,
        lambda r: r.per_proc_per_mcycle("page_fetches")
        + r.per_proc_per_mcycle("remote_lock_acquires"),
        "(fetches+remote locks)/proc/Mcycle",
        scale,
        apps,
        "Paper shape: interrupt-cost slowdown is closely related to the "
        "number of protocol events that cause interrupts.",
        jobs=jobs,
    )
