"""Problem-size study.

The paper runs FFT at two dataset sizes (64K and 1M points) and notes
that page-size effects interact with problem size ("larger problems that
run on real systems may benefit from larger pages").  More generally,
SVM speedups improve with problem size because computation grows faster
than page-grain communication.  This experiment sweeps the scale factor
for a few applications and reports speedup and the communication
intensity at each size.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.config import ClusterConfig
from repro.core.executor import prefetch
from repro.core.sweeps import cached_run
from repro.experiments.common import ExperimentOutput

SCALES = (0.25, 0.5, 1.0, 2.0)
DEFAULT_APPS = ("fft", "lu", "water-nsq", "radix")


def run(
    scale: float = 1.0,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    """`scale` acts as a multiplier on the sweep (pass 0.5 to halve every
    point, keeping the study affordable in benchmarks)."""
    names = list(apps) if apps is not None else list(DEFAULT_APPS)
    config = ClusterConfig()
    prefetch(
        [(name, s * scale, config) for name in names for s in SCALES], jobs=jobs
    )
    rows = []
    data = {}
    for name in names:
        speeds = {}
        for s in SCALES:
            eff = s * scale
            r = cached_run(name, eff, config)
            speeds[s] = {
                "speedup": r.speedup,
                "mb_per_mc": r.mbytes_per_proc_per_mcycle,
            }
            rows.append(
                [
                    name,
                    f"x{eff:g}",
                    round(r.speedup, 2),
                    round(r.mbytes_per_proc_per_mcycle, 4),
                ]
            )
        data[name] = speeds
    return ExperimentOutput(
        experiment_id="problem-size",
        title="Speedup and traffic intensity vs problem size",
        headers=["application", "size", "speedup", "MB/proc/Mcycle"],
        rows=rows,
        data=data,
        notes=(
            "SVM speedups improve with problem size: computation grows "
            "faster than page-grain communication, so the per-Mcycle byte "
            "intensity falls (the paper's 64K-vs-1M FFT remark, "
            "generalized)."
        ),
    )
