"""Communication microbenchmarks — the simulated cluster's LogP-style card.

Measures the raw costs applications are built from, directly against the
substrate (no application workload):

* **null RPC round trip** — a 64-byte request, empty reply: the cost of
  one remote protocol operation (remote lock acquire floor);
* **page fetch** — request + page-sized reply: the cost of one remote
  read fault;
* **page fetch under interrupt cost / bandwidth** — how the two headline
  parameters move the same operation;
* **streaming bandwidth** — back-to-back page-sized deposits, measuring
  the achieved node-to-node throughput against the configured I/O-bus
  limit.

These numbers calibrate the simulator against the paper's cost model:
e.g. at the achievable set a 4 KB page fetch should cost roughly the
page's I/O-bus crossing (~8.3K cycles) plus a null interrupt plus
handler and messaging overheads.
"""

from __future__ import annotations

from typing import List

from repro.arch.params import INTERRUPT_COST_SWEEP, IO_BANDWIDTH_SWEEP
from repro.core.cluster import Cluster
from repro.core.config import ClusterConfig
from repro.experiments.common import ExperimentOutput
from repro.protocol.base import REQUEST_HEADER_BYTES, TAG_PAGE_FETCH


def _measure_fetch(config: ClusterConfig, payload_pages: int = 1) -> int:
    """Cycles for one remote page fetch on an otherwise idle cluster."""
    cluster = Cluster(config)
    done: List[int] = []

    def client():
        cpu = cluster.procs[0]
        page_at_node1 = 10**6  # untouched; first_touch assigns to toucher
        cluster.directory.assign_home(page_at_node1, 1)
        for _ in range(payload_pages):
            yield from cluster.protocol.read(cpu, page_at_node1)
        done.append(cluster.sim.now)

    cluster.sim.spawn(client())
    cluster.sim.run()
    return done[0]


def _measure_null_rpc(config: ClusterConfig) -> int:
    cluster = Cluster(config)
    done: List[int] = []

    # a null service: handler base cost then an empty reply
    def handler_body(cpu, msg):
        yield cluster.sim.timeout(config.arch.handler_base_cycles)
        yield from cluster.msg.send_reply(cpu, msg, 16)

    node1 = cluster.nodes[1]
    node1.nic.on_request = lambda msg: node1.dispatch_request(
        lambda cpu: handler_body(cpu, msg), name="null_rpc"
    )

    def client():
        cpu = cluster.procs[0]
        yield from cluster.msg.rpc(cpu, 0, 1, "null", REQUEST_HEADER_BYTES)
        done.append(cluster.sim.now)

    cluster.sim.spawn(client())
    cluster.sim.run()
    return done[0]


def _measure_stream_bandwidth(config: ClusterConfig, n_pages: int = 64) -> float:
    """Achieved bytes/cycle streaming page-sized deposits node 0 -> 1."""
    cluster = Cluster(config)
    done: List[int] = []
    page = config.comm.page_size

    def sender():
        cpu = cluster.procs[0]
        deposits = []
        for _ in range(n_pages):
            ev = yield from cluster.msg.send_data(cpu, 0, 1, page)
            deposits.append(ev)
        from repro.sim.primitives import AllOf

        yield AllOf(cluster.sim, deposits)
        done.append(cluster.sim.now)

    cluster.sim.spawn(sender())
    cluster.sim.run()
    return n_pages * page / done[0]


def run(scale: float = 1.0, apps=None) -> ExperimentOutput:
    """`scale`/`apps` accepted for driver-signature uniformity (unused —
    microbenchmarks have no workload)."""
    base = ClusterConfig()
    rows = []
    data = {}

    null_rpc = _measure_null_rpc(base)
    fetch = _measure_fetch(base)
    stream = _measure_stream_bandwidth(base)
    rows.append(["null RPC (achievable)", null_rpc, "cycles"])
    rows.append(["page fetch (achievable)", fetch, "cycles"])
    rows.append(
        ["stream bandwidth (achievable)", round(stream, 3), "bytes/cycle"]
    )
    data["null_rpc"] = null_rpc
    data["page_fetch"] = fetch
    data["stream_bytes_per_cycle"] = stream

    fetch_vs_intr = {}
    for cost in INTERRUPT_COST_SWEEP:
        t = _measure_fetch(base.with_comm(interrupt_cost=cost))
        fetch_vs_intr[cost] = t
        rows.append([f"page fetch @intr={cost}/side", t, "cycles"])
    data["fetch_vs_interrupt"] = fetch_vs_intr

    fetch_vs_bw = {}
    for bw in IO_BANDWIDTH_SWEEP:
        t = _measure_fetch(base.with_comm(io_bus_mb_per_mhz=bw))
        fetch_vs_bw[bw] = t
        rows.append([f"page fetch @bw={bw} MB/MHz", t, "cycles"])
    data["fetch_vs_bandwidth"] = fetch_vs_bw

    return ExperimentOutput(
        experiment_id="microbench",
        title="Communication microbenchmarks (idle cluster)",
        headers=["operation", "value", "unit"],
        rows=rows,
        data=data,
        notes=(
            "Calibration: fetch latency grows by exactly 2x the per-side "
            "interrupt cost across the interrupt sweep, and by the page's "
            "bottleneck-stage crossing time across the bandwidth sweep; "
            "streaming throughput approaches the configured I/O-bus limit."
        ),
    )
