"""Section 7 — guided what-if runs attributing each application's gap.

The paper explains the best-to-achievable gap per application with
targeted experiments; we reproduce the headline ones:

* **FFT**: interrupt cost and I/O bandwidth are jointly responsible —
  zeroing interrupts alone or raising bandwidth alone each recover part
  of the gap; both together reach (almost) the best speedup.
* **Radix**: quadrupling I/O bandwidth alone brings the achievable
  speedup to the best speedup (contention on the I/O path is the story).
* **Barnes-rebuild / Water-nsquared / Volrend**: artificially removing
  remote page fetches shows how much of the synchronization cost is
  really page faults inside critical sections.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.params import BEST
from repro.core.config import ClusterConfig
from repro.core.executor import prefetch
from repro.core.sweeps import cached_run
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput


def run(scale: float = DEFAULT_SCALE, jobs: Optional[int] = None) -> ExperimentOutput:
    rows = []
    data = {}

    def point(app: str, label: str, config: ClusterConfig) -> float:
        s = cached_run(app, scale, config).speedup
        rows.append([app, label, round(s, 2)])
        data.setdefault(app, {})[label] = s
        return s

    base = ClusterConfig()
    lockish = ("barnes-rebuild", "water-nsq", "volrend")
    prefetch(
        [
            ("fft", scale, base),
            ("fft", scale, base.with_comm(interrupt_cost=0)),
            ("fft", scale, base.with_comm(io_bus_mb_per_mhz=2.0)),
            ("fft", scale, base.with_comm(interrupt_cost=0, io_bus_mb_per_mhz=2.0)),
            ("fft", scale, ClusterConfig(comm=BEST)),
            ("radix", scale, base),
            ("radix", scale, base.with_comm(io_bus_mb_per_mhz=2.0)),
            ("radix", scale, ClusterConfig(comm=BEST)),
        ]
        + [
            (app, scale, cfg)
            for app in lockish
            for cfg in (
                base,
                base.replace(free_page_fetches=True),
                ClusterConfig(comm=BEST, free_page_fetches=True),
            )
        ],
        jobs=jobs,
    )
    # --- FFT: interrupts + bandwidth ---
    point("fft", "achievable", base)
    point("fft", "interrupts=0", base.with_comm(interrupt_cost=0))
    point("fft", "io bw = membus", base.with_comm(io_bus_mb_per_mhz=2.0))
    point(
        "fft",
        "both",
        base.with_comm(interrupt_cost=0, io_bus_mb_per_mhz=2.0),
    )
    point("fft", "best", ClusterConfig(comm=BEST))

    # --- Radix: bandwidth/contention ---
    point("radix", "achievable", base)
    point("radix", "4x io bw", base.with_comm(io_bus_mb_per_mhz=2.0))
    point("radix", "best", ClusterConfig(comm=BEST))

    # --- faults inside critical sections ---
    for app in ("barnes-rebuild", "water-nsq", "volrend"):
        point(app, "achievable", base)
        point(app, "no remote fetches", base.replace(free_page_fetches=True))
        point(
            app,
            "best, no remote fetches",
            ClusterConfig(comm=BEST, free_page_fetches=True),
        )

    return ExperimentOutput(
        experiment_id="section7-attribution",
        title="Guided what-if runs (Section 7 gap attribution)",
        headers=["application", "configuration", "speedup"],
        rows=rows,
        data=data,
        notes=(
            "Paper shape: FFT needs both cheap interrupts and bandwidth to "
            "reach best; Radix needs bandwidth; for the lock-heavy "
            "applications, removing remote fetches collapses lock wait time "
            "— page faults inside critical sections are the real cost."
        ),
    )
