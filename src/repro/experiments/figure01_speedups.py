"""Figure 1 — ideal vs achievable ("realistic") speedups.

The paper's motivating figure: for each application, the speedup with all
communication and synchronization costs zeroed (*ideal*) against the
speedup under the achievable communication parameters with four
processors per node.  The gap is what the rest of the study explains.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.config import ClusterConfig
from repro.core.executor import prefetch
from repro.core.sweeps import cached_run
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput, pick_apps


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    config = ClusterConfig()
    names = pick_apps(apps)
    prefetch([(name, scale, config) for name in names], jobs=jobs)
    rows = []
    data = {}
    for name in names:
        r = cached_run(name, scale, config)
        rows.append([name, round(r.ideal_speedup, 2), round(r.speedup, 2)])
        data[name] = {"ideal": r.ideal_speedup, "achievable": r.speedup}
    return ExperimentOutput(
        experiment_id="figure01",
        title="Ideal and achievable speedups (16 processors, 4 per node)",
        headers=["application", "ideal speedup", "achievable speedup"],
        rows=rows,
        data=data,
        notes=(
            "Paper shape: achievable is far below ideal for most applications; "
            "protocol and communication overheads are substantial."
        ),
    )
