"""Extension study — multiple network interfaces per node.

The paper's discussion: "Multiple network interfaces per node is another
approach that can increase the available bandwidth.  In this case
protocol changes may be necessary to ensure proper event ordering."

This experiment stripes traffic over 1/2/4 NIs per node (each with its
own I/O bus) at the achievable parameters and again at the lowest
bandwidth: the bandwidth-bound applications (FFT, Radix) recover a large
fraction of what a faster single I/O bus would buy, while the
latency-/interrupt-bound applications barely move — confirming that
extra NIs are a *bandwidth* remedy, not a general one.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.config import ClusterConfig
from repro.core.executor import prefetch
from repro.core.sweeps import cached_run
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput

NI_COUNTS = (1, 2, 4)
DEFAULT_APPS = ("fft", "radix", "lu", "water-sp", "barnes-rebuild")


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    names = list(apps) if apps is not None else list(DEFAULT_APPS)
    prefetch(
        [
            (name, scale, ClusterConfig().with_comm(nis_per_node=k, io_bus_mb_per_mhz=bw))
            for name in names
            for bw in (0.5, 0.25)
            for k in NI_COUNTS
        ],
        jobs=jobs,
    )
    rows = []
    data = {}
    for name in names:
        entry = {}
        for bw, label in ((0.5, "achievable bw"), (0.25, "low bw")):
            series = []
            for k in NI_COUNTS:
                cfg = ClusterConfig().with_comm(
                    nis_per_node=k, io_bus_mb_per_mhz=bw
                )
                series.append(cached_run(name, scale, cfg).speedup)
            entry[label] = series
            rows.append([name, label] + [round(s, 2) for s in series])
        data[name] = entry
    return ExperimentOutput(
        experiment_id="section10-multini",
        title="Speedup vs NIs per node (striped I/O buses)",
        headers=["application", "I/O bus"] + [f"{k} NI(s)" for k in NI_COUNTS],
        rows=rows,
        data=data,
        notes=(
            "Extension of the paper's discussion: extra NIs substitute for "
            "raw per-bus bandwidth for the bandwidth-bound applications, "
            "with diminishing returns once the I/O path stops being the "
            "bottleneck; latency-bound applications are unaffected."
        ),
    )
