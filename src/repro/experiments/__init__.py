"""One driver per table/figure of the paper's evaluation.

Each module exposes ``run(scale=..., apps=...) -> ExperimentOutput``; the
benchmark harness (``benchmarks/``) calls these and prints the same
rows/series the paper reports.  See DESIGN.md's experiment index for the
paper-to-module mapping.
"""

from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput

__all__ = ["DEFAULT_SCALE", "ExperimentOutput"]
