"""Figure 9 — speedup vs interrupt cost (0..10000 cycles per side)."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.params import INTERRUPT_COST_SWEEP
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput
from repro.experiments.param_sweeps import sweep_figure


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    return sweep_figure(
        "figure09",
        "Speedup vs interrupt cost (cycles per side; null = 2x)",
        "interrupt_cost",
        INTERRUPT_COST_SWEEP,
        scale=scale,
        apps=apps,
        jobs=jobs,
        notes=(
            "Paper shape: the dominant parameter — costs up to ~500-1000 per "
            "side hurt little, beyond that every application degrades sharply "
            "(Ocean's anomaly excepted); slowdown tracks page fetches plus "
            "remote lock acquires (Fig 10)."
        ),
    )
