"""Reliability study — end performance under an imperfect fabric.

The paper assumes Myrinet's reliable delivery; this extension asks what
the SVM protocols pay when the fabric drops packets and the messaging
layer must recover via timeout/retransmit (see :mod:`repro.net.faults`).
For each application we sweep the per-message drop probability crossed
with the retransmit timeout, and report the achieved speedup, the
degradation relative to the fault-free run, and the recovery traffic
(retransmission count).

The fault-free column uses the *plain* base configuration (no
``FaultParams`` armed at all), so it dedups against every other
experiment's baseline points in the run cache and doubles as a
regression check that the reliability machinery is zero-cost when off.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.config import ClusterConfig
from repro.core.executor import run_points
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput, pick_apps

#: per-message drop probabilities (0 = the paper's reliable fabric)
DROP_SWEEP: Sequence[float] = (0.0, 0.005, 0.01, 0.02)

#: retransmit timeouts (cycles): an aggressive and a conservative timer
TIMEOUT_SWEEP: Sequence[int] = (50_000, 200_000)


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
    protocol: str = "hlrc",
    drops: Sequence[float] = DROP_SWEEP,
    timeouts: Sequence[int] = TIMEOUT_SWEEP,
) -> ExperimentOutput:
    base = ClusterConfig(protocol=protocol)
    names = pick_apps(apps)

    def config_for(drop: float, timeout: int) -> ClusterConfig:
        if drop == 0.0:
            return base  # shared fault-free baseline point
        return base.with_faults(drop_prob=drop, retry_timeout=timeout)

    cells = [
        (drop, timeout)
        for drop in drops
        for timeout in (timeouts if drop else timeouts[:1])
    ]
    grid = [
        (name, scale, config_for(drop, timeout))
        for name in names
        for (drop, timeout) in cells
    ]
    results = iter(run_points(grid, jobs=jobs))

    headers = ["application"] + [
        "baseline" if drop == 0.0 else f"drop={drop:g} to={timeout // 1000}k"
        for (drop, timeout) in cells
    ] + ["worst degradation"]
    rows = []
    data = {}
    for name in names:
        per_cell = {}
        baseline = None
        cols = []
        for drop, timeout in cells:
            r = next(results)
            retx = int(r.meta.get("retransmits", 0.0))
            # string cell keys so ExperimentOutput.data stays JSON-serializable
            per_cell[f"drop={drop:g},timeout={timeout}"] = {
                "speedup": r.speedup,
                "total_cycles": r.total_cycles,
                "retransmits": retx,
                "messages_lost": int(r.meta.get("messages_lost", 0.0)),
            }
            if drop == 0.0:
                baseline = r
                cols.append(f"{r.speedup:.2f}")
            else:
                degr = (baseline.speedup - r.speedup) / baseline.speedup
                cols.append(f"{r.speedup:.2f} ({degr * 100:+.1f}%, {retx} retx)")
        worst = max(
            (baseline.speedup - c["speedup"]) / baseline.speedup
            for c in per_cell.values()
        )
        rows.append([name] + cols + [f"{worst * 100:.1f}%"])
        data[name] = per_cell
    return ExperimentOutput(
        experiment_id="reliability",
        title=f"Speedup under packet loss ({protocol.upper()}, "
        "drop probability x retransmit timeout)",
        headers=headers,
        rows=rows,
        data=data,
        notes=(
            "Each faulty cell shows speedup, degradation vs the fault-free "
            "baseline, and the number of NI-driven retransmissions.  Short "
            "timeouts recover faster but risk spurious retransmissions; long "
            "timeouts serialize page fetches behind the full timeout on every "
            "lost packet."
        ),
    )
