"""RDMA regime study — the paper's question re-asked on modern networks.

The SC'97 grid varies host overhead, interrupt cost, NI occupancy and
bandwidth because the base system *has* those costs.  A user-level
RDMA-class network (PAPERS.md: "User-level DSM System for Modern
High-Performance Interconnection Networks") removes the host and
interrupt terms structurally: page fetches become remote reads served by
the home node's NI, sends post a descriptor in tens of cycles, and no
interrupts are ever raised.  This driver runs every application under
both regimes and reports how much of the baseline's host-overhead
sensitivity (the Figure 5 sweep) the RDMA regime makes moot.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.params import HOST_OVERHEAD_SWEEP
from repro.core.config import ClusterConfig
from repro.core.executor import run_points
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput, pick_apps


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    base = ClusterConfig()
    rdma = base.with_comm(comm_regime="rdma")
    worst_overhead = HOST_OVERHEAD_SWEEP[-1]
    stressed = base.with_comm(host_overhead=worst_overhead)
    names = pick_apps(apps)
    grid = [
        (name, scale, cfg) for name in names for cfg in (base, stressed, rdma)
    ]
    results = iter(run_points(grid, jobs=jobs))
    rows = []
    data = {}
    for name in names:
        r_base = next(results)
        r_stress = next(results)
        r_rdma = next(results)
        gain = (r_rdma.speedup - r_base.speedup) / r_base.speedup
        rows.append(
            [
                name,
                round(r_base.ideal_speedup, 2),
                round(r_base.speedup, 2),
                round(r_stress.speedup, 2),
                round(r_rdma.speedup, 2),
                f"{gain * 100:+.1f}%",
            ]
        )
        data[name] = {
            "ideal": r_base.ideal_speedup,
            "baseline": r_base.speedup,
            f"baseline_o={worst_overhead}": r_stress.speedup,
            "rdma": r_rdma.speedup,
            "rdma_gain": gain,
        }
    return ExperimentOutput(
        experiment_id="rdma_regime",
        title="Baseline vs RDMA/user-level communication regime (16 procs)",
        headers=[
            "application",
            "ideal",
            "baseline",
            f"baseline o={worst_overhead}",
            "rdma",
            "rdma gain",
        ],
        rows=rows,
        data=data,
        notes=(
            "The RDMA regime serves page fetches as NI remote reads (no home "
            "handler, no interrupts) and posts sends in rdma_post_cycles; it "
            "closes part of the gap to ideal, and the host-overhead sweep "
            "axis collapses — the stressed baseline column shows what the "
            "regime makes irrelevant."
        ),
    )
