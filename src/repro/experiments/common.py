"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.apps import APP_ORDER
from repro.core.reporting import format_table

#: default problem-size multiplier for experiment drivers; benches use
#: smaller values for speed (paper-scale is 1.0)
DEFAULT_SCALE = 1.0


@dataclass
class ExperimentOutput:
    """The result of one experiment driver: a paper-shaped table plus the
    underlying data for programmatic checks."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Any]]
    #: free-form structured results keyed however the experiment likes
    data: Dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def table_str(self) -> str:
        out = format_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")
        if self.notes:
            out += f"\n\n{self.notes}"
        return out

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.table_str()


def pick_apps(apps: Optional[Iterable[str]]) -> List[str]:
    return list(apps) if apps is not None else list(APP_ORDER)


def attach_checkpoint_note(output: ExperimentOutput) -> ExperimentOutput:
    """Append resume provenance to a driver's output notes.

    When the process-wide sweep checkpoint is installed (``--checkpoint``
    / ``resume``), the experiment's table records how many points were
    journaled, resumed from a previous run, or recomputed — so archived
    tables say whether they came from one uninterrupted run.  A no-op
    when no checkpoint is active.
    """
    from repro.core.executor import default_checkpoint

    cp = default_checkpoint()
    if cp is not None:
        note = cp.provenance_note()
        output.notes = f"{output.notes}\n{note}" if output.notes else note
    return output


def series_row(name: str, values: Sequence[float]) -> List[Any]:
    return [name, *values]
