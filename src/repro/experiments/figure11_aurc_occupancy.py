"""Figure 11 — speedup vs NI occupancy under AURC.

AURC's automatic-update hardware emits fine-grained, poorly-coalescing
update packets, so — unlike HLRC (Figure 6) — NI occupancy matters."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.params import NI_OCCUPANCY_SWEEP
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput
from repro.experiments.param_sweeps import sweep_figure

#: the paper plots a subset of regular + irregular applications for AURC;
#: single-writer apps with home-local writes (LU, Ocean) emit few
#: automatic updates and stay flat, multi-writer apps react strongly
DEFAULT_AURC_APPS = ("lu", "ocean", "water-nsq", "barnes-rebuild")


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    return sweep_figure(
        "figure11",
        "Speedup vs NI occupancy per packet (AURC)",
        "ni_occupancy",
        NI_OCCUPANCY_SWEEP,
        scale=scale,
        apps=apps if apps is not None else DEFAULT_AURC_APPS,
        protocol="aurc",
        jobs=jobs,
        notes=(
            "Paper shape: NI occupancy is much more important under AURC than "
            "under HLRC because updates are sent at fine granularity and may "
            "not coalesce into packets."
        ),
    )
