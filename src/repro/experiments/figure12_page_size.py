"""Figure 12 — speedup vs page size (1 KB .. 16 KB).

The page size sets both the transfer granularity and the false-sharing
granularity; the trace generators recompute page-level access sets from
the real byte layouts at each size, so both effects are live."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.params import PAGE_SIZE_SWEEP
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput
from repro.experiments.param_sweeps import sweep_figure


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    return sweep_figure(
        "figure12",
        "Speedup vs page size",
        "page_size",
        PAGE_SIZE_SWEEP,
        scale=scale,
        apps=apps,
        jobs=jobs,
        value_labels=[f"{v // 1024}KB" for v in PAGE_SIZE_SWEEP],
        notes=(
            "Paper shape: effects vary a lot; most applications favour "
            "smaller pages (false sharing), while Radix benefits strongly "
            "from bigger pages (dense scattered writes amortize fetches)."
        ),
    )
