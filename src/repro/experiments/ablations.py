"""Model ablations — how much the simulator's design choices matter.

DESIGN.md calls out two modelling decisions worth auditing:

* **cut-through vs store-and-forward transfers** — we model messages as
  pipelining through the DMA/link stages (latency = bottleneck stage).
  The store-and-forward ablation pays the *sum* of the stages, roughly
  doubling bandwidth-driven latency and exaggerating every bandwidth
  sensitivity;
* **the serial NI receive gate** — the single-threaded assist stalls its
  receive dispatch while signalling a host interrupt, which couples
  interrupt cost into data waits.  Disabling the gate removes the
  paper's characteristic interrupt knee amplification.

Each ablation reruns a small application set under the achievable
configuration and the relevant parameter extreme, reporting speedups for
both model settings.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

from repro.arch.params import ArchParams
from repro.core.config import ClusterConfig
from repro.core.executor import prefetch
from repro.core.sweeps import cached_run
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput

DEFAULT_ABLATION_APPS = ("fft", "lu", "raytrace")


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    names = list(apps) if apps is not None else list(DEFAULT_ABLATION_APPS)
    rows = []
    data = {}

    def point(name: str, arch: ArchParams, **comm_kw) -> float:
        cfg = ClusterConfig(arch=arch).with_comm(**comm_kw)
        return cached_run(name, scale, cfg).speedup

    base_arch = ArchParams()
    saf_arch = dataclasses.replace(base_arch, model_cut_through=False)
    nogate_arch = dataclasses.replace(base_arch, model_rx_gate=False)

    grid = [
        (ArchParams(), {}),
        (saf_arch, {}),
        (base_arch, {"io_bus_mb_per_mhz": 0.25}),
        (saf_arch, {"io_bus_mb_per_mhz": 0.25}),
        (base_arch, {"interrupt_cost": 10000}),
        (nogate_arch, {"interrupt_cost": 10000}),
    ]
    prefetch(
        [
            (name, scale, ClusterConfig(arch=arch).with_comm(**comm_kw))
            for name in names
            for arch, comm_kw in grid
        ],
        jobs=jobs,
    )

    for name in names:
        entry = {
            "base": point(name, base_arch),
            "store-and-forward": point(name, saf_arch),
            "base @bw=0.25": point(name, base_arch, io_bus_mb_per_mhz=0.25),
            "s&f @bw=0.25": point(name, saf_arch, io_bus_mb_per_mhz=0.25),
            "base @intr=10k": point(name, base_arch, interrupt_cost=10000),
            "no-gate @intr=10k": point(name, nogate_arch, interrupt_cost=10000),
        }
        data[name] = entry
        rows.append([name] + [round(v, 2) for v in entry.values()])

    return ExperimentOutput(
        experiment_id="ablations",
        title="Model ablations: transfer pipelining and the NI receive gate",
        headers=["application"] + list(next(iter(data.values())).keys()),
        rows=rows,
        data=data,
        notes=(
            "Store-and-forward inflates bandwidth sensitivity (lower speedups, "
            "especially at 0.25 MB/MHz); removing the receive gate weakens the "
            "interrupt-cost coupling at the 10k extreme."
        ),
    )
