"""Barrier-collective topology sweep (flat vs tree vs dissemination).

The paper's hierarchical barrier gathers every node representative at a
single master — fine at 4 nodes, a bottleneck as clustering drops and
node count grows.  Following the Barchet-Estefanel & Mounié intra-cluster
collectives results (PAPERS.md), this driver sweeps the inter-node
topology against the Figure 13 clustering axis (16 processors total, so
1 processor per node means 16 nodes): flat pays ``2(n-1)`` messages over
2 serial hops, the binomial tree pays the same messages over
``2·ceil(log2 n)`` pipelined hops, and dissemination pays
``n·ceil(log2 n)`` messages over only ``ceil(log2 n)`` hops with no
root.  Reported per cell: speedup and the barrier-wait share of total
time (from the phase-attribution layer, which counts inter-stage hops as
barrier time).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.params import PROCS_PER_NODE_SWEEP
from repro.core.config import ClusterConfig
from repro.core.executor import run_points
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput
from repro.protocol.collectives import COLLECTIVES

#: barrier-heavy defaults: enough epochs for topology to matter, small
#: enough that the full topology x clustering grid stays CI-sized
DEFAULT_APPS = ("fft", "radix")


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    base = ClusterConfig()
    names = list(apps) if apps is not None else list(DEFAULT_APPS)
    grid = [
        (name, scale, base.replace(collective=coll).with_comm(procs_per_node=ppn))
        for name in names
        for coll in COLLECTIVES
        for ppn in PROCS_PER_NODE_SWEEP
    ]
    results = iter(run_points(grid, jobs=jobs))
    labels = [f"{ppn}/node" for ppn in PROCS_PER_NODE_SWEEP]
    rows = []
    data = {}
    for name in names:
        per_app = {}
        for coll in COLLECTIVES:
            cells = []
            for ppn in PROCS_PER_NODE_SWEEP:
                r = next(results)
                wait = r.breakdown_fractions().get("barrier_wait", 0.0)
                cells.append({"speedup": r.speedup, "barrier_wait": wait})
            per_app[coll] = dict(zip(labels, cells))
            rows.append(
                [name, coll]
                + [
                    f"{c['speedup']:.2f} ({c['barrier_wait'] * 100:.0f}%)"
                    for c in cells
                ]
            )
        data[name] = per_app
    return ExperimentOutput(
        experiment_id="collectives",
        title="Speedup (barrier-wait %) vs collective topology and clustering",
        headers=["application", "collective"] + labels,
        rows=rows,
        data=data,
        notes=(
            "16 processors total; fewer processors per node means more nodes "
            "in the inter-node collective.  Flat is the paper's barrier (and "
            "the golden-pinned default); tree and dissemination trade "
            "messages for serial hops, which pays off as node count grows."
        ),
    )
