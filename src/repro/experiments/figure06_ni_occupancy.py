"""Figure 6 — speedup vs NI occupancy per packet (HLRC)."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.params import NI_OCCUPANCY_SWEEP
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput
from repro.experiments.param_sweeps import sweep_figure


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    return sweep_figure(
        "figure06",
        "Speedup vs network-interface occupancy per packet (HLRC)",
        "ni_occupancy",
        NI_OCCUPANCY_SWEEP,
        scale=scale,
        apps=apps,
        jobs=jobs,
        notes=(
            "Paper shape: even smaller effect than host overhead; only the "
            "highest-message-count applications react at extreme occupancies."
        ),
    )
