"""Figure 13 — speedup vs degree of clustering (processors per node).

16 processors total throughout; 1, 2, 4 and 8 processors per node spans
uniprocessor-node clusters to half-machine bus-based SMPs.  The memory
subsystem is deliberately kept the same (the paper notes this is
conservative for high clustering)."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.params import PROCS_PER_NODE_SWEEP
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput
from repro.experiments.param_sweeps import sweep_figure


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    return sweep_figure(
        "figure13",
        "Speedup vs processors per node (16 processors total)",
        "procs_per_node",
        PROCS_PER_NODE_SWEEP,
        scale=scale,
        apps=apps,
        jobs=jobs,
        value_labels=[f"{v}/node" for v in PROCS_PER_NODE_SWEEP],
        notes=(
            "Paper shape: clustering helps most applications (sharing and "
            "synchronization move into hardware); Ocean peaks at 4 per node "
            "because its local miss traffic saturates the shared memory bus; "
            "lock-heavy applications gain the most at high clustering."
        ),
    )
