"""Table 2 — protocol event counts per processor per million cycles.

Page faults, page fetches, local and remote lock acquires, and barriers
for clusterings of 1, 4 and 8 processors per node (16 processors total).
Clustering converts remote events into node-local ones, which is the
mechanism behind Figure 13.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.arch.params import TABLE2_CLUSTERINGS
from repro.core.config import ClusterConfig
from repro.core.executor import prefetch
from repro.core.sweeps import cached_run
from repro.experiments.common import DEFAULT_SCALE, ExperimentOutput, pick_apps

COUNTERS = (
    "page_faults",
    "page_fetches",
    "local_lock_acquires",
    "remote_lock_acquires",
    "barriers",
)


def run(
    scale: float = DEFAULT_SCALE,
    apps: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentOutput:
    names = pick_apps(apps)
    prefetch(
        [
            (name, scale, ClusterConfig().with_comm(procs_per_node=ppn))
            for name in names
            for ppn in TABLE2_CLUSTERINGS
        ],
        jobs=jobs,
    )
    rows = []
    data = {}
    for name in names:
        data[name] = {}
        for ppn in TABLE2_CLUSTERINGS:
            config = ClusterConfig().with_comm(procs_per_node=ppn)
            r = cached_run(name, scale, config)
            rates = {c: r.per_proc_per_mcycle(c) for c in COUNTERS}
            data[name][ppn] = rates
            rows.append(
                [name, ppn]
                + [round(rates[c], 2) for c in COUNTERS]
            )
    return ExperimentOutput(
        experiment_id="table02",
        title="Protocol events per processor per 1M compute cycles",
        headers=[
            "application",
            "procs/node",
            "page faults",
            "page fetches",
            "local locks",
            "remote locks",
            "barriers",
        ],
        rows=rows,
        data=data,
        notes=(
            "Paper shape: faults >= fetches (SMP fetch coalescing); higher "
            "clustering turns remote lock acquires into local ones."
        ),
    )
