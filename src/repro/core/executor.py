"""Parallel execution of independent simulation points.

Every experiment in the study is an embarrassingly parallel grid of
(application, scale, configuration) points.  :func:`run_points` is the
one entry point: it deduplicates the requested grid, satisfies what it
can from the in-memory and on-disk caches, fans the remaining misses
across a ``concurrent.futures`` process pool, and returns results in the
requested order — bit-identical to a serial run, because each point's
simulation is deterministic and self-contained.

Worker count resolution (first match wins):

1. the explicit ``jobs=`` argument;
2. the process-wide default set via :func:`set_default_jobs` (the CLI's
   ``--jobs`` flag and ``run_all_experiments.py`` use this);
3. the ``REPRO_JOBS`` environment variable;
4. serial (1).

``jobs=1`` never touches ``multiprocessing`` — debugging, profiling and
coverage see a plain in-process loop.  ``jobs=0`` means "all cores".

Failure handling
----------------
A grid run is an hour of work; one poisoned point must not discard the
other 99.  Every point is submitted individually and its exception is
captured *per point* (inside the worker when possible, around the future
otherwise, so even a crashed worker process only poisons its own point).
Failed points are retried ``retries`` times (default 1, override with
``REPRO_POINT_RETRIES``) before being recorded as a
:class:`PointFailure`.  With ``strict=True`` (the default)
:func:`run_points` finishes all in-flight work, then raises
:class:`GridExecutionError` summarizing every failure; with
``strict=False`` it returns the ordered results with each failed point's
slot holding its :class:`PointFailure` so callers can salvage the rest.
"""

from __future__ import annotations

import os
import pickle
import traceback as _traceback
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.config import ClusterConfig
from repro.core.metrics import RunResult


class Point(NamedTuple):
    """One simulation point: which app, at what scale, under which config."""

    app: str
    scale: float
    config: ClusterConfig


PointLike = Union[Point, Tuple[str, float, ClusterConfig]]

_default_jobs: Optional[int] = None


@dataclass
class PointFailure:
    """Structured record of one simulation point that could not be run."""

    point: Point
    #: ``"ExcType: message"`` — always present, always picklable
    error: str
    #: full formatted traceback from the failing attempt
    traceback: str
    #: total attempts made (1 + retries)
    attempts: int = 1
    #: the original exception object, when it survives pickling across
    #: the process boundary (best effort; ``None`` otherwise)
    exception: Optional[BaseException] = field(default=None, repr=False)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.point.app}@{self.point.scale} "
            f"[{self.point.config.label()}]: {self.error} "
            f"({self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )


class GridExecutionError(RuntimeError):
    """Raised by ``run_points(strict=True)`` when any point failed.

    Carries every :class:`PointFailure` in :attr:`failures`; the grid's
    successful points have still been computed and cached, so a re-run
    after fixing the cause only pays for the failed points.
    """

    def __init__(self, failures: Sequence[PointFailure]) -> None:
        self.failures: List[PointFailure] = list(failures)
        lines = "\n".join(f"  - {f}" for f in self.failures)
        super().__init__(
            f"{len(self.failures)} of the requested grid points failed:\n{lines}"
        )


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` resets to the
    ``REPRO_JOBS`` / serial fallback)."""
    global _default_jobs
    _default_jobs = None if jobs is None else _normalize(jobs)


def _normalize(jobs: int) -> int:
    jobs = int(jobs)
    if jobs <= 0:  # 0 (or negative) = one worker per core
        return os.cpu_count() or 1
    return jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve an effective worker count (see module docstring)."""
    if jobs is not None:
        return _normalize(jobs)
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return _normalize(int(env))
        except ValueError:
            pass
    return 1


def resolve_retries(retries: Optional[int] = None) -> int:
    """Resolve the per-point retry budget (``REPRO_POINT_RETRIES``
    overrides the built-in default of 1)."""
    if retries is not None:
        return max(0, int(retries))
    env = os.environ.get("REPRO_POINT_RETRIES", "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return 1


def _compute_point(point: Point) -> RunResult:
    """Pool worker: simulate one point (module-level for picklability).

    Delegates to :func:`repro.core.sweeps.cached_run`, so a long-lived
    worker process reuses traces across the points it is handed and
    writes each fresh result straight into the shared disk cache.
    """
    from repro.core import sweeps

    return sweeps.cached_run(point.app, point.scale, point.config)


def _capture_failure(point: Point, exc: BaseException, attempts: int) -> PointFailure:
    keep: Optional[BaseException] = exc
    try:  # only ship the exception object home if it survives pickling
        pickle.loads(pickle.dumps(exc))
    except Exception:
        keep = None
    return PointFailure(
        point=point,
        error=f"{type(exc).__name__}: {exc}",
        traceback="".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
        attempts=attempts,
        exception=keep,
    )


def _compute_point_guarded(
    point: Point, attempts: int
) -> Union[RunResult, PointFailure]:
    """Pool worker that never raises: failures come back as data, so one
    bad point cannot tear down the whole ``pool.map``-style batch."""
    try:
        return _compute_point(point)
    except BaseException as exc:  # noqa: BLE001 - the whole point
        return _capture_failure(point, exc, attempts)


def run_points(
    points: Iterable[PointLike],
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    strict: bool = True,
) -> List[Union[RunResult, PointFailure]]:
    """Run (or fetch) every point, in parallel, preserving input order.

    Duplicate points are simulated once.  Results are also installed in
    the in-memory run cache, so subsequent :func:`~repro.core.sweeps.
    cached_run` calls for the same points are hits.

    Failed points are retried ``retries`` times (see
    :func:`resolve_retries`).  With ``strict=True`` a residual failure
    raises :class:`GridExecutionError` *after* all in-flight points have
    completed (and been cached); with ``strict=False`` the returned list
    holds a :class:`PointFailure` in each failed slot.
    """
    from repro.core import sweeps

    ordered: List[Point] = [Point(*p) for p in points]
    unique: List[Point] = []
    seen = set()
    for p in ordered:
        if p not in seen:
            seen.add(p)
            unique.append(p)

    # Satisfy what we can from the layered caches (memory, then disk).
    resolved: Dict[Point, Union[RunResult, PointFailure]] = {}
    misses: List[Point] = []
    for p in unique:
        hit = sweeps.cached_lookup(p.app, p.scale, p.config)
        if hit is not None:
            resolved[p] = hit
        else:
            misses.append(p)

    n_jobs = resolve_jobs(jobs)
    budget = resolve_retries(retries)
    pending: List[Point] = list(misses)
    for attempt in range(1, budget + 2):  # first try + `budget` retries
        if not pending:
            break
        last_round = attempt == budget + 1
        if n_jobs <= 1 or len(pending) == 1:
            outcomes = {
                p: _compute_point_guarded(p, attempt) for p in pending
            }
        else:
            outcomes = _map_parallel(pending, n_jobs, attempt)
            # install fresh successes in this process's caches so later
            # serial calls hit
            for p, out in outcomes.items():
                if isinstance(out, RunResult):
                    sweeps.cache_store(p.app, p.scale, p.config, out)
        retry_next: List[Point] = []
        for p, out in outcomes.items():
            if isinstance(out, PointFailure) and not last_round:
                retry_next.append(p)
            else:
                resolved[p] = out
        pending = retry_next

    failures = [r for r in resolved.values() if isinstance(r, PointFailure)]
    if failures and strict:
        raise GridExecutionError(failures)
    return [resolved[p] for p in ordered]


def _map_parallel(
    misses: Sequence[Point], n_jobs: int, attempts: int
) -> Dict[Point, Union[RunResult, PointFailure]]:
    """Fan points across a process pool, one future per point.

    Exceptions are normally caught *inside* the worker; the ``except``
    here only fires for infrastructure-level failures (a worker killed
    by the OS, an unpicklable result, a broken pool) — and still maps
    them onto the individual point rather than aborting the batch.
    """
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

    workers = min(n_jobs, len(misses))
    outcomes: Dict[Point, Union[RunResult, PointFailure]] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(_compute_point_guarded, p, attempts): p for p in misses
        }
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for fut in done:
                p = futures[fut]
                try:
                    outcomes[p] = fut.result()
                except BaseException as exc:  # noqa: BLE001 - see docstring
                    outcomes[p] = _capture_failure(p, exc, attempts)
    return outcomes


def prefetch(points: Iterable[PointLike], jobs: Optional[int] = None) -> None:
    """Warm the caches for a grid of points (sugar over :func:`run_points`
    for drivers that keep their own result-collection loops)."""
    run_points(points, jobs=jobs)
