"""Parallel execution of independent simulation points.

Every experiment in the study is an embarrassingly parallel grid of
(application, scale, configuration) points.  :func:`run_points` is the
one entry point: it deduplicates the requested grid, satisfies what it
can from the in-memory and on-disk caches, fans the remaining misses
across a ``concurrent.futures`` process pool, and returns results in the
requested order — bit-identical to a serial run, because each point's
simulation is deterministic and self-contained.

Worker count resolution (first match wins):

1. the explicit ``jobs=`` argument;
2. the process-wide default set via :func:`set_default_jobs` (the CLI's
   ``--jobs`` flag and ``run_all_experiments.py`` use this);
3. the ``REPRO_JOBS`` environment variable;
4. serial (1).

``jobs=1`` never touches ``multiprocessing`` — debugging, profiling and
coverage see a plain in-process loop.  ``jobs=0`` means "all cores".
"""

from __future__ import annotations

import os
from typing import Iterable, List, NamedTuple, Optional, Sequence, Tuple, Union

from repro.core.config import ClusterConfig
from repro.core.metrics import RunResult


class Point(NamedTuple):
    """One simulation point: which app, at what scale, under which config."""

    app: str
    scale: float
    config: ClusterConfig


PointLike = Union[Point, Tuple[str, float, ClusterConfig]]

_default_jobs: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` resets to the
    ``REPRO_JOBS`` / serial fallback)."""
    global _default_jobs
    _default_jobs = None if jobs is None else _normalize(jobs)


def _normalize(jobs: int) -> int:
    jobs = int(jobs)
    if jobs <= 0:  # 0 (or negative) = one worker per core
        return os.cpu_count() or 1
    return jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve an effective worker count (see module docstring)."""
    if jobs is not None:
        return _normalize(jobs)
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return _normalize(int(env))
        except ValueError:
            pass
    return 1


def _compute_point(point: Point) -> RunResult:
    """Pool worker: simulate one point (module-level for picklability).

    Delegates to :func:`repro.core.sweeps.cached_run`, so a long-lived
    worker process reuses traces across the points it is handed and
    writes each fresh result straight into the shared disk cache.
    """
    from repro.core import sweeps

    return sweeps.cached_run(point.app, point.scale, point.config)


def run_points(
    points: Iterable[PointLike], jobs: Optional[int] = None
) -> List[RunResult]:
    """Run (or fetch) every point, in parallel, preserving input order.

    Duplicate points are simulated once.  Results are also installed in
    the in-memory run cache, so subsequent :func:`~repro.core.sweeps.
    cached_run` calls for the same points are hits.
    """
    from repro.core import sweeps

    ordered: List[Point] = [Point(*p) for p in points]
    unique: List[Point] = []
    seen = set()
    for p in ordered:
        if p not in seen:
            seen.add(p)
            unique.append(p)

    # Satisfy what we can from the layered caches (memory, then disk).
    resolved = {}
    misses: List[Point] = []
    for p in unique:
        hit = sweeps.cached_lookup(p.app, p.scale, p.config)
        if hit is not None:
            resolved[p] = hit
        else:
            misses.append(p)

    n_jobs = resolve_jobs(jobs)
    if misses:
        if n_jobs <= 1 or len(misses) == 1:
            for p in misses:
                resolved[p] = _compute_point(p)
        else:
            resolved.update(_map_parallel(misses, n_jobs))
            # install in this process's caches so later serial calls hit
            for p in misses:
                sweeps.cache_store(p.app, p.scale, p.config, resolved[p])
    return [resolved[p] for p in ordered]


def _map_parallel(misses: Sequence[Point], n_jobs: int) -> dict:
    from concurrent.futures import ProcessPoolExecutor

    workers = min(n_jobs, len(misses))
    chunksize = max(1, len(misses) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(_compute_point, misses, chunksize=chunksize))
    return dict(zip(misses, results))


def prefetch(points: Iterable[PointLike], jobs: Optional[int] = None) -> None:
    """Warm the caches for a grid of points (sugar over :func:`run_points`
    for drivers that keep their own result-collection loops)."""
    run_points(points, jobs=jobs)
