"""Parallel execution of independent simulation points.

Every experiment in the study is an embarrassingly parallel grid of
(application, scale, configuration) points.  :func:`run_points` is the
one entry point: it deduplicates the requested grid, satisfies what it
can from the in-memory and on-disk caches, fans the remaining misses
across a ``concurrent.futures`` process pool, and returns results in the
requested order — bit-identical to a serial run, because each point's
simulation is deterministic and self-contained.

Worker count resolution (first match wins):

1. the explicit ``jobs=`` argument;
2. the process-wide default set via :func:`set_default_jobs` (the CLI's
   ``--jobs`` flag and ``run_all_experiments.py`` use this);
3. the ``REPRO_JOBS`` environment variable;
4. serial (1).

``jobs=1`` never touches ``multiprocessing`` — debugging, profiling and
coverage see a plain in-process loop.  ``jobs=0`` means "all cores"
(``os.cpu_count() or 1``), and the pool is always clamped to the number
of points actually missing from the caches — a deduplicated single-point
grid runs in-process, never in an oversized pool.

Failure handling
----------------
A grid run is an hour of work; one poisoned point must not discard the
other 99.  Every point is submitted individually and its exception is
captured *per point* (inside the worker when possible, around the future
otherwise, so even a crashed worker process only poisons its own point).
Failed points are retried ``retries`` times (default 1, override with
``REPRO_POINT_RETRIES``) before being recorded as a
:class:`PointFailure`.  With ``strict=True`` (the default)
:func:`run_points` finishes all in-flight work, then raises
:class:`GridExecutionError` summarizing every failure; with
``strict=False`` it returns the ordered results with each failed point's
slot holding its :class:`PointFailure` so callers can salvage the rest.

Crash safety (checkpoints + graceful shutdown)
----------------------------------------------
Pass ``checkpoint=`` (a sweep name or a :class:`~repro.core.checkpoint.
SweepCheckpoint`) — or install one process-wide with
:func:`set_default_checkpoint` — and every completed point is journaled
by its run-cache content key.  While a checkpointed grid is running,
SIGINT/SIGTERM trigger a *drain*: no new points start, in-flight points
finish and are journaled, caches are flushed, and
:class:`~repro.core.checkpoint.SweepInterrupted` is raised carrying a
one-line resume hint.  A SIGKILL costs at most the points in flight;
resuming replays the grid against the journal + disk cache and yields
bit-identical merged results.

Resource guards
---------------
``deadline_s=`` / ``rss_mb=`` (or ``REPRO_POINT_DEADLINE_S`` /
``REPRO_POINT_RSS_MB``) bound each point's wall-clock time and address
space (POSIX only; no-ops elsewhere).  A breach surfaces as a retriable
:class:`PointFailure` with ``kind`` ``"deadline"`` or ``"rss"`` — a
runaway point degrades a grid instead of wedging it.
"""

from __future__ import annotations

import logging
import os
import pickle
import signal
import threading
import time
import traceback as _traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.checkpoint import SweepCheckpoint, SweepInterrupted
from repro.core.config import ClusterConfig
from repro.core.metrics import RunResult

try:  # POSIX only; resource guards degrade to no-ops elsewhere
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    _resource = None  # type: ignore[assignment]

logger = logging.getLogger("repro.executor")


class Point(NamedTuple):
    """One simulation point: which app, at what scale, under which config."""

    app: str
    scale: float
    config: ClusterConfig


PointLike = Union[Point, Tuple[str, float, ClusterConfig]]

_default_jobs: Optional[int] = None
_default_checkpoint: Optional[SweepCheckpoint] = None
_default_fidelity: Optional[str] = None

#: set by the SIGINT/SIGTERM handler installed around checkpointed grids
_shutdown_event = threading.Event()


class PointDeadlineExceeded(RuntimeError):
    """A simulation point overran its per-point wall-clock deadline."""


@dataclass
class PointFailure:
    """Structured record of one simulation point that could not be run."""

    point: Point
    #: ``"ExcType: message"`` — always present, always picklable
    error: str
    #: full formatted traceback from the failing attempt
    traceback: str
    #: total attempts made (1 + retries)
    attempts: int = 1
    #: failure class: ``"error"`` (exception), ``"deadline"`` (wall-clock
    #: guard), or ``"rss"`` (memory guard) — guard breaches are retriable
    #: like any other failure
    kind: str = "error"
    #: the original exception object, when it survives pickling across
    #: the process boundary (best effort; ``None`` otherwise)
    exception: Optional[BaseException] = field(default=None, repr=False)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" [{self.kind}]" if self.kind != "error" else ""
        return (
            f"{self.point.app}@{self.point.scale} "
            f"[{self.point.config.label()}]{tag}: {self.error} "
            f"({self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )


#: failures listed verbatim in a GridExecutionError message before the
#: summary switches to a "... and N more" tail
MAX_SUMMARIZED_FAILURES = 10


class GridExecutionError(RuntimeError):
    """Raised by ``run_points(strict=True)`` when any point failed.

    Carries every :class:`PointFailure` in :attr:`failures`; the grid's
    successful points have still been computed and cached, so a re-run
    after fixing the cause only pays for the failed points.  The message
    summarizes at most :data:`MAX_SUMMARIZED_FAILURES` failures — a
    fully-failed 500-point grid prints a bounded report, not megabytes.
    """

    def __init__(self, failures: Sequence[PointFailure]) -> None:
        self.failures: List[PointFailure] = list(failures)
        shown = self.failures[:MAX_SUMMARIZED_FAILURES]
        lines = "\n".join(f"  - {f}" for f in shown)
        hidden = len(self.failures) - len(shown)
        if hidden:
            lines += (
                f"\n  ... and {hidden} more failure"
                f"{'s' if hidden != 1 else ''} (all carried in .failures)"
            )
        super().__init__(
            f"{len(self.failures)} of the requested grid points failed:\n{lines}"
        )


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` resets to the
    ``REPRO_JOBS`` / serial fallback)."""
    global _default_jobs
    _default_jobs = None if jobs is None else _normalize(jobs)


def set_default_checkpoint(checkpoint: Optional[SweepCheckpoint]) -> None:
    """Install a process-wide sweep checkpoint.

    Every subsequent :func:`run_points` call without an explicit
    ``checkpoint=`` journals into it — this is how the CLI and
    ``run_all_experiments.py`` checkpoint the ~20 experiment drivers
    without per-driver plumbing.  ``None`` uninstalls.
    """
    global _default_checkpoint
    _default_checkpoint = checkpoint


def default_checkpoint() -> Optional[SweepCheckpoint]:
    return _default_checkpoint


def set_default_fidelity(fidelity: Optional[str]) -> None:
    """Set the process-wide default fidelity level.

    ``None`` resets to ``"des"``.  The CLI's ``--fidelity`` flag uses
    this so the ~20 experiment drivers pick the level up without
    per-driver plumbing (mirrors :func:`set_default_jobs`).
    """
    global _default_fidelity
    if fidelity is not None:
        from repro.core.fidelity import FIDELITY_LEVELS

        if fidelity not in FIDELITY_LEVELS:
            raise ValueError(
                f"unknown fidelity {fidelity!r} (valid: {FIDELITY_LEVELS})"
            )
    _default_fidelity = fidelity


def resolve_fidelity(fidelity: Optional[str] = None) -> str:
    """Resolve the effective fidelity level (arg, process default, then
    the ``REPRO_FIDELITY`` environment variable; ``"des"`` otherwise)."""
    from repro.core.fidelity import FIDELITY_LEVELS

    if fidelity is not None:
        if fidelity not in FIDELITY_LEVELS:
            raise ValueError(
                f"unknown fidelity {fidelity!r} (valid: {FIDELITY_LEVELS})"
            )
        return fidelity
    if _default_fidelity is not None:
        return _default_fidelity
    env = os.environ.get("REPRO_FIDELITY", "").strip().lower()
    if env in FIDELITY_LEVELS:
        return env
    return "des"


_annotate_resume = False


def set_resume_annotation(enabled: bool) -> None:
    """Tag results served via a checkpoint journal with resume provenance.

    When enabled (the ``resume`` CLI does this), a point that a previous
    run journaled done and the cache replays comes back as a copy whose
    ``meta`` carries ``resume.from_checkpoint`` — presentation-layer
    only: the cached record is untouched, and the default (off) keeps
    resumed grids bit-identical to uninterrupted ones.
    """
    global _annotate_resume
    _annotate_resume = bool(enabled)


def _resolve_checkpoint(
    checkpoint: Union[SweepCheckpoint, str, None],
) -> Optional[SweepCheckpoint]:
    if checkpoint is None:
        return _default_checkpoint
    if isinstance(checkpoint, str):
        return SweepCheckpoint(checkpoint)
    return checkpoint


def _normalize(jobs: int) -> int:
    jobs = int(jobs)
    if jobs <= 0:  # 0 (or negative) = one worker per core
        return os.cpu_count() or 1
    return jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve an effective worker count (see module docstring)."""
    if jobs is not None:
        return _normalize(jobs)
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return _normalize(int(env))
        except ValueError:
            pass
    return 1


def resolve_retries(retries: Optional[int] = None) -> int:
    """Resolve the per-point retry budget (``REPRO_POINT_RETRIES``
    overrides the built-in default of 1)."""
    if retries is not None:
        return max(0, int(retries))
    env = os.environ.get("REPRO_POINT_RETRIES", "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return 1


def _positive_float_env(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if raw:
        try:
            value = float(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return None


def resolve_deadline(deadline_s: Optional[float] = None) -> Optional[float]:
    """Per-point wall-clock deadline in seconds (arg, then
    ``REPRO_POINT_DEADLINE_S``; ``None``/unset = unguarded)."""
    if deadline_s is not None:
        return float(deadline_s) if deadline_s > 0 else None
    return _positive_float_env("REPRO_POINT_DEADLINE_S")


def resolve_rss_limit(rss_mb: Optional[float] = None) -> Optional[int]:
    """Per-point address-space ceiling in MiB (arg, then
    ``REPRO_POINT_RSS_MB``; ``None``/unset = unguarded)."""
    if rss_mb is not None:
        return int(rss_mb) if rss_mb > 0 else None
    value = _positive_float_env("REPRO_POINT_RSS_MB")
    return None if value is None else int(value)


@contextmanager
def _resource_guard(
    deadline_s: Optional[float], rss_mb: Optional[int]
) -> Iterator[None]:
    """Bound one point's wall-clock time and address space (POSIX).

    The deadline uses ``SIGALRM``/``setitimer`` (main thread only — pool
    workers run tasks in their main thread, so guards work under
    ``jobs>1`` and in the serial loop alike); the memory ceiling uses
    ``RLIMIT_AS``, so a breach surfaces as ``MemoryError`` from the
    allocation that crossed it.  Both are restored on exit *before* the
    caller's exception handling runs, so capturing the failure itself is
    never subject to the breached limit.
    """
    if deadline_s is None and rss_mb is None:
        yield
        return
    old_limit = None
    if rss_mb is not None and _resource is not None:
        ceiling = int(rss_mb) * (1 << 20)
        old_limit = _resource.getrlimit(_resource.RLIMIT_AS)
        soft = (
            ceiling
            if old_limit[1] == _resource.RLIM_INFINITY
            else min(ceiling, old_limit[1])
        )
        try:
            _resource.setrlimit(_resource.RLIMIT_AS, (soft, old_limit[1]))
        except (ValueError, OSError):  # pragma: no cover - exotic rlimits
            old_limit = None
    timer_armed = False
    old_handler = None
    if (
        deadline_s is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    ):

        def _on_deadline(signum, frame):  # noqa: ARG001
            raise PointDeadlineExceeded(
                f"simulation point exceeded its {deadline_s:g}s "
                "wall-clock deadline"
            )

        old_handler = signal.signal(signal.SIGALRM, _on_deadline)
        signal.setitimer(signal.ITIMER_REAL, float(deadline_s))
        timer_armed = True
    try:
        yield
    finally:
        if timer_armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
        if old_limit is not None:
            try:
                _resource.setrlimit(_resource.RLIMIT_AS, old_limit)
            except (ValueError, OSError):  # pragma: no cover
                pass


def _worker_init() -> None:
    """Pool-worker initializer: leave interrupt handling to the parent.

    On Ctrl-C the terminal signals the whole process group; workers must
    finish (and cache) their in-flight point so the parent's graceful
    drain has something to journal, so they ignore SIGINT/SIGTERM and
    exit when the parent shuts the pool down.
    """
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, signal.SIG_IGN)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            pass


@contextmanager
def _graceful_signals(active: bool) -> Iterator[Optional[threading.Event]]:
    """Install SIGINT/SIGTERM -> drain-flag handlers around a checkpointed
    grid (main thread only); restores previous handlers on exit."""
    if not active or threading.current_thread() is not threading.main_thread():
        yield None
        return
    previous = {}
    _shutdown_event.clear()

    def _request_shutdown(signum, frame):  # noqa: ARG001
        _shutdown_event.set()

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _request_shutdown)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            pass
    try:
        yield _shutdown_event
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        _shutdown_event.clear()


def _compute_point(point: Point) -> RunResult:
    """Pool worker: simulate one point (module-level for picklability).

    Delegates to :func:`repro.core.sweeps.cached_run`, so a long-lived
    worker process reuses traces across the points it is handed and
    writes each fresh result straight into the shared disk cache.
    """
    from repro.core import sweeps

    return sweeps.cached_run(point.app, point.scale, point.config)


def _capture_failure(
    point: Point, exc: BaseException, attempts: int, kind: str = "error"
) -> PointFailure:
    keep: Optional[BaseException] = exc
    try:  # only ship the exception object home if it survives pickling
        pickle.loads(pickle.dumps(exc))
    except Exception:
        keep = None
    return PointFailure(
        point=point,
        error=f"{type(exc).__name__}: {exc}",
        traceback="".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
        attempts=attempts,
        kind=kind,
        exception=keep,
    )


def _compute_point_guarded(
    point: Point,
    attempts: int,
    deadline_s: Optional[float] = None,
    rss_mb: Optional[int] = None,
) -> Union[RunResult, PointFailure]:
    """Pool worker that never raises: failures come back as data, so one
    bad point cannot tear down the whole ``pool.map``-style batch."""
    try:
        with _resource_guard(deadline_s, rss_mb):
            # Chaos-test hooks: slow every computed point down (so a test
            # can deterministically kill/interrupt a sweep mid-grid) or
            # balloon its memory (so a test can breach the RSS guard).
            chaos_delay = _positive_float_env("REPRO_CHAOS_POINT_DELAY_S")
            if chaos_delay:
                time.sleep(chaos_delay)
            chaos_alloc = _positive_float_env("REPRO_CHAOS_POINT_ALLOC_MB")
            if chaos_alloc:
                _ballast = bytearray(int(chaos_alloc * (1 << 20)))  # noqa: F841
            return _compute_point(point)
    except BaseException as exc:  # noqa: BLE001 - the whole point
        if isinstance(exc, PointDeadlineExceeded):
            kind = "deadline"
        elif rss_mb is not None and isinstance(exc, MemoryError):
            kind = "rss"
        else:
            kind = "error"
        return _capture_failure(point, exc, attempts, kind)


def run_points(
    points: Iterable[PointLike],
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    strict: bool = True,
    checkpoint: Union[SweepCheckpoint, str, None] = None,
    deadline_s: Optional[float] = None,
    rss_mb: Optional[float] = None,
    fidelity: Optional[str] = None,
    journal_extra: Optional[Dict[str, object]] = None,
) -> List[Union[RunResult, PointFailure]]:
    """Run (or fetch) every point, in parallel, preserving input order.

    Duplicate points are simulated once.  Results are also installed in
    the in-memory run cache, so subsequent :func:`~repro.core.sweeps.
    cached_run` calls for the same points are hits.

    Failed points are retried ``retries`` times (see
    :func:`resolve_retries`).  With ``strict=True`` a residual failure
    raises :class:`GridExecutionError` *after* all in-flight points have
    completed (and been cached); with ``strict=False`` the returned list
    holds a :class:`PointFailure` in each failed slot.

    With a ``checkpoint`` (explicit, by name, or installed via
    :func:`set_default_checkpoint`) every outcome is journaled and
    SIGINT/SIGTERM drain in-flight work then raise
    :class:`SweepInterrupted` instead of ``KeyboardInterrupt`` (see the
    module docstring).  ``deadline_s``/``rss_mb`` arm the per-point
    resource guards.

    ``fidelity`` selects the serving model (see
    :mod:`repro.core.fidelity`): ``"des"`` (default) simulates every
    point; ``"analytic"`` serves the closed-form fast model;
    ``"auto"`` runs a DES calibration subset and serves the rest from
    the calibrated fast model with recorded error bounds.

    ``journal_extra`` fields are merged into every journal record this
    call writes — the sweep fabric tags outcomes with the worker id that
    produced them (fencing tokens are added by the journal write guard).
    """
    from repro.core import runcache, sweeps

    ordered: List[Point] = [Point(*p) for p in points]
    level = resolve_fidelity(fidelity)
    if level != "des":
        from repro.core.fidelity import run_points_fast

        fast = run_points_fast(
            ordered,
            level,
            jobs=jobs,
            retries=retries,
            strict=strict,
            checkpoint=checkpoint,
            deadline_s=deadline_s,
            rss_mb=rss_mb,
        )
        _ingest_outcomes(ordered, fast, checkpoint, level)
        return fast
    unique: List[Point] = []
    seen: Set[Point] = set()
    for p in ordered:
        if p not in seen:
            seen.add(p)
            unique.append(p)

    cp = _resolve_checkpoint(checkpoint)
    keys: Dict[Point, str] = {}
    journal_done: Set[str] = set()
    if cp is not None:
        cp.open()
        keys = {p: runcache.content_key(p.app, p.scale, p.config) for p in unique}
        journal_done = cp.completed_keys()

    tags: Dict[str, object] = dict(journal_extra or {})

    def _journal(p: Point, outcome: Union[RunResult, PointFailure]) -> None:
        if cp is None:
            return
        if isinstance(outcome, RunResult):
            cp.record(keys[p], "done", app=p.app, scale=p.scale, **tags)
        else:
            cp.record(
                keys[p],
                "failed",
                app=p.app,
                scale=p.scale,
                kind=outcome.kind,
                error=outcome.error,
                **tags,
            )

    # Satisfy what we can from the layered caches (memory, then disk).
    resolved: Dict[Point, Union[RunResult, PointFailure]] = {}
    misses: List[Point] = []
    for p in unique:
        hit = sweeps.cached_lookup(p.app, p.scale, p.config)
        if hit is not None:
            resolved[p] = hit
            if cp is not None and keys[p] in journal_done:
                cp.resumed_points += 1
                if _annotate_resume:
                    resolved[p] = hit.with_meta(**{"resume.from_checkpoint": 1.0})
            _journal(p, hit)
        else:
            if cp is not None and keys[p] in journal_done:
                # The journal can say "done" but never lies about data:
                # it does not carry the result, the cache does.
                cp.recomputed_points += 1
                logger.warning(
                    "point %s@%s journaled done in sweep '%s' but missing "
                    "from the run cache (cleared or quarantined); recomputing",
                    p.app,
                    p.scale,
                    cp.name,
                )
            misses.append(p)

    # An oversized pool is pure overhead: clamp workers to the number of
    # points actually missing (jobs=0 already clamps to cpu_count).
    n_jobs = resolve_jobs(jobs)
    if misses:
        n_jobs = max(1, min(n_jobs, len(misses)))
    budget = resolve_retries(retries)
    deadline = resolve_deadline(deadline_s)
    rss = resolve_rss_limit(rss_mb)

    def _success(p: Point, out: RunResult, from_pool: bool) -> None:
        """Collect one finished point *immediately* — the journal must
        trail the simulation by at most the points in flight, so a kill
        mid-batch loses nothing that already completed."""
        if from_pool:
            # install fresh pool successes in this process's caches so
            # later serial calls hit (workers wrote the disk layer)
            sweeps.cache_store(p.app, p.scale, p.config, out)
        resolved[p] = out
        _journal(p, out)

    pending: List[Point] = list(misses)
    interrupted = False
    with _graceful_signals(cp is not None) as stop:
        for attempt in range(1, budget + 2):  # first try + `budget` retries
            if not pending or (stop is not None and stop.is_set()):
                break
            last_round = attempt == budget + 1
            if n_jobs <= 1 or len(pending) == 1:
                outcomes: Dict[Point, Union[RunResult, PointFailure]] = {}
                for p in pending:
                    if stop is not None and stop.is_set():
                        break
                    out = _compute_point_guarded(p, attempt, deadline, rss)
                    outcomes[p] = out
                    if isinstance(out, RunResult):
                        _success(p, out, from_pool=False)
            else:
                outcomes = _map_parallel(
                    pending,
                    n_jobs,
                    attempt,
                    deadline,
                    rss,
                    stop,
                    on_success=lambda p, out: _success(p, out, from_pool=True),
                )
            retry_next: List[Point] = []
            for p, out in outcomes.items():
                if isinstance(out, PointFailure):
                    if last_round:
                        resolved[p] = out
                        _journal(p, out)
                    else:
                        retry_next.append(p)
            unattempted = [p for p in pending if p not in outcomes]
            pending = unattempted + retry_next
        interrupted = stop is not None and stop.is_set()

    if interrupted and cp is not None:
        cp.finalize("interrupted")
        progress = cp.progress()
        raise SweepInterrupted(
            cp.name,
            cp.resume_hint(),
            done=int(progress["done"]),
            total=len(unique),
        )

    # Every completed point lands in the columnar result store — the
    # sweep builds the longitudinal corpus as a side effect.  Cache hits
    # ingest too (idempotent per content key) so migrated/old caches
    # backfill; failures never block the grid (best-effort by contract).
    _ingest_outcomes(
        unique, [resolved[p] for p in unique], cp, "des", keys=keys or None
    )

    failures = [r for r in resolved.values() if isinstance(r, PointFailure)]
    if failures and strict:
        raise GridExecutionError(failures)
    return [resolved[p] for p in ordered]


def _ingest_outcomes(
    points: Sequence[Point],
    outcomes: Sequence[Union[RunResult, PointFailure, None]],
    checkpoint: Union[SweepCheckpoint, str, None],
    fidelity: str,
    keys: Optional[Dict[Point, str]] = None,
) -> None:
    """Append a grid's successful outcomes to the result store.

    ``keys`` reuses content hashes the checkpoint path already computed;
    anything missing is hashed here.  Deduplicates points so a grid with
    repeated entries ingests each result once.
    """
    from repro.core import runcache
    from repro.core.store import ingest_quietly, result_store

    if result_store() is None:
        return
    cp = _resolve_checkpoint(checkpoint)
    entries = []
    seen: Set[str] = set()
    for p, out in zip(points, outcomes):
        if not isinstance(out, RunResult):
            continue
        key = (keys or {}).get(p) or runcache.content_key(p.app, p.scale, p.config)
        if key in seen:
            continue
        seen.add(key)
        entries.append((key, out, p.scale))
    if entries:
        ingest_quietly(
            entries, sweep=cp.name if cp is not None else None, fidelity=fidelity
        )


def _map_parallel(
    misses: Sequence[Point],
    n_jobs: int,
    attempts: int,
    deadline_s: Optional[float] = None,
    rss_mb: Optional[int] = None,
    stop: Optional[threading.Event] = None,
    on_success: Optional[Callable[[Point, RunResult], None]] = None,
) -> Dict[Point, Union[RunResult, PointFailure]]:
    """Fan points across a process pool, one future per point.

    Exceptions are normally caught *inside* the worker; the ``except``
    here only fires for infrastructure-level failures (a worker killed
    by the OS, an unpicklable result, a broken pool) — and still maps
    them onto the individual point rather than aborting the batch.

    ``on_success(point, result)`` fires as each future completes (not at
    batch end) so the caller can cache + journal eagerly.  When ``stop``
    is set mid-batch (graceful shutdown), queued futures are cancelled
    and only the points already running are awaited — the drain leaves
    every completed point collected and nothing torn.
    """
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

    workers = max(1, min(n_jobs, len(misses)))
    outcomes: Dict[Point, Union[RunResult, PointFailure]] = {}
    with ProcessPoolExecutor(max_workers=workers, initializer=_worker_init) as pool:
        futures = {
            pool.submit(_compute_point_guarded, p, attempts, deadline_s, rss_mb): p
            for p in misses
        }
        remaining = set(futures)
        drained = False
        while remaining:
            if stop is not None and stop.is_set() and not drained:
                drained = True
                for fut in list(remaining):
                    if fut.cancel():  # queued, not yet started
                        remaining.discard(fut)
                if not remaining:
                    break
            done, remaining = wait(
                remaining, timeout=0.2, return_when=FIRST_COMPLETED
            )
            for fut in done:
                p = futures[fut]
                try:
                    outcomes[p] = fut.result()
                except BaseException as exc:  # noqa: BLE001 - see docstring
                    outcomes[p] = _capture_failure(p, exc, attempts)
                out = outcomes[p]
                if on_success is not None and isinstance(out, RunResult):
                    on_success(p, out)
    return outcomes


def prefetch(points: Iterable[PointLike], jobs: Optional[int] = None) -> None:
    """Warm the caches for a grid of points (sugar over :func:`run_points`
    for drivers that keep their own result-collection loops)."""
    run_points(points, jobs=jobs)
