"""Sweep checkpoint journal: crash-safe progress for long grid runs.

A full-figure regeneration is hours of simulation; a SIGKILL, OOM, or
power cut must cost at most the points in flight.  Each named sweep owns
a directory under ``results/.checkpoints/<sweep>/`` (override the root
with ``REPRO_CHECKPOINT_DIR``) holding two files:

``meta.json``
    Written once per sweep via atomic write+rename: the sweep's name,
    the CLI argv that created it (so ``python -m repro resume <sweep>``
    can replay it verbatim), the run-cache ``MODEL_VERSION`` it ran
    under, and a coarse status.

``journal.jsonl``
    Append-only, one JSON record per *completed* point: the point's
    run-cache content key and outcome (``done`` / ``failed``).  Every
    append rewrites the file through a temp file + ``os.replace`` under
    an advisory lock (:mod:`repro.core.fslock`), so a kill at any
    instant leaves either the old journal or the new one — never a torn
    line.  Loading still tolerates a corrupt tail defensively (a record
    that does not parse is skipped and counted, never fatal).

The journal records *bookkeeping*; the point results themselves live in
the run cache (:mod:`repro.core.runcache`).  Resume therefore composes:
a journaled-done point is normally a disk-cache hit, and if its cache
record was lost or quarantined the executor simply recomputes it — the
journal can say "done" but never lies about the data, because it does
not carry the data.  Merged results after kill+resume are bit-identical
to an uninterrupted run by construction: every point is produced by the
same deterministic simulation or by the cache record that simulation
wrote.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import shutil
import tempfile
import time
from typing import Callable, Dict, List, Optional, Set

from repro.core.fslock import file_lock

DEFAULT_CHECKPOINT_DIR = os.path.join("results", ".checkpoints")

#: Journal write guard installed by the distributed sweep fabric
#: (:mod:`repro.core.fabric`).  Called as ``guard(sweep_name, key)``
#: before every journal append; it may raise (e.g.
#: ``StaleFencingTokenError`` when the writer's lease on ``key`` has
#: been superseded — the append then never happens) and may return extra
#: fields to tag the record with (the lease's fencing token and worker
#: id).  ``None`` (the default) means unguarded single-writer operation.
_journal_write_guard: Optional[
    Callable[[str, str], Optional[Dict[str, object]]]
] = None


def set_journal_write_guard(
    guard: Optional[Callable[[str, str], Optional[Dict[str, object]]]],
) -> None:
    """Install (or clear, with ``None``) the process-wide journal guard."""
    global _journal_write_guard
    _journal_write_guard = guard

#: sweep names become directories: path-safe segments only, "/" allowed
#: as a grouping separator (``run-all-s1.0/figure01``)
_NAME_SEGMENT = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class SweepInterrupted(RuntimeError):
    """A checkpointed sweep was stopped by SIGINT/SIGTERM after draining.

    Raised *instead of* ``KeyboardInterrupt`` once in-flight points have
    been collected and journaled; carries the one-line resume hint the
    CLI prints in place of a traceback.
    """

    def __init__(self, sweep: str, hint: str, done: int, total: int) -> None:
        self.sweep = sweep
        self.hint = hint
        self.done = done
        self.total = total
        super().__init__(
            f"sweep '{sweep}' interrupted ({done}/{total} points journaled); "
            f"resume with: {hint}"
        )


def checkpoint_root(root: Optional[os.PathLike] = None) -> pathlib.Path:
    """Resolve the checkpoint root (arg > ``REPRO_CHECKPOINT_DIR`` > default)."""
    if root is not None:
        return pathlib.Path(root)
    return pathlib.Path(os.environ.get("REPRO_CHECKPOINT_DIR", DEFAULT_CHECKPOINT_DIR))


def validate_sweep_name(name: str) -> str:
    """Reject names that would escape or mangle the checkpoint tree."""
    segments = name.split("/")
    if not segments or not all(_NAME_SEGMENT.match(s) for s in segments):
        raise ValueError(
            f"invalid sweep name {name!r}: use letters, digits, '.', '_', '-' "
            "(with '/' to group related sweeps)"
        )
    return name


class SweepCheckpoint:
    """One named sweep's journal + metadata (see module docstring)."""

    def __init__(self, name: str, root: Optional[os.PathLike] = None) -> None:
        self.name = validate_sweep_name(name)
        self.root = checkpoint_root(root)
        self.dir = self.root / pathlib.PurePosixPath(name)
        self.journal_path = self.dir / "journal.jsonl"
        self.meta_path = self.dir / "meta.json"
        self._lock_path = self.dir / ".lock"
        #: keys already journaled, per status — refreshed from disk on open
        self._recorded: Dict[str, str] = {}
        #: journal lines that failed to parse on the last load
        self.corrupt_lines = 0
        #: points served from the cache because the journal marked them done
        self.resumed_points = 0
        #: journaled-done points whose cache record was gone (recomputed)
        self.recomputed_points = 0
        self._opened = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def exists(self) -> bool:
        return self.meta_path.is_file() or self.journal_path.is_file()

    def open(self, meta: Optional[dict] = None) -> "SweepCheckpoint":
        """Create the sweep directory (first run) or reload it (resume).

        Idempotent: an experiment that calls :func:`~repro.core.executor.
        run_points` several times journals into one open sweep.
        """
        if self._opened:
            return self
        self.dir.mkdir(parents=True, exist_ok=True)
        if not self.meta_path.is_file():
            from repro.core.runcache import MODEL_VERSION

            record = {
                "sweep": self.name,
                "model_version": MODEL_VERSION,
                "status": "running",
                "created_unix": time.time(),
            }
            record.update(meta or {})
            self._write_meta(record)
        self._reload_journal()
        self._opened = True
        return self

    def finalize(self, status: str = "complete") -> None:
        """Stamp the sweep's coarse status into ``meta.json``."""
        meta = self.meta()
        meta["status"] = status
        meta["finished_unix"] = time.time()
        self._write_meta(meta)

    def delete(self) -> None:
        shutil.rmtree(self.dir, ignore_errors=True)

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #
    def meta(self) -> dict:
        try:
            with open(self.meta_path, "r") as fh:
                loaded = json.load(fh)
            return loaded if isinstance(loaded, dict) else {}
        except (OSError, ValueError):
            return {}

    def _write_meta(self, meta: dict) -> None:
        self._atomic_write(self.meta_path, (json.dumps(meta, indent=2) + "\n").encode())

    def resume_hint(self) -> str:
        """The one-line command that continues this sweep."""
        hint = self.meta().get("resume_cmd")
        if isinstance(hint, str) and hint:
            return hint
        return f"python -m repro resume {self.name}"

    # ------------------------------------------------------------------ #
    # journal
    # ------------------------------------------------------------------ #
    def record(self, key: str, status: str, **extra: object) -> None:
        """Journal one point outcome (idempotent per ``(key, status)``).

        With a fabric write guard installed (distributed sweeps), the
        guard is consulted *before* the append: a stale fencing token
        aborts the write by raising, and a valid one tags the record
        with its token/worker provenance.
        """
        if self._recorded.get(key) == status:
            return
        rec = {"key": key, "status": status}
        rec.update(extra)
        if _journal_write_guard is not None:
            tags = _journal_write_guard(self.name, key)
            if tags:
                rec.update(tags)
        line = (json.dumps(rec, sort_keys=True, default=repr) + "\n").encode("utf-8")
        with file_lock(self._lock_path):
            try:
                existing = self.journal_path.read_bytes()
            except OSError:
                existing = b""
            self._atomic_write(self.journal_path, existing + line)
        self._recorded[key] = status

    def load(self) -> List[dict]:
        """Parse the journal, skipping (and counting) corrupt lines."""
        try:
            raw = self.journal_path.read_bytes()
        except OSError:
            return []
        records: List[dict] = []
        self.corrupt_lines = 0
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                if not isinstance(rec, dict) or "key" not in rec:
                    raise ValueError("not a journal record")
            except ValueError:
                self.corrupt_lines += 1
                continue
            records.append(rec)
        return records

    def _reload_journal(self) -> None:
        self._recorded = {
            str(rec["key"]): str(rec.get("status", ""))
            for rec in self.load()
        }

    def refresh(self) -> None:
        """Re-read the journal from disk, picking up records appended by
        *other* processes (fabric workers sharing this sweep)."""
        self._reload_journal()

    def completed_keys(self) -> Set[str]:
        """Content keys of points the journal marks successfully done."""
        if not self._opened:
            self._reload_journal()
        return {k for k, s in self._recorded.items() if s == "done"}

    def failed_keys(self) -> Set[str]:
        if not self._opened:
            self._reload_journal()
        return {k for k, s in self._recorded.items() if s == "failed"}

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def progress(self) -> Dict[str, object]:
        done = sum(1 for s in self._recorded.values() if s == "done")
        failed = sum(1 for s in self._recorded.values() if s == "failed")
        return {
            "sweep": self.name,
            "done": done,
            "failed": failed,
            "resumed_points": self.resumed_points,
            "recomputed_points": self.recomputed_points,
            "corrupt_lines": self.corrupt_lines,
            "status": self.meta().get("status", "unknown"),
        }

    def provenance_note(self) -> str:
        """Human-readable resume provenance for experiment output notes."""
        prog = self.progress()
        note = (
            f"checkpoint '{self.name}': {prog['done']} point(s) journaled"
        )
        if self.resumed_points:
            note += f", {self.resumed_points} resumed from a previous run"
        if self.recomputed_points:
            note += (
                f", {self.recomputed_points} recomputed (journaled done but "
                "missing from the run cache)"
            )
        if prog["failed"]:
            note += f", {prog['failed']} failed"
        return note

    # ------------------------------------------------------------------ #
    @staticmethod
    def _atomic_write(path: pathlib.Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def list_checkpoints(root: Optional[os.PathLike] = None) -> List[SweepCheckpoint]:
    """Every sweep under the checkpoint root (sorted by name)."""
    base = checkpoint_root(root)
    if not base.is_dir():
        return []
    found: List[SweepCheckpoint] = []
    for meta_path in sorted(base.rglob("meta.json")):
        name = meta_path.parent.relative_to(base).as_posix()
        try:
            cp = SweepCheckpoint(name, root=base)
        except ValueError:
            continue
        cp._reload_journal()
        found.append(cp)
    return found
