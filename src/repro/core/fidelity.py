"""Multi-fidelity point serving: the analytic fast model, optionally
calibrated against a DES subset.

Three fidelity levels, selected via ``run_points(..., fidelity=...)`` or
process-wide with :func:`repro.core.executor.set_default_fidelity`:

``"des"``
    every point through the discrete-event simulator (the default and
    the reference: bit-identical, cached, golden-gated);
``"analytic"``
    every point through :func:`repro.verify.analytic.analytic_run` —
    microseconds per point, trend-faithful, level-approximate, no
    calibration (``meta["fidelity"] = "analytic"``, no error bound);
``"auto"``
    a small deterministic calibration subset of the grid (first, middle
    and last unique points) runs under DES; the fitted DES/analytic
    ratio re-levels the fast model and the spread of the calibration
    ratios is recorded as a relative error band on every served point
    (``meta["fidelity.error_bound"]``).  Calibration points are served
    from their DES results (error bound 0); the rest are served from
    the scaled fast model.

Analytic results never enter the DES disk cache: the run-cache key is
reserved for reference-fidelity records (MODEL_VERSION semantics), so a
later ``fidelity="des"`` sweep is never poisoned by fast-model output.
An in-memory memo keyed per (app, scale, config) keeps repeated fast
evaluations cheap within a process.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import ClusterConfig
from repro.core.metrics import RunResult

FIDELITY_LEVELS = ("des", "analytic", "auto")

#: DES points used to calibrate an ``auto`` grid
CALIBRATION_POINTS = 3

_ANALYTIC_CACHE: Dict[Tuple, RunResult] = {}


def clear_caches() -> None:
    from repro.verify.analytic import clear_summary_cache

    _ANALYTIC_CACHE.clear()
    clear_summary_cache()


def analytic_point(name: str, scale: float, config: ClusterConfig) -> RunResult:
    """One point through the closed-form model (in-memory memoized)."""
    from repro.core import sweeps
    from repro.verify.analytic import analytic_run

    key = (name, scale, config)
    result = _ANALYTIC_CACHE.get(key)
    if result is None:
        trace = sweeps.cached_trace(name, scale, config.comm.page_size, config.seed)
        result = _ANALYTIC_CACHE[key] = analytic_run(trace, config)
    return result


def calibration_subset(unique_points: Sequence) -> List:
    """Deterministic DES subset of a grid: first, middle and last points.

    Grid order is meaningful (sweeps list their parameter values in
    order), so endpoints plus the midpoint bracket the ratio drift along
    the sweep — interior fast-model points then sit inside the fitted
    band whenever the drift is monotone, which it is for every cost
    parameter (the closed form is linear in each).
    """
    n = len(unique_points)
    if n <= CALIBRATION_POINTS:
        return list(unique_points)
    idx = sorted({0, n // 2, n - 1})
    return [unique_points[i] for i in idx]


def fit_scale(ratios: Sequence[float]) -> Tuple[float, float]:
    """Geometric-mean fit of DES/analytic ratios and its relative band.

    Returns ``(scale, error_bound)`` where ``error_bound`` is the
    largest relative deviation of any calibration ratio from the fit —
    the per-point error estimate recorded on served fast-model results.
    """
    clean = [r for r in ratios if r > 0 and math.isfinite(r)]
    if not clean:
        return 1.0, float("nan")
    scale = math.exp(sum(math.log(r) for r in clean) / len(clean))
    band = max(abs(r / scale - 1.0) for r in clean)
    return scale, band


def _serve_analytic(
    point, scale: float, band: float, calibrated: bool
) -> RunResult:
    ana = analytic_point(point.app, point.scale, point.config)
    total = max(1, int(round(ana.total_cycles * scale)))
    meta = dict(ana.meta)
    meta["fidelity"] = "analytic"
    if calibrated:
        meta["fidelity.scale"] = float(scale)
        meta["fidelity.error_bound"] = float(band)
    return dataclasses.replace(ana, total_cycles=total, meta=meta)


def run_points_fast(
    ordered: Sequence,
    fidelity: str,
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    strict: bool = True,
    checkpoint=None,
    deadline_s: Optional[float] = None,
    rss_mb: Optional[float] = None,
) -> List[Union[RunResult, object]]:
    """Serve a grid at ``"analytic"`` or ``"auto"`` fidelity.

    ``ordered`` is a list of :class:`repro.core.executor.Point`.  The
    return contract matches :func:`repro.core.executor.run_points`:
    results in input order, with DES :class:`PointFailure` slots (auto
    calibration only) when ``strict=False``.
    """
    from repro.core.executor import PointFailure, run_points

    unique = []
    seen = set()
    for p in ordered:
        if p not in seen:
            seen.add(p)
            unique.append(p)

    if fidelity == "analytic":
        resolved = {p: _serve_analytic(p, 1.0, 0.0, calibrated=False) for p in unique}
        return [resolved[p] for p in ordered]

    # auto: DES calibration subset through the full executor machinery
    # (parallelism, layered caches, checkpoints, resource guards)
    calib = calibration_subset(unique)
    des_results = run_points(
        calib,
        jobs=jobs,
        retries=retries,
        strict=strict,
        checkpoint=checkpoint,
        deadline_s=deadline_s,
        rss_mb=rss_mb,
        fidelity="des",
    )
    ratios: List[float] = []
    calibrated: Dict = {}
    for p, out in zip(calib, des_results):
        calibrated[p] = out
        if isinstance(out, RunResult):
            ana = analytic_point(p.app, p.scale, p.config)
            ratios.append(out.total_cycles / max(1, ana.total_cycles))
    scale, band = fit_scale(ratios)

    resolved: Dict = {}
    for p in unique:
        out = calibrated.get(p)
        if isinstance(out, RunResult):
            resolved[p] = out.with_meta(
                **{
                    "fidelity": "des",
                    "fidelity.error_bound": 0.0,
                    "fidelity.scale": float(scale),
                }
            )
        elif out is not None and isinstance(out, PointFailure):
            resolved[p] = out
        else:
            resolved[p] = _serve_analytic(p, scale, band, calibrated=True)
    return [resolved[p] for p in ordered]
