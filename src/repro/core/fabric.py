"""Fault-tolerant distributed sweep fabric: leases, fencing, work stealing.

One host saturates quickly (BENCH_sweep.json: 0.98x parallel speedup on
a 1-CPU box); a full-scale grid regeneration wants a *fleet* of worker
processes — possibly crash-prone, possibly paused by the OS — sharing
the one checkpoint journal and run cache that :mod:`repro.core.
checkpoint` and :mod:`repro.core.runcache` already made durable for a
single process.  This module adds the missing coordination layer:

Lease store (``results/.fabric/<sweep>/``)
    A coordinator shards the sweep grid into *leases*, one per point
    (keyed by the run-cache content hash).  Workers claim a lease by
    writing a lease file under the store's fence lock (atomic temp file
    + ``os.replace``, so a SIGKILL mid-claim can never leave a torn
    lease).  Every grant mints a **fencing token** from a monotonic
    counter; tokens only ever grow.

Leases expire; work is stolen
    A claim carries a bounded TTL, renewed by a heartbeat thread while
    the worker computes.  A worker that dies (detected by ``(pid, start
    time)`` liveness — PID reuse cannot fake a live holder) or stalls
    past its TTL (SIGSTOP, GC pause, clock-skewed renewals) loses the
    lease: any other worker reclaims it with a *higher* token, backing
    off exponentially with decorrelated jitter while the grid is
    contended.

Stale tokens are fenced at the write path
    The journal (:meth:`~repro.core.checkpoint.SweepCheckpoint.record`)
    and the run cache (:meth:`~repro.core.runcache.DiskCache.put`)
    consult a :class:`WriteFence` before every write.  A resurrected
    worker — SIGKILLed and restarted, or SIGCONTed after its TTL —
    still holds its *old* token; the fence compares it with the lease
    file's *current* token and rejects the write
    (:class:`StaleFencingTokenError`), logging it to
    ``rejections.jsonl``.  A successor's results can never be clobbered
    by a predecessor's ghost.

Graceful degradation
    The coordinator participates in its own sweep: after spawning
    workers it runs an inline worker loop, so if every worker vanishes
    the tail of the grid is finished serially instead of hanging.

Results themselves stay where they always were — the run cache — and
each point is deterministic, so a fabric run's merged output is
byte-identical to a serial run no matter how many workers were killed,
paused, or fenced along the way (``tests/core/test_fabric_chaos.py``
proves it).  The store is deliberately a plain directory of JSON files:
a future multi-machine transport only has to swap :class:`LeaseStore`
for one backed by a shared filesystem or a small service.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import pathlib
import random
import subprocess
import sys
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core import runcache
from repro.core.checkpoint import (
    SweepCheckpoint,
    set_journal_write_guard,
    validate_sweep_name,
)
from repro.core.executor import Point, PointFailure, run_points
from repro.core.fslock import file_lock, is_process_alive, process_identity

logger = logging.getLogger("repro.fabric")

DEFAULT_FABRIC_DIR = os.path.join("results", ".fabric")

#: default lease TTL (seconds) — long enough for one slow point plus
#: renewal slack, short enough that a stalled worker's points are
#: reclaimed promptly
DEFAULT_TTL_S = 30.0

#: renewal cadence floor — the heartbeat thread never spins faster
#: than this, so a TTL below 3x this floor cannot be renewed in time
MIN_HEARTBEAT_S = 0.05

#: sane TTL bounds: below the floor a lease expires between heartbeats;
#: above the ceiling a stalled worker blocks a point for over a day
MIN_TTL_S = 3 * MIN_HEARTBEAT_S
MAX_TTL_S = 86400.0


class FabricTransportError(RuntimeError):
    """The fabric's coordination transport is unavailable.

    Raised by remote lease stores (:mod:`repro.core.fabric_net`) once
    their retry budget is exhausted and the circuit breaker opens.  The
    filesystem store never raises it.  Workers treat it as "drain and
    exit cleanly"; the coordinator degrades to the filesystem store (or
    finishes the grid inline) — a vanished broker slows a sweep down,
    it never hangs or corrupts it.
    """


def heartbeat_interval(ttl_s: float) -> float:
    """Renewal cadence for a lease TTL: a third of it, floored."""
    return max(MIN_HEARTBEAT_S, float(ttl_s) / 3.0)


def resolve_ttl(ttl_s: Optional[float] = None) -> float:
    """Validated lease TTL from arg > ``REPRO_FABRIC_TTL_S`` > default.

    One friendly line on misconfiguration instead of a silently broken
    sweep: the TTL must sit in ``[MIN_TTL_S, MAX_TTL_S]`` and leave the
    renewer at least three heartbeats (``ttl >= 3 * heartbeat``), or a
    healthy worker's lease would expire between renewals and its points
    would be stolen while it computes.
    """
    source = "--ttl"
    if ttl_s is None:
        raw = os.environ.get("REPRO_FABRIC_TTL_S")
        if raw is None:
            return DEFAULT_TTL_S
        source = "REPRO_FABRIC_TTL_S"
        try:
            ttl_s = float(raw)
        except ValueError:
            raise ValueError(
                f"{source}={raw!r} is not a number; pick a lease TTL in "
                f"seconds between {MIN_TTL_S:g} and {MAX_TTL_S:g}"
            ) from None
    ttl_s = float(ttl_s)
    floor = max(MIN_TTL_S, 3 * MIN_HEARTBEAT_S)
    if not (floor <= ttl_s <= MAX_TTL_S):
        raise ValueError(
            f"fabric TTL {ttl_s:g}s ({source}) is outside [{floor:g}, "
            f"{MAX_TTL_S:g}]s — it must cover at least 3 heartbeat "
            f"intervals ({heartbeat_interval(ttl_s):g}s each) or a healthy "
            "worker's lease expires between renewals"
        )
    return ttl_s


class StaleFencingTokenError(RuntimeError):
    """A write carried a fencing token that has been superseded.

    Raised by the :class:`WriteFence` *instead of* performing the write:
    the journal append / cache put never happens.  The worker holding
    the stale lease treats this as "my work on this point is void" and
    moves on — the successor that minted the higher token owns the
    point now.
    """

    def __init__(
        self,
        key: str,
        held_token: Optional[int],
        current_token: Optional[int],
        worker: str,
    ) -> None:
        self.key = key
        self.held_token = held_token
        self.current_token = current_token
        self.worker = worker
        super().__init__(
            f"stale fencing token for point {key[:12]}…: worker {worker!r} "
            f"holds token {held_token}, lease is now at token {current_token} "
            "— the lease expired and was reclaimed; this write is rejected"
        )


def fabric_root(root: Optional[os.PathLike] = None) -> pathlib.Path:
    """Resolve the fabric root (arg > ``REPRO_FABRIC_DIR`` > default)."""
    if root is not None:
        return pathlib.Path(root)
    return pathlib.Path(os.environ.get("REPRO_FABRIC_DIR", DEFAULT_FABRIC_DIR))


@dataclass
class Lease:
    """One point's current grant: who may write it, under which token."""

    key: str
    token: int
    worker: str
    pid: int
    pid_start: Optional[int]
    granted_unix: float
    ttl_s: float
    expires_unix: float
    #: ``"held"`` while a worker owns it, then ``"done"``/``"failed"``
    status: str = "held"
    #: token of the lease this grant superseded (``None`` = fresh claim)
    prev_token: Optional[int] = None
    #: broker-minted session id for remote holders (``None`` = local
    #: holder identified by ``(pid, pid_start)``)
    session: Optional[str] = None

    @property
    def stolen(self) -> bool:
        return self.prev_token is not None

    def holder_alive(self) -> bool:
        """Best-effort holder liveness; ``True`` when unknowable.

        Three tiers, strongest evidence first:

        * a local holder with recorded ``(pid, start time)`` is checked
          against procfs — PID reuse cannot fake it;
        * a remote holder (``session`` set, or a sentinel ``pid <= 0``)
          lives on another machine: its PID means nothing here, so
          liveness is the broker's job (session TTL) and this reports
          alive — reclaim happens via the lease TTL;
        * a local holder whose start time could not be recorded (no
          procfs: macOS, slim containers) degrades to **TTL-only**
          liveness.  A bare PID existence check would misread an
          unrelated recycled PID as the holder — and worse, a PID that
          happens to be free as "holder dead", stealing a live worker's
          lease.  Never assume dead on weak evidence.
        """
        if self.session is not None or self.pid <= 0:
            return True
        if self.pid_start is None:
            return True
        return is_process_alive(self.pid, self.pid_start)

    def reclaimable(self, now: Optional[float] = None) -> bool:
        """Whether another worker may take this lease over.

        Terminal leases are never reclaimed (the journal already records
        the outcome).  A held lease is up for grabs once its TTL passed
        *or* its holder process is gone — ``(pid, start time)`` liveness
        means a recycled PID cannot impersonate the holder.
        """
        if self.status != "held":
            return False
        now = time.time() if now is None else now
        return now >= self.expires_unix or not self.holder_alive()

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "Lease":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in fields})  # type: ignore[arg-type]


class LeaseStore:
    """Filesystem-backed lease/heartbeat store for one fabric sweep.

    All mutations happen under one fence lock (``flock`` via
    :mod:`repro.core.fslock`) and write files atomically, so claims are
    serialized (no double-claim) and a kill at any instant leaves whole
    files.  The fence lock itself dies with its holder — the store can
    never wedge.
    """

    #: transport tag for status displays; the TCP-backed store
    #: (:class:`repro.core.fabric_net.RemoteLeaseStore`) reports ``tcp``
    transport = "fs"

    def __init__(self, sweep: str, root: Optional[os.PathLike] = None) -> None:
        self.sweep = validate_sweep_name(sweep)
        self.root = fabric_root(root)
        self.dir = self.root / pathlib.PurePosixPath(sweep)
        self.grid_path = self.dir / "grid.json"
        self.leases_dir = self.dir / "leases"
        self.workers_dir = self.dir / "workers"
        self.claims_path = self.dir / "claims.jsonl"
        self.rejections_path = self.dir / "rejections.jsonl"
        self.fence_path = self.dir / "fence.json"
        self._lock_path = self.dir / ".fence.lock"

    # ------------------------------------------------------------------ #
    # grid
    # ------------------------------------------------------------------ #
    @property
    def exists(self) -> bool:
        return self.grid_path.is_file()

    def init_grid(
        self, points: Sequence[Point], meta: Optional[dict] = None
    ) -> List[str]:
        """Shard ``points`` into the store; returns their content keys.

        Idempotent for a crashed-and-restarted coordinator: re-initing
        with the identical grid is a no-op, a *different* grid under the
        same sweep name is refused.
        """
        keyed = self._keyed(points)
        keys = [k for k, _ in keyed]
        if self.exists:
            existing = [k for k, _ in self.load_grid()]
            if existing != keys:
                raise ValueError(
                    f"fabric sweep {self.sweep!r} already holds a different "
                    f"grid ({len(existing)} point(s) vs {len(keys)} requested); "
                    "pick a new sweep name or delete the old one"
                )
            return keys
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        self.workers_dir.mkdir(parents=True, exist_ok=True)
        record = {
            "sweep": self.sweep,
            "model_version": runcache.MODEL_VERSION,
            "created_unix": time.time(),
            "meta": meta or {},
            "points": [
                {
                    "key": key,
                    "app": p.app,
                    "scale": p.scale,
                    "config": dataclasses.asdict(p.config),
                }
                for key, p in keyed
            ],
        }
        self._atomic_write(
            self.grid_path, (json.dumps(record, indent=1, sort_keys=True) + "\n")
        )
        return keys

    def load_grid(self) -> List[Tuple[str, Point]]:
        """The sweep's full point list, in grid order, with content keys."""
        from repro.verify.artifacts import config_from_dict

        try:
            record = json.loads(self.grid_path.read_text())
        except (OSError, ValueError) as exc:
            raise ValueError(
                f"fabric sweep {self.sweep!r} has no readable grid "
                f"({self.grid_path}): {exc}"
            ) from exc
        out: List[Tuple[str, Point]] = []
        for entry in record.get("points", []):
            point = Point(
                str(entry["app"]),
                float(entry["scale"]),
                config_from_dict(entry["config"]),
            )
            out.append((str(entry["key"]), point))
        return out

    @staticmethod
    def _keyed(points: Sequence[Point]) -> List[Tuple[str, Point]]:
        keyed: List[Tuple[str, Point]] = []
        seen: Set[str] = set()
        for p in points:
            p = Point(*p)
            key = runcache.content_key(p.app, p.scale, p.config)
            if key not in seen:  # duplicates collapse to one lease
                seen.add(key)
                keyed.append((key, p))
        return keyed

    # ------------------------------------------------------------------ #
    # leases + fencing tokens
    # ------------------------------------------------------------------ #
    def _lease_path(self, key: str) -> pathlib.Path:
        return self.leases_dir / f"{key}.json"

    def read_lease(self, key: str) -> Optional[Lease]:
        try:
            raw = json.loads(self._lease_path(key).read_text())
            return Lease.from_dict(raw)
        except (OSError, ValueError, TypeError):
            return None

    def current_token(self, key: str) -> Optional[int]:
        lease = self.read_lease(key)
        return lease.token if lease is not None else None

    def _mint_token_locked(self) -> int:
        """Next fencing token (monotonic).  Caller holds the fence lock."""
        try:
            state = json.loads(self.fence_path.read_text())
            next_token = int(state["next_token"])
        except (OSError, ValueError, KeyError, TypeError):
            next_token = 1
        self._atomic_write(
            self.fence_path, json.dumps({"next_token": next_token + 1}) + "\n"
        )
        return next_token

    def claim(
        self,
        key: str,
        worker: str,
        ttl_s: float,
        session: Optional[str] = None,
        session_expired=None,
    ) -> Optional[Lease]:
        """Try to take the lease on ``key`` for ``worker``.

        Succeeds when the point is unclaimed or its current lease is
        reclaimable (expired / holder dead); returns ``None`` while a
        live lease stands.  Claims serialize under the fence lock, so
        two stealers racing for one expired lease produce exactly one
        grant — the loser sees the winner's fresh lease and backs off.

        ``session`` marks a grant made on behalf of a remote holder (the
        broker in :mod:`repro.core.fabric_net`): the lease records the
        session id instead of a local ``(pid, start time)`` identity.
        ``session_expired`` is an optional predicate the broker supplies
        so a held lease whose holder's *session* died (heartbeats
        stopped) is reclaimable before its own TTL runs out.
        """
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        with file_lock(self._lock_path):
            now = time.time()
            current = self.read_lease(key)
            if current is not None and not current.reclaimable(now):
                dead_session = (
                    current.status == "held"
                    and current.session is not None
                    and session_expired is not None
                    and session_expired(current.session)
                )
                if not dead_session:
                    return None
            if session is not None:
                pid, pid_start = 0, None  # remote holder: session liveness
            else:
                pid, pid_start = process_identity()
            lease = Lease(
                key=key,
                token=self._mint_token_locked(),
                worker=worker,
                pid=pid,
                pid_start=pid_start,
                granted_unix=now,
                ttl_s=float(ttl_s),
                expires_unix=now + float(ttl_s),
                prev_token=current.token if current is not None else None,
                session=session,
            )
            self._atomic_write(
                self._lease_path(key), json.dumps(lease.to_dict()) + "\n"
            )
            self._append_locked(
                self.claims_path,
                {
                    "key": key,
                    "token": lease.token,
                    "worker": worker,
                    "reason": "steal" if lease.stolen else "grant",
                    "prev_token": lease.prev_token,
                    "prev_worker": current.worker if current is not None else None,
                    "session": session,
                    "unix": now,
                },
            )
        if lease.stolen:
            logger.info(
                "worker %s stole lease on %s… (token %s supersedes %s)",
                worker,
                key[:12],
                lease.token,
                lease.prev_token,
            )
        return lease

    def renew(self, lease: Lease) -> Lease:
        """Extend a held lease's TTL; raises if it has been superseded."""
        with file_lock(self._lock_path):
            current = self.read_lease(lease.key)
            if (
                current is None
                or current.token != lease.token
                or current.worker != lease.worker
            ):
                raise StaleFencingTokenError(
                    lease.key,
                    lease.token,
                    current.token if current is not None else None,
                    lease.worker,
                )
            renewed = dataclasses.replace(
                lease, expires_unix=time.time() + lease.ttl_s
            )
            self._atomic_write(
                self._lease_path(lease.key), json.dumps(renewed.to_dict()) + "\n"
            )
            return renewed

    def release(self, lease: Lease, status: str) -> bool:
        """Mark a held lease terminal (``done``/``failed``).

        Returns ``False`` (no-op) when the lease was superseded while we
        computed — the successor owns the point's outcome now.
        """
        with file_lock(self._lock_path):
            current = self.read_lease(lease.key)
            if current is None or current.token != lease.token:
                return False
            final = dataclasses.replace(
                lease, status=status, expires_unix=time.time()
            )
            self._atomic_write(
                self._lease_path(lease.key), json.dumps(final.to_dict()) + "\n"
            )
            return True

    def leases(self) -> List[Lease]:
        if not self.leases_dir.is_dir():
            return []
        out = []
        for path in sorted(self.leases_dir.glob("*.json")):
            lease = self.read_lease(path.stem)
            if lease is not None:
                out.append(lease)
        return out

    # ------------------------------------------------------------------ #
    # rejections + claims logs
    # ------------------------------------------------------------------ #
    def record_rejection(
        self,
        key: str,
        held_token: Optional[int],
        current_token: Optional[int],
        worker: str,
    ) -> None:
        with file_lock(self._lock_path):
            self._append_locked(
                self.rejections_path,
                {
                    "key": key,
                    "held_token": held_token,
                    "current_token": current_token,
                    "worker": worker,
                    "unix": time.time(),
                },
            )

    def rejections(self) -> List[dict]:
        return self._read_jsonl(self.rejections_path)

    def claims(self) -> List[dict]:
        return self._read_jsonl(self.claims_path)

    # ------------------------------------------------------------------ #
    # worker heartbeats
    # ------------------------------------------------------------------ #
    def heartbeat(self, worker: str, **info: object) -> None:
        pid, pid_start = process_identity()
        record = {
            "worker": worker,
            "pid": pid,
            "pid_start": pid_start,
            "beat_unix": time.time(),
        }
        record.update(info)
        self.write_worker_record(worker, record)

    def write_worker_record(self, worker: str, record: dict) -> None:
        """Durably publish one worker's liveness record (atomic write).

        Used by :meth:`heartbeat` for local workers and by the broker
        (:mod:`repro.core.fabric_net`) to mirror remote workers' session
        heartbeats into the same on-disk layout.
        """
        self.workers_dir.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            self.workers_dir / f"{worker}.json", json.dumps(record) + "\n"
        )

    def workers(self) -> List[dict]:
        if not self.workers_dir.is_dir():
            return []
        out = []
        for path in sorted(self.workers_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(record, dict):
                pid = record.get("pid")
                start = record.get("pid_start")
                if record.get("session") is not None:
                    # Remote worker: a local PID probe means nothing.
                    # ``alive`` is the broker's call (session TTL); keep
                    # whatever it mirrored, default to unknown-but-seen.
                    record.setdefault("alive", True)
                else:
                    record["alive"] = isinstance(pid, int) and is_process_alive(
                        pid, start if isinstance(start, int) else None
                    )
                out.append(record)
        return out

    # ------------------------------------------------------------------ #
    def delete(self) -> None:
        import shutil

        shutil.rmtree(self.dir, ignore_errors=True)

    def _append_locked(self, path: pathlib.Path, record: dict) -> None:
        """Append one JSONL record (caller holds the fence lock)."""
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        try:
            existing = path.read_bytes()
        except OSError:
            existing = b""
        self._atomic_write(path, existing + line)

    @staticmethod
    def _read_jsonl(path: pathlib.Path) -> List[dict]:
        try:
            raw = path.read_bytes()
        except OSError:
            return []
        out = []
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if isinstance(rec, dict):
                out.append(rec)
        return out

    @staticmethod
    def _atomic_write(path: pathlib.Path, data: Union[str, bytes]) -> None:
        if isinstance(data, str):
            data = data.encode("utf-8")
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# --------------------------------------------------------------------- #
# write fencing
# --------------------------------------------------------------------- #
class WriteFence:
    """Validates this process's writes against the lease store.

    Installed process-wide via :func:`install_fence`; consulted by the
    checkpoint journal and the run cache before every write.  Keys
    outside the sweep's grid pass through untouched (a fabric worker can
    still warm unrelated caches); managed keys must be covered by a
    lease this worker holds *whose token is still current on disk*.
    """

    def __init__(self, store: LeaseStore, worker: str, managed: Set[str]) -> None:
        self.store = store
        self.worker = worker
        self.managed = set(managed)
        self.held: Dict[str, Lease] = {}
        #: stale writes this fence rejected (also journaled durably in
        #: ``rejections.jsonl`` by the store)
        self.rejected = 0

    def track(self, lease: Lease) -> None:
        self.held[lease.key] = lease

    def untrack(self, key: str) -> None:
        self.held.pop(key, None)

    def check(self, key: str) -> Optional[Dict[str, object]]:
        """Gate one write to ``key``; returns provenance tags when valid.

        Raises :class:`StaleFencingTokenError` — after durably counting
        the rejection — when this worker holds no current lease on a
        managed key.
        """
        if key not in self.managed:
            return None
        lease = self.held.get(key)
        current = self.store.read_lease(key)
        if (
            lease is None
            or current is None
            or current.token != lease.token
            or current.worker != lease.worker
        ):
            self.rejected += 1
            held_token = lease.token if lease is not None else None
            current_token = current.token if current is not None else None
            self.store.record_rejection(key, held_token, current_token, self.worker)
            raise StaleFencingTokenError(key, held_token, current_token, self.worker)
        return {"token": lease.token, "worker": self.worker}


def install_fence(fence: WriteFence) -> None:
    """Gate the checkpoint journal and run cache behind ``fence``."""
    set_journal_write_guard(lambda sweep, key: fence.check(key))
    runcache.set_write_guard(fence.check)


def uninstall_fence() -> None:
    set_journal_write_guard(None)
    runcache.set_write_guard(None)


class _LeaseRenewer(threading.Thread):
    """Heartbeat thread: renews held leases + the worker's liveness file.

    A SIGSTOP freezes this thread together with the computation, so the
    lease genuinely expires — exactly the failure the fencing tokens
    exist for.
    """

    def __init__(
        self, store: LeaseStore, fence: WriteFence, worker: str, interval_s: float
    ) -> None:
        super().__init__(name=f"fabric-renew-{worker}", daemon=True)
        self.store = store
        self.fence = fence
        self.worker = worker
        self.interval_s = interval_s
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:  # pragma: no cover - exercised via chaos tests
        while not self._stop.wait(self.interval_s):
            try:
                self.store.heartbeat(self.worker)
                for key, lease in list(self.fence.held.items()):
                    if key in self.fence.held:
                        try:
                            self.fence.held[key] = self.store.renew(lease)
                        except StaleFencingTokenError:
                            # Superseded mid-compute: leave the stale lease
                            # tracked — the write fence will reject (and
                            # count) the eventual write attempt.
                            pass
            except (OSError, FabricTransportError):
                # Transient FS trouble, or the broker is unreachable:
                # retry next beat.  The claim loop hits the same wall and
                # decides whether to drain; the renewer never escalates.
                pass


# --------------------------------------------------------------------- #
# worker
# --------------------------------------------------------------------- #
class FabricWorker:
    """Claim-compute-journal loop over one fabric sweep's lease store."""

    def __init__(
        self,
        sweep: str,
        worker_id: Optional[str] = None,
        ttl_s: float = DEFAULT_TTL_S,
        root: Optional[os.PathLike] = None,
        checkpoint_root: Optional[os.PathLike] = None,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        store: Optional[LeaseStore] = None,
    ) -> None:
        self.store = store if store is not None else LeaseStore(sweep, root=root)
        self.sweep = self.store.sweep
        self.worker_id = worker_id or f"w{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.ttl_s = float(ttl_s)
        self.checkpoint_root = checkpoint_root
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        # Decorrelated reclaim jitter, seeded per worker id so no two
        # workers back off in lock-step (and tests stay reproducible).
        self._rng = random.Random(self.worker_id)

    def run(self) -> Dict[str, int]:
        """Work the grid until every point is terminal; returns stats."""
        stats = {"computed": 0, "failed": 0, "stolen": 0, "fenced": 0}
        fence: Optional[WriteFence] = None
        renewer: Optional[_LeaseRenewer] = None
        backoff = self.backoff_base_s
        try:
            grid = self.store.load_grid()
            keys = {key for key, _ in grid}
            cp = SweepCheckpoint(self.sweep, root=self.checkpoint_root).open(
                meta={"fabric": True}
            )
            fence = WriteFence(self.store, self.worker_id, managed=keys)
            install_fence(fence)
            renewer = _LeaseRenewer(
                self.store, fence, self.worker_id,
                interval_s=heartbeat_interval(self.ttl_s),
            )
            renewer.start()
            self.store.heartbeat(self.worker_id, phase="start")
            while True:
                cp.refresh()
                terminal = cp.completed_keys() | cp.failed_keys()
                pending = [(k, p) for k, p in grid if k not in terminal]
                if not pending:
                    break
                lease, point = self._claim_next(pending)
                if lease is None:
                    # Everything left is under a live lease: wait with
                    # decorrelated exponential backoff, then re-scan for
                    # completions and expiries.
                    time.sleep(self._rng.uniform(self.backoff_base_s, backoff))
                    backoff = min(self.backoff_cap_s, backoff * 2)
                    continue
                backoff = self.backoff_base_s
                if lease.stolen:
                    stats["stolen"] += 1
                fence.track(lease)
                try:
                    outcome = run_points(
                        [point],
                        jobs=1,
                        strict=False,
                        checkpoint=cp,
                        journal_extra={"worker": self.worker_id},
                    )[0]
                except StaleFencingTokenError:
                    stats["fenced"] += 1
                    continue
                finally:
                    fence.untrack(lease.key)
                if isinstance(outcome, PointFailure):
                    stats["failed"] += 1
                    self.store.release(lease, "failed")
                else:
                    stats["computed"] += 1
                    self.store.release(lease, "done")
                self.store.heartbeat(self.worker_id, **stats)
        except FabricTransportError as exc:
            # The broker stayed unreachable past the client's retry
            # budget (circuit breaker open).  Nothing half-written can
            # be accepted — the write fence fails *closed* — so the
            # correct move is a clean drain: journaled outcomes stand,
            # the in-flight point is abandoned for a successor (or the
            # coordinator's inline fallback) to recompute.
            stats["broker_lost"] = 1
            logger.warning(
                "worker %s: fabric transport lost (%s); drained and exiting "
                "cleanly — completed points are journaled, the rest will be "
                "recomputed by survivors",
                self.worker_id,
                exc,
            )
        finally:
            if renewer is not None:
                renewer.stop()
            uninstall_fence()
            stats["rejected"] = fence.rejected if fence is not None else 0
            try:
                self.store.heartbeat(self.worker_id, phase="exited", **stats)
            except (OSError, FabricTransportError):  # pragma: no cover
                pass  # store/broker vanished
        return stats

    def _claim_next(
        self, pending: Sequence[Tuple[str, Point]]
    ) -> Tuple[Optional[Lease], Optional[Point]]:
        """One claim attempt: fresh points first, then expired leases.

        Preferring unclaimed work keeps stealing (which re-runs a
        point someone else may still finish) a last resort.
        """
        steal_candidates: List[Tuple[str, Point]] = []
        now = time.time()
        # One bulk fetch instead of a read per key: over the TCP
        # transport this is a single RPC per scan; claim() still
        # re-checks under the fence lock, so a stale snapshot only
        # costs a failed claim, never a double grant.
        current_leases = {lease.key: lease for lease in self.store.leases()}
        for key, point in pending:
            current = current_leases.get(key)
            if current is None:
                lease = self.store.claim(key, self.worker_id, self.ttl_s)
                if lease is not None:
                    return lease, point
            elif current.reclaimable(now):
                steal_candidates.append((key, point))
        for key, point in steal_candidates:
            lease = self.store.claim(key, self.worker_id, self.ttl_s)
            if lease is not None:
                return lease, point
        return None, None


# --------------------------------------------------------------------- #
# coordinator
# --------------------------------------------------------------------- #
class FabricCoordinator:
    """Shard a grid into leases, spawn workers, finish the tail inline.

    The coordinator is itself a worker: after spawning ``n_workers``
    subprocesses it joins the claim loop in-process, so a fleet that
    crashes (or was never started — ``n_workers=0``) degrades to a
    serial sweep instead of a hang.  Completion is defined by the
    journal, not by worker exits: a paused worker cannot stall the run.
    """

    def __init__(
        self,
        sweep: str,
        points: Sequence[Point],
        n_workers: int = 2,
        ttl_s: float = DEFAULT_TTL_S,
        root: Optional[os.PathLike] = None,
        store: Optional[LeaseStore] = None,
    ) -> None:
        self.store = store if store is not None else LeaseStore(sweep, root=root)
        self.sweep = self.store.sweep
        self.points = [Point(*p) for p in points]
        self.n_workers = max(0, int(n_workers))
        self.ttl_s = float(ttl_s)
        self.procs: List[subprocess.Popen] = []
        #: set to ``"fs"`` / ``"inline"`` when the TCP transport was
        #: abandoned mid-run (degradation ladder: tcp -> fs -> inline)
        self.degraded: Optional[str] = None

    def spawn_workers(self) -> List[subprocess.Popen]:
        """Start ``n_workers`` ``repro fabric worker`` subprocesses."""
        env = dict(os.environ)
        if self.store.transport == "tcp":
            env["REPRO_FABRIC_ADDR"] = getattr(self.store, "addr", "")
            env.pop("REPRO_FABRIC_DIR", None)
        else:
            env["REPRO_FABRIC_DIR"] = str(self.store.root)
            env.pop("REPRO_FABRIC_ADDR", None)
        src_dir = str(pathlib.Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if src_dir not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_dir + (os.pathsep + existing if existing else "")
            )
        for i in range(self.n_workers):
            argv = [
                sys.executable,
                "-m",
                "repro",
                "fabric",
                "worker",
                self.sweep,
                "--ttl",
                f"{self.ttl_s:g}",
                "--id",
                f"w{i + 1}",
            ]
            self.procs.append(subprocess.Popen(argv, env=env))
        return self.procs

    def run(self) -> Dict[str, object]:
        """Execute the whole grid; returns a summary (results included).

        Degradation ladder (never hang, never corrupt):

        1. **tcp** — the configured store is a broker client; workers on
           any machine share the grid.
        2. **fs** — the broker is unreachable *from the start*: fall
           back to the filesystem lease store and run locally.
        3. **inline** — the broker (or the whole fleet) vanished
           *mid-run*: the final serve pass below recomputes whatever is
           missing serially, with no fence in the way.
        """
        try:
            self.store.init_grid(self.points)
        except FabricTransportError as exc:
            self.degraded = "fs"
            self.store = LeaseStore(self.sweep)
            self.store.init_grid(self.points)
            print(
                f"fabric: broker unreachable ({exc}); degraded to the "
                f"filesystem lease store at {self.store.dir} — the sweep "
                "continues on this machine (slower, never hung)",
                flush=True,
            )
        self.spawn_workers()
        inline = FabricWorker(
            self.sweep,
            worker_id="coordinator",
            ttl_s=self.ttl_s,
            store=self.store,
        )
        try:
            inline_stats = inline.run()
        finally:
            self._reap_workers()
        if inline_stats.get("broker_lost"):
            self.degraded = "inline"
            print(
                "fabric: broker lost mid-sweep; finishing the remaining "
                "points inline (serial) from the local cache/journal",
                flush=True,
            )
        # Every point is terminal; serve the merged grid from the cache
        # (recomputing anything lost/quarantined) in requested order.
        results = run_points([tuple(p) for p in self.points], jobs=1, strict=False)
        failures = [r for r in results if isinstance(r, PointFailure)]
        cp = SweepCheckpoint(self.sweep)
        if cp.exists:
            cp.finalize("failed" if failures else "complete")
        summary = {
            "sweep": self.sweep,
            "results": results,
            "failures": failures,
            "inline": inline_stats,
            "transport": self.store.transport,
            "degraded": self.degraded,
            "workers": [],
            "claims": [],
            "rejections": [],
        }
        try:
            summary["workers"] = self.store.workers()
            summary["claims"] = self.store.claims()
            summary["rejections"] = self.store.rejections()
        except FabricTransportError:  # pragma: no cover - broker died late
            pass
        return summary

    def _reap_workers(self, grace_s: float = 5.0) -> None:
        """Stop leftover workers: the grid is terminal, they are idle
        (or paused past their TTL and already fenced)."""
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.time() + grace_s
        for proc in self.procs:
            remaining = max(0.1, deadline - time.time())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                try:
                    proc.wait(timeout=grace_s)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass


# --------------------------------------------------------------------- #
# status / reporting
# --------------------------------------------------------------------- #
def list_fabric_sweeps(root: Optional[os.PathLike] = None) -> List[LeaseStore]:
    base = fabric_root(root)
    if not base.is_dir():
        return []
    stores = []
    for grid in sorted(base.rglob("grid.json")):
        name = grid.parent.relative_to(base).as_posix()
        try:
            stores.append(LeaseStore(name, root=base))
        except ValueError:
            continue
    return stores


def sweep_status(
    store: LeaseStore, checkpoint_root: Optional[os.PathLike] = None
) -> Dict[str, object]:
    """Aggregate one fabric sweep's progress for ``repro fabric status``
    and the ``repro resume`` table.

    ``orphaned`` counts points whose lease expired (or whose holder
    died) without a journaled outcome — work that is *reclaimable*, as
    opposed to ``failed`` work that ran and broke.  The subset of those
    whose lease was broker-granted (a remote worker's session went
    quiet) is ``broker_orphaned`` — `repro resume` labels them
    distinctly, since the worker lives on another machine and no local
    PID probe can explain the orphan.
    """
    cp = SweepCheckpoint(store.sweep, root=checkpoint_root)
    cp.refresh()
    done = cp.completed_keys()
    failed = cp.failed_keys()
    try:
        keys = [k for k, _ in store.load_grid()]
    except ValueError:
        keys = []
    now = time.time()
    leases = {lease.key: lease for lease in store.leases()}
    leased = orphaned = broker_orphaned = unclaimed = 0
    owners: Set[str] = set()
    for key in keys:
        if key in done or key in failed:
            continue
        lease = leases.get(key)
        if lease is None:
            unclaimed += 1
        elif lease.reclaimable(now):
            orphaned += 1
            if lease.session is not None:
                broker_orphaned += 1
        else:
            leased += 1
            owners.add(lease.worker)
    workers = store.workers()
    return {
        "sweep": store.sweep,
        "transport": store.transport,
        "broker": getattr(store, "addr", None),
        "total": len(keys),
        "done": sum(1 for k in keys if k in done),
        "failed": sum(1 for k in keys if k in failed),
        "leased": leased,
        "orphaned": orphaned,
        "broker_orphaned": broker_orphaned,
        "unclaimed": unclaimed,
        "owners": sorted(owners),
        "workers_alive": sum(1 for w in workers if w.get("alive")),
        "workers_seen": len(workers),
        "workers": workers,
        "rejections": len(store.rejections()),
        "steals": sum(1 for c in store.claims() if c.get("reason") == "steal"),
    }
